// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Concurrency stress: oversubscription, repeated runs, adversarial
//! configurations. On the single-core CI host every thread interleaving
//! is scheduler-driven, which is exactly the hostile environment these
//! tests want.

use bader_cong_spanning::prelude::*;
use st_graph::validate::count_components;

#[test]
fn oversubscribed_teams() {
    // Far more threads than cores; the yielding barrier and detector
    // must still terminate and produce valid forests.
    let g = gen::random_connected(3_000, 2_000, 5);
    for p in [8usize, 16] {
        let f = BaderCong::with_defaults().spanning_forest(&g, p);
        assert!(is_spanning_forest(&g, &f.parents), "p = {p}");
    }
}

#[test]
fn barrier_yield_path_under_heavy_oversubscription() {
    // p far above any CI core count: every barrier episode forces
    // waiters through the Backoff yield path (spinning alone can never
    // finish an episode when the last arrival isn't scheduled), and the
    // saturating spin counters must survive arbitrarily long waits.
    use bader_cong_spanning::smp::{BarrierToken, DisseminationBarrier, SenseBarrier};
    use std::sync::atomic::{AtomicUsize, Ordering};
    const P: usize = 32;
    const EPISODES: usize = 40;

    let barrier = SenseBarrier::new(P);
    let phase = AtomicUsize::new(0);
    let leaders = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..P {
            s.spawn(|| {
                let token = BarrierToken::new();
                for e in 0..EPISODES {
                    phase.fetch_add(1, Ordering::SeqCst);
                    if barrier.wait(&token) {
                        leaders.fetch_add(1, Ordering::SeqCst);
                    }
                    // All P arrivals of episode e are in; at most P-1
                    // threads raced ahead into episode e+1.
                    let seen = phase.load(Ordering::SeqCst);
                    assert!(
                        seen >= P * (e + 1) && seen < P * (e + 2),
                        "episode {e}: phase {seen} out of range"
                    );
                }
            });
        }
    });
    assert_eq!(barrier.generations(), EPISODES as u64);
    assert_eq!(
        leaders.load(Ordering::SeqCst),
        EPISODES,
        "one leader per episode"
    );

    let dissem = DisseminationBarrier::new(P);
    let phase = AtomicUsize::new(0);
    std::thread::scope(|s| {
        let (dissem, phase) = (&dissem, &phase);
        for id in 0..P {
            s.spawn(move || {
                let token = dissem.token(id);
                for e in 0..EPISODES {
                    phase.fetch_add(1, Ordering::SeqCst);
                    dissem.wait(&token);
                    let seen = phase.load(Ordering::SeqCst);
                    assert!(
                        seen >= P * (e + 1) && seen < P * (e + 2),
                        "episode {e}: phase {seen} out of range"
                    );
                }
            });
        }
    });
}

#[test]
fn repeated_runs_are_all_valid() {
    // The benign race means tree *shape* may differ run to run; validity
    // and component structure may not.
    let g = gen::random_gnm(2_000, 3_000, 9);
    let reference = count_components(&g);
    for i in 0..20 {
        let cfg = Config {
            traversal: TraversalConfig {
                seed: i,
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 4);
        assert!(is_spanning_forest(&g, &f.parents), "run {i}");
        assert_eq!(f.num_trees(), reference, "run {i}");
    }
}

#[test]
fn sv_repeated_runs_are_all_valid() {
    let g = gen::mesh2d_p(40, 40, 0.55, 3);
    let reference = count_components(&g);
    for _ in 0..10 {
        let f = sv::spanning_forest(&g, 4, SvConfig::default());
        assert!(is_spanning_forest(&g, &f.parents));
        assert_eq!(f.num_trees(), reference);
    }
}

#[test]
fn tiny_idle_timeout_stress() {
    // A near-zero idle timeout maximizes detector churn (sleep/wake
    // cycles) without changing semantics.
    let g = gen::random_connected(2_000, 1_000, 1);
    let cfg = Config {
        traversal: TraversalConfig {
            idle_timeout: std::time::Duration::from_micros(1),
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    for _ in 0..5 {
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 8);
        assert!(is_spanning_forest(&g, &f.parents));
    }
}

#[test]
fn aggressive_starvation_threshold_on_mixed_graph() {
    // Threshold 2 of 8: fires almost immediately on anything
    // non-expander; the fallback must still deliver.
    let mut el = EdgeList::new(12_000);
    for v in 1..10_000u32 {
        el.push(v - 1, v); // long chain
    }
    for v in 10_001..12_000u32 {
        el.push(10_000, v); // plus a star
    }
    el.push(9_999, 10_000);
    let g = CsrGraph::from_edge_list(&el);
    let cfg = Config {
        traversal: TraversalConfig {
            starvation_threshold: Some(2),
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    for _ in 0..3 {
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 8);
        assert!(is_spanning_forest(&g, &f.parents));
        assert_eq!(f.num_trees(), 1);
    }
}

#[test]
fn steal_one_policy_under_oversubscription() {
    let g = gen::star(4_000);
    let cfg = Config {
        traversal: TraversalConfig {
            steal_policy: StealPolicy::One,
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 8);
    assert!(is_spanning_forest(&g, &f.parents));
}

#[test]
fn many_tiny_components_in_one_session() {
    // 1000 components of size <= 3: exercises the stub-absorption path
    // under threads.
    let mut el = EdgeList::new(3_000);
    for c in 0..1_000u32 {
        el.push(3 * c, 3 * c + 1);
        el.push(3 * c + 1, 3 * c + 2);
    }
    let g = CsrGraph::from_edge_list(&el);
    let f = BaderCong::with_defaults().spanning_forest(&g, 4);
    assert!(is_spanning_forest(&g, &f.parents));
    assert_eq!(f.num_trees(), 1_000);
    // Stub absorption means no parallel rounds at all -> at most the
    // final session barrier pair.
    assert!(f.stats.barriers <= 2, "barriers = {}", f.stats.barriers);
}

#[test]
fn publish_threshold_sweep() {
    // The two-level frontier across its whole operating range: the
    // paper's publish-everything protocol (1), small and default
    // thresholds, and publish-never (sleeper-driven donation only),
    // on the three canonical topologies, oversubscribed.
    let graphs: Vec<(&str, CsrGraph)> = vec![
        ("star", gen::star(4_000)),
        ("chain", gen::chain(4_000)),
        ("random", gen::random_connected(4_000, 8_000, 17)),
    ];
    for (name, g) in &graphs {
        for threshold in [1usize, 8, 64, usize::MAX] {
            for p in [2usize, 4, 8] {
                let cfg = Config {
                    traversal: TraversalConfig {
                        publish_threshold: threshold,
                        ..TraversalConfig::default()
                    },
                    ..Config::default()
                };
                let f = BaderCong::new(cfg.clone()).spanning_forest(g, p);
                let root = f
                    .parents
                    .iter()
                    .position(|&pv| pv == NO_VERTEX)
                    .expect("a connected input must yield a root")
                    as VertexId;
                assert!(
                    is_spanning_tree(g, &f.parents, root),
                    "{name}: threshold = {threshold}, p = {p}"
                );
            }
        }
    }
}

#[test]
fn round_end_drain_with_tiny_threshold() {
    // publish_threshold = 2 maximizes shared-queue traffic, and a
    // disconnected input forces many rounds — any vertex stranded in a
    // shared queue at a round boundary would surface as a missing
    // parent or a wrong component count here.
    let g = gen::mesh2d_p(40, 40, 0.55, 7);
    let reference = count_components(&g);
    let cfg = Config {
        traversal: TraversalConfig {
            publish_threshold: 2,
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    for p in [2usize, 4, 8] {
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, p);
        assert!(is_spanning_forest(&g, &f.parents), "p = {p}");
        assert_eq!(f.num_trees(), reference, "p = {p}");
    }
}

#[test]
fn hcs_under_oversubscription() {
    let g = gen::random_gnm(2_000, 3_000, 11);
    let f = st_core::hcs::spanning_forest(&g, 12);
    assert!(is_spanning_forest(&g, &f.parents));
}

#[test]
fn sv_lock_variant_under_contention() {
    // The lock variant serializes on hot roots; correctness must hold
    // under heavy contention (star graph: every edge fights for the
    // hub's tree).
    let g = gen::star(3_000);
    let cfg = SvConfig {
        variant: GraftVariant::Lock,
        ..SvConfig::default()
    };
    let f = sv::spanning_forest(&g, 8, cfg);
    assert!(is_spanning_forest(&g, &f.parents));
}

#[test]
fn multiroot_driver_under_oversubscription() {
    use st_core::multiroot::spanning_forest_multiroot;
    // Heavily disconnected input, more threads than cores, repeated:
    // the no-barrier driver with concurrent root claiming and deferred
    // merging must stay correct under every interleaving.
    let g = gen::mesh2d_p(50, 50, 0.55, 13);
    let reference = count_components(&g);
    for seed in 0..6 {
        let cfg = TraversalConfig {
            seed,
            ..TraversalConfig::default()
        };
        let f = spanning_forest_multiroot(&g, 8, cfg);
        assert!(is_spanning_forest(&g, &f.parents), "seed {seed}");
        assert_eq!(f.num_trees(), reference, "seed {seed}");
    }
}

#[test]
fn multiroot_matches_round_driver_everywhere() {
    use st_bench::workloads::Workload;
    use st_core::multiroot::spanning_forest_multiroot;
    for w in Workload::fig4_panels() {
        let g = w.build(1_500, 11);
        let round = BaderCong::with_defaults().spanning_forest(&g, 4);
        let multi = spanning_forest_multiroot(&g, 4, TraversalConfig::default());
        assert!(is_spanning_forest(&g, &multi.parents), "{}", w.id());
        assert_eq!(round.num_trees(), multi.num_trees(), "{}", w.id());
    }
}
