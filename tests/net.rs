//! Integration tests for the TCP front-end: the full protocol over
//! loopback, framing robustness (malformed, truncated, oversized,
//! segmented), remote backpressure, remote cancellation and deadlines,
//! the connection limit, and clean shutdown.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bader_cong_spanning::prelude::*;
use bader_cong_spanning::service::net::{ops, Status, SubmitReply, WireError};
use bader_cong_spanning::service::AlgorithmId;

fn serve(teams: &[usize], queue_capacity: usize) -> (Server, Arc<Service>) {
    serve_with(teams, queue_capacity, ServerConfig::default())
}

fn serve_with(teams: &[usize], queue_capacity: usize, cfg: ServerConfig) -> (Server, Arc<Service>) {
    let svc = Arc::new(
        Service::builder()
            .teams(teams.to_vec())
            .queue_capacity(queue_capacity)
            .result_cache_capacity(8)
            .build(),
    );
    let server = Server::start(Arc::clone(&svc), cfg).expect("bind loopback");
    (server, svc)
}

#[test]
fn ping_echoes() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.ping(b"hello").unwrap(), b"hello");
    assert_eq!(c.ping(b"").unwrap(), b"");
    server.shutdown();
}

#[test]
fn register_submit_wait_roundtrip() {
    let (server, _svc) = serve(&[2, 1], 16);
    let g = gen::torus2d(16, 16);
    let mut c = Client::connect(server.local_addr()).unwrap();

    let remote = c.register(&g).unwrap();
    assert_eq!(remote.version, 1);
    let reply = c.submit(SubmitRequest::new(remote)).unwrap();
    assert!(!reply.cached);
    let forest = c.wait(reply.ticket).unwrap();
    assert_eq!(forest.num_trees(), 1);
    assert!(forest.is_valid_for(&g));
    server.shutdown();
}

#[test]
fn cache_hits_are_visible_remotely() {
    let (server, svc) = serve(&[2], 8);
    let g = gen::torus2d(16, 16);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    let cold = c.submit(SubmitRequest::new(remote).seed(5)).unwrap();
    assert!(!cold.cached);
    let cold_forest = c.wait(cold.ticket).unwrap();

    let hot = c.submit(SubmitRequest::new(remote).seed(5)).unwrap();
    assert!(hot.cached, "second identical submission is a cache hit");
    let hot_forest = c.wait(hot.ticket).unwrap();
    assert_eq!(hot_forest, cold_forest);
    assert_eq!(svc.snapshot().cache_hits, 1);
    server.shutdown();
}

#[test]
fn every_algorithm_runs_remotely() {
    let (server, _svc) = serve(&[2], 8);
    let g = gen::random_gnm(1_000, 3_000, 3);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();
    for algo in [
        AlgorithmId::BaderCong,
        AlgorithmId::Multiroot,
        AlgorithmId::Sv,
        AlgorithmId::Hcs,
    ] {
        let reply = c
            .submit(SubmitRequest::new(remote).algorithm(algo))
            .unwrap();
        let forest = c.wait(reply.ticket).unwrap();
        assert!(forest.is_valid_for(&g), "{algo:?}");
    }
    server.shutdown();
}

#[test]
fn unknown_graph_and_unknown_ticket() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let bogus = SubmitRequest::new(bader_cong_spanning::service::net::RemoteGraph {
        id: 999,
        version: 1,
    });
    let err = c.submit(bogus).unwrap_err();
    assert_eq!(err.status(), Some(Status::UnknownGraph));
    let err = c.wait(123).unwrap_err();
    assert_eq!(err.status(), Some(Status::UnknownTicket));
    let err = c.cancel(77).unwrap_err();
    assert_eq!(err.status(), Some(Status::UnknownTicket));
    server.shutdown();
}

#[test]
fn waiting_twice_consumes_the_ticket() {
    let (server, _svc) = serve(&[1], 4);
    let g = gen::torus2d(8, 8);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();
    let reply = c.submit(SubmitRequest::new(remote)).unwrap();
    c.wait(reply.ticket).unwrap();
    let err = c.wait(reply.ticket).unwrap_err();
    assert_eq!(err.status(), Some(Status::UnknownTicket));
    server.shutdown();
}

#[test]
fn malformed_requests_get_malformed_status() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Unknown opcode.
    let (status, _) = c.raw_call(&[0xEE]).unwrap();
    assert_eq!(status, Status::Malformed);
    // Empty request.
    let (status, _) = c.raw_call(&[]).unwrap();
    assert_eq!(status, Status::Malformed);
    // SUBMIT with a truncated payload.
    let (status, _) = c.raw_call(&[ops::SUBMIT, 1, 2, 3]).unwrap();
    assert_eq!(status, Status::Malformed);
    // SUBMIT with an undefined algorithm code.
    let mut req = vec![ops::SUBMIT];
    req.extend_from_slice(&0u64.to_le_bytes());
    req.push(250); // no such algorithm
    req.push(1);
    req.extend_from_slice(&0u64.to_le_bytes());
    req.extend_from_slice(&0u64.to_le_bytes());
    req.extend_from_slice(&0u32.to_le_bytes());
    let (status, _) = c.raw_call(&req).unwrap();
    assert_eq!(status, Status::Malformed);
    // The connection survives malformed requests.
    assert_eq!(c.ping(b"still here").unwrap(), b"still here");
    server.shutdown();
}

#[test]
fn bad_graph_bytes_are_rejected() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let mut req = vec![ops::REGISTER];
    req.extend_from_slice(b"not a graph at all");
    let (status, msg) = c.raw_call(&req).unwrap();
    assert_eq!(status, Status::BadGraph);
    assert!(!msg.is_empty(), "diagnostic message expected");
    server.shutdown();
}

#[test]
fn register_with_lying_header_is_rejected_not_fatal() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    // A valid STCSRv01 magic with astronomical declared sizes and no
    // payload: must come back as a clean BadGraph, not crash the
    // session (or the server) with an allocation failure.
    let mut req = vec![ops::REGISTER];
    req.extend_from_slice(b"STCSRv01");
    req.extend_from_slice(&3u64.to_le_bytes()); // n
    req.extend_from_slice(&(1u64 << 60).to_le_bytes()); // m
    req.extend_from_slice(&[0u8; 16]); // checksum + reserved
    let (status, msg) = c.raw_call(&req).unwrap();
    assert_eq!(status, Status::BadGraph);
    assert!(!msg.is_empty(), "diagnostic message expected");
    // The same session and fresh connections both still get service.
    assert_eq!(c.ping(b"alive").unwrap(), b"alive");
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c2.ping(b"fresh").unwrap(), b"fresh");
    server.shutdown();
}

#[test]
fn catalog_limit_bounds_remote_registration() {
    let cfg = ServerConfig {
        max_catalog_entries: 2,
        ..ServerConfig::default()
    };
    let (server, svc) = serve_with(&[1], 4, cfg);
    let g = gen::torus2d(4, 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let first = c.register(&g).unwrap();
    c.register(&g).unwrap();
    let err = c.register(&g).unwrap_err();
    assert_eq!(err.status(), Some(Status::CatalogFull), "{err}");
    // Removing an entry frees a slot for the next upload.
    assert!(svc.remove_graph(GraphId(first.id)));
    c.register(&g).unwrap();
    server.shutdown();
}

#[test]
fn oversized_response_poisons_the_client() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr())
        .unwrap()
        .with_max_frame_bytes(8);
    // The echo of a >8-byte payload overflows the client's ceiling;
    // its payload is never consumed, so the stream is unaligned.
    let err = c.ping(b"this echo exceeds eight bytes").unwrap_err();
    assert!(matches!(err, WireError::Protocol(_)), "{err}");
    // Later calls must fail fast instead of parsing garbage.
    let err = c.ping(b"x").unwrap_err();
    assert!(
        matches!(err, WireError::Protocol(_) | WireError::Io(_)),
        "{err}"
    );
    server.shutdown();
}

#[test]
fn oversized_frames_are_rejected_and_close_the_connection() {
    let cfg = ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    };
    let (server, _svc) = serve_with(&[1], 4, cfg);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let big = vec![0u8; 4096];
    let err = {
        let mut req = vec![ops::PING];
        req.extend_from_slice(&big);
        c.raw_call(&req)
    };
    match err {
        Ok((status, _)) => assert_eq!(status, Status::TooLarge),
        // The server may close before the write completes; both are
        // acceptable rejections.
        Err(e) => assert!(matches!(e, WireError::Io(_)), "{e}"),
    }
    server.shutdown();
}

#[test]
fn truncated_frame_then_disconnect_leaves_server_healthy() {
    let (server, _svc) = serve(&[1], 4);
    {
        // Write half a length prefix and vanish.
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(&[0x10, 0x00]).unwrap();
    }
    {
        // Promise 100 bytes, deliver 3, vanish.
        let mut s = TcpStream::connect(server.local_addr()).unwrap();
        s.write_all(&100u32.to_le_bytes()).unwrap();
        s.write_all(&[1, 2, 3]).unwrap();
    }
    // A well-behaved client still gets service.
    let mut c = Client::connect(server.local_addr()).unwrap();
    assert_eq!(c.ping(b"ok").unwrap(), b"ok");
    server.shutdown();
}

#[test]
fn frames_split_across_tcp_segments_reassemble() {
    let (server, _svc) = serve(&[1], 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Hand-feed a PING frame a few bytes at a time with pauses, forcing
    // the server through its partial-read path.
    let payload = [ops::PING, b'x', b'y', b'z'];
    let mut wire = Vec::new();
    wire.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    wire.extend_from_slice(&payload);
    for chunk in wire.chunks(3) {
        c.raw_write(chunk).unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let (status, body) = c.raw_read().unwrap();
    assert_eq!(status, Status::Ok);
    assert_eq!(body, b"xyz");
    server.shutdown();
}

#[test]
fn remote_backpressure_when_the_queue_fills() {
    // One 1-wide team and a tiny queue; jobs are made slow by size.
    let (server, _svc) = serve(&[1], 2);
    let g = gen::random_gnm(200_000, 400_000, 9);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Distinct seeds bypass the cache so every submission queues.
    let mut accepted = Vec::new();
    let mut backpressured = false;
    for seed in 0..32 {
        match c.submit(SubmitRequest::new(remote).seed(seed)) {
            Ok(SubmitReply { ticket, .. }) => accepted.push(ticket),
            Err(e) => {
                assert_eq!(e.status(), Some(Status::Backpressure), "{e}");
                backpressured = true;
                break;
            }
        }
    }
    assert!(
        backpressured,
        "32 slow jobs into a 2-deep queue must backpressure"
    );
    // Accepted work still completes.
    for ticket in accepted {
        c.wait(ticket).unwrap();
    }
    server.shutdown();
}

#[test]
fn remote_tenant_quota_is_a_typed_error() {
    // Quota of one queued job per tenant.
    let svc = Arc::new(
        Service::builder()
            .teams(vec![1])
            .queue_capacity(8)
            .result_cache_capacity(8)
            .tenant_quota(1)
            .build(),
    );
    let server = Server::start(Arc::clone(&svc), ServerConfig::default()).expect("bind loopback");
    let g = gen::random_gnm(100_000, 200_000, 6);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Occupy the only team (anonymous tenant), then queue one job for
    // tenant 7. Tenant 7's second queued job trips the quota; tenant 8
    // is unaffected.
    let busy = c.submit(SubmitRequest::new(remote).seed(1)).unwrap();
    let queued = c
        .submit(SubmitRequest::new(remote).seed(2).tenant(7))
        .unwrap();
    let err = c
        .submit(SubmitRequest::new(remote).seed(3).tenant(7))
        .unwrap_err();
    assert_eq!(err.status(), Some(Status::QuotaExceeded), "{err}");
    assert!(matches!(err, WireError::Remote { .. }), "{err}");
    let other = c
        .submit(SubmitRequest::new(remote).seed(4).tenant(8))
        .unwrap();

    for ticket in [busy.ticket, queued.ticket, other.ticket] {
        c.wait(ticket).unwrap();
    }
    assert_eq!(svc.snapshot().rejected_quota, 1);
    server.shutdown();
}

#[test]
fn remote_unmeetable_deadline_is_a_typed_error() {
    let (server, svc) = serve(&[1], 8);
    let g = gen::random_gnm(100_000, 200_000, 7);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Occupy the only team, then queue a second job: its dequeue feeds
    // the lane's queue-delay estimator with the first job's runtime.
    let busy = c.submit(SubmitRequest::new(remote).seed(1)).unwrap();
    let warm = c.submit(SubmitRequest::new(remote).seed(2)).unwrap();
    c.wait(busy.ticket).unwrap();
    c.wait(warm.ticket).unwrap();

    // A deadline far below the observed queue delay is rejected on
    // arrival with a diagnosis, not accepted and then deadline-tripped.
    let err = c
        .submit(
            SubmitRequest::new(remote)
                .seed(3)
                .deadline(Duration::from_micros(1)),
        )
        .unwrap_err();
    assert_eq!(err.status(), Some(Status::DeadlineUnmeetable), "{err}");
    // A generous deadline sails through the same estimator.
    let ok = c
        .submit(
            SubmitRequest::new(remote)
                .seed(4)
                .deadline(Duration::from_secs(60)),
        )
        .unwrap();
    c.wait(ok.ticket).unwrap();
    assert_eq!(svc.snapshot().rejected_deadline_unmeetable, 1);
    server.shutdown();
}

#[test]
fn remote_cancel_resolves_the_job() {
    let (server, _svc) = serve(&[1], 8);
    let g = gen::random_gnm(100_000, 200_000, 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Occupy the only team, then cancel a queued job before it runs.
    let busy = c.submit(SubmitRequest::new(remote).seed(1)).unwrap();
    let doomed = c.submit(SubmitRequest::new(remote).seed(2)).unwrap();
    c.cancel(doomed.ticket).unwrap();
    let err = c.wait(doomed.ticket).unwrap_err();
    assert_eq!(err.status(), Some(Status::Cancelled));
    c.wait(busy.ticket).unwrap();
    server.shutdown();
}

#[test]
fn remote_deadline_is_observed() {
    let (server, _svc) = serve(&[1], 8);
    let g = gen::random_gnm(100_000, 200_000, 5);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Fill the team with a long job, then submit one whose deadline
    // expires while it queues.
    let long = c.submit(SubmitRequest::new(remote).seed(1)).unwrap();
    let dead = c
        .submit(
            SubmitRequest::new(remote)
                .seed(2)
                .deadline(Duration::from_millis(1)),
        )
        .unwrap();
    let err = c.wait(dead.ticket).unwrap_err();
    assert_eq!(err.status(), Some(Status::DeadlineExceeded));
    c.wait(long.ticket).unwrap();
    server.shutdown();
}

#[test]
fn connection_limit_answers_busy() {
    let cfg = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let (server, _svc) = serve_with(&[1], 4, cfg);
    let mut a = Client::connect(server.local_addr()).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    a.ping(b"a").unwrap();
    b.ping(b"b").unwrap();
    // Third connection: admitted at the TCP level, rejected by the
    // protocol with one Busy frame.
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Give the accept loop a moment to write the rejection.
    std::thread::sleep(Duration::from_millis(100));
    let err = c.ping(b"c").unwrap_err();
    assert_eq!(err.status(), Some(Status::Busy), "{err}");
    // Existing sessions are unaffected.
    a.ping(b"again").unwrap();
    server.shutdown();
}

#[test]
fn metrics_are_scrapeable_remotely() {
    let (server, _svc) = serve(&[2], 8);
    let g = gen::torus2d(16, 16);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();
    let r = c.submit(SubmitRequest::new(remote)).unwrap();
    c.wait(r.ticket).unwrap();

    let page = c.metrics().unwrap();
    assert!(page.contains("# TYPE st_service_jobs_submitted_total counter"));
    assert!(page.contains("st_service_jobs_submitted_total 1"));
    assert!(page.contains("st_service_jobs_finished_total{outcome=\"completed\"} 1"));
    server.shutdown();
}

#[test]
fn concurrent_clients_share_the_catalog() {
    let (server, _svc) = serve(&[2, 1, 1], 32);
    let g = gen::torus2d(32, 32);
    let remote = {
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.register(&g).unwrap()
    };
    let addr = server.local_addr();
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let g = &g;
            s.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for i in 0..4 {
                    let reply = c
                        .submit(SubmitRequest::new(remote).seed(t * 31 + i))
                        .unwrap();
                    let forest = c.wait(reply.ticket).unwrap();
                    assert!(forest.is_valid_for(g));
                }
            });
        }
    });
    server.shutdown();
}

#[test]
fn shutdown_drains_idle_and_active_connections() {
    let (server, svc) = serve(&[2], 8);
    let g = gen::torus2d(16, 16);
    let mut busy = Client::connect(server.local_addr()).unwrap();
    let _idle = Client::connect(server.local_addr()).unwrap();
    let remote = busy.register(&g).unwrap();
    let reply = busy.submit(SubmitRequest::new(remote)).unwrap();
    busy.wait(reply.ticket).unwrap();

    let start = Instant::now();
    server.shutdown();
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "drain must not hang on the idle connection"
    );
    // The service itself survives the front-end going away.
    let handle = svc.submit_spec(JobSpec::new(GraphId(0))).unwrap();
    assert!(handle.handle.wait().is_ok());
}

// ---- batch-dynamic updates and version pinning over the wire ----

#[test]
fn update_bumps_versions_and_keeps_the_forest_current() {
    let (server, svc) = serve(&[2], 8);
    let g = gen::torus2d(16, 16);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // A small insert batch repairs the forest in place.
    let up = c.update(remote.id, &[(0, 255), (3, 200)], &[]).unwrap();
    assert_eq!(up.version, remote.version + 1);
    assert!(up.incremental, "a 2-edge batch must repair in place");
    assert_eq!(up.components, 1);
    assert_eq!(up.edges_added, 2);
    assert_eq!(up.edges_removed, 0);

    // Deleting one of them comes back out, still connected.
    let down = c.update(remote.id, &[], &[(0, 255)]).unwrap();
    assert_eq!(down.version, up.version + 1);
    assert_eq!(down.components, 1);
    assert_eq!(down.edges_removed, 1);

    // A latest-addressed submit runs against the mutated graph.
    let reply = c.submit(SubmitRequest::new(remote).seed(9)).unwrap();
    let forest = c.wait(reply.ticket).unwrap();
    let (latest, newest) = svc.catalog().resolve_latest(GraphId(remote.id)).unwrap();
    assert_eq!(newest.version, down.version);
    assert!(forest.is_valid_for(&latest));
    server.shutdown();
}

#[test]
fn update_rejects_unknown_graphs_and_bad_batches() {
    let (server, _svc) = serve(&[1], 4);
    let g = gen::torus2d(4, 4);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    let err = c.update(999, &[(0, 1)], &[]).unwrap_err();
    assert_eq!(err.status(), Some(Status::UnknownGraph), "{err}");
    // An out-of-range endpoint is a malformed batch, not a crash; the
    // session survives it.
    let err = c.update(remote.id, &[(0, 9_999)], &[]).unwrap_err();
    assert_eq!(err.status(), Some(Status::Malformed), "{err}");
    assert_eq!(c.ping(b"alive").unwrap(), b"alive");
    server.shutdown();
}

#[test]
fn pinned_submissions_and_stale_versions_on_the_wire() {
    let (server, _svc) = serve(&[2], 8);
    let g = gen::torus2d(8, 8);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    // Warm the result cache at v1, then bump the catalog to v2.
    let warm = c.submit(SubmitRequest::new(remote).pinned()).unwrap();
    let at_v1 = c.wait(warm.ticket).unwrap();
    let up = c.update(remote.id, &[(0, 63)], &[]).unwrap();

    // The stale pin is still served — from the exact-version cache.
    let hit = c.submit(SubmitRequest::new(remote).pinned()).unwrap();
    assert!(hit.cached, "stale pin with a cached result must hit");
    assert_eq!(c.wait(hit.ticket).unwrap(), at_v1);

    // A stale pin the cache cannot serve answers StaleVersion, with the
    // live version as the payload (checked on the raw frame).
    let err = c
        .submit(SubmitRequest::new(remote).pinned().seed(77))
        .unwrap_err();
    assert_eq!(err.status(), Some(Status::StaleVersion), "{err}");
    let mut req = vec![ops::SUBMIT];
    req.extend_from_slice(&remote.id.to_le_bytes());
    req.push(AlgorithmId::BaderCong.code());
    req.push(1); // Priority::Normal
    req.extend_from_slice(&78u64.to_le_bytes()); // seed: another cache miss
    req.extend_from_slice(&0u64.to_le_bytes()); // no deadline
    req.extend_from_slice(&0u32.to_le_bytes()); // auto width
    req.extend_from_slice(&0u64.to_le_bytes()); // anonymous tenant
    req.push(1); // pinned…
    req.extend_from_slice(&remote.version.to_le_bytes()); // …to stale v1
    let (status, body) = c.raw_call(&req).unwrap();
    assert_eq!(status, Status::StaleVersion);
    assert_eq!(body, up.version.to_le_bytes(), "payload is the live version");

    // Re-pinning at the live version executes normally.
    let live = bader_cong_spanning::service::net::RemoteGraph {
        id: remote.id,
        version: up.version,
    };
    let fresh = c.submit(SubmitRequest::new(live).pinned()).unwrap();
    assert!(!fresh.cached);
    c.wait(fresh.ticket).unwrap();
    server.shutdown();
}
