//! Integration tests for the catalog-addressed job path: graph
//! registration and versioning, spec submission, the result cache's
//! short-circuit, and the gauges that make its behavior observable.

use std::sync::Arc;
use std::time::Duration;

use bader_cong_spanning::prelude::*;
use bader_cong_spanning::service::Submitted;

fn small_service() -> Service {
    Service::builder()
        .teams([2, 1])
        .queue_capacity(16)
        .result_cache_capacity(8)
        .build()
}

#[test]
fn spec_submission_spans_a_registered_graph() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(16, 16));
    let gref = svc.catalog().register(Arc::clone(&g));

    let Submitted { handle, cached } = svc.submit_spec(JobSpec::new(gref.id)).unwrap();
    assert!(!cached, "first submission must execute");
    let forest = handle.wait().expect("no deadline, no cancel");
    assert_eq!(forest.num_trees(), 1);
    assert!(is_spanning_forest(&g, &forest.parents));
}

#[test]
fn unknown_graph_is_rejected_at_submission() {
    let svc = small_service();
    let err = svc.submit_spec(JobSpec::new(GraphId(404))).unwrap_err();
    assert_eq!(err, JobError::UnknownGraph);
    let s = svc.snapshot();
    assert_eq!(s.submitted, 0, "rejected specs never count as submitted");
}

#[test]
fn repeat_submissions_hit_the_cache() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(16, 16));
    let gref = svc.catalog().register(g);
    let spec = JobSpec::new(gref.id).seed(99);

    let first = svc.submit_spec(spec).unwrap();
    assert!(!first.cached);
    let cold = first.handle.wait().unwrap();

    let second = svc.submit_spec(spec).unwrap();
    assert!(second.cached, "identical spec must be served from cache");
    assert!(
        second.handle.is_finished(),
        "cache hits resolve before the handle is returned"
    );
    let hot = second.handle.wait().unwrap();
    assert_eq!(hot.parents, cold.parents);
    assert_eq!(hot.roots, cold.roots);

    let s = svc.snapshot();
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.submitted, 2, "hits still count as submissions");
    assert_eq!(s.completed, 1, "only the cold run executed");
    assert_eq!(s.completed_cached, 1, "the hit lands in its own series");
    assert_eq!(s.finished(), 2, "finished() spans executed and cached");
}

#[test]
fn distinct_seeds_algorithms_and_widths_cache_separately() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let base = JobSpec::new(gref.id);

    for spec in [
        base,
        base.seed(7),
        base.algorithm(AlgorithmId::Sv),
        base.processors(1),
    ] {
        let sub = svc.submit_spec(spec).unwrap();
        assert!(!sub.cached, "each distinct key must miss: {spec:?}");
        sub.handle.wait().unwrap();
    }
    assert_eq!(svc.snapshot().cache_misses, 4);
    assert_eq!(svc.result_cache_len(), 4);
}

#[test]
fn publishing_a_new_version_makes_old_results_unreachable() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(4, 4)));
    let spec = JobSpec::new(gref.id);

    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    assert!(svc.submit_spec(spec).unwrap().cached);

    // Republish under the same id: next submission resolves to v2 and
    // must execute against the new bytes.
    svc.catalog()
        .publish(gref.id, Arc::new(gen::torus2d(32, 32)))
        .unwrap();
    let after = svc.submit_spec(spec).unwrap();
    assert!(!after.cached, "version bump must invalidate addressing");
    let forest = after.handle.wait().unwrap();
    assert_eq!(forest.parents.len(), 32 * 32, "ran against the new bytes");
}

#[test]
fn removing_a_graph_purges_its_cache_entries() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(4, 4)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    assert_eq!(svc.result_cache_len(), 1);

    assert!(svc.remove_graph(gref.id));
    assert_eq!(svc.result_cache_len(), 0);
    assert_eq!(
        svc.submit_spec(spec).unwrap_err(),
        JobError::UnknownGraph,
        "removed ids no longer resolve"
    );
}

#[test]
fn cached_results_respect_deadlines_trivially() {
    // A cache hit resolves instantly, so even a tiny deadline passes.
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let hit = svc
        .submit_spec(spec.deadline(Duration::from_millis(1)))
        .unwrap();
    assert!(hit.cached);
    assert!(hit.handle.wait().is_ok());
}

#[test]
fn expired_deadline_is_reported_even_when_the_result_is_cached() {
    // A deadline that has already passed at submission must resolve to
    // DeadlineExceeded — the cache must not rewrite it as Completed.
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let dead = svc.submit_spec(spec.deadline(Duration::ZERO)).unwrap();
    assert!(!dead.cached, "an expired submission is not a cache hit");
    assert!(dead.handle.is_finished(), "resolved at the door");
    assert_eq!(dead.handle.wait().unwrap_err(), JobError::DeadlineExceeded);
    let s = svc.snapshot();
    assert_eq!(s.deadline_exceeded, 1);
    assert_eq!(s.submitted, 2, "the dead submission still counts");
}

#[test]
fn every_algorithm_id_produces_a_valid_forest() {
    let svc = small_service();
    let g = Arc::new(gen::random_gnm(2_000, 6_000, 11));
    let gref = svc.catalog().register(Arc::clone(&g));
    for algo in [
        AlgorithmId::BaderCong,
        AlgorithmId::Multiroot,
        AlgorithmId::Sv,
        AlgorithmId::Hcs,
    ] {
        let forest = svc
            .submit_spec(JobSpec::new(gref.id).algorithm(algo))
            .unwrap()
            .handle
            .wait()
            .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        assert!(is_spanning_forest(&g, &forest.parents), "{algo:?}");
    }
}

#[test]
fn in_process_job_builder_still_bypasses_the_catalog() {
    // The pre-catalog API: ad-hoc Arc<CsrGraph> jobs, no cache
    // interaction at all.
    let svc = small_service();
    let g = Arc::new(gen::torus2d(8, 8));
    svc.job(&g).submit().unwrap().wait().unwrap();
    svc.job(&g).submit().unwrap().wait().unwrap();
    let s = svc.snapshot();
    assert_eq!(s.cache_hits + s.cache_misses, 0);
    assert_eq!(svc.result_cache_len(), 0);
}

#[test]
fn prometheus_page_reflects_cache_traffic() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let page = svc.render_metrics();
    assert!(page.contains("st_service_result_cache_hits_total 1"));
    assert!(page.contains("st_service_result_cache_misses_total 1"));
    assert!(page.contains("st_service_jobs_submitted_total 2"));
    assert!(page.contains("# TYPE st_service_lane_queue_depth gauge"));
}
