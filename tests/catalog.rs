//! Integration tests for the catalog-addressed job path: graph
//! registration and versioning, spec submission, the result cache's
//! short-circuit, and the gauges that make its behavior observable.

use std::sync::Arc;
use std::time::Duration;

use bader_cong_spanning::prelude::*;
use bader_cong_spanning::service::Submitted;

fn small_service() -> Service {
    Service::builder()
        .teams([2, 1])
        .queue_capacity(16)
        .result_cache_capacity(8)
        .build()
}

#[test]
fn spec_submission_spans_a_registered_graph() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(16, 16));
    let gref = svc.catalog().register(Arc::clone(&g));

    let Submitted { handle, cached } = svc.submit_spec(JobSpec::new(gref.id)).unwrap();
    assert!(!cached, "first submission must execute");
    let forest = handle.wait().expect("no deadline, no cancel");
    assert_eq!(forest.num_trees(), 1);
    assert!(is_spanning_forest(&g, &forest.parents));
}

#[test]
fn unknown_graph_is_rejected_at_submission() {
    let svc = small_service();
    let err = svc.submit_spec(JobSpec::new(GraphId(404))).unwrap_err();
    assert_eq!(err, JobError::UnknownGraph);
    let s = svc.snapshot();
    assert_eq!(s.submitted, 0, "rejected specs never count as submitted");
}

#[test]
fn repeat_submissions_hit_the_cache() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(16, 16));
    let gref = svc.catalog().register(g);
    let spec = JobSpec::new(gref.id).seed(99);

    let first = svc.submit_spec(spec).unwrap();
    assert!(!first.cached);
    let cold = first.handle.wait().unwrap();

    let second = svc.submit_spec(spec).unwrap();
    assert!(second.cached, "identical spec must be served from cache");
    assert!(
        second.handle.is_finished(),
        "cache hits resolve before the handle is returned"
    );
    let hot = second.handle.wait().unwrap();
    assert_eq!(hot.parents, cold.parents);
    assert_eq!(hot.roots, cold.roots);

    let s = svc.snapshot();
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.cache_misses, 1);
    assert_eq!(s.submitted, 2, "hits still count as submissions");
    assert_eq!(s.completed, 1, "only the cold run executed");
    assert_eq!(s.completed_cached, 1, "the hit lands in its own series");
    assert_eq!(s.finished(), 2, "finished() spans executed and cached");
}

#[test]
fn distinct_seeds_algorithms_and_widths_cache_separately() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let base = JobSpec::new(gref.id);

    for spec in [
        base,
        base.seed(7),
        base.algorithm(AlgorithmId::Sv),
        base.processors(1),
    ] {
        let sub = svc.submit_spec(spec).unwrap();
        assert!(!sub.cached, "each distinct key must miss: {spec:?}");
        sub.handle.wait().unwrap();
    }
    assert_eq!(svc.snapshot().cache_misses, 4);
    assert_eq!(svc.result_cache_len(), 4);
}

#[test]
fn publishing_a_new_version_makes_old_results_unreachable() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(4, 4)));
    let spec = JobSpec::new(gref.id);

    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    assert!(svc.submit_spec(spec).unwrap().cached);

    // Republish under the same id: next submission resolves to v2 and
    // must execute against the new bytes.
    svc.catalog()
        .publish(gref.id, Arc::new(gen::torus2d(32, 32)))
        .unwrap();
    let after = svc.submit_spec(spec).unwrap();
    assert!(!after.cached, "version bump must invalidate addressing");
    let forest = after.handle.wait().unwrap();
    assert_eq!(forest.parents.len(), 32 * 32, "ran against the new bytes");
}

#[test]
fn removing_a_graph_purges_its_cache_entries() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(4, 4)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    assert_eq!(svc.result_cache_len(), 1);

    assert!(svc.remove_graph(gref.id));
    assert_eq!(svc.result_cache_len(), 0);
    assert_eq!(
        svc.submit_spec(spec).unwrap_err(),
        JobError::UnknownGraph,
        "removed ids no longer resolve"
    );
}

#[test]
fn cached_results_respect_deadlines_trivially() {
    // A cache hit resolves instantly, so even a tiny deadline passes.
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let hit = svc
        .submit_spec(spec.deadline(Duration::from_millis(1)))
        .unwrap();
    assert!(hit.cached);
    assert!(hit.handle.wait().is_ok());
}

#[test]
fn expired_deadline_is_reported_even_when_the_result_is_cached() {
    // A deadline that has already passed at submission must resolve to
    // DeadlineExceeded — the cache must not rewrite it as Completed.
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let dead = svc.submit_spec(spec.deadline(Duration::ZERO)).unwrap();
    assert!(!dead.cached, "an expired submission is not a cache hit");
    assert!(dead.handle.is_finished(), "resolved at the door");
    assert_eq!(dead.handle.wait().unwrap_err(), JobError::DeadlineExceeded);
    let s = svc.snapshot();
    assert_eq!(s.deadline_exceeded, 1);
    assert_eq!(s.submitted, 2, "the dead submission still counts");
}

#[test]
fn every_algorithm_id_produces_a_valid_forest() {
    let svc = small_service();
    let g = Arc::new(gen::random_gnm(2_000, 6_000, 11));
    let gref = svc.catalog().register(Arc::clone(&g));
    for algo in [
        AlgorithmId::BaderCong,
        AlgorithmId::Multiroot,
        AlgorithmId::Sv,
        AlgorithmId::Hcs,
    ] {
        let forest = svc
            .submit_spec(JobSpec::new(gref.id).algorithm(algo))
            .unwrap()
            .handle
            .wait()
            .unwrap_or_else(|e| panic!("{algo:?}: {e}"));
        assert!(is_spanning_forest(&g, &forest.parents), "{algo:?}");
    }
}

#[test]
fn in_process_job_builder_still_bypasses_the_catalog() {
    // The pre-catalog API: ad-hoc Arc<CsrGraph> jobs, no cache
    // interaction at all.
    let svc = small_service();
    let g = Arc::new(gen::torus2d(8, 8));
    svc.job(&g).submit().unwrap().wait().unwrap();
    svc.job(&g).submit().unwrap().wait().unwrap();
    let s = svc.snapshot();
    assert_eq!(s.cache_hits + s.cache_misses, 0);
    assert_eq!(svc.result_cache_len(), 0);
}

#[test]
fn prometheus_page_reflects_cache_traffic() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let spec = JobSpec::new(gref.id);
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();
    svc.submit_spec(spec).unwrap().handle.wait().unwrap();

    let page = svc.render_metrics();
    assert!(page.contains("st_service_result_cache_hits_total 1"));
    assert!(page.contains("st_service_result_cache_misses_total 1"));
    assert!(page.contains("st_service_jobs_submitted_total 2"));
    assert!(page.contains("# TYPE st_service_lane_queue_depth gauge"));
}

// ---- batch-dynamic updates: the versioned mutation path ----

use bader_cong_spanning::graph::validate::count_components;
use bader_cong_spanning::service::UpdateError;

/// xorshift64*: deterministic stream for randomized batches.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn vertex(&mut self, n: usize) -> VertexId {
        (self.next() % n as u64) as VertexId
    }
}

#[test]
fn apply_bumps_the_version_and_maintains_the_forest() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(16, 16));
    let gref = svc.catalog().register(Arc::clone(&g));

    let report = svc
        .apply(gref.id, &EdgeBatch::new().insert(0, 255).insert(3, 200))
        .unwrap();
    assert_eq!(report.graph.version, gref.version + 1);
    assert_eq!(report.outcome.edges_added, 2);
    assert_eq!(report.outcome.edges_removed, 0);
    assert!(report.incremental, "a 2-edge batch must repair in place");
    assert_eq!(report.components, 1);

    let (after, newest) = svc.catalog().resolve_latest(gref.id).unwrap();
    assert_eq!(newest.version, report.graph.version);
    assert_eq!(after.num_edges(), g.num_edges() + 2);
    assert_eq!(count_components(&after), 1);
}

#[test]
fn apply_rejects_unknown_graphs_and_bad_batches() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(4, 4)));
    assert!(matches!(
        svc.apply(GraphId(404), &EdgeBatch::new().insert(0, 1)),
        Err(UpdateError::UnknownGraph(GraphId(404)))
    ));
    assert!(matches!(
        svc.apply(gref.id, &EdgeBatch::new().insert(0, 9_999)),
        Err(UpdateError::Batch(_))
    ));
    let (_, same) = svc.catalog().resolve_latest(gref.id).unwrap();
    assert_eq!(same.version, gref.version, "failed applies must not bump");
}

/// The oracle-equivalence suite: randomized insert/delete batch streams
/// maintained incrementally at p ∈ {1, 4, 8}, checked after every batch
/// against a sequential component count over the materialized graph.
#[test]
fn randomized_batch_streams_track_the_oracle_across_widths() {
    for p in [1usize, 4, 8] {
        let svc = Service::builder()
            .teams([p])
            // Never fall back: this test must exercise the incremental
            // maintainer itself at every width.
            .dyn_recompute_fraction(2.0)
            .build();
        let n = 600;
        let g = Arc::new(gen::random_gnm(n, 900, 7 + p as u64));
        let gref = svc.catalog().register(g);
        let mut rng = Rng(0x5eed_0000 + p as u64);
        let mut live: Vec<(VertexId, VertexId)> = Vec::new();
        for round in 0..20 {
            let mut batch = EdgeBatch::new();
            for op in 0..12 {
                if op % 3 == 2 && !live.is_empty() {
                    let i = (rng.next() % live.len() as u64) as usize;
                    let (u, v) = live.swap_remove(i);
                    batch = batch.delete(u, v);
                } else {
                    let (u, v) = (rng.vertex(n), rng.vertex(n));
                    if u != v {
                        live.push((u, v));
                        batch = batch.insert(u, v);
                    }
                }
            }
            let report = svc.apply(gref.id, &batch).unwrap();
            assert!(report.incremental, "p={p} round={round}: fell back");
            let (flat, _) = svc.catalog().resolve_latest(gref.id).unwrap();
            assert_eq!(
                report.components,
                count_components(&flat),
                "p={p} round={round}: maintained components diverged"
            );
        }
        svc.shutdown();
    }
}

#[test]
fn recompute_fraction_zero_forces_the_fallback_path() {
    let svc = Service::builder()
        .teams([2])
        .dyn_recompute_fraction(0.0)
        .build();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    let report = svc
        .apply(gref.id, &EdgeBatch::new().insert(0, 63))
        .unwrap();
    assert!(!report.incremental, "fraction 0 must always recompute");
    assert_eq!(report.components, 1);
    let page = svc.render_metrics();
    assert!(page.contains("st_service_updates_recomputed_total 1"));
    assert!(page.contains("st_service_updates_incremental_total 0"));
}

#[test]
fn pinned_submissions_follow_their_version_not_the_latest() {
    let svc = small_service();
    let g = Arc::new(gen::torus2d(8, 8));
    let gref = svc.catalog().register(g);

    // Warm the cache at v1, then move the catalog to v2.
    let spec_v1 = JobSpec::new(gref);
    svc.submit_spec(spec_v1).unwrap().handle.wait().unwrap();
    svc.apply(gref.id, &EdgeBatch::new().insert(0, 63)).unwrap();

    // The stale pin is still served — from the exact-version cache.
    let hit = svc.submit_spec(spec_v1).unwrap();
    assert!(hit.cached, "stale pin with a cached result must hit");
    hit.handle.wait().unwrap();

    // A stale pin the cache cannot serve reports the live version.
    let uncached = svc.submit_spec(JobSpec::new(gref).seed(1234)).unwrap_err();
    assert_eq!(uncached, JobError::StaleVersion(gref.version + 1));

    // Pinning the live version executes normally.
    let (_, live) = svc.catalog().resolve_latest(gref.id).unwrap();
    let fresh = svc.submit_spec(JobSpec::new(live)).unwrap();
    assert!(!fresh.cached);
    fresh.handle.wait().unwrap();
}

/// Regression: a version bump (or removal) racing an admitted job must
/// never hand the dispatcher a dangling graph — jobs pin their
/// `Arc<CsrGraph>` at admission and finish against it.
#[test]
fn version_churn_never_dangles_in_flight_jobs() {
    let svc = Service::builder().teams([2]).queue_capacity(64).build();
    let n = 32 * 32;
    let gref = svc.catalog().register(Arc::new(gen::torus2d(32, 32)));

    // Queue a wave of latest-addressed jobs with distinct seeds (no
    // cache hits), then immediately churn versions underneath them and
    // finally remove the graph outright.
    let waves: Vec<_> = (0..24)
        .map(|i| {
            svc.submit_spec(JobSpec::new(gref.id).seed(1_000 + i))
                .unwrap()
        })
        .collect();
    for i in 0..6 {
        svc.apply(gref.id, &EdgeBatch::new().insert(i, i + 40)).unwrap();
    }
    assert!(svc.remove_graph(gref.id));
    for sub in waves {
        let forest = sub.handle.wait().expect("admitted jobs must finish");
        assert_eq!(forest.parents.len(), n, "ran against its pinned snapshot");
    }
}

/// Concurrent submitters against a graph whose versions churn under
/// them: every admission must resolve to a forest of the right shape,
/// and the maintained component count must still match the oracle at
/// quiescence.
#[test]
fn concurrent_submissions_survive_version_churn() {
    let svc = Arc::new(
        Service::builder()
            .teams([2, 2])
            .queue_capacity(128)
            .build(),
    );
    let n = 24 * 24;
    let gref = svc.catalog().register(Arc::new(gen::torus2d(24, 24)));

    std::thread::scope(|s| {
        for t in 0..3u64 {
            let svc = Arc::clone(&svc);
            s.spawn(move || {
                for i in 0..30 {
                    let sub = svc
                        .submit_spec(JobSpec::new(gref.id).seed(t * 1_000 + i))
                        .unwrap();
                    let forest = sub.handle.wait().expect("churn must not break jobs");
                    assert_eq!(forest.parents.len(), n);
                }
            });
        }
        let svc = Arc::clone(&svc);
        s.spawn(move || {
            let mut rng = Rng(0xc0ffee);
            for _ in 0..30 {
                let (u, v) = (rng.vertex(n), rng.vertex(n));
                if u != v {
                    svc.apply(gref.id, &EdgeBatch::new().insert(u, v)).unwrap();
                }
            }
        });
    });

    let (flat, _) = svc.catalog().resolve_latest(gref.id).unwrap();
    let report = svc
        .apply(gref.id, &EdgeBatch::new().insert(0, 1))
        .unwrap();
    assert_eq!(report.components, count_components(&flat));
}

#[test]
fn removing_a_graph_drops_its_updater_state() {
    let svc = small_service();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    svc.apply(gref.id, &EdgeBatch::new().insert(0, 63)).unwrap();
    assert!(svc.remove_graph(gref.id));
    assert!(matches!(
        svc.apply(gref.id, &EdgeBatch::new().insert(0, 1)),
        Err(UpdateError::UnknownGraph(_))
    ));
}
