//! Qualitative reproduction of the paper's results in the model
//! executor: who wins, where, and by roughly what factor. These are the
//! machine-checked versions of the claims EXPERIMENTS.md records.

use st_bench::workloads::Workload;
use st_graph::validate::is_spanning_forest;
use st_model::sim::{
    simulate_bader_cong, simulate_sequential_bfs, simulate_sv, TraversalSimConfig,
};
use st_model::MachineProfile;

const SEED: u64 = 42;

fn seconds_seq(w: Workload, n: usize) -> f64 {
    let g = w.build(n, SEED);
    let machine = MachineProfile::e4500();
    let (r, parents) = simulate_sequential_bfs(&g, &machine);
    assert!(is_spanning_forest(&g, &parents));
    r.predicted_seconds()
}

fn seconds_bc(w: Workload, n: usize, p: usize) -> f64 {
    let g = w.build(n, SEED);
    let machine = MachineProfile::e4500();
    let out = simulate_bader_cong(&g, p, TraversalSimConfig::default(), &machine);
    assert!(is_spanning_forest(&g, &out.parents));
    out.report.predicted_seconds()
}

fn seconds_sv(w: Workload, n: usize, p: usize) -> f64 {
    let g = w.build(n, SEED);
    let machine = MachineProfile::e4500();
    simulate_sv(&g, p, &machine).report.predicted_seconds()
}

/// FIG3: "the speedup of the parallel algorithm is between 4.5 and 5.5"
/// at p = 8 on random graphs with m = 1.5 n, across problem sizes.
#[test]
fn fig3_speedup_band() {
    for n in [1usize << 14, 1 << 15, 1 << 16] {
        let speedup = seconds_seq(Workload::RandomM15, n) / seconds_bc(Workload::RandomM15, n, 8);
        assert!(
            (4.0..6.5).contains(&speedup),
            "n = {n}: speedup {speedup:.2} outside the Fig. 3 band"
        );
    }
}

/// FIG3 scale-invariance: the speedup stays roughly flat as n grows
/// ("scales linearly with the problem size").
#[test]
fn fig3_speedup_is_scale_stable() {
    let s14 =
        seconds_seq(Workload::RandomM15, 1 << 14) / seconds_bc(Workload::RandomM15, 1 << 14, 8);
    let s17 =
        seconds_seq(Workload::RandomM15, 1 << 17) / seconds_bc(Workload::RandomM15, 1 << 17, 8);
    assert!(
        (s14 / s17 - 1.0).abs() < 0.35,
        "speedup drifted with scale: {s14:.2} vs {s17:.2}"
    );
}

/// FIG4 (all panels): "For p > 2 processors … our new spanning tree
/// algorithm is always faster than the sequential algorithm" — on every
/// non-pathological panel. The degenerate chains are the documented
/// exception (their panels exist to show exactly that).
#[test]
fn fig4_new_algorithm_beats_sequential_for_p_over_2() {
    let n = 1 << 15;
    for w in Workload::fig4_panels() {
        if matches!(w, Workload::ChainSeq | Workload::ChainRandom) {
            continue;
        }
        let seq = seconds_seq(w, n);
        for p in [4usize, 8] {
            let bc = seconds_bc(w, n, p);
            assert!(
                bc < seq,
                "{} p={p}: new algorithm {bc:.4}s not faster than sequential {seq:.4}s",
                w.id()
            );
        }
    }
}

/// FIG4: "the SV approach runs faster as we employ more processors."
#[test]
fn fig4_sv_scales_with_p() {
    let n = 1 << 14;
    for w in [
        Workload::TorusRowMajor,
        Workload::RandomNLogN,
        Workload::Ad3,
    ] {
        let t2 = seconds_sv(w, n, 2);
        let t8 = seconds_sv(w, n, 8);
        assert!(t8 < t2, "{}: SV did not scale ({t2:.4} -> {t8:.4})", w.id());
    }
}

/// FIG4: "in many cases, the SV parallel approach is slower than the
/// best sequential algorithm" — check the irregular panels at p = 2.
#[test]
fn fig4_sv_often_loses_to_sequential() {
    let n = 1 << 14;
    let mut losses = 0;
    let panels = [
        Workload::TorusRandom,
        Workload::RandomNLogN,
        Workload::Ad3,
        Workload::GeoFlat,
        Workload::Mesh2D60,
    ];
    for w in panels {
        if seconds_sv(w, n, 2) > seconds_seq(w, n) {
            losses += 1;
        }
    }
    assert!(
        losses >= 3,
        "expected SV at p=2 to lose to sequential on most panels, lost on {losses}/5"
    );
}

/// FIG4 bottom row: on the degenerate chain the new algorithm gains
/// nothing from extra processors (its makespan stays within noise of
/// p = 1), reproducing the panels that motivate the fallback.
#[test]
fn fig4_chain_panels_show_no_traversal_speedup() {
    let n = 1 << 15;
    for w in [Workload::ChainSeq, Workload::ChainRandom] {
        let t1 = seconds_bc(w, n, 1);
        let t8 = seconds_bc(w, n, 8);
        assert!(
            t8 > 0.6 * t1,
            "{}: chain unexpectedly parallelized ({t1:.4} -> {t8:.4})",
            w.id()
        );
    }
}

/// FIG4 torus pair: "the initial labeling of vertices greatly affects
/// the performance of the SV algorithm, but the labeling has little
/// impact on our algorithm."
#[test]
fn fig4_labeling_affects_sv_not_bader_cong() {
    let n = 1 << 14;
    let sv_row = seconds_sv(Workload::TorusRowMajor, n, 8);
    let sv_rand = seconds_sv(Workload::TorusRandom, n, 8);
    assert!(
        sv_rand > 1.5 * sv_row,
        "SV should suffer from random labels: {sv_row:.4} vs {sv_rand:.4}"
    );
    let bc_row = seconds_bc(Workload::TorusRowMajor, n, 8);
    let bc_rand = seconds_bc(Workload::TorusRandom, n, 8);
    let ratio = bc_rand / bc_row;
    assert!(
        (0.5..1.6).contains(&ratio),
        "labeling should barely affect the new algorithm: {bc_row:.4} vs {bc_rand:.4}"
    );
}

/// The §3 asymptotic comparison: SV does ~log n more work; measured
/// T_M confirms a large gap at p = 8.
#[test]
fn section3_workload_gap() {
    let n = 1 << 14;
    let g = Workload::RandomM15.build(n, SEED);
    let machine = MachineProfile::e4500();
    let bc = simulate_bader_cong(&g, 8, TraversalSimConfig::default(), &machine);
    let sv = simulate_sv(&g, 8, &machine);
    assert!(
        sv.report.t_m() > 3 * bc.report.t_m(),
        "SV T_M {} should far exceed the new algorithm's {}",
        sv.report.t_m(),
        bc.report.t_m()
    );
    assert!(sv.report.barriers > bc.report.barriers * 4);
}
