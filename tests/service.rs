//! Integration tests for the multi-tenant job service (`st-service`):
//! concurrent tenants, backpressure, deadlines, cancellation, priority
//! ordering, panic isolation, and shutdown semantics.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bader_cong_spanning::prelude::*;
use bader_cong_spanning::smp::Executor;

/// Spin-waits (with yields) until `cond` holds, failing after 5s.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Occupies its team until `release` flips, then runs Bader–Cong.
/// `started` flips once a dispatcher has actually picked the job up.
struct Gate {
    inner: BaderCong,
    started: Arc<AtomicBool>,
    release: Arc<AtomicBool>,
}

impl Gate {
    fn new() -> (Self, Arc<AtomicBool>, Arc<AtomicBool>) {
        let started = Arc::new(AtomicBool::new(false));
        let release = Arc::new(AtomicBool::new(false));
        let gate = Gate {
            inner: BaderCong::with_defaults(),
            started: Arc::clone(&started),
            release: Arc::clone(&release),
        };
        (gate, started, release)
    }
}

impl SpanningAlgorithm for Gate {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        self.started.store(true, Ordering::Release);
        while !self.release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.run(g, exec, ws)
    }
}

/// Delegates to Bader–Cong's cancellable path, flipping `started` first
/// so a test can cancel a job it knows is mid-traversal.
struct Notify {
    inner: BaderCong,
    started: Arc<AtomicBool>,
}

impl SpanningAlgorithm for Notify {
    fn name(&self) -> &'static str {
        "notify"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        self.started.store(true, Ordering::Release);
        self.inner.run(g, exec, ws)
    }

    fn run_with_cancel(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        self.started.store(true, Ordering::Release);
        self.inner.run_with_cancel(g, exec, ws, cancel)
    }
}

/// A tenant bug: panics as soon as it gets a team.
struct Boom;

impl SpanningAlgorithm for Boom {
    fn name(&self) -> &'static str {
        "boom"
    }

    fn run(&self, _g: &CsrGraph, _exec: &Executor, _ws: &mut Workspace) -> SpanningForest {
        panic!("tenant bug: boom");
    }
}

/// Appends its tag to a shared log before running, so dispatch order is
/// observable.
struct Tagged {
    tag: &'static str,
    log: Arc<Mutex<Vec<&'static str>>>,
    inner: BaderCong,
}

impl SpanningAlgorithm for Tagged {
    fn name(&self) -> &'static str {
        self.tag
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        self.log.lock().unwrap().push(self.tag);
        self.inner.run(g, exec, ws)
    }
}

#[test]
fn many_tenants_all_get_valid_forests() {
    const TENANTS: usize = 4;
    const JOBS_PER_TENANT: usize = 5;
    let svc = Service::builder()
        .teams([2, 1, 1])
        .queue_capacity(16)
        .build();
    let graphs = [
        Arc::new(gen::torus2d(40, 40)),
        Arc::new(gen::random_gnm(2_000, 3_000, 7)),
    ];
    std::thread::scope(|s| {
        for t in 0..TENANTS {
            let svc = &svc;
            let graphs = &graphs;
            s.spawn(move || {
                for j in 0..JOBS_PER_TENANT {
                    let g = &graphs[(t + j) % graphs.len()];
                    let handle = svc.job(g).submit().expect("service is open");
                    let forest = handle.wait().expect("no deadline, no cancel");
                    assert!(
                        is_spanning_forest(g, &forest.parents),
                        "tenant {t} job {j} got an invalid forest"
                    );
                }
            });
        }
    });
    let snap = svc.shutdown();
    let total = (TENANTS * JOBS_PER_TENANT) as u64;
    assert_eq!(snap.submitted, total);
    assert_eq!(snap.completed, total);
    assert_eq!(snap.queue_depth, 0);
    assert_eq!(snap.busy_teams, 0);
    assert!(snap.exec_ns_total > 0);
}

#[test]
fn full_queue_try_submit_reports_backpressure() {
    let svc = Service::builder().teams([1]).queue_capacity(1).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // The team is busy and the queue holds one job: admission is full.
    let queued = svc.job(&g).submit().expect("one slot free");
    let rejected = svc.job(&g).try_submit();
    assert!(matches!(rejected, Err(JobError::Backpressure)));
    assert_eq!(svc.snapshot().rejected, 1);

    release.store(true, Ordering::Release);
    assert!(gated.wait().is_ok());
    assert!(queued.wait().is_ok());
}

#[test]
fn deadline_in_queue_reports_deadline_exceeded() {
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // This job's deadline expires while the gate holds the only team.
    let doomed = svc
        .job(&g)
        .deadline(Duration::from_millis(10))
        .submit()
        .expect("queue has room");
    std::thread::sleep(Duration::from_millis(30));
    release.store(true, Ordering::Release);

    assert!(matches!(doomed.wait(), Err(JobError::DeadlineExceeded)));
    assert!(gated.wait().is_ok());
    assert_eq!(svc.snapshot().deadline_exceeded, 1);
}

#[test]
fn queued_job_can_be_cancelled_before_running() {
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    let victim = svc.job(&g).submit().expect("queue has room");
    victim.cancel();
    release.store(true, Ordering::Release);

    assert!(matches!(victim.wait(), Err(JobError::Cancelled)));
    assert!(gated.wait().is_ok());
    assert_eq!(svc.snapshot().cancelled, 1);
}

#[test]
fn cancellation_mid_traversal_leaves_pool_reusable() {
    let svc = Service::builder().teams([2]).queue_capacity(4).build();
    let big = Arc::new(gen::torus2d(150, 150));
    let started = Arc::new(AtomicBool::new(false));
    let notify = Notify {
        inner: BaderCong::with_defaults(),
        started: Arc::clone(&started),
    };
    let handle = svc.job(&big).algorithm(notify).submit().expect("open");
    wait_until("job to start traversing", || {
        started.load(Ordering::Acquire)
    });
    handle.cancel();
    // The cancel races the traversal: either it lost and the forest is
    // complete (and valid), or it won and the job reports Cancelled.
    match handle.wait() {
        Ok(forest) => assert!(is_spanning_forest(&big, &forest.parents)),
        Err(e) => assert!(matches!(e, JobError::Cancelled)),
    }

    // Either way, the team went back to the pool in working order.
    let again = svc.job(&big).submit().expect("open");
    let forest = again.wait().expect("no cancel on the second job");
    assert!(is_spanning_forest(&big, &forest.parents));
}

#[test]
fn panicked_job_is_isolated_from_other_tenants() {
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(16, 16));

    let bad = svc.job(&g).algorithm(Boom).submit().expect("open");
    let good = svc.job(&g).submit().expect("open");

    match bad.wait() {
        Err(JobError::Panicked(msg)) => assert!(msg.contains("boom"), "message was {msg:?}"),
        other => panic!("expected Panicked, got {other:?}"),
    }
    let forest = good.wait().expect("the pool must survive a tenant panic");
    assert!(is_spanning_forest(&g, &forest.parents));

    let snap = svc.snapshot();
    assert_eq!(snap.panicked, 1);
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.busy_teams, 0, "the panicked team must be returned");
}

#[test]
fn queued_jobs_dispatch_in_priority_order() {
    let svc = Service::builder().teams([1]).queue_capacity(8).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // Queue in "wrong" order while the single team is held.
    let tag = |tag| Tagged {
        tag,
        log: Arc::clone(&log),
        inner: BaderCong::with_defaults(),
    };
    let low = svc
        .job(&g)
        .algorithm(tag("low"))
        .priority(Priority::Low)
        .submit()
        .expect("open");
    let normal = svc.job(&g).algorithm(tag("normal")).submit().expect("open");
    let high = svc
        .job(&g)
        .algorithm(tag("high"))
        .priority(Priority::High)
        .submit()
        .expect("open");

    release.store(true, Ordering::Release);
    for h in [gated, high, normal, low] {
        assert!(h.wait().is_ok());
    }
    assert_eq!(*log.lock().unwrap(), ["high", "normal", "low"]);
}

#[test]
fn shutdown_drains_queued_jobs_without_running_them() {
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });
    let q1 = svc.job(&g).submit().expect("open");
    let q2 = svc.job(&g).submit().expect("open");

    // Let the running job finish shortly after shutdown starts; the
    // queued ones must resolve as ShuttingDown, not run.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::Release);
    });
    let snap = svc.shutdown();
    releaser.join().unwrap();

    assert!(gated.wait().is_ok(), "the in-flight job runs to completion");
    assert!(matches!(q1.wait(), Err(JobError::ShuttingDown)));
    assert!(matches!(q2.wait(), Err(JobError::ShuttingDown)));
    assert_eq!(snap.completed, 1);
    assert_eq!(snap.cancelled, 2, "drained jobs land in the cancelled lane");
}

#[test]
fn blocking_submit_waits_for_space_instead_of_failing() {
    let svc = Service::builder().teams([1]).queue_capacity(1).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });
    let queued = svc.job(&g).submit().expect("one slot free");

    // The queue is now full. A blocking submit parks instead of
    // reporting Backpressure, and is admitted once the gate lifts.
    let blocked_submitted = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let svc = &svc;
        let g = &g;
        let flag = Arc::clone(&blocked_submitted);
        let submitter = s.spawn(move || {
            let handle = svc.job(g).submit().expect("unblocked by dequeue");
            flag.store(true, Ordering::Release);
            handle.wait()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            !blocked_submitted.load(Ordering::Acquire),
            "submit must block while the queue is full"
        );
        release.store(true, Ordering::Release);
        assert!(submitter.join().unwrap().is_ok());
    });
    assert!(gated.wait().is_ok());
    assert!(queued.wait().is_ok());
    let snap = svc.snapshot();
    assert_eq!(snap.rejected, 0, "blocking submits are never rejected");
    assert_eq!(snap.completed, 3);
}

/// Sleeps a few milliseconds before spanning, so a stream of these
/// keeps the admission queue backed up long enough for the elastic
/// controller to observe sustained backlog.
struct Slow {
    ms: u64,
    inner: BaderCong,
}

impl SpanningAlgorithm for Slow {
    fn name(&self) -> &'static str {
        "slow"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        std::thread::sleep(Duration::from_millis(self.ms));
        self.inner.run(g, exec, ws)
    }
}

#[test]
fn cancelled_queued_job_releases_its_lane_slot_eagerly() {
    let svc = Service::builder().teams([1]).queue_capacity(1).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // The queue's only slot is taken; admission is full.
    let parked = svc.job(&g).submit().expect("one slot free");
    assert!(matches!(
        svc.job(&g).try_submit(),
        Err(JobError::Backpressure)
    ));

    // Cancel while queued: the slot must free *synchronously*, with the
    // team still gated — regression for the bug where the dead job held
    // its bounded slot until a dispatcher happened to drain it.
    parked.cancel();
    assert!(matches!(parked.wait(), Err(JobError::Cancelled)));
    let replacement = svc
        .job(&g)
        .try_submit()
        .expect("the cancelled job's slot must free eagerly, not at dequeue");

    release.store(true, Ordering::Release);
    assert!(gated.wait().is_ok());
    assert!(replacement.wait().is_ok());
    let snap = svc.shutdown();
    assert_eq!(snap.cancelled, 1);
    assert_eq!(snap.completed, 2);
    assert_eq!(snap.rejected, 1);
    assert_eq!(
        snap.queue_depth, 0,
        "the swept job must leave the depth gauge"
    );
}

#[test]
fn shutdown_drain_classifies_tripped_deadline_from_the_token() {
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("queue empty");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    let doomed = svc
        .job(&g)
        .deadline(Duration::from_millis(10))
        .submit()
        .expect("queue has room");
    // The deadline trips while the job is queued and the team is held.
    std::thread::sleep(Duration::from_millis(30));

    // Shut down while the dead job is still queued: the drain must
    // diagnose the tripped deadline, not report a generic shutdown
    // cancellation — regression for the drain path hardcoding
    // `Cancelled`/"shutting_down" regardless of the token's reason.
    let releaser = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(20));
        release.store(true, Ordering::Release);
    });
    let snap = svc.shutdown();
    releaser.join().unwrap();

    assert!(gated.wait().is_ok());
    assert!(matches!(doomed.wait(), Err(JobError::DeadlineExceeded)));
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.cancelled, 0, "a deadline miss is not a cancellation");
}

#[test]
fn tenant_quota_caps_queued_jobs_and_frees_on_cancel() {
    let svc = Service::builder()
        .teams([1])
        .queue_capacity(8)
        .tenant_quota(2)
        .build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc
        .job(&g)
        .algorithm(gate)
        .tenant(7)
        .submit()
        .expect("open");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // The gated job is *running*, so tenant 7's queued-job count is 0.
    let a = svc.job(&g).tenant(7).submit().expect("within quota");
    let b = svc.job(&g).tenant(7).submit().expect("within quota");
    // Over quota: rejected without blocking, even on the blocking path —
    // waiting for global space would never clear the tenant's own cap.
    assert!(matches!(
        svc.job(&g).tenant(7).submit(),
        Err(JobError::QuotaExceeded)
    ));
    // Another tenant still has the whole queue available.
    let c = svc.job(&g).tenant(8).submit().expect("different tenant");

    // The eager cancel sweep releases the quota charge too.
    a.cancel();
    assert!(matches!(a.wait(), Err(JobError::Cancelled)));
    let d = svc.job(&g).tenant(7).submit().expect("cancel freed quota");

    release.store(true, Ordering::Release);
    for h in [gated, b, c, d] {
        assert!(h.wait().is_ok());
    }
    let snap = svc.shutdown();
    assert_eq!(snap.rejected_quota, 1);
    assert_eq!(snap.rejected, 1);
    assert_eq!(snap.cancelled, 1);
}

#[test]
fn deadline_shorter_than_estimated_queue_delay_is_rejected() {
    let svc = Service::builder().teams([1]).queue_capacity(8).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("open");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    // Warm the normal lane's estimator with a genuinely delayed job:
    // its ~60 ms queue wait feeds the EWMA at dequeue.
    let delayed = svc.job(&g).submit().expect("open");
    std::thread::sleep(Duration::from_millis(60));
    release.store(true, Ordering::Release);
    assert!(gated.wait().is_ok());
    assert!(delayed.wait().is_ok());

    // One EWMA step of a 60 ms sample leaves an estimate of at least
    // ~7 ms, so a 1 ms deadline is rejected at the door...
    assert!(matches!(
        svc.job(&g).deadline(Duration::from_millis(1)).submit(),
        Err(JobError::DeadlineUnmeetable)
    ));
    // ...while a roomy deadline is still admitted and runs.
    let ok = svc
        .job(&g)
        .deadline(Duration::from_secs(30))
        .submit()
        .expect("the estimator must not reject meetable deadlines");
    assert!(ok.wait().is_ok());

    let snap = svc.shutdown();
    assert_eq!(snap.rejected_deadline_unmeetable, 1);
    assert_eq!(snap.rejected, 1);
}

#[test]
fn saturated_high_lane_cannot_starve_the_bulk_lane() {
    // Default weights [4, 2, 1]: one rotation grants the high lane 4
    // dispatches and the (empty) normal lane's turn passes to low.
    let svc = Service::builder().teams([1]).queue_capacity(16).build();
    let g = Arc::new(gen::torus2d(8, 8));
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    let (gate, started, release) = Gate::new();
    let gated = svc.job(&g).algorithm(gate).submit().expect("open");
    wait_until("gate job to occupy the team", || {
        started.load(Ordering::Acquire)
    });

    let tag = |tag| Tagged {
        tag,
        log: Arc::clone(&log),
        inner: BaderCong::with_defaults(),
    };
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(
            svc.job(&g)
                .algorithm(tag("high"))
                .priority(Priority::High)
                .submit()
                .expect("open"),
        );
    }
    for _ in 0..2 {
        handles.push(
            svc.job(&g)
                .algorithm(tag("low"))
                .priority(Priority::Low)
                .submit()
                .expect("open"),
        );
    }
    release.store(true, Ordering::Release);
    assert!(gated.wait().is_ok());
    for h in handles {
        assert!(h.wait().is_ok());
    }

    // Strict priority would run all 8 high jobs before any low one;
    // DRR must interleave a low dispatch after every 4 high credits.
    let order = log.lock().unwrap().clone();
    assert_eq!(
        order,
        [
            "high", "high", "high", "high", "low", //
            "high", "high", "high", "high", "low",
        ],
        "bulk-lane jobs must be interleaved at the weight ratio"
    );
    let snap = svc.shutdown();
    assert_eq!(snap.dequeued_high, 8);
    assert_eq!(snap.dequeued_low, 2);
}

#[test]
fn elastic_pool_grows_under_backlog_and_shrinks_when_idle() {
    // Width trajectory under load: 1 → 2 → 4 → 8 (doubling per grow
    // decision), then back down 8 → 4 → 2 → 1 across idle windows —
    // covering p ∈ {1, 4, 8} in both directions.
    let svc = Service::builder()
        .teams([1])
        .queue_capacity(64)
        .elastic(true)
        .elastic_backlog(2)
        .elastic_idle_ms(40)
        .elastic_max_width(8)
        .build();
    assert_eq!(svc.team_sizes(), vec![1]);
    let g = Arc::new(gen::torus2d(8, 8));
    let handles: Vec<_> = (0..60)
        .map(|_| {
            svc.job(&g)
                .algorithm(Slow {
                    ms: 5,
                    inner: BaderCong::with_defaults(),
                })
                .submit()
                .expect("open")
        })
        .collect();
    wait_until("sustained backlog to grow the team to max width", || {
        svc.team_sizes()[0] == 8
    });
    for h in handles {
        assert!(h.wait().is_ok());
    }
    wait_until("sustained idleness to shrink the team back down", || {
        svc.team_sizes()[0] == 1
    });
    let snap = svc.shutdown();
    assert!(
        snap.teams_grown >= 3,
        "1→8 needs at least three grow steps, saw {}",
        snap.teams_grown
    );
    assert!(
        snap.teams_shrunk >= 3,
        "8→1 needs at least three shrink steps, saw {}",
        snap.teams_shrunk
    );
    assert_eq!(snap.completed, 60);
}
