// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Metrics-consistency suite: the observability layer's counters must
//! obey their documented invariants across processor counts, every
//! engine job must return a populated `JobMetrics`, and the exporters
//! must emit parseable JSON. Runs identically with and without the
//! `obs-trace` feature (span assertions are gated on
//! `TraceSet::enabled()`).

use bader_cong_spanning::core::hcs::Hcs;
use bader_cong_spanning::core::traversal::TraversalOutcome;
use bader_cong_spanning::obs::TraceSet;
use bader_cong_spanning::prelude::*;
use bader_cong_spanning::smp::Executor;

/// One single-round work-stealing traversal over connected `g`, seeded
/// at vertex 0, returning the job's metrics.
fn traversal_metrics(g: &CsrGraph, p: usize) -> JobMetrics {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    ws.begin_job(&exec);
    {
        let t = ws.traversal(g, &exec, TraversalConfig::default());
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        exec.run(|ctx| {
            let (_, outcome) = t.run_worker(ctx.rank());
            assert_eq!(outcome, TraversalOutcome::Completed);
        });
    }
    ws.finish_job(&exec)
}

#[test]
fn steal_traffic_invariants_across_processor_counts() {
    let g = gen::random_connected(4_000, 6_000, 17);
    let n = g.num_vertices() as u64;
    for p in [1usize, 4, 8] {
        let m = traversal_metrics(&g, p);
        assert_eq!(m.p, p);
        assert_eq!(m.per_rank.len(), p);

        // Stolen items must have been published first.
        assert!(
            m.get(Counter::StolenItems) <= m.get(Counter::ItemsPublished),
            "p = {p}: stolen {} > published {}",
            m.get(Counter::StolenItems),
            m.get(Counter::ItemsPublished)
        );
        // Every sweep either succeeds or is a failed sweep.
        assert_eq!(
            m.get(Counter::StealAttempts),
            m.get(Counter::Steals) + m.get(Counter::FailedSweeps),
            "p = {p}"
        );
        // Each non-seed vertex is claimed by exactly one processor.
        let discovered: u64 = m.per_rank.iter().map(|s| s.get(Counter::Discovered)).sum();
        assert_eq!(discovered, n - 1, "p = {p}");
        // Every kept-local item is one private-buffer pop, and every
        // pop is processed.
        assert!(
            m.get(Counter::ItemsKeptLocal) <= m.get(Counter::Processed),
            "p = {p}"
        );
        // The merged totals are exactly the per-rank sums.
        let mut folded = bader_cong_spanning::obs::CounterSnapshot::default();
        for s in &m.per_rank {
            folded.merge(s);
        }
        // Detector stats are folded into rank 0 after the per-rank
        // snapshots are taken, so compare the non-detector lanes.
        for c in Counter::ALL {
            if matches!(
                c,
                Counter::DetectorSleeps | Counter::DetectorWakes | Counter::StarvationTrips
            ) {
                continue;
            }
            assert_eq!(m.totals.get(c), folded.get(c), "p = {p}, lane {}", c.name());
        }

        if p == 1 {
            assert_eq!(m.get(Counter::Steals), 0, "p = 1 has no one to steal from");
            assert_eq!(m.get(Counter::StolenItems), 0);
        }
        // A quiescent team has woken every sleeper it put to sleep.
        assert_eq!(
            m.get(Counter::DetectorSleeps),
            m.get(Counter::DetectorWakes),
            "p = {p}"
        );
    }
}

#[test]
fn counters_are_zero_after_begin_job() {
    let g = gen::torus2d(30, 30);
    let exec = Executor::new(4);
    let mut ws = Workspace::new();
    ws.begin_job(&exec);
    {
        let t = ws.traversal(&g, &exec, TraversalConfig::default());
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        exec.run(|ctx| {
            t.run_worker(ctx.rank());
        });
    }
    let m = ws.finish_job(&exec);
    assert!(m.get(Counter::Processed) > 0, "the job did real work");

    // Opening the next window must start from zero.
    ws.begin_job(&exec);
    let fresh = ws.finish_job(&exec);
    assert!(
        fresh.totals.is_zero(),
        "counters leaked across begin_job: {:?}",
        fresh.totals
    );
    assert!(fresh.spans.is_empty());
    assert_eq!(fresh.spans_dropped, 0);
}

#[test]
fn every_engine_job_returns_populated_metrics() {
    let g = gen::random_connected(2_000, 3_000, 5);
    let p = 4;
    let mut engine = Engine::new(p);

    let forests = [
        engine.run(&BaderCong::with_defaults(), &g),
        engine.run(&sv::Sv::new(SvConfig::default()), &g),
        engine.run(&Hcs, &g),
        engine.run(&Multiroot::with_defaults(), &g),
    ];
    for (i, f) in forests.iter().enumerate() {
        let m = &f.stats.metrics;
        assert_eq!(m.p, p, "algorithm #{i}");
        assert_eq!(m.per_rank.len(), p, "algorithm #{i}");
        assert!(m.wall_ns > 0, "algorithm #{i}");
        assert!(!m.totals.is_zero(), "algorithm #{i} reported no activity");
    }

    // Convenience views agree with the full report.
    let bc = &forests[0];
    assert_eq!(
        bc.stats.steals,
        bc.stats.metrics.get(Counter::Steals) as usize
    );
    assert_eq!(
        bc.stats.multi_colored,
        bc.stats.metrics.get(Counter::MultiColored) as usize
    );
    let sv_f = &forests[1];
    assert_eq!(
        sv_f.stats.grafts,
        sv_f.stats.metrics.get(Counter::Grafts) as usize
    );
    assert_eq!(
        sv_f.stats.shortcut_rounds,
        sv_f.stats.metrics.get(Counter::ShortcutRounds) as usize
    );
    assert!(sv_f.stats.metrics.get(Counter::Barriers) > 0);
    // The round driver seeds stub vertices before each traversal round.
    assert!(bc.stats.metrics.get(Counter::StubWalks) > 0);
    assert!(bc.stats.metrics.get(Counter::StubVertices) > 0);
}

#[test]
fn spans_are_recorded_exactly_when_the_feature_is_on() {
    let g = gen::random_connected(2_000, 3_000, 9);
    let mut engine = Engine::new(2);
    let f = engine.run(&BaderCong::with_defaults(), &g);
    let m = &f.stats.metrics;
    if TraceSet::enabled() {
        assert!(!m.spans.is_empty(), "obs-trace build must record spans");
        let totals = m.phase_totals();
        assert!(
            totals.iter().any(|t| t.phase == Phase::Traverse),
            "missing traverse phase: {totals:?}"
        );
        // Spans drain oldest-first, sorted by start time.
        for w in m.spans.windows(2) {
            assert!(w[0].start_ns <= w[1].start_ns);
        }
    } else {
        assert!(m.spans.is_empty(), "cfg-off build must compile spans out");
        assert_eq!(m.spans_dropped, 0);
    }
}

#[test]
fn json_and_chrome_exports_parse() {
    let g = gen::torus2d(24, 24);
    let m = traversal_metrics(&g, 2);

    let report = m.to_json_pretty();
    let v = serde_json::parse_value(&report).expect("JobMetrics JSON must parse");
    match &v {
        serde_json::Value::Object(fields) => {
            assert!(fields.contains_key("totals"));
            assert!(fields.contains_key("per_rank"));
            assert_eq!(fields.get("p"), Some(&serde_json::Value::Number(2.0)));
        }
        other => panic!("expected object, got {other:?}"),
    }

    let trace = m.to_chrome_trace();
    let v = serde_json::parse_value(&trace).expect("chrome trace must parse");
    match v {
        serde_json::Value::Array(events) => {
            // Process metadata + one thread name per rank + totals
            // instant, plus one "X" event per span.
            assert_eq!(events.len(), 1 + 2 + m.spans.len() + 1);
        }
        other => panic!("expected array, got {other:?}"),
    }
}

/// The invariant behind the deterministic steal sweep (see
/// `steal_sweep` in st-core): `steal_into` must use the exact
/// under-lock length, never the lagging `approx_len` mirror, so a rank
/// can't be sent into `idle_wait` while stealable work is published.
/// Here the mirror is artificially desynced to "empty" — the steal must
/// still succeed, and afterwards the mirror must be re-published
/// exactly.
#[test]
fn steal_into_uses_exact_length_not_stale_mirror() {
    use bader_cong_spanning::smp::{StealPolicy, WorkQueue};
    let q: WorkQueue<u32> = WorkQueue::new();
    q.push_all([1, 2, 3, 4]);
    q.desync_mirror_for_test(0);
    assert!(q.appears_empty(), "mirror must look empty for this test");
    let mut out = std::collections::VecDeque::new();
    let got = q.steal_into(&mut out, StealPolicy::Half);
    assert_eq!(got, 2, "steal must trust the exact length, not the mirror");
    assert_eq!(q.len(), 2);
    assert_eq!(
        q.approx_len(),
        q.len(),
        "steal_into must re-publish the mirror it found stale"
    );
}

#[test]
fn multiroot_metrics_obey_the_same_invariants() {
    let g = gen::mesh2d_p(40, 40, 0.6, 3);
    let f = spanning_forest_multiroot(&g, 4, TraversalConfig::default());
    let m = &f.stats.metrics;
    assert!(m.get(Counter::StolenItems) <= m.get(Counter::ItemsPublished));
    assert_eq!(
        m.get(Counter::StealAttempts),
        m.get(Counter::Steals) + m.get(Counter::FailedSweeps)
    );
    assert_eq!(
        m.get(Counter::DetectorSleeps),
        m.get(Counter::DetectorWakes)
    );
    assert_eq!(m.get(Counter::Barriers), 0, "multiroot uses no barriers");
}
