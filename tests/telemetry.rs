//! End-to-end telemetry tests: trace-id propagation from the wire to
//! the journal, the Prometheus exposition (grammar + histogram
//! invariants + count reconciliation), and the HTTP observability
//! plane multiplexed onto the job protocol's listener.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use bader_cong_spanning::prelude::*;

fn serve(teams: &[usize]) -> (Server, Arc<Service>) {
    let svc = Arc::new(
        Service::builder()
            .teams(teams.to_vec())
            .queue_capacity(16)
            .result_cache_capacity(8)
            .build(),
    );
    let server = Server::start(Arc::clone(&svc), ServerConfig::default()).expect("bind loopback");
    (server, svc)
}

/// One plain HTTP/1.1 GET over a raw socket; returns (status line,
/// body). Connection: close keeps the read loop trivial.
fn http_get(addr: std::net::SocketAddr, target: &str) -> (String, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(
        s,
        "GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    s.read_to_string(&mut raw).expect("read response");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    let status = head.lines().next().unwrap_or_default().to_owned();
    (status, body.to_owned())
}

#[test]
fn submit_trace_appears_in_journal_with_full_lifecycle() {
    let (server, svc) = serve(&[2]);
    let g = gen::torus2d(24, 24);
    let mut c = Client::connect(server.local_addr()).unwrap();
    let remote = c.register(&g).unwrap();

    let reply = c.submit(SubmitRequest::new(remote)).unwrap();
    assert_ne!(reply.trace, 0, "the wire reply carries a minted trace id");
    let forest = c.wait(reply.ticket).unwrap();
    assert!(forest.is_valid_for(&g));

    // The journal holds the job's ordered lifecycle under that id.
    let events = svc.telemetry().journal().events_for(TraceId(reply.trace));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(
        kinds,
        vec!["submitted", "admitted", "dequeued", "started", "finished"],
        "full ordered chain for trace {:016x}",
        reply.trace
    );
    let finished = events.last().unwrap();
    assert_eq!(finished.detail.as_deref(), Some("completed"));
    assert!(finished.team.is_some(), "finish is attributed to a team");
    // Timestamps never run backwards within a trace.
    assert!(events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns));

    // And the job's metrics report carries the same id.
    let hot = c.submit(SubmitRequest::new(remote)).unwrap();
    assert!(hot.cached);
    assert_ne!(hot.trace, reply.trace, "every submission gets its own id");
    let hit_events = svc.telemetry().journal().events_for(TraceId(hot.trace));
    let hit_kinds: Vec<&str> = hit_events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(hit_kinds, vec!["submitted", "finished"]);
    assert_eq!(hit_events[1].detail.as_deref(), Some("cache_hit"));
    server.shutdown();
}

#[test]
fn handle_trace_id_matches_journal_for_in_process_jobs() {
    let svc = Service::builder().teams([2]).queue_capacity(8).build();
    let g = Arc::new(gen::torus2d(16, 16));
    let handle = svc.job(&g).submit().expect("open");
    let trace = handle.trace_id();
    assert_ne!(trace, 0);
    handle.wait().expect("completes");
    let kinds: Vec<&str> = svc
        .telemetry()
        .journal()
        .events_for(TraceId(trace))
        .iter()
        .map(|e| e.kind.name())
        .collect();
    assert_eq!(
        kinds,
        vec!["submitted", "admitted", "dequeued", "started", "finished"]
    );
}

#[test]
fn live_metrics_page_passes_exposition_lint_and_reconciles() {
    let svc = Service::builder().teams([2, 1]).queue_capacity(16).build();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(32, 32)));
    for seed in 0..5u64 {
        svc.submit_spec(JobSpec::new(gref.id).seed(seed))
            .unwrap()
            .handle
            .wait()
            .unwrap();
    }
    // One cache hit, one deadline miss.
    assert!(
        svc.submit_spec(JobSpec::new(gref.id).seed(0))
            .unwrap()
            .cached
    );
    let missed = svc
        .submit_spec(JobSpec::new(gref.id).seed(9).deadline(Duration::ZERO))
        .unwrap();
    assert!(missed.handle.wait().is_err());

    let page = svc.render_metrics();
    let samples = lint_exposition(&page).expect("page passes the lint");

    let wall_count: f64 = samples
        .iter()
        .filter(|(k, _)| k.starts_with("st_service_job_wall_seconds_count"))
        .map(|(_, v)| v)
        .sum();
    assert_eq!(wall_count, 5.0, "one _count per executed completion");
    assert_eq!(
        samples["st_service_jobs_finished_total{outcome=\"completed\"}"],
        5.0
    );
    assert_eq!(
        samples["st_service_jobs_finished_total{outcome=\"cached\"}"],
        1.0
    );
    assert_eq!(
        samples["st_service_jobs_finished_total{outcome=\"deadline_exceeded\"}"],
        1.0
    );
    assert_eq!(samples["st_service_cached_wall_seconds_count"], 1.0);
    let miss = samples["st_service_deadline_miss_ratio"];
    assert!(
        (miss - 1.0 / 7.0).abs() < 1e-9,
        "1 miss / 7 finished, got {miss}"
    );
    // Quantile accessor agrees with a non-empty distribution.
    let (p50, p99) = svc.telemetry().wall_quantiles();
    assert!(p50 > 0 && p99 >= p50);
}

#[test]
fn http_endpoints_share_the_listener_with_the_binary_protocol() {
    let (server, svc) = serve(&[2]);
    let addr = server.local_addr();
    let g = gen::torus2d(24, 24);

    // Binary protocol first: run one job so the page has data.
    let mut c = Client::connect(addr).unwrap();
    let remote = c.register(&g).unwrap();
    let reply = c.submit(SubmitRequest::new(remote)).unwrap();
    c.wait(reply.ticket).unwrap();

    // /metrics: valid exposition over plain HTTP.
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, "HTTP/1.1 200 OK");
    let samples = lint_exposition(&body).expect("scraped page passes the lint");
    assert_eq!(
        samples["st_service_jobs_finished_total{outcome=\"completed\"}"],
        1.0
    );

    // /healthz while accepting.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert_eq!(body, "ok\n");

    // /debug/jobs: valid JSON with the expected top-level keys.
    let (status, body) = http_get(addr, "/debug/jobs");
    assert_eq!(status, "HTTP/1.1 200 OK");
    assert!(body.starts_with("{\"inflight\":["), "got: {body}");
    assert!(body.contains("\"slow\":["));

    // /debug/journal?trace= filters to the submitted job's chain.
    let (status, body) = http_get(addr, &format!("/debug/journal?trace={:016x}", reply.trace));
    assert_eq!(status, "HTTP/1.1 200 OK");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(
        lines.len(),
        5,
        "full lifecycle, one JSONL line each: {body}"
    );
    assert!(lines[0].contains("\"event\":\"submitted\""));
    assert!(lines[4].contains("\"event\":\"finished\""));
    let want = format!("\"trace\":\"{:016x}\"", reply.trace);
    assert!(lines.iter().all(|l| l.contains(&want)));

    // Unknown path → 404; bad trace filter → 400.
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, "HTTP/1.1 404 Not Found");
    let (status, _) = http_get(addr, "/debug/journal?trace=zzz");
    assert_eq!(status, "HTTP/1.1 400 Bad Request");

    // 405: once a connection has committed to HTTP via the `GET `
    // sniff, a later keep-alive request may use another method.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).unwrap();
        assert!(buf[..n].starts_with(b"HTTP/1.1 200 OK"));
        write!(
            s,
            "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(
            rest.starts_with("HTTP/1.1 405 Method Not Allowed"),
            "got: {rest}"
        );
    }

    // The binary client still works on the same listener afterwards.
    let mut c2 = Client::connect(addr).unwrap();
    assert_eq!(c2.ping(b"still binary").unwrap(), b"still binary");

    // Keep-alive: two requests over one connection.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        let mut buf = [0u8; 512];
        let n = s.read(&mut buf).unwrap();
        let first = String::from_utf8_lossy(&buf[..n]).into_owned();
        assert!(first.starts_with("HTTP/1.1 200 OK"), "got: {first}");
        assert!(first.contains("Connection: keep-alive"));
        write!(
            s,
            "GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
        )
        .unwrap();
        let mut rest = String::new();
        s.read_to_string(&mut rest).unwrap();
        assert!(rest.starts_with("HTTP/1.1 200 OK"), "got: {rest}");
    }

    // The service keeps accepting: the TCP front-end and the service
    // drain independently (the server holds only an Arc).
    assert!(svc.is_accepting());
    server.shutdown();
}

#[test]
fn slow_job_log_keeps_full_metrics() {
    let svc = Service::builder()
        .teams([2])
        .queue_capacity(8)
        .slow_job_threshold(Duration::from_nanos(1))
        .build();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(32, 32)));
    let sub = svc.submit_spec(JobSpec::new(gref.id)).unwrap();
    let trace = sub.handle.trace_id();
    sub.handle.wait().unwrap();

    // Every job is "slow" at a 1ns threshold.
    let slow = svc.telemetry().slow_jobs();
    assert_eq!(slow.len(), 1);
    assert_eq!(slow[0].trace.as_u64(), trace);
    assert!(slow[0].wall_ns > 0);
    // The report embeds the full JobMetrics, joined by trace id.
    assert!(
        slow[0]
            .metrics_json
            .contains(&format!("\"trace_id\":{trace}")),
        "metrics dump carries the trace id: {}",
        slow[0].metrics_json
    );
    assert!(slow[0].metrics_json.contains("\"per_rank\""));
}

#[test]
fn journal_capacity_knob_bounds_and_counts_drops() {
    let svc = Service::builder()
        .teams([1])
        .queue_capacity(8)
        .journal_capacity(4)
        .build();
    let gref = svc.catalog().register(Arc::new(gen::torus2d(8, 8)));
    for seed in 0..4u64 {
        svc.submit_spec(JobSpec::new(gref.id).seed(seed))
            .unwrap()
            .handle
            .wait()
            .unwrap();
    }
    let journal = svc.telemetry().journal();
    assert_eq!(journal.capacity(), 4);
    assert_eq!(journal.events().len(), 4, "ring is clamped at capacity");
    // 4 jobs × 5 lifecycle events = 20 recorded, 16 dropped.
    assert_eq!(journal.dropped(), 16);
}

/// Occupies its team until `release` flips (see tests/service.rs);
/// local copy so this suite can hold a queue slot deterministically.
struct HoldTeam {
    inner: BaderCong,
    started: Arc<std::sync::atomic::AtomicBool>,
    release: Arc<std::sync::atomic::AtomicBool>,
}

impl SpanningAlgorithm for HoldTeam {
    fn name(&self) -> &'static str {
        "hold"
    }

    fn run(
        &self,
        g: &CsrGraph,
        exec: &bader_cong_spanning::smp::Executor,
        ws: &mut Workspace,
    ) -> SpanningForest {
        self.started
            .store(true, std::sync::atomic::Ordering::Release);
        while !self.release.load(std::sync::atomic::Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
        self.inner.run(g, exec, ws)
    }
}

/// The outcome-classification reconciliation: a job whose deadline
/// trips while queued must be diagnosed as `deadline_exceeded` by
/// *every* surface — the handle's error, the journal's finished event,
/// the gauges, and the Prometheus page — even when the queue entry is
/// removed by the eager cancel sweep rather than a dispatcher, and
/// never misreported as a generic cancellation.
#[test]
fn swept_deadline_job_reconciles_journal_gauges_and_exposition() {
    use std::sync::atomic::{AtomicBool, Ordering};
    let svc = Service::builder().teams([1]).queue_capacity(4).build();
    let g = Arc::new(gen::torus2d(16, 16));
    let started = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let gated = svc
        .job(&g)
        .algorithm(HoldTeam {
            inner: BaderCong::with_defaults(),
            started: Arc::clone(&started),
            release: Arc::clone(&release),
        })
        .submit()
        .expect("open");
    while !started.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(1));
    }

    let doomed = svc
        .job(&g)
        .deadline(Duration::from_millis(10))
        .submit()
        .expect("queue has room");
    let trace = doomed.trace_id();
    std::thread::sleep(Duration::from_millis(30));
    // The deadline has tripped; the explicit cancel triggers the eager
    // sweep, whose classification must come from the token.
    doomed.cancel();
    assert!(matches!(doomed.wait(), Err(JobError::DeadlineExceeded)));

    // Journal: the swept job still gets its dequeued + finished chain,
    // and the finished detail names the real outcome.
    let events = svc.telemetry().journal().events_for(TraceId(trace));
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
    assert_eq!(kinds, vec!["submitted", "admitted", "dequeued", "finished"]);
    assert_eq!(
        events.last().unwrap().detail.as_deref(),
        Some("deadline_exceeded"),
        "the journal must agree with the handle's diagnosis"
    );

    // Gauges and the exposition page agree too.
    let snap = svc.snapshot();
    assert_eq!(snap.deadline_exceeded, 1);
    assert_eq!(snap.cancelled, 0, "not a generic cancellation");
    assert_eq!(snap.queue_depth, 0, "the sweep released the slot");
    let page = svc.render_metrics();
    let samples = lint_exposition(&page).expect("page passes the lint");
    assert_eq!(
        samples["st_service_jobs_finished_total{outcome=\"deadline_exceeded\"}"],
        1.0
    );
    assert_eq!(
        samples["st_service_lane_dequeued_total{lane=\"normal\"}"], 2.0,
        "the gate job and the swept job both count as lane dequeues"
    );

    release.store(true, Ordering::Release);
    assert!(gated.wait().is_ok());
}
