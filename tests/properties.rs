// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Property-based tests (proptest) over arbitrary graphs.
//!
//! Graphs are generated from arbitrary edge lists — including self-loops
//! and duplicates that the builder must clean — so these properties
//! exercise inputs no hand-written case covers.

use proptest::prelude::*;

use bader_cong_spanning::prelude::*;
use st_core::hcs;
use st_graph::label::{inverse_permutation, unrelabel_parents};
use st_graph::preprocess::eliminate_degree2;
use st_graph::validate::{count_components, forest_depths};

/// Strategy: a simple graph with 1..=60 vertices and arbitrary edges.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (1usize..60).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..120).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            b.extend(edges);
            b.build()
        })
    })
}

/// Strategy: a connected simple graph (random attachment tree + extras).
fn arb_connected_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60, 0usize..80, any::<u64>()).prop_map(|(n, extra, seed)| {
        let max_extra = n * (n - 1) / 2 - (n - 1);
        gen::random_connected(n, extra.min(max_extra), seed)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bader_cong_always_produces_valid_forests(g in arb_graph(), p in 1usize..5) {
        let f = BaderCong::with_defaults().spanning_forest(&g, p);
        prop_assert!(is_spanning_forest(&g, &f.parents));
        prop_assert_eq!(f.num_trees(), count_components(&g));
    }

    #[test]
    fn sv_always_produces_valid_forests(g in arb_graph(), p in 1usize..5) {
        let f = sv::spanning_forest(&g, p, SvConfig::default());
        prop_assert!(is_spanning_forest(&g, &f.parents));
        prop_assert_eq!(f.num_trees(), count_components(&g));
    }

    #[test]
    fn hcs_always_produces_valid_forests(g in arb_graph(), p in 1usize..5) {
        let f = hcs::spanning_forest(&g, p);
        prop_assert!(is_spanning_forest(&g, &f.parents));
        prop_assert_eq!(f.num_trees(), count_components(&g));
    }

    #[test]
    fn hcs_is_deterministic_across_p(g in arb_graph()) {
        let mut a = hcs::hcs_core(&g, 1).tree_edges;
        let mut b = hcs::hcs_core(&g, 4).tree_edges;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn tree_edge_count_is_n_minus_components(g in arb_graph()) {
        let f = BaderCong::with_defaults().spanning_forest(&g, 3);
        let c = count_components(&g);
        prop_assert_eq!(f.num_tree_edges(), g.num_vertices() - c);
    }

    #[test]
    fn relabeling_preserves_validity_and_structure(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let perm = random_permutation(g.num_vertices(), seed);
        let h = relabel(&g, &perm);
        prop_assert_eq!(count_components(&g), count_components(&h));
        let f = BaderCong::with_defaults().spanning_forest(&h, 2);
        prop_assert!(is_spanning_forest(&h, &f.parents));
        // A forest of the relabeled graph maps back to a forest of the
        // original.
        let back = unrelabel_parents(&f.parents, &perm);
        prop_assert!(is_spanning_forest(&g, &back));
    }

    #[test]
    fn permutation_inverse_roundtrips(n in 1usize..200, seed in any::<u64>()) {
        let p = random_permutation(n, seed);
        let inv = inverse_permutation(&p);
        for v in 0..n {
            prop_assert_eq!(inv[p[v] as usize] as usize, v);
        }
    }

    #[test]
    fn degree2_elimination_roundtrips(g in arb_graph()) {
        let red = eliminate_degree2(&g);
        prop_assert_eq!(
            count_components(&red.reduced),
            count_components(&g),
            "reduction changed the component count"
        );
        let inner = seq::bfs_forest(&red.reduced);
        let expanded = red.expand_parents(&inner.parents);
        prop_assert!(is_spanning_forest(&g, &expanded));
    }

    #[test]
    fn spanning_tree_depths_bounded_by_n(g in arb_connected_graph(), p in 1usize..4) {
        let f = BaderCong::with_defaults().spanning_forest(&g, p);
        prop_assert!(is_spanning_forest(&g, &f.parents));
        let depths = forest_depths(&f.parents);
        prop_assert!(depths.iter().all(|&d| (d as usize) < g.num_vertices()));
    }

    #[test]
    fn bfs_tree_depths_are_graph_eccentricity_optimal(g in arb_connected_graph()) {
        // BFS from root 0 gives shortest-path depths; every other
        // spanning tree's depth from the same root is >= each vertex's
        // BFS depth.
        let bfs = seq::bfs_tree(&g, 0).unwrap();
        let bfs_d = forest_depths(&bfs);
        let f = BaderCong::with_defaults().spanning_tree(&g, 0, 3).unwrap();
        let d = forest_depths(&f);
        for v in 0..g.num_vertices() {
            prop_assert!(d[v] >= bfs_d[v], "vertex {v}: {} < {}", d[v], bfs_d[v]);
        }
    }

    #[test]
    fn csr_roundtrips_through_edge_list(g in arb_graph()) {
        let el = g.to_edge_list();
        let h = CsrGraph::from_edge_list(&el);
        let mut a: Vec<_> = g.edges().collect();
        let mut b: Vec<_> = h.edges().collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn io_roundtrips(g in arb_graph()) {
        let mut buf = Vec::new();
        st_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let h = st_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(g.num_vertices(), h.num_vertices());
        prop_assert_eq!(g.num_edges(), h.num_edges());
    }

    #[test]
    fn connected_components_match_reference(g in arb_graph(), p in 1usize..5) {
        let cc = connected_components(&g, p);
        let reference = st_graph::validate::component_labels(&g);
        prop_assert_eq!(cc.count as u32, reference.iter().copied().max().map_or(0, |x| x + 1));
        let mut map = std::collections::HashMap::new();
        for (&l, &r) in cc.labels.iter().zip(reference.iter()) {
            let expect = map.entry(l).or_insert(r);
            prop_assert_eq!(*expect, r);
        }
    }
}

/// Brute-force bridge oracle for small graphs.
fn bridges_brute(g: &CsrGraph) -> Vec<(VertexId, VertexId)> {
    let base = count_components(g);
    let mut out = Vec::new();
    for (u, v) in g.edges() {
        let mut el = EdgeList::new(g.num_vertices());
        for (a, b) in g.edges() {
            if (a, b) != (u, v) {
                el.push(a, b);
            }
        }
        if count_components(&CsrGraph::from_edge_list(&el)) > base {
            out.push((u, v));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn biconnectivity_bridges_match_brute_force(g in arb_graph()) {
        let bc = st_core::biconnected::biconnected_components(&g, 2);
        let mut got: Vec<(VertexId, VertexId)> = bc
            .bridges
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        got.sort_unstable();
        let mut want = bridges_brute(&g);
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn ear_decomposition_of_cycle_with_chords(
        n in 4usize..40,
        chords in proptest::collection::vec((0u32..40, 0u32..40), 0..25),
    ) {
        // Cycle + chords is always 2-edge-connected.
        let mut b = GraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.add_edge(v, (v + 1) % n as VertexId);
        }
        for (a, c) in chords {
            let (a, c) = (a % n as u32, c % n as u32);
            if a != c {
                b.add_edge(a, c);
            }
        }
        let g = b.build();
        let ed = st_core::ears::ear_decomposition(&g, 2).unwrap();
        prop_assert_eq!(ed.len(), g.num_edges() - g.num_vertices() + 1);
        prop_assert_eq!(ed.num_edges(), g.num_edges());
    }

    #[test]
    fn parallel_csr_build_matches_sequential(g in arb_graph()) {
        let el = g.to_edge_list();
        let par = CsrGraph::from_edge_list_parallel(&el);
        prop_assert_eq!(par.num_edges(), g.num_edges());
        for v in g.vertices() {
            let mut a = g.neighbors(v).to_vec();
            a.sort_unstable();
            prop_assert_eq!(par.neighbors(v), &a[..]);
        }
    }

    #[test]
    fn largest_component_is_connected_and_maximal(g in arb_graph()) {
        let sub = st_graph::subgraph::largest_component(&g);
        if sub.graph.num_vertices() > 0 {
            prop_assert_eq!(count_components(&sub.graph), 1);
        }
        // No component can be larger.
        let labels = st_graph::validate::component_labels(&g);
        let mut sizes = std::collections::HashMap::new();
        for &l in &labels {
            *sizes.entry(l).or_insert(0usize) += 1;
        }
        let max = sizes.values().copied().max().unwrap_or(0);
        prop_assert_eq!(sub.graph.num_vertices(), max);
    }

    #[test]
    fn mst_weights_agree(g in arb_graph(), seed in any::<u64>(), p in 1usize..4) {
        let wg = st_graph::WeightedGraph::with_random_weights(&g, 1000, seed);
        let k = st_core::mst::kruskal(&wg);
        let b = st_core::mst::boruvka(&wg, p);
        prop_assert_eq!(k.total_weight, b.total_weight);
        prop_assert_eq!(k.tree_edges.len(), b.tree_edges.len());
    }
}

proptest! {
    // The threaded fallback path is slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn multiroot_driver_always_produces_valid_forests(g in arb_graph(), p in 1usize..5) {
        let f = st_core::multiroot::spanning_forest_multiroot(
            &g,
            p,
            TraversalConfig::default(),
        );
        prop_assert!(is_spanning_forest(&g, &f.parents));
        prop_assert_eq!(f.num_trees(), count_components(&g));
    }

    #[test]
    fn armed_detector_never_breaks_correctness(g in arb_graph(), p in 2usize..5) {
        let cfg = Config {
            traversal: TraversalConfig {
                starvation_threshold: Some(p - 1),
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, p);
        prop_assert!(is_spanning_forest(&g, &f.parents));
        prop_assert_eq!(f.num_trees(), count_components(&g));
    }
}
