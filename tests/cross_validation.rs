// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Cross-crate integration: every algorithm, on every paper workload,
//! across processor counts, validated against the sequential oracle.

use bader_cong_spanning::prelude::*;
use st_bench::workloads::Workload;
use st_core::hcs;
use st_graph::validate::{check_spanning_forest, count_components};

const N: usize = 2_048;
const SEED: u64 = 1234;

fn all_workloads() -> Vec<Workload> {
    Workload::fig4_panels()
        .into_iter()
        .chain([Workload::RandomM15])
        .collect()
}

#[test]
fn bader_cong_valid_on_every_workload_and_p() {
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let reference = count_components(&g);
        for p in [1usize, 2, 3, 4, 8] {
            let f = BaderCong::with_defaults().spanning_forest(&g, p);
            let check = check_spanning_forest(&g, &f.parents);
            assert!(check.is_valid(), "{} p={p}: {check:?}", w.id());
            assert_eq!(f.num_trees(), reference, "{} p={p}", w.id());
        }
    }
}

#[test]
fn sv_valid_on_every_workload() {
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let reference = count_components(&g);
        for p in [1usize, 2, 4] {
            let f = sv::spanning_forest(&g, p, SvConfig::default());
            assert!(is_spanning_forest(&g, &f.parents), "sv {} p={p}", w.id());
            assert_eq!(f.num_trees(), reference, "sv {} p={p}", w.id());
        }
    }
}

#[test]
fn sv_lock_variant_valid_on_every_workload() {
    let cfg = SvConfig {
        variant: GraftVariant::Lock,
        ..SvConfig::default()
    };
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let f = sv::spanning_forest(&g, 4, cfg);
        assert!(is_spanning_forest(&g, &f.parents), "sv-lock {}", w.id());
        assert_eq!(f.num_trees(), count_components(&g), "sv-lock {}", w.id());
    }
}

#[test]
fn hcs_valid_on_every_workload() {
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let f = hcs::spanning_forest(&g, 4);
        assert!(is_spanning_forest(&g, &f.parents), "hcs {}", w.id());
        assert_eq!(f.num_trees(), count_components(&g), "hcs {}", w.id());
    }
}

#[test]
fn sequential_baselines_agree() {
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let bfs = seq::bfs_forest(&g);
        let dfs = seq::dfs_forest(&g);
        assert!(is_spanning_forest(&g, &bfs.parents), "bfs {}", w.id());
        assert!(is_spanning_forest(&g, &dfs.parents), "dfs {}", w.id());
        assert_eq!(bfs.num_trees(), dfs.num_trees(), "{}", w.id());
    }
}

#[test]
fn components_agree_between_algorithms() {
    for w in [Workload::Mesh2D60, Workload::Ad3, Workload::GeoFlat] {
        let g = w.build(N, SEED);
        let from_sv = connected_components(&g, 4);
        let forest = BaderCong::with_defaults().spanning_forest(&g, 4);
        let from_forest = components_from_forest(&forest.parents);
        assert_eq!(from_sv.count, from_forest.count, "{}", w.id());
        // Partitions match up to relabeling.
        let mut map = std::collections::HashMap::new();
        for v in 0..g.num_vertices() {
            let pair = map
                .entry(from_sv.labels[v])
                .or_insert(from_forest.labels[v]);
            assert_eq!(*pair, from_forest.labels[v], "{} vertex {v}", w.id());
        }
    }
}

#[test]
fn spanning_tree_entry_point_on_connected_workloads() {
    for w in [
        Workload::TorusRowMajor,
        Workload::ChainSeq,
        Workload::GeoHier,
    ] {
        let g = w.build(N, SEED);
        if count_components(&g) != 1 {
            continue;
        }
        let root = (g.num_vertices() / 2) as VertexId;
        let t = BaderCong::with_defaults()
            .spanning_tree(&g, root, 4)
            .expect("connected graph must yield a tree");
        assert!(is_spanning_tree(&g, &t, root), "{}", w.id());
    }
}

#[test]
fn preprocessing_composes_with_every_workload() {
    let cfg = Config {
        deg2_preprocess: true,
        ..Config::default()
    };
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 4);
        assert!(is_spanning_forest(&g, &f.parents), "deg2 {}", w.id());
        assert_eq!(f.num_trees(), count_components(&g), "deg2 {}", w.id());
    }
}

#[test]
fn starvation_fallback_composes_with_every_workload() {
    // Arm an aggressive detector everywhere; whether or not it fires,
    // the result must stay valid.
    let cfg = Config {
        traversal: TraversalConfig {
            starvation_threshold: Some(3),
            ..TraversalConfig::default()
        },
        ..Config::default()
    };
    for w in all_workloads() {
        let g = w.build(N, SEED);
        let f = BaderCong::new(cfg.clone()).spanning_forest(&g, 4);
        assert!(
            is_spanning_forest(&g, &f.parents),
            "fallback {} (fired: {})",
            w.id(),
            f.stats.fallback_triggered
        );
        assert_eq!(f.num_trees(), count_components(&g), "fallback {}", w.id());
    }
}
