// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Determinism guarantees across the workspace.
//!
//! Reproducibility is a deliverable: generators, simulators, and the
//! deterministic algorithms must replay bit-identically from their
//! seeds; the racy algorithm must be *semantically* stable (same
//! component structure) even though tree shapes may differ.

use bader_cong_spanning::prelude::*;
use st_bench::workloads::Workload;
use st_model::sim::{
    simulate_bader_cong, simulate_sequential_bfs, simulate_sv, simulate_sv_lock, TraversalSimConfig,
};
use st_model::MachineProfile;

#[test]
fn all_workload_builders_are_deterministic() {
    for w in Workload::fig4_panels()
        .into_iter()
        .chain([Workload::RandomM15])
    {
        let a = w.build(1_000, 99);
        let b = w.build(1_000, 99);
        assert_eq!(a, b, "{} not deterministic", w.id());
    }
}

#[test]
fn every_generator_distinguishes_seeds() {
    // Seed changes must actually change randomized outputs.
    assert_ne!(gen::random_gnm(200, 300, 1), gen::random_gnm(200, 300, 2));
    assert_ne!(gen::mesh2d_p(20, 20, 0.5, 1), gen::mesh2d_p(20, 20, 0.5, 2));
    assert_ne!(gen::ad3(200, 1), gen::ad3(200, 2));
    assert_ne!(
        gen::watts_strogatz(100, 2, 0.3, 1),
        gen::watts_strogatz(100, 2, 0.3, 2)
    );
    assert_ne!(
        gen::rmat(8, 4, gen::RmatParams::standard(), 1),
        gen::rmat(8, 4, gen::RmatParams::standard(), 2)
    );
}

#[test]
fn simulators_replay_bit_identically() {
    let g = Workload::RandomNLogN.build(1_500, 5);
    let machine = MachineProfile::e4500();
    let a = simulate_bader_cong(&g, 6, TraversalSimConfig::default(), &machine);
    let b = simulate_bader_cong(&g, 6, TraversalSimConfig::default(), &machine);
    assert_eq!(a.report, b.report);
    assert_eq!(a.parents, b.parents);
    assert_eq!(
        simulate_sv(&g, 6, &machine).report,
        simulate_sv(&g, 6, &machine).report
    );
    assert_eq!(
        simulate_sv_lock(&g, 6, &machine).report,
        simulate_sv_lock(&g, 6, &machine).report
    );
    assert_eq!(
        simulate_sequential_bfs(&g, &machine).0,
        simulate_sequential_bfs(&g, &machine).0
    );
}

#[test]
fn sequential_algorithms_are_deterministic() {
    let g = Workload::Mesh2D60.build(2_000, 3);
    assert_eq!(seq::bfs_forest(&g).parents, seq::bfs_forest(&g).parents);
    assert_eq!(seq::dfs_forest(&g).parents, seq::dfs_forest(&g).parents);
}

#[test]
fn hcs_and_boruvka_are_schedule_independent() {
    let g = gen::random_gnm(800, 1_400, 4);
    let mut h1 = st_core::hcs::hcs_core(&g, 1).tree_edges;
    let mut h8 = st_core::hcs::hcs_core(&g, 8).tree_edges;
    h1.sort_unstable();
    h8.sort_unstable();
    assert_eq!(h1, h8);

    let wg = st_graph::WeightedGraph::with_random_weights(&g, 100, 5);
    let mut b1 = mst::boruvka(&wg, 1).tree_edges;
    let mut b8 = mst::boruvka(&wg, 8).tree_edges;
    b1.sort_unstable();
    b8.sort_unstable();
    assert_eq!(b1, b8);
}

#[test]
fn racy_algorithm_is_semantically_stable() {
    // Across p and runs, tree SHAPE may differ but the component
    // partition may not.
    let g = Workload::Ad3.build(2_000, 6);
    let reference = st_core::connected::components_from_forest(
        &BaderCong::with_defaults().spanning_forest(&g, 1).parents,
    );
    for p in [2usize, 4, 8] {
        for run in 0..3 {
            let f = BaderCong::with_defaults().spanning_forest(&g, p);
            let cc = st_core::connected::components_from_forest(&f.parents);
            assert_eq!(cc.count, reference.count, "p={p} run={run}");
        }
    }
}

#[test]
fn model_predictions_are_stable_quantities() {
    // The EXPERIMENTS.md numbers must be reproducible: pin a couple of
    // exact invariants of the default-seed workloads (counts, not
    // floats).
    let g = Workload::RandomM15.build(1 << 12, 42);
    assert_eq!(g.num_vertices(), 1 << 12);
    assert_eq!(g.num_edges(), 3 << 11);
    let machine = MachineProfile::e4500();
    let sv1 = simulate_sv(&g, 8, &machine);
    let sv2 = simulate_sv(&g, 8, &machine);
    assert_eq!(sv1.iterations, sv2.iterations);
    assert_eq!(sv1.shortcut_rounds, sv2.shortcut_rounds);
    assert_eq!(sv1.tree_edges, sv2.tree_edges);
}
