//! Integration tests for the persistent execution engine: one
//! [`Engine`] (team + workspace) reused across a long, shape-diverse
//! sequence of graphs, with every forest validated against the oracles.
//! This is the repeated-measurement pattern the paper's experiments use,
//! and the sharpest test that no scratch state leaks between runs.

use bader_cong_spanning::prelude::*;
use st_core::hcs::Hcs;
use st_core::multiroot::Multiroot;
use st_core::sv::Sv;
use st_graph::validate::count_components;

/// The reuse gauntlet: shapes chosen to stress different arena fields in
/// sequence — a star (one huge frontier burst), a random graph (steals
/// and multi-coloring), a chain (deep parent chains, tiny frontier), and
/// a heavily disconnected mesh (many components, many roots).
fn shape_sequence() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("star", gen::star(5_000)),
        ("random", gen::random_gnm(2_000, 3_000, 11)),
        ("chain", gen::chain(4_000)),
        ("disconnected", gen::mesh2d_p(40, 40, 0.45, 3)),
    ]
}

fn algorithms() -> Vec<Box<dyn SpanningAlgorithm>> {
    vec![
        Box::new(BaderCong::with_defaults()),
        Box::new(Sv::new(SvConfig::default())),
        Box::new(Sv::new(SvConfig {
            variant: GraftVariant::Lock,
            ..SvConfig::default()
        })),
        Box::new(Hcs),
        Box::new(Multiroot::with_defaults()),
    ]
}

#[test]
fn one_engine_survives_the_shape_gauntlet() {
    for p in [1usize, 4, 8] {
        let mut engine = Engine::new(p);
        // Two full passes: the second pass runs every graph on an arena
        // already dirtied by every other graph.
        for pass in 0..2 {
            for (name, g) in shape_sequence() {
                let expected = count_components(&g);
                for algo in algorithms() {
                    let f = engine.run(algo.as_ref(), &g);
                    assert!(
                        is_spanning_forest(&g, &f.parents),
                        "{} on {name} (p={p}, pass={pass}): invalid forest",
                        algo.name()
                    );
                    assert_eq!(
                        f.roots.len(),
                        expected,
                        "{} on {name} (p={p}, pass={pass}): wrong component count",
                        algo.name()
                    );
                }
            }
        }
    }
}

#[test]
fn reused_engine_matches_fresh_engines() {
    // Deterministic algorithms must produce identical output from a
    // dirty arena and a fresh one; Bader–Cong must at least agree on
    // the component partition.
    let g_a = gen::random_gnm(1_500, 2_200, 21);
    let g_b = gen::torus2d(30, 30);
    let mut reused = Engine::new(4);
    for _ in 0..3 {
        for g in [&g_a, &g_b] {
            let hcs_reused = reused.run(&Hcs, g);
            let hcs_fresh = Engine::new(4).run(&Hcs, g);
            assert_eq!(
                hcs_reused.parents, hcs_fresh.parents,
                "HCS output drifted on a reused workspace"
            );
            let bc = reused.run(&BaderCong::with_defaults(), g);
            assert_eq!(
                components_from_forest(&bc.parents).labels,
                components_from_forest(&hcs_fresh.parents).labels.clone(),
                "component partitions disagree"
            );
        }
    }
}

#[test]
fn shrinking_then_growing_graphs_keep_prefix_discipline() {
    // Alternate big/small so every run's live prefix differs from the
    // previous run's; stale suffix data must never surface.
    let mut engine = Engine::new(3);
    let sizes = [4_000usize, 64, 2_048, 16, 1_000];
    for (i, &n) in sizes.iter().enumerate() {
        let g = gen::random_gnm(n, 2 * n, i as u64);
        let f = engine.run(&BaderCong::with_defaults(), &g);
        assert_eq!(
            f.parents.len(),
            n,
            "parents sized to the graph, not the arena"
        );
        assert!(is_spanning_forest(&g, &f.parents), "n={n}");
        assert_eq!(f.roots.len(), count_components(&g));
    }
}

#[test]
fn engine_backs_the_application_layer() {
    // The biconnectivity pipeline runs both halves (forest + auxiliary
    // connectivity) on one shared engine.
    let mut engine = Engine::new(4);
    let g = gen::random_gnm(300, 500, 9);
    let via_engine = biconnected_components_with(&mut engine, &BaderCong::with_defaults(), &g);
    let standalone = st_core::biconnected::biconnected_components(&g, 4);
    assert_eq!(via_engine.num_blocks, standalone.num_blocks);
    assert_eq!(
        via_engine.articulation_points,
        standalone.articulation_points
    );
}
