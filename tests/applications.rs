// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working (and stay measurable) until they are removed.
#![allow(deprecated)]

//! Integration tests for the application layer built on spanning trees:
//! biconnectivity, ear decomposition, MST, and the subgraph pipeline —
//! including the skewed-degree inputs that stress work stealing hardest.

use bader_cong_spanning::prelude::*;
use st_core::biconnected::biconnected_components;
use st_core::ears::{ear_decomposition, EarError};
use st_graph::gen::RmatParams;
use st_graph::subgraph::largest_component;
use st_graph::validate::count_components;
use st_graph::WeightedGraph;

#[test]
fn rmat_hubs_do_not_break_any_algorithm() {
    let g = gen::rmat(12, 8, RmatParams::standard(), 3);
    let reference = count_components(&g);
    for p in [1usize, 4, 8] {
        let f = BaderCong::with_defaults().spanning_forest(&g, p);
        assert!(is_spanning_forest(&g, &f.parents), "bader-cong p={p}");
        assert_eq!(f.num_trees(), reference);
    }
    let f = sv::spanning_forest(&g, 4, SvConfig::default());
    assert!(is_spanning_forest(&g, &f.parents), "sv");
    let f = st_core::hcs::spanning_forest(&g, 4);
    assert!(is_spanning_forest(&g, &f.parents), "hcs");
}

#[test]
fn small_world_sweep_across_beta() {
    for beta in [0.0, 0.05, 0.5, 1.0] {
        let g = gen::watts_strogatz(2_000, 3, beta, 7);
        let f = BaderCong::with_defaults().spanning_forest(&g, 4);
        assert!(is_spanning_forest(&g, &f.parents), "beta = {beta}");
    }
}

#[test]
fn giant_component_pipeline() {
    // Extract the giant component of a damaged mesh, compute a spanning
    // tree of it, and lift the parents back to original ids.
    let g = gen::mesh2d_p(60, 60, 0.55, 9);
    let sub = largest_component(&g);
    assert_eq!(count_components(&sub.graph), 1);
    let tree = BaderCong::with_defaults()
        .spanning_tree(&sub.graph, 0, 4)
        .expect("giant component is connected");
    assert!(is_spanning_tree(&sub.graph, &tree, 0));
    let lifted = sub.lift_parents(&tree);
    // Every lifted parent edge exists in the original mesh.
    for (v, &p) in lifted.iter().enumerate() {
        if p != NO_VERTEX {
            assert!(g.neighbors(v as u32).contains(&p));
        }
    }
}

#[test]
fn biconnectivity_of_the_giant_component() {
    let g = gen::geographic_flat(3_000, gen::GeoFlatParams::with_target_degree(3_000, 4.0), 4);
    let sub = largest_component(&g);
    let bc = biconnected_components(&sub.graph, 4);
    // Sanity: every bridge's removal must disconnect; spot-check a few
    // against the component count.
    let base = count_components(&sub.graph);
    for &(u, v) in bc.bridges.iter().take(5) {
        let mut el = EdgeList::new(sub.graph.num_vertices());
        for (a, b) in sub.graph.edges() {
            let is_target = (a == u && b == v) || (a == v && b == u);
            if !is_target {
                el.push(a, b);
            }
        }
        let h = CsrGraph::from_edge_list(&el);
        assert!(count_components(&h) > base, "({u}, {v}) is not a bridge");
    }
}

#[test]
fn ear_decomposition_of_biconnected_core() {
    // Torus: biconnected; ear count = m - n + 1.
    let g = gen::torus2d(12, 12);
    let ed = ear_decomposition(&g, 4).expect("torus is 2-edge-connected");
    assert_eq!(ed.len(), g.num_edges() - g.num_vertices() + 1);
    assert_eq!(ed.num_edges(), g.num_edges());
}

#[test]
fn ear_decomposition_rejects_what_it_must() {
    assert!(matches!(
        ear_decomposition(&gen::chain(10), 2),
        Err(EarError::HasBridge(_, _))
    ));
    assert!(matches!(
        ear_decomposition(&CsrGraph::empty(4), 2),
        Err(EarError::Empty)
    ));
}

#[test]
fn mst_pipeline_on_scale_free_graph() {
    let g = gen::rmat(11, 6, RmatParams::standard(), 5);
    let wg = WeightedGraph::with_random_weights(&g, 10_000, 6);
    let k = mst::kruskal(&wg);
    let b = mst::boruvka(&wg, 4);
    assert_eq!(k.total_weight, b.total_weight);
    assert_eq!(k.tree_edges.len(), g.num_vertices() - count_components(&g));
}

#[test]
fn workload_profiles_describe_topologies() {
    use st_graph::stats::profile;
    // The paper's performance story in numbers: chains have huge
    // diameter, random graphs tiny, hubs exist only in the scale-free
    // extension.
    let chain_profile = profile(&gen::chain(2_000));
    assert_eq!(chain_profile.diameter_lb, 1_999);
    let random_profile = profile(&gen::random_gnm(2_000, 12_000, 1));
    assert!(random_profile.diameter_lb <= 6);
    let rmat_profile = profile(&gen::rmat(11, 8, RmatParams::standard(), 2));
    assert!(rmat_profile.max_degree > 10 * random_profile.max_degree);
}

#[test]
fn lca_supports_path_queries_on_spanning_trees() {
    use st_core::tree::Lca;
    let g = gen::random_connected(1_000, 500, 8);
    let t = BaderCong::with_defaults().spanning_tree(&g, 0, 4).unwrap();
    let lca = Lca::new(&t);
    // Tree-path length between u and v = depth(u) + depth(v) -
    // 2*depth(lca); must be >= the BFS distance in the graph.
    let dist = st_graph::stats::bfs_distances(&g, 0);
    for v in [10u32, 100, 500, 999] {
        let l = lca.lca(0, v);
        assert_eq!(l, 0, "root is an ancestor of everything");
        let path_len = lca.depth(v);
        assert!(path_len >= dist[v as usize]);
    }
}
