#![warn(missing_docs)]

//! # bader-cong-spanning — parallel spanning trees for SMPs
//!
//! A from-scratch Rust reproduction of **Bader & Cong, "A Fast, Parallel
//! Spanning Tree Algorithm for Symmetric Multiprocessors (SMPs)",
//! IPDPS 2004**: the randomized stub-tree + work-stealing traversal
//! algorithm, its Shiloach–Vishkin and Hirschberg–Chandra–Sarwate
//! baselines, the paper's eight experiment input families, the
//! Helman–JáJá SMP cost model the paper analyzes with, and a benchmark
//! harness that regenerates every result figure.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — CSR graphs, generators, labeling, degree-2
//!   preprocessing, validation oracles, I/O.
//! * [`smp`] — the POSIX-threads-and-software-barriers runtime layer:
//!   teams, barriers, spin locks, work-stealing queues, the starvation
//!   detector.
//! * [`core`] — the algorithms.
//! * [`model`] — the cost model and deterministic instrumented
//!   executors.
//! * [`obs`] — the observability layer: always-on per-rank counters,
//!   per-job [`JobMetrics`](st_obs::JobMetrics) reports, and (behind
//!   the `obs-trace` feature) phase spans exportable as Chrome traces.
//! * [`service`] — the multi-tenant job service: a sharded pool of
//!   persistent teams with admission control, priorities, deadlines,
//!   and cooperative cancellation — plus the graph catalog, result
//!   cache, and TCP front-end that make it an operable server (see
//!   [`st_service::net`]).
//!
//! ## Quickstart
//!
//! ```
//! use bader_cong_spanning::prelude::*;
//!
//! // One engine: a persistent 4-processor team plus a reusable
//! // workspace. Threads spawn once; scratch arrays are recycled
//! // across runs (the paper's repeated-measurement methodology).
//! let mut engine = Engine::new(4);
//! let algo = BaderCong::with_defaults();
//!
//! // The paper's Fig. 3 input: a random graph with m = 1.5 n.
//! let g = gen::random_gnm(10_000, 15_000, 42);
//! let forest = engine.run(&algo, &g);
//! assert!(is_spanning_forest(&g, &forest.parents));
//! println!(
//!     "{} trees, {} tree edges, {} race collisions",
//!     forest.num_trees(),
//!     forest.num_tree_edges(),
//!     forest.stats.multi_colored
//! );
//!
//! // The same engine runs any algorithm behind the trait.
//! let sv_forest = engine.run(&sv::Sv::new(SvConfig::default()), &g);
//! assert_eq!(sv_forest.num_trees(), forest.num_trees());
//!
//! // Or phrase a run as a job: pick the algorithm fluently and get a
//! // `Result` you can cancel (see `CancelToken`).
//! let sv = sv::Sv::new(SvConfig::default());
//! let again = engine.job(&g).algorithm(&sv).run().expect("no cancel token attached");
//! assert_eq!(again.num_trees(), forest.num_trees());
//! ```
//!
//! For multi-tenant workloads — many clients submitting jobs against a
//! shared machine — see the [`service`] crate re-export: a sharded pool
//! of persistent teams with admission control, deadlines, priorities,
//! and cooperative cancellation.

pub use st_core as core;
pub use st_graph as graph;
pub use st_model as model;
pub use st_obs as obs;
pub use st_service as service;
pub use st_smp as smp;

/// Everything a typical user needs in scope.
pub mod prelude {
    pub use st_core::bader_cong::{BaderCong, Config};
    pub use st_core::biconnected::{
        biconnected_components, biconnected_components_with, Biconnectivity,
    };
    pub use st_core::config::{ConfigError, RuntimeConfig};
    pub use st_core::connected::{components_from_forest, connected_components};
    pub use st_core::engine::{Cancelled, Engine, EngineJob, SpanningAlgorithm, Workspace};
    pub use st_core::mst::{self, MstResult};
    #[allow(deprecated)] // the shim stays exported until it is removed
    pub use st_core::multiroot::spanning_forest_multiroot;
    pub use st_core::multiroot::Multiroot;
    pub use st_core::result::{AlgoStats, SpanningForest};
    pub use st_core::seq;
    pub use st_core::sv::{self, GraftVariant, SvConfig};
    pub use st_core::traversal::TraversalConfig;
    pub use st_graph::gen;
    pub use st_graph::label::{random_permutation, relabel};
    pub use st_graph::validate::{is_spanning_forest, is_spanning_tree};
    pub use st_graph::{CsrGraph, EdgeList, GraphBuilder, VertexId, NO_VERTEX};
    pub use st_obs::{
        lint_exposition, write_chrome_trace, Counter, JobMetrics, Phase, PhaseTotal, TraceId,
    };
    pub use st_core::{DynForest, UpdateStats};
    pub use st_graph::{EdgeBatch, GraphView};
    pub use st_service::net::{Client, Server, ServerConfig, SubmitRequest};
    pub use st_service::{
        AlgorithmId, GraphCatalog, GraphId, GraphRef, GraphSel, JobError, JobHandle, JobSpec,
        Priority, Service, UpdateReport,
    };
    pub use st_smp::{CancelToken, StealPolicy};
}
