//! Shared atomic vertex arrays.

use crate::sync::atomic::{AtomicU32, Ordering};

/// A fixed-size array of atomic `u32` cells shared by all processors.
///
/// This backs the `color` and `parent` arrays of the traversal algorithms
/// and the `parent`/`component` arrays of Shiloach–Vishkin: every cell
/// can be read, written, and CASed concurrently. The paper's key
/// correctness argument (§2, Fig. 1) is precisely that racy writes to
/// `parent[w]` by multiple processors are benign — each candidate value
/// yields a valid tree — so the implementation only needs atomicity per
/// cell, never a global lock.
#[derive(Debug)]
pub struct AtomicU32Array {
    cells: Box<[AtomicU32]>,
}

impl Default for AtomicU32Array {
    /// An empty array; grow it with [`AtomicU32Array::ensure_len`].
    fn default() -> Self {
        Self::new(0, 0)
    }
}

impl AtomicU32Array {
    /// An array of `len` cells, each initialized to `init`.
    pub fn new(len: usize, init: u32) -> Self {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, || AtomicU32::new(init));
        Self {
            cells: v.into_boxed_slice(),
        }
    }

    /// Builds from an existing vector of plain values.
    pub fn from_vec(values: Vec<u32>) -> Self {
        Self {
            cells: values.into_iter().map(AtomicU32::new).collect(),
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the array has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Atomic load of cell `i`.
    #[inline]
    pub fn load(&self, i: usize, order: Ordering) -> u32 {
        self.cells[i].load(order)
    }

    /// Atomic store to cell `i`.
    #[inline]
    pub fn store(&self, i: usize, value: u32, order: Ordering) {
        self.cells[i].store(value, order)
    }

    /// Atomic compare-exchange on cell `i`; returns `Ok(previous)` on
    /// success and `Err(actual)` on failure.
    #[inline]
    pub fn compare_exchange(
        &self,
        i: usize,
        current: u32,
        new: u32,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u32, u32> {
        self.cells[i].compare_exchange(current, new, success, failure)
    }

    /// Convenience claim: CAS cell `i` from `empty` to `value` with
    /// Acquire/Release ordering; returns true when this caller won.
    #[inline]
    pub fn try_claim(&self, i: usize, empty: u32, value: u32) -> bool {
        self.cells[i]
            .compare_exchange(empty, value, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Direct access to a cell (for fetch-ops not wrapped here).
    #[inline]
    pub fn cell(&self, i: usize) -> &AtomicU32 {
        &self.cells[i]
    }

    /// Snapshots the array into a plain vector (not atomic as a whole;
    /// callers synchronize externally, e.g. after a team join).
    pub fn snapshot(&self) -> Vec<u32> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Snapshots the first `n` cells (workspace arrays are grown, not
    /// shrunk, so the live prefix is usually shorter than `len`).
    pub fn snapshot_prefix(&self, n: usize) -> Vec<u32> {
        self.cells[..n]
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Stores `value` into the first `n` cells (sequential; for
    /// re-initializing a reused array between runs).
    pub fn fill_prefix(&self, n: usize, value: u32) {
        for c in &self.cells[..n] {
            c.store(value, Ordering::Relaxed);
        }
    }

    /// Grows the array to at least `n` cells (geometric, so repeated
    /// engine runs over growing graphs reallocate O(log n) times); new
    /// and existing cell contents are unspecified — callers re-init the
    /// prefix they use. No-op when capacity suffices.
    pub fn ensure_len(&mut self, n: usize) {
        self.ensure_len_with(n, false);
    }

    /// [`ensure_len`](Self::ensure_len) with an optional
    /// transparent-hugepage hint: when `huge` is set, a fresh allocation
    /// is advised with [`crate::mem::advise_hugepages`] *before* the
    /// cells are initialized, so the initializing writes — the first
    /// touch — fault huge pages directly. The hint only applies when
    /// this call actually reallocates.
    pub fn ensure_len_with(&mut self, n: usize, huge: bool) {
        if self.cells.len() >= n {
            return;
        }
        let target = n.max(self.cells.len() * 2);
        let mut v: Vec<AtomicU32> = Vec::with_capacity(target);
        if huge {
            crate::mem::advise_hugepages(
                v.as_ptr() as *const u8,
                target * std::mem::size_of::<AtomicU32>(),
            );
        }
        v.resize_with(target, || AtomicU32::new(0));
        self.cells = v.into_boxed_slice();
    }

    /// Hints the CPU to pull cell `i` toward L1 (no-op out of range).
    #[inline]
    pub fn prefetch(&self, i: usize) {
        if let Some(cell) = self.cells.get(i) {
            crate::mem::prefetch_read(cell as *const AtomicU32);
        }
    }
}

impl From<AtomicU32Array> for Vec<u32> {
    fn from(arr: AtomicU32Array) -> Self {
        arr.cells
            .into_vec()
            .into_iter()
            .map(|c| c.into_inner())
            .collect()
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn new_initializes_all_cells() {
        let a = AtomicU32Array::new(5, 7);
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
        assert_eq!(a.snapshot(), vec![7; 5]);
    }

    #[test]
    fn store_and_load() {
        let a = AtomicU32Array::new(3, 0);
        a.store(1, 42, Ordering::Relaxed);
        assert_eq!(a.load(1, Ordering::Relaxed), 42);
        assert_eq!(a.load(0, Ordering::Relaxed), 0);
    }

    #[test]
    fn claim_is_exclusive() {
        let a = AtomicU32Array::new(1, u32::MAX);
        assert!(a.try_claim(0, u32::MAX, 5));
        assert!(!a.try_claim(0, u32::MAX, 6));
        assert_eq!(a.load(0, Ordering::Relaxed), 5);
    }

    #[test]
    fn concurrent_claims_have_one_winner_per_cell() {
        const P: usize = 8;
        const N: usize = if cfg!(miri) { 64 } else { 1000 };
        let a = AtomicU32Array::new(N, u32::MAX);
        let wins: Vec<std::sync::atomic::AtomicUsize> = (0..P)
            .map(|_| std::sync::atomic::AtomicUsize::new(0))
            .collect();
        crossbeam::thread::scope(|s| {
            for rank in 0..P {
                let a = &a;
                let wins = &wins;
                s.spawn(move |_| {
                    for i in 0..N {
                        if a.try_claim(i, u32::MAX, rank as u32) {
                            wins[rank].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        let total: usize = wins.iter().map(|w| w.load(Ordering::Relaxed)).sum();
        assert_eq!(total, N, "every cell claimed exactly once");
        // And every cell holds a valid claimant id.
        for i in 0..N {
            assert!((a.load(i, Ordering::Relaxed) as usize) < P);
        }
    }

    #[test]
    fn ensure_len_with_hugepages_grows_and_zeroes() {
        let mut a = AtomicU32Array::new(0, 0);
        a.ensure_len_with(1000, true);
        assert!(a.len() >= 1000);
        assert!(a.snapshot_prefix(1000).iter().all(|&v| v == 0));
        // Growing again without the hint keeps contents usable.
        a.store(5, 42, Ordering::Relaxed);
        a.ensure_len_with(100, false);
        assert_eq!(a.load(5, Ordering::Relaxed), 42);
    }

    #[test]
    fn prefetch_tolerates_out_of_range() {
        let a = AtomicU32Array::new(4, 0);
        a.prefetch(0);
        a.prefetch(3);
        a.prefetch(4_000_000);
    }

    #[test]
    fn from_vec_and_into_vec_roundtrip() {
        let a = AtomicU32Array::from_vec(vec![1, 2, 3]);
        let v: Vec<u32> = a.into();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
