//! Centralized sense-reversing software barrier.
//!
//! The paper's experiments use software barriers (Bader & JáJá's SIMPLE
//! library) rather than pthread barriers; this is the standard
//! sense-reversing construction. Each participant flips a private sense
//! and spins until the shared sense matches it; the last arrival resets
//! the count and publishes the new sense, releasing everyone at once.

use std::cell::Cell;

use crate::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use crate::sync::Backoff;

/// A reusable barrier for a fixed team of `p` participants.
///
/// Waiters spin briefly and then yield, so the barrier stays correct (if
/// slower) when threads outnumber hardware cores — important both for the
/// oversubscribed CI host and for the paper's p up to 14.
#[derive(Debug)]
pub struct SenseBarrier {
    participants: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    generations: AtomicU64,
}

/// Per-thread barrier state (the private sense flag).
///
/// Each participating thread must own exactly one `BarrierToken` and pass
/// it to every [`SenseBarrier::wait`] call; sharing a token between
/// threads breaks the protocol.
#[derive(Debug, Default)]
pub struct BarrierToken {
    sense: Cell<bool>,
}

impl BarrierToken {
    /// A fresh token (initial sense `false`, matching a fresh barrier).
    pub fn new() -> Self {
        Self::default()
    }

    /// A token whose private sense is pre-set to `sense`.
    ///
    /// Used by the persistent executor: a thread joining a long-lived
    /// barrier between jobs must start from the barrier's *current*
    /// sense (see [`SenseBarrier::current_sense`]), not from `false`,
    /// or its first `wait` would fall through an already-completed
    /// episode.
    pub fn with_sense(sense: bool) -> Self {
        Self {
            sense: Cell::new(sense),
        }
    }
}

impl SenseBarrier {
    /// A barrier for `participants` threads.
    ///
    /// # Panics
    ///
    /// Panics if `participants == 0`.
    pub fn new(participants: usize) -> Self {
        assert!(participants > 0, "barrier needs at least one participant");
        Self {
            participants,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            generations: AtomicU64::new(0),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.participants
    }

    /// Number of completed barrier episodes (for tests and the model's B
    /// counter).
    pub fn generations(&self) -> u64 {
        self.generations.load(Ordering::Acquire)
    }

    /// The barrier's current shared sense.
    ///
    /// Only meaningful while the barrier is quiescent (no episode in
    /// flight). The executor reads it when handing a job to the team so
    /// each rank can mint a [`BarrierToken::with_sense`] token that is
    /// consistent with however many episodes previous jobs completed:
    /// no new episode can finish before every rank has entered its
    /// first `wait`, so a value read between jobs stays valid.
    pub fn current_sense(&self) -> bool {
        self.sense.load(Ordering::Acquire)
    }

    /// Blocks until all `participants` threads have called `wait` with
    /// their own token. Returns `true` on exactly one thread per episode
    /// (the last arrival), like `std::sync::Barrier`.
    pub fn wait(&self, token: &BarrierToken) -> bool {
        let my_sense = !token.sense.get();
        token.sense.set(my_sense);
        // AcqRel: the increment must not be reordered with the caller's
        // preceding writes (they must be visible to whoever observes the
        // count), and the last arrival's reads below synchronize with
        // earlier arrivals' increments.
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.participants {
            self.count.store(0, Ordering::Relaxed);
            self.generations.fetch_add(1, Ordering::Release);
            // Publishing the sense releases all spinners; Release pairs
            // with their Acquire loads so every pre-barrier write is
            // visible after the barrier.
            self.sense.store(my_sense, Ordering::Release);
            true
        } else {
            // Backoff escalates to yields for the oversubscribed (or
            // long-tail) case: let the owner of the core run.
            let mut backoff = Backoff::new();
            while self.sense.load(Ordering::Acquire) != my_sense {
                backoff.snooze();
            }
            false
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_participant_never_blocks() {
        let b = SenseBarrier::new(1);
        let t = BarrierToken::new();
        for i in 1..=5u64 {
            assert!(b.wait(&t));
            assert_eq!(b.generations(), i);
        }
    }

    #[test]
    fn phases_are_separated() {
        // Classic barrier test: no thread may enter phase k + 1 while
        // another is still in phase k.
        const P: usize = 4;
        const PHASES: usize = if cfg!(miri) { 4 } else { 25 };
        let barrier = SenseBarrier::new(P);
        let in_phase = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    let token = BarrierToken::new();
                    for phase in 0..PHASES {
                        let seen = in_phase.fetch_add(1, Ordering::AcqRel) + 1;
                        assert!(seen <= P, "phase {phase} overlap: {seen} > {P}");
                        barrier.wait(&token);
                        in_phase.fetch_sub(1, Ordering::AcqRel);
                        barrier.wait(&token);
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(barrier.generations(), 2 * PHASES as u64);
    }

    #[test]
    fn exactly_one_leader_per_episode() {
        const P: usize = 3;
        const EPISODES: usize = if cfg!(miri) { 5 } else { 40 };
        let barrier = SenseBarrier::new(P);
        let leaders = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    let token = BarrierToken::new();
                    for _ in 0..EPISODES {
                        if barrier.wait(&token) {
                            leaders.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(leaders.load(Ordering::Relaxed), EPISODES);
    }

    #[test]
    fn writes_before_barrier_visible_after() {
        const P: usize = 4;
        let barrier = SenseBarrier::new(P);
        let slots: Vec<AtomicUsize> = (0..P).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for rank in 0..P {
                let slots = &slots;
                let barrier = &barrier;
                s.spawn(move |_| {
                    let token = BarrierToken::new();
                    slots[rank].store(rank + 1, Ordering::Relaxed);
                    barrier.wait(&token);
                    let sum: usize = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                    assert_eq!(sum, (1..=P).sum::<usize>());
                });
            }
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        SenseBarrier::new(0);
    }
}
