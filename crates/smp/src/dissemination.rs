//! Dissemination barrier (Mellor-Crummey & Scott).
//!
//! The centralized sense-reversing barrier ([`crate::SenseBarrier`])
//! funnels every arrival through one cache line, which is fine at the
//! paper's p = 8 but starts to bite toward the E4500's 14 processors
//! and beyond. The dissemination barrier spreads the traffic: in round
//! k, thread i signals thread (i + 2ᵏ) mod p and waits for a signal
//! from (i − 2ᵏ) mod p; after ⌈log₂ p⌉ rounds every thread has
//! transitively heard from every other.
//!
//! Signals are monotone per-(thread, round) counters, so episodes never
//! race on flag reuse — a thread in episode e waits until its round-k
//! counter reaches e.

use std::cell::Cell;

use crate::pad::CacheAligned;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::Backoff;

/// A dissemination barrier for a fixed team of `p` threads.
#[derive(Debug)]
pub struct DisseminationBarrier {
    p: usize,
    rounds: usize,
    /// `flags[i][k]`: signals received by thread i in round k, across
    /// all episodes.
    flags: Vec<Vec<CacheAligned<AtomicU64>>>,
}

/// Per-thread state: the thread's id and its episode counter.
#[derive(Debug)]
pub struct DisseminationToken {
    id: usize,
    episode: Cell<u64>,
}

impl DisseminationBarrier {
    /// A barrier for `p` threads.
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "barrier needs at least one participant");
        let rounds = usize::BITS as usize - (p - 1).leading_zeros() as usize;
        let flags = (0..p)
            .map(|_| {
                (0..rounds.max(1))
                    .map(|_| CacheAligned::new(AtomicU64::new(0)))
                    .collect()
            })
            .collect();
        Self { p, rounds, flags }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.p
    }

    /// The token for thread `id` (each of `0..p` exactly once).
    ///
    /// # Panics
    ///
    /// Panics if `id >= p`.
    pub fn token(&self, id: usize) -> DisseminationToken {
        assert!(id < self.p, "thread id out of range");
        DisseminationToken {
            id,
            episode: Cell::new(0),
        }
    }

    /// Blocks until all `p` threads have called `wait` for this episode.
    pub fn wait(&self, token: &DisseminationToken) {
        if self.p == 1 {
            return;
        }
        let episode = token.episode.get() + 1;
        token.episode.set(episode);
        for k in 0..self.rounds {
            let partner = (token.id + (1usize << k)) % self.p;
            // Signal: Release pairs with the partner's Acquire wait, so
            // all writes before our arrival are visible to it.
            self.flags[partner][k].0.fetch_add(1, Ordering::Release);
            let mine = &self.flags[token.id][k].0;
            let mut backoff = Backoff::new();
            while mine.load(Ordering::Acquire) < episode {
                backoff.snooze();
            }
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_thread_is_a_noop() {
        let b = DisseminationBarrier::new(1);
        let t = b.token(0);
        for _ in 0..5 {
            b.wait(&t);
        }
    }

    #[test]
    fn phases_are_separated() {
        for p in [2usize, 3, 4, 7] {
            let barrier = DisseminationBarrier::new(p);
            let in_phase = AtomicUsize::new(0);
            crossbeam::thread::scope(|s| {
                for id in 0..p {
                    let barrier = &barrier;
                    let in_phase = &in_phase;
                    s.spawn(move |_| {
                        let token = barrier.token(id);
                        for phase in 0..25 {
                            let seen = in_phase.fetch_add(1, Ordering::AcqRel) + 1;
                            assert!(seen <= p, "p={p} phase {phase}: overlap");
                            barrier.wait(&token);
                            in_phase.fetch_sub(1, Ordering::AcqRel);
                            barrier.wait(&token);
                        }
                    });
                }
            })
            .unwrap();
        }
    }

    #[test]
    fn writes_published_across_the_barrier() {
        const P: usize = 5;
        let barrier = DisseminationBarrier::new(P);
        let slots: Vec<AtomicUsize> = (0..P).map(|_| AtomicUsize::new(0)).collect();
        crossbeam::thread::scope(|s| {
            for id in 0..P {
                let barrier = &barrier;
                let slots = &slots;
                s.spawn(move |_| {
                    let token = barrier.token(id);
                    slots[id].store(id + 1, Ordering::Relaxed);
                    barrier.wait(&token);
                    let sum: usize = slots.iter().map(|s| s.load(Ordering::Relaxed)).sum();
                    assert_eq!(sum, (1..=P).sum::<usize>());
                });
            }
        })
        .unwrap();
    }

    #[test]
    fn many_episodes_do_not_wrap() {
        const P: usize = 3;
        let barrier = DisseminationBarrier::new(P);
        let counter = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            for id in 0..P {
                let barrier = &barrier;
                let counter = &counter;
                s.spawn(move |_| {
                    let rounds = if cfg!(miri) { 8 } else { 200 };
                    let token = barrier.token(id);
                    for round in 1..=rounds {
                        counter.fetch_add(1, Ordering::AcqRel);
                        barrier.wait(&token);
                        assert_eq!(counter.load(Ordering::Acquire), round * P);
                        barrier.wait(&token);
                    }
                });
            }
        })
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn token_id_checked() {
        DisseminationBarrier::new(2).token(2);
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn zero_participants_rejected() {
        DisseminationBarrier::new(0);
    }
}
