//! A shared pool of persistent [`Executor`] teams with lease/return
//! semantics.
//!
//! The multi-tenant job service shards the machine's cores into several
//! long-lived teams (e.g. one 4-wide and two 2-wide) and hands them out
//! to jobs one at a time. [`ExecutorPool`] owns those teams;
//! [`ExecutorPool::lease`] blocks until a team is idle and checks one
//! out as an RAII [`ExecutorLease`] that returns the team on drop —
//! including when the leasing job panics, which is what keeps one
//! poisoned job from shrinking the pool forever.
//!
//! Leasing prefers the idle team whose width is *closest to the
//! requested size* (exact match first, then the smallest wider team,
//! then the widest narrower one), so an adaptive sizing oracle can ask
//! for "about p processors" and the pool does the best it currently
//! can without holding the job hostage to a busy perfect-fit team.
//!
//! The pool is also *elastic*: [`ExecutorPool::try_resize_team`]
//! replaces an **idle** team's executor with one of a different width,
//! so a controller can widen teams under sustained backlog and narrow
//! teams that sit idle. A leased team can never be resized — the lease
//! owns the executor, and the resize protocol only ever touches teams
//! currently parked in the idle set (checked and removed under the pool
//! lock, so a resize and a lease can never both claim one team).

use std::ops::Deref;

use crate::executor::Executor;
use crate::sync::{Condvar, Mutex};

struct PoolState {
    /// Teams not currently leased, tagged with their stable team id
    /// (the index into [`ExecutorPool::team_sizes`] each team was
    /// created from — observability needs a name that survives the
    /// team's travels through leases).
    idle: Vec<(usize, Executor)>,
    /// Current team widths, indexed by team id. Mutable because
    /// [`ExecutorPool::try_resize_team`] rebuilds teams at new widths;
    /// an entry may briefly disagree with a mid-resize team, which is
    /// fine because such a team is not in `idle` and cannot be leased.
    sizes: Vec<usize>,
}

/// A fixed set of persistent teams, checked out one lease at a time.
///
/// ```
/// use st_smp::ExecutorPool;
///
/// let pool = ExecutorPool::new([2, 1]);
/// assert_eq!(pool.num_teams(), 2);
/// let lease = pool.lease(2);            // exact fit
/// assert_eq!(lease.size(), 2);
/// let ranks = lease.run(|ctx| ctx.rank());
/// assert_eq!(ranks, vec![0, 1]);
/// drop(lease);                          // team returns to the pool
/// assert_eq!(pool.idle_teams(), 2);
/// ```
pub struct ExecutorPool {
    state: Mutex<PoolState>,
    /// Signals lease waiters that a team was returned.
    returned: Condvar,
    /// Number of teams — fixed for the pool's lifetime (elastic resizes
    /// change widths, never the team count).
    num_teams: usize,
}

impl std::fmt::Debug for ExecutorPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorPool")
            .field("sizes", &self.team_sizes())
            .field("idle", &self.idle_teams())
            .finish()
    }
}

impl ExecutorPool {
    /// Builds a pool with one persistent team per entry of
    /// `team_sizes`, spawning all worker threads up front.
    ///
    /// # Panics
    ///
    /// Panics if `team_sizes` is empty or contains a zero.
    pub fn new(team_sizes: impl IntoIterator<Item = usize>) -> Self {
        let mut sizes: Vec<usize> = team_sizes.into_iter().collect();
        assert!(!sizes.is_empty(), "pool needs at least one team");
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        let idle: Vec<(usize, Executor)> = sizes
            .iter()
            .enumerate()
            .map(|(id, &p)| (id, Executor::new(p)))
            .collect();
        let num_teams = sizes.len();
        Self {
            state: Mutex::new(PoolState { idle, sizes }),
            returned: Condvar::new(),
            num_teams,
        }
    }

    /// Number of teams owned by the pool (leased or idle).
    pub fn num_teams(&self) -> usize {
        self.num_teams
    }

    /// The current team widths, indexed by team id (snapshot; elastic
    /// resizes may change widths between calls).
    pub fn team_sizes(&self) -> Vec<usize> {
        self.state.lock().sizes.clone()
    }

    /// Total processors across all teams (snapshot, like
    /// [`team_sizes`](Self::team_sizes)).
    pub fn total_processors(&self) -> usize {
        self.state.lock().sizes.iter().sum()
    }

    /// Teams currently idle (snapshot; immediately stale under
    /// concurrency — use for gauges, not decisions).
    pub fn idle_teams(&self) -> usize {
        self.state.lock().idle.len()
    }

    /// Checks out the idle team closest in width to `preferred_p`,
    /// blocking until one is available.
    pub fn lease(&self, preferred_p: usize) -> ExecutorLease<'_> {
        let mut s = self.state.lock();
        loop {
            if let Some(i) = best_fit(&s.idle, preferred_p) {
                let (team_id, exec) = s.idle.swap_remove(i);
                return ExecutorLease {
                    pool: self,
                    team_id,
                    exec: Some(exec),
                };
            }
            self.returned.wait(&mut s);
        }
    }

    /// Non-blocking [`lease`](Self::lease): `None` when every team is
    /// out.
    pub fn try_lease(&self, preferred_p: usize) -> Option<ExecutorLease<'_>> {
        let mut s = self.state.lock();
        let i = best_fit(&s.idle, preferred_p)?;
        let (team_id, exec) = s.idle.swap_remove(i);
        Some(ExecutorLease {
            pool: self,
            team_id,
            exec: Some(exec),
        })
    }

    fn give_back(&self, team_id: usize, exec: Executor) {
        let mut s = self.state.lock();
        s.idle.push((team_id, exec));
        drop(s);
        self.returned.notify_all();
    }

    /// Replaces team `team_id`'s executor with a fresh one of width
    /// `new_p`, provided the team is currently idle.
    ///
    /// Returns `false` without side effects when the team is leased,
    /// unknown, mid-resize, or already `new_p` wide. The idle entry is
    /// claimed under the pool lock (so a concurrent lease can never
    /// grab the same team), but the old executor's worker threads are
    /// joined and the new ones spawned *outside* the lock — lessees of
    /// other teams are not stalled by a resize.
    ///
    /// # Panics
    ///
    /// Panics if `new_p` is zero.
    pub fn try_resize_team(&self, team_id: usize, new_p: usize) -> bool {
        assert!(new_p >= 1, "a team needs at least one processor");
        let old = {
            let mut s = self.state.lock();
            if s.sizes.get(team_id).copied() == Some(new_p) {
                return false;
            }
            let Some(i) = s.idle.iter().position(|(id, _)| *id == team_id) else {
                return false;
            };
            s.idle.swap_remove(i).1
        };
        // Joining the old workers and spawning the new team happens
        // unlocked; the team id is simply absent from `idle` meanwhile,
        // exactly as if it were leased.
        drop(old);
        let exec = Executor::new(new_p);
        let mut s = self.state.lock();
        s.sizes[team_id] = new_p;
        s.idle.push((team_id, exec));
        drop(s);
        self.returned.notify_all();
        true
    }
}

/// Index of the best idle team for a `preferred_p` request: exact width,
/// else the narrowest team at least as wide, else the widest one.
fn best_fit(idle: &[(usize, Executor)], preferred_p: usize) -> Option<usize> {
    let mut wider: Option<(usize, usize)> = None; // (index, width)
    let mut widest: Option<(usize, usize)> = None;
    for (i, (_, e)) in idle.iter().enumerate() {
        let w = e.size();
        if w == preferred_p {
            return Some(i);
        }
        if w > preferred_p && wider.is_none_or(|(_, bw)| w < bw) {
            wider = Some((i, w));
        }
        if widest.is_none_or(|(_, bw)| w > bw) {
            widest = Some((i, w));
        }
    }
    wider.or(widest).map(|(i, _)| i)
}

/// A checked-out team; dereferences to the [`Executor`] and returns it
/// to the pool on drop (panic-safe: an unwinding job still runs the
/// drop, so the team is never lost).
pub struct ExecutorLease<'a> {
    pool: &'a ExecutorPool,
    team_id: usize,
    exec: Option<Executor>,
}

impl ExecutorLease<'_> {
    /// The leased team's stable id: its index into
    /// [`ExecutorPool::team_sizes`] (0 = widest team). Ids survive
    /// lease/return cycles, so telemetry can attribute jobs to teams.
    pub fn team_id(&self) -> usize {
        self.team_id
    }
}

impl Deref for ExecutorLease<'_> {
    type Target = Executor;

    fn deref(&self) -> &Executor {
        self.exec.as_ref().expect("lease holds a team until drop")
    }
}

impl std::fmt::Debug for ExecutorLease<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutorLease")
            .field("team", &self.team_id)
            .field("p", &self.size())
            .finish()
    }
}

impl Drop for ExecutorLease<'_> {
    fn drop(&mut self) {
        if let Some(exec) = self.exec.take() {
            self.pool.give_back(self.team_id, exec);
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn exact_fit_preferred() {
        let pool = ExecutorPool::new([4, 2, 1]);
        let l = pool.lease(2);
        assert_eq!(l.size(), 2);
        let l2 = pool.lease(2); // 2-wide team is out: narrowest wider team wins
        assert_eq!(l2.size(), 4);
        let l3 = pool.lease(2); // only the 1-wide team remains
        assert_eq!(l3.size(), 1);
    }

    #[test]
    fn lease_blocks_until_return() {
        let pool = ExecutorPool::new([1]);
        let lease = pool.lease(1);
        assert!(pool.try_lease(1).is_none());
        let done = AtomicUsize::new(0);
        std::thread::scope(|s| {
            s.spawn(|| {
                let l = pool.lease(1); // blocks until the main thread drops
                done.store(1, Ordering::Release);
                drop(l);
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(done.load(Ordering::Acquire), 0, "lease returned early");
            drop(lease);
        });
        assert_eq!(done.load(Ordering::Acquire), 1);
        assert_eq!(pool.idle_teams(), 1);
    }

    #[test]
    fn panicking_job_returns_the_team() {
        let pool = ExecutorPool::new([2]);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let lease = pool.lease(2);
            lease.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The lease's drop ran during unwinding; the team is back and
        // still usable (Executor survives panicked jobs).
        assert_eq!(pool.idle_teams(), 1);
        let l = pool.lease(2);
        assert_eq!(l.run(|ctx| ctx.rank()), vec![0, 1]);
    }

    #[test]
    fn concurrent_lessees_share_the_pool() {
        let pool = ExecutorPool::new([2, 1, 1]);
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10 {
                        let lease = pool.lease(2);
                        let p = lease.size();
                        lease.run(|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                        assert!(p == 1 || p == 2);
                    }
                });
            }
        });
        assert_eq!(pool.idle_teams(), 3);
        assert!(total.load(Ordering::Relaxed) >= 40);
    }

    #[test]
    fn team_ids_are_stable_across_lease_cycles() {
        let pool = ExecutorPool::new([4, 2, 1]);
        // Ids index team_sizes: 0 = 4-wide, 1 = 2-wide, 2 = 1-wide.
        let a = pool.lease(4);
        assert_eq!((a.team_id(), a.size()), (0, 4));
        let b = pool.lease(2);
        assert_eq!((b.team_id(), b.size()), (1, 2));
        drop(a);
        drop(b);
        // Re-leasing after returns keeps the id/width pairing.
        let c = pool.lease(1);
        assert_eq!((c.team_id(), c.size()), (2, 1));
        let d = pool.lease(2);
        assert_eq!((d.team_id(), d.size()), (1, 2));
        assert_eq!(pool.team_sizes()[d.team_id()], d.size());
    }

    #[test]
    fn resize_changes_width_of_idle_team() {
        let pool = ExecutorPool::new([2, 1]);
        // Team 0 is the 2-wide one; grow it to 4 and run on it.
        assert!(pool.try_resize_team(0, 4));
        assert_eq!(pool.team_sizes(), vec![4, 1]);
        assert_eq!(pool.total_processors(), 5);
        let l = pool.lease(4);
        assert_eq!((l.team_id(), l.size()), (0, 4));
        assert_eq!(l.run(|ctx| ctx.rank()), vec![0, 1, 2, 3]);
        drop(l);
        // Shrink it back below its construction width.
        assert!(pool.try_resize_team(0, 1));
        assert_eq!(pool.team_sizes(), vec![1, 1]);
        let l = pool.lease(4);
        assert_eq!(l.size(), 1, "widest available after the shrink");
    }

    #[test]
    fn resize_refuses_leased_unknown_and_noop() {
        let pool = ExecutorPool::new([2]);
        assert!(!pool.try_resize_team(0, 2), "same width is a no-op");
        assert!(!pool.try_resize_team(7, 4), "unknown team id");
        let lease = pool.lease(2);
        assert!(!pool.try_resize_team(0, 4), "a leased team cannot resize");
        assert_eq!(pool.team_sizes(), vec![2], "refusal leaves widths alone");
        drop(lease);
        assert!(pool.try_resize_team(0, 4));
        assert_eq!(pool.team_sizes(), vec![4]);
        let l = pool.lease(4);
        assert_eq!(l.run(|ctx| ctx.rank()).len(), 4);
    }

    #[test]
    fn resize_races_leases_without_losing_teams() {
        let pool = ExecutorPool::new([2, 1]);
        std::thread::scope(|s| {
            s.spawn(|| {
                for p in [4, 2, 3, 1, 2] {
                    pool.try_resize_team(0, p);
                }
            });
            s.spawn(|| {
                for _ in 0..20 {
                    let lease = pool.lease(2);
                    lease.run(|_| {});
                }
            });
        });
        // Both teams are back and the width metadata matches reality.
        assert_eq!(pool.idle_teams(), 2);
        let sizes = pool.team_sizes();
        let a = pool.lease(sizes[0]);
        let b = pool.lease(sizes[1]);
        assert_eq!(sizes[a.team_id()], a.size());
        assert_eq!(sizes[b.team_id()], b.size());
    }

    #[test]
    #[should_panic(expected = "at least one team")]
    fn empty_pool_rejected() {
        ExecutorPool::new([]);
    }
}
