//! Spin locks.
//!
//! The paper discusses a "straightforward solution \[that\] uses locks to
//! ensure that a tree gets grafted only once", which it finds "slow and
//! not scalable". To reproduce that comparison honestly we provide the
//! locks ourselves: a test-and-test-and-set [`SpinLock`] and a FIFO
//! [`TicketLock`], both with RAII guards (the construction follows Mara
//! Bos, *Rust Atomics and Locks*, ch. 4).

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::Backoff;

/// Test-and-test-and-set spin lock protecting a `T`.
#[derive(Debug, Default)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides exclusive access to the inner value, so it
// can be shared across threads whenever T itself can be sent between
// them.
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// A new unlocked spin lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock, spinning (with escalating yields) until it is
    /// available.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a plain load so the line
            // stays shared until the lock actually looks free.
            if !self.locked.load(Ordering::Relaxed)
                && self
                    .locked
                    .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                    .is_ok()
            {
                return SpinGuard { lock: self };
            }
            backoff.snooze();
        }
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Mutable access without locking (requires `&mut self`, so it is
    /// statically exclusive).
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

/// RAII guard for [`SpinLock`]; releases on drop.
#[derive(Debug)]
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard proves we hold the lock, so access is
        // exclusive.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        // Release pairs with the Acquire in `lock`, publishing all writes
        // made under the lock.
        self.lock.locked.store(false, Ordering::Release);
    }
}

/// FIFO ticket lock protecting a `T`.
///
/// Fairer than [`SpinLock`] under contention (arrivals are served in
/// order), at the cost of more cache traffic. The lock-based SV grafting
/// ablation can use either; both exhibit the serialization the paper
/// describes.
#[derive(Debug, Default)]
pub struct TicketLock<T> {
    next_ticket: AtomicUsize,
    now_serving: AtomicUsize,
    value: UnsafeCell<T>,
}

// SAFETY: same argument as SpinLock.
unsafe impl<T: Send> Sync for TicketLock<T> {}

impl<T> TicketLock<T> {
    /// A new unlocked ticket lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            next_ticket: AtomicUsize::new(0),
            now_serving: AtomicUsize::new(0),
            value: UnsafeCell::new(value),
        }
    }

    /// Acquires the lock in FIFO order.
    pub fn lock(&self) -> TicketGuard<'_, T> {
        let ticket = self.next_ticket.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new();
        while self.now_serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        TicketGuard { lock: self }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

/// RAII guard for [`TicketLock`]; releases on drop.
#[derive(Debug)]
pub struct TicketGuard<'a, T> {
    lock: &'a TicketLock<T>,
}

impl<T> Deref for TicketGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: holding the guard means now_serving == our ticket.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for TicketGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for TicketGuard<'_, T> {
    fn drop(&mut self) {
        let t = self.lock.now_serving.load(Ordering::Relaxed);
        self.lock.now_serving.store(t + 1, Ordering::Release);
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn spinlock_counts_correctly() {
        const P: usize = 4;
        // Miri interprets every instruction; keep its iteration count
        // small enough for CI while the native build stays a stress run.
        const ITERS: usize = if cfg!(miri) { 100 } else { 10_000 };
        let lock = SpinLock::new(0usize);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    for _ in 0..ITERS {
                        *lock.lock() += 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(lock.into_inner(), P * ITERS);
    }

    #[test]
    fn spinlock_try_lock() {
        let lock = SpinLock::new(7);
        {
            let _g = lock.lock();
            assert!(lock.try_lock().is_none());
        }
        let g = lock.try_lock().expect("lock should be free");
        assert_eq!(*g, 7);
    }

    #[test]
    fn spinlock_get_mut() {
        let mut lock = SpinLock::new(1);
        *lock.get_mut() = 9;
        assert_eq!(*lock.lock(), 9);
    }

    #[test]
    fn ticketlock_counts_correctly() {
        const P: usize = 4;
        const ITERS: usize = if cfg!(miri) { 100 } else { 10_000 };
        let lock = TicketLock::new(0usize);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    for _ in 0..ITERS {
                        *lock.lock() += 1;
                    }
                });
            }
        })
        .unwrap();
        assert_eq!(lock.into_inner(), P * ITERS);
    }

    #[test]
    fn guards_give_mutable_access() {
        let lock = SpinLock::new(vec![1, 2]);
        lock.lock().push(3);
        assert_eq!(&*lock.lock(), &[1, 2, 3]);

        let tlock = TicketLock::new(String::from("a"));
        tlock.lock().push('b');
        assert_eq!(&*tlock.lock(), "ab");
    }
}
