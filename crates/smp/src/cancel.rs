//! Cooperative cancellation tokens.
//!
//! A [`CancelToken`] is the control-plane handle a job owner uses to ask
//! a running team to stop: the owner calls [`cancel`](CancelToken::cancel)
//! (or attaches a deadline at construction), and the algorithm checks
//! [`is_cancelled`](CancelToken::is_cancelled) at its natural
//! synchronization boundaries — barrier entries, frontier publications,
//! idle transitions — never in the per-vertex hot path.
//!
//! The default token is **inert**: it carries no allocation, can never
//! fire, and every check is a branch on a `None`. Algorithms therefore
//! take a token unconditionally and pay nothing when cancellation is not
//! in play.
//!
//! Tokens deliberately use `std::sync` directly rather than
//! [`crate::sync`]: they are cross-job control-plane state observed with
//! single relaxed-ish loads, not a lock/barrier protocol the loom models
//! explore, and they must stay constructible outside a loom model (the
//! service hands them across threads that are not part of any team).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline; the token reports cancelled once it passes.
    deadline: Option<Instant>,
}

/// A cheap, cloneable cancellation handle shared between a job's owner
/// and the team running it.
///
/// ```
/// use st_smp::CancelToken;
///
/// let inert = CancelToken::none();
/// assert!(!inert.is_cancelled());      // can never fire
///
/// let token = CancelToken::new();
/// let observer = token.clone();        // same underlying flag
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    inner: Option<Arc<Inner>>,
}

impl CancelToken {
    /// The inert token: never fires, costs nothing. This is the default.
    pub const fn none() -> Self {
        Self { inner: None }
    }

    /// A live token with no deadline; fires only on explicit
    /// [`cancel`](Self::cancel).
    pub fn new() -> Self {
        Self::with_opt_deadline(None)
    }

    /// A live token that additionally fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::with_opt_deadline(Some(deadline))
    }

    fn with_opt_deadline(deadline: Option<Instant>) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            })),
        }
    }

    /// Requests cancellation. Idempotent; a no-op on the inert token.
    pub fn cancel(&self) {
        if let Some(inner) = &self.inner {
            inner.cancelled.store(true, Ordering::Release);
        }
    }

    /// True once [`cancel`](Self::cancel) was called or the deadline
    /// passed. Checked by algorithms at synchronization boundaries.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        match &self.inner {
            None => false,
            Some(inner) => {
                inner.cancelled.load(Ordering::Acquire)
                    || inner.deadline.is_some_and(|d| Instant::now() >= d)
            }
        }
    }

    /// True when [`is_cancelled`](Self::is_cancelled) fired because the
    /// deadline passed (regardless of whether `cancel` was also called).
    /// Lets callers distinguish "deadline exceeded" from "cancelled".
    pub fn deadline_expired(&self) -> bool {
        self.deadline().is_some_and(|d| Instant::now() >= d)
    }

    /// The absolute deadline, when one was attached.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.as_ref().and_then(|i| i.deadline)
    }

    /// True for tokens that can actually fire (i.e. not
    /// [`none`](Self::none)).
    pub fn is_live(&self) -> bool {
        self.inner.is_some()
    }
}

/// Tokens compare by identity: two handles are equal when they observe
/// the same underlying flag (or are both inert). This is what lets
/// configuration structs that carry a token stay `PartialEq`.
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn inert_token_never_fires() {
        let t = CancelToken::none();
        assert!(!t.is_cancelled());
        t.cancel();
        assert!(!t.is_cancelled());
        assert!(!t.is_live());
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn default_is_inert() {
        assert_eq!(CancelToken::default(), CancelToken::none());
    }

    #[test]
    fn explicit_cancel_is_seen_by_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
        assert!(!c.deadline_expired(), "no deadline was attached");
    }

    #[test]
    fn deadline_fires_without_explicit_cancel() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(t.deadline_expired());
        let far = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        far.cancel();
        assert!(far.is_cancelled());
        assert!(!far.deadline_expired());
    }

    #[test]
    fn identity_equality() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_ne!(a, CancelToken::none());
    }
}
