//! Persistent processor team: workers spawned once, parked between jobs.
//!
//! [`run_team`](crate::run_team) spawns and joins `p` OS threads per
//! call, which is fine for one long traversal but dominates latency when
//! many algorithm invocations share a process (batch benchmarks, request
//! serving). [`Executor`] keeps the team alive instead:
//!
//! * `p − 1` worker threads are created once and park on a condition
//!   variable between jobs (rank 0 is the submitting thread itself, so
//!   `p == 1` never spawns anything).
//! * A job is submitted by **epoch/closure handoff**: the submitter
//!   publishes a type-erased closure pointer together with a bumped
//!   epoch under the state mutex, wakes the workers, runs rank 0
//!   inline, and then blocks until every worker has reported back.
//!   Because the submitter cannot return (or unwind) before the last
//!   worker finishes, the closure may borrow the submitter's stack —
//!   the same lifetime guarantee a scoped spawn gives, without the
//!   spawn.
//! * The [`SenseBarrier`] and [`TerminationDetector`] are **owned by
//!   the team** and reused across jobs. Each rank joins a job with a
//!   [`BarrierToken::with_sense`] token minted from the barrier's
//!   current sense, which is stable between jobs (no episode can
//!   complete before every rank has entered its first wait).
//!
//! Panic semantics match `run_team`: a panic on any rank is caught,
//! the submitter still waits for the rest of the team, and then panics
//! with "team worker panicked". The executor itself stays usable after
//! a failed job. As with `run_team`, a panic *between* two barrier
//! waits of the same job deadlocks the team — barriers require all `p`
//! ranks.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::detect::TerminationDetector;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use crate::team::TeamCtx;

/// Type-erased per-rank job body: `call(data, rank, ctx)` invokes the
/// submitter's closure through a raw pointer that stays valid until the
/// submitter observes completion.
#[derive(Clone, Copy)]
struct Job {
    call: for<'a> unsafe fn(*const (), usize, TeamCtx<'a>),
    data: *const (),
}

// SAFETY: `data` points at a closure that is `Sync` (enforced by the
// bounds on `Executor::run`) and outlives the job (the submitter blocks
// until `remaining == 0` before dropping it).
unsafe impl Send for Job {}

struct JobState {
    /// Current job; `Some` exactly while a job is in flight.
    job: Option<Job>,
    /// Bumped once per submission; workers run a job when they see an
    /// epoch they have not seen before.
    epoch: u64,
    /// Workers (ranks `1..p`) still running the current job.
    remaining: usize,
    /// Ranks `1..p` whose job body panicked (rank 0 is tracked by the
    /// submitter directly).
    panicked: usize,
    shutdown: bool,
}

struct Shared {
    p: usize,
    barrier: SenseBarrier,
    detector: TerminationDetector,
    state: Mutex<JobState>,
    /// Signals workers: new epoch or shutdown.
    work_cv: Condvar,
    /// Signals the submitter: `remaining` reached zero.
    done_cv: Condvar,
    /// Serializes concurrent `run` calls from different threads.
    submit: Mutex<()>,
    /// Jobs finished over the executor's lifetime (panicked jobs
    /// included — the whole team still ran them to completion).
    jobs_completed: AtomicU64,
}

/// Per-rank result cell; each rank writes only its own slot, and the
/// submitter reads them only after the completion handshake.
struct ResultSlot<R>(UnsafeCell<Option<R>>);

// SAFETY: writes are rank-disjoint and ordered before the reads by the
// state mutex (release on decrement, acquire on the submitter's wait).
unsafe impl<R: Send> Sync for ResultSlot<R> {}

/// A long-lived team of `p` processors sharing one barrier and one
/// termination detector.
///
/// Submit work with [`run`](Self::run); jobs execute with the same
/// `TeamCtx` API as [`run_team`](crate::run_team) and return per-rank
/// results in rank order. Dropping the executor shuts the workers down
/// and joins them.
///
/// ```
/// use st_smp::Executor;
///
/// let exec = Executor::new(4);
/// let ranks = exec.run(|ctx| ctx.rank());
/// assert_eq!(ranks, vec![0, 1, 2, 3]);
/// // Same team, next job — no threads spawned in between.
/// let doubled = exec.run(|ctx| ctx.rank() * 2);
/// assert_eq!(doubled, vec![0, 2, 4, 6]);
/// ```
pub struct Executor {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("p", &self.shared.p)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Executor {
    /// Creates a team of `p` processors, spawning `p − 1` parked worker
    /// threads (none for `p == 1`).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0`.
    pub fn new(p: usize) -> Self {
        assert!(p > 0, "team needs at least one processor");
        let shared = Arc::new(Shared {
            p,
            barrier: SenseBarrier::new(p),
            detector: TerminationDetector::new(p),
            state: Mutex::new(JobState {
                job: None,
                epoch: 0,
                remaining: 0,
                panicked: 0,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
            submit: Mutex::new(()),
            jobs_completed: AtomicU64::new(0),
        });
        let workers = (1..p)
            .map(|rank| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("st-exec-{rank}"))
                    .spawn(move || worker_loop(&shared, rank))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Team size `p`.
    #[inline]
    pub fn size(&self) -> usize {
        self.shared.p
    }

    /// Number of OS threads backing the team (always `p − 1`; rank 0
    /// runs on the submitting thread).
    pub fn worker_threads(&self) -> usize {
        self.workers.len()
    }

    /// The team-owned barrier (mostly for inspection; jobs use it via
    /// [`TeamCtx::barrier`]).
    pub fn barrier(&self) -> &SenseBarrier {
        &self.shared.barrier
    }

    /// The team-owned termination detector, reused across jobs.
    ///
    /// A job that wants starvation detection calls
    /// [`TerminationDetector::set_threshold`] and
    /// [`TerminationDetector::reset`] before the team starts.
    pub fn detector(&self) -> &TerminationDetector {
        &self.shared.detector
    }

    /// Jobs this team has finished since construction (an observability
    /// lifetime counter; never reset).
    pub fn jobs_completed(&self) -> u64 {
        self.shared.jobs_completed.load(Ordering::Relaxed)
    }

    /// Runs `f` once per rank on the team and returns each rank's
    /// result in rank order. Rank 0 executes inline on the calling
    /// thread; ranks `1..p` execute on the parked workers.
    ///
    /// Concurrent calls from different threads are serialized.
    ///
    /// # Panics
    ///
    /// Panics with "team worker panicked" if `f` panics on any rank
    /// (after the whole team has finished the job). The executor
    /// remains usable afterwards.
    pub fn run<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(TeamCtx<'_>) -> R + Sync,
    {
        let p = self.shared.p;
        let slots: Vec<ResultSlot<R>> = (0..p).map(|_| ResultSlot(UnsafeCell::new(None))).collect();
        let slots_ref = &slots;
        let body = move |rank: usize, ctx: TeamCtx<'_>| {
            let r = f(ctx);
            // SAFETY: each rank writes its own slot exactly once.
            unsafe { *slots_ref[rank].0.get() = Some(r) };
        };

        if p == 1 {
            // No workers exist; run rank 0 inline with no handoff. A
            // panic in `f` propagates with its original payload (like
            // `run_team`'s fast path), but the job must still be counted
            // first: the multi-rank path counts panicked jobs (the whole
            // team ran them), and a `p == 1` team skipping the increment
            // made `jobs_completed` disagree between the two paths —
            // exactly the kind of lifecycle drift the loom executor
            // model pins down.
            let token = BarrierToken::with_sense(self.shared.barrier.current_sense());
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                body(0, TeamCtx::new(0, 1, &self.shared.barrier, &token));
            }));
            drop(body);
            self.shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
            if let Err(payload) = outcome {
                resume_unwind(payload);
            }
            return collect_results(slots);
        }

        let _serialize = self.shared.submit.lock();
        // Read the sense before publishing: no episode of this job can
        // complete until rank 0 (this thread) reaches a barrier, so the
        // value stays valid for every rank's fresh token.
        let sense = self.shared.barrier.current_sense();
        {
            let mut s = self.shared.state.lock();
            debug_assert_eq!(s.remaining, 0, "job submitted while previous in flight");
            s.job = Some(erase(&body));
            s.epoch += 1;
            s.remaining = p - 1;
            s.panicked = 0;
            self.shared.work_cv.notify_all();
        }

        let token = BarrierToken::with_sense(sense);
        let rank0_ok = catch_unwind(AssertUnwindSafe(|| {
            body(0, TeamCtx::new(0, p, &self.shared.barrier, &token));
        }))
        .is_ok();

        // Wait for every worker before touching `body`/`slots` again —
        // this is what makes the raw borrow in `Job` sound.
        let worker_panics = {
            let mut s = self.shared.state.lock();
            while s.remaining > 0 {
                self.shared.done_cv.wait(&mut s);
            }
            s.job = None;
            s.panicked
        };
        self.shared.jobs_completed.fetch_add(1, Ordering::Relaxed);
        if !rank0_ok || worker_panics > 0 {
            panic!("team worker panicked");
        }
        drop(body);
        collect_results(slots)
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        {
            let mut s = self.shared.state.lock();
            s.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn collect_results<R>(slots: Vec<ResultSlot<R>>) -> Vec<R> {
    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("rank produced no result"))
        .collect()
}

/// Erases a per-rank body into a raw (fn, data) pair.
fn erase<W>(w: &W) -> Job
where
    W: for<'a> Fn(usize, TeamCtx<'a>),
{
    unsafe fn call<W>(data: *const (), rank: usize, ctx: TeamCtx<'_>)
    where
        W: for<'b> Fn(usize, TeamCtx<'b>),
    {
        // SAFETY: `data` was produced from `&W` by `erase` and is kept
        // alive by the submitter until the job completes.
        let w = unsafe { &*data.cast::<W>() };
        w(rank, ctx);
    }
    Job {
        call: call::<W>,
        data: (w as *const W).cast(),
    }
}

fn worker_loop(shared: &Shared, rank: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut s = shared.state.lock();
            loop {
                if s.shutdown {
                    return;
                }
                if s.epoch != seen {
                    seen = s.epoch;
                    break s.job.expect("epoch bumped without a job");
                }
                shared.work_cv.wait(&mut s);
            }
        };
        let token = BarrierToken::with_sense(shared.barrier.current_sense());
        let ok = catch_unwind(AssertUnwindSafe(|| {
            // SAFETY: the submitter keeps the closure alive until it
            // sees our decrement below.
            unsafe {
                (job.call)(
                    job.data,
                    rank,
                    TeamCtx::new(rank, shared.p, &shared.barrier, &token),
                )
            }
        }))
        .is_ok();
        let mut s = shared.state.lock();
        if !ok {
            s.panicked += 1;
        }
        s.remaining -= 1;
        if s.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_in_rank_order() {
        let exec = Executor::new(8);
        assert_eq!(
            exec.run(|ctx| ctx.rank() * 10),
            (0..8).map(|r| r * 10).collect::<Vec<_>>()
        );
    }

    #[test]
    fn reuse_across_jobs() {
        let exec = Executor::new(4);
        let jobs = if cfg!(miri) { 5 } else { 50 };
        let total = AtomicUsize::new(0);
        for _ in 0..jobs {
            exec.run(|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 4 * jobs);
    }

    #[test]
    fn barriers_stay_consistent_across_jobs() {
        const P: usize = 3;
        let exec = Executor::new(P);
        let counter = AtomicUsize::new(0);
        for job in 1..=10usize {
            exec.run(|ctx| {
                counter.fetch_add(1, Ordering::AcqRel);
                ctx.barrier();
                assert_eq!(counter.load(Ordering::Acquire), job * P);
                ctx.barrier();
            });
        }
        assert_eq!(exec.barrier().generations(), 20);
    }

    #[test]
    fn single_processor_spawns_no_threads() {
        let exec = Executor::new(1);
        assert_eq!(exec.worker_threads(), 0);
        let r = exec.run(|ctx| {
            assert!(ctx.barrier());
            ctx.rank() + 7
        });
        assert_eq!(r, vec![7]);
    }

    #[test]
    fn drop_mid_idle_joins_cleanly() {
        let exec = Executor::new(6);
        drop(exec); // never ran a job
        let exec = Executor::new(4);
        exec.run(|_| ());
        drop(exec); // workers parked again after a job
    }

    #[test]
    #[should_panic(expected = "team worker panicked")]
    fn worker_panic_propagates() {
        let exec = Executor::new(4);
        exec.run(|ctx| {
            if ctx.rank() == 2 {
                panic!("boom");
            }
        });
    }

    #[test]
    #[should_panic(expected = "team worker panicked")]
    fn rank0_panic_propagates() {
        let exec = Executor::new(3);
        exec.run(|ctx| {
            if ctx.rank() == 0 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn executor_survives_a_panicked_job() {
        let exec = Executor::new(4);
        let failed = catch_unwind(AssertUnwindSafe(|| {
            exec.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(failed.is_err());
        // The team is still intact, barrier included.
        exec.run(|ctx| {
            ctx.barrier();
        });
        assert_eq!(exec.run(|ctx| ctx.rank()), vec![0, 1, 2, 3]);
    }

    #[test]
    fn concurrent_submitters_are_serialized() {
        let exec = Executor::new(4);
        let per_submitter = if cfg!(miri) { 4 } else { 25 };
        let total = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    for _ in 0..per_submitter {
                        exec.run(|_| {
                            total.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 3 * per_submitter * 4);
    }

    #[test]
    fn jobs_completed_counts_every_run() {
        let exec = Executor::new(3);
        assert_eq!(exec.jobs_completed(), 0);
        for _ in 0..5 {
            exec.run(|_| ());
        }
        assert_eq!(exec.jobs_completed(), 5);
        // p == 1 fast path counts too.
        let solo = Executor::new(1);
        solo.run(|_| ());
        assert_eq!(solo.jobs_completed(), 1);
    }

    #[test]
    fn detector_is_shared_and_retunable() {
        let exec = Executor::new(2);
        assert_eq!(exec.detector().processors(), 2);
        exec.detector().set_threshold(Some(2));
        exec.detector().reset();
        exec.detector().set_threshold(None);
    }

    /// Retuning the persistent team's detector between jobs must change
    /// the verdict of the next job (the loom model
    /// `executor::set_threshold_between_jobs_changes_verdict` checks
    /// every interleaving; this is the plain-build smoke version).
    #[test]
    fn set_threshold_between_jobs_flips_the_verdict() {
        use crate::IdleOutcome;
        use std::time::Duration;
        let exec = Executor::new(2);
        let timeout = Duration::from_millis(1);
        exec.run(|_| loop {
            match exec.detector().idle_wait(timeout) {
                IdleOutcome::AllDone => break,
                IdleOutcome::Retry => continue,
                IdleOutcome::Starved => panic!("job 1 must not starve"),
            }
        });
        assert!(exec.detector().is_done());

        exec.detector().reset();
        exec.detector().set_threshold(Some(1));
        exec.run(|_| {
            assert_eq!(exec.detector().idle_wait(timeout), IdleOutcome::Starved);
        });
        assert!(exec.detector().is_starved());
        assert_eq!(exec.detector().stats().starvation_trips, 1);
    }

    /// Regression for the p == 1 lifecycle defect the loom harness
    /// flagged: a panicking solo job used to skip the `jobs_completed`
    /// bump that the multi-rank path performs, so the team's books
    /// diverged by profile. The panic must propagate AND count.
    #[test]
    fn solo_panicked_job_is_still_counted() {
        let solo = Executor::new(1);
        let r = catch_unwind(AssertUnwindSafe(|| {
            solo.run(|_| panic!("boom"));
        }));
        assert!(r.is_err(), "solo panic must propagate");
        assert_eq!(solo.jobs_completed(), 1, "panicked job must count");
        solo.run(|_| ());
        assert_eq!(solo.jobs_completed(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        Executor::new(0);
    }
}
