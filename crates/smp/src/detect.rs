//! Starvation / termination detection.
//!
//! From §2 of the paper: "The detecting mechanism uses condition
//! variables to coordinate the state of processing. Whenever a processor
//! becomes idle and finds no work to steal, it will go to sleep for a
//! duration on a condition variable. Once the number of sleeping
//! processors reaches a certain threshold, we halt the SMP traversal
//! algorithm, merge the grown spanning subtree into a super-vertex, and
//! start a different algorithm."
//!
//! [`TerminationDetector`] implements both outcomes the sleeping count
//! encodes:
//!
//! * **all p asleep** — quiescence: every processor's queue is empty and
//!   no steal can succeed, so the traversal of the reachable region is
//!   complete ([`IdleOutcome::AllDone`]).
//! * **threshold ≤ asleep < p** — starvation: most processors cannot find
//!   work while a few crawl through a high-diameter region; the traversal
//!   should abort and the driver should switch algorithms
//!   ([`IdleOutcome::Starved`]).
//!
//! A sleeping processor that is woken by [`notify_work`]
//! (or by its timeout) re-checks the queues ([`IdleOutcome::Retry`]).
//!
//! [`notify_work`]: TerminationDetector::notify_work

use std::time::Duration;

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{Condvar, Mutex};

/// Cumulative detector activity since the last
/// [`TerminationDetector::reset_stats`].
///
/// Every sleep registration is eventually paired with a wake (including
/// the degenerate register-and-return paths), so `sleeps == wakes`
/// whenever the team is quiescent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Times a processor registered as sleeping.
    pub sleeps: u64,
    /// Times a sleeping processor left the detector (woken, timed out,
    /// or returning immediately with a verdict).
    pub wakes: u64,
    /// Times the starvation threshold tripped (counted once per trip,
    /// on the processor that crossed it).
    pub starvation_trips: u64,
}

/// Why [`TerminationDetector::idle_wait`] returned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdleOutcome {
    /// All processors went idle simultaneously: the traversal is
    /// complete.
    AllDone,
    /// The starvation threshold was crossed: abort and fall back.
    Starved,
    /// Woken (by new work or timeout); re-scan the queues and try again.
    Retry,
}

#[derive(Debug, Default)]
struct DetectorState {
    sleeping: usize,
    done: bool,
    starved: bool,
    work_epoch: u64,
}

/// Shared detector for a team of `p` processors.
#[derive(Debug)]
pub struct TerminationDetector {
    p: usize,
    /// Starvation threshold; `usize::MAX` disables it. Atomic so a
    /// long-lived, team-owned detector can be retuned between jobs
    /// (see [`set_threshold`](Self::set_threshold)) without `&mut`.
    threshold: AtomicUsize,
    state: Mutex<DetectorState>,
    cv: Condvar,
    /// Lock-free mirror of `state.sleeping` so busy processors can decide
    /// whether a `notify_work` is worth the lock without taking it.
    sleeping_hint: AtomicUsize,
    /// Cumulative sleep registrations (survives per-round [`reset`]).
    ///
    /// [`reset`]: Self::reset
    sleeps: AtomicU64,
    /// Cumulative wakes (see [`DetectorStats::wakes`]).
    wakes: AtomicU64,
    /// Cumulative starvation trips.
    starvation_trips: AtomicU64,
}

impl TerminationDetector {
    /// A detector for `p` processors with the starvation `threshold`
    /// disabled (only quiescence is detected).
    pub fn new(p: usize) -> Self {
        Self::with_threshold(p, usize::MAX)
    }

    /// A detector for `p` processors that reports
    /// [`IdleOutcome::Starved`] once `threshold` processors sleep
    /// simultaneously (while at least one remains busy).
    ///
    /// # Panics
    ///
    /// Panics if `p == 0` or `threshold == 0`.
    pub fn with_threshold(p: usize, threshold: usize) -> Self {
        assert!(p > 0, "detector needs at least one processor");
        assert!(threshold > 0, "a zero threshold would starve immediately");
        Self {
            p,
            threshold: AtomicUsize::new(threshold),
            state: Mutex::new(DetectorState::default()),
            cv: Condvar::new(),
            sleeping_hint: AtomicUsize::new(0),
            sleeps: AtomicU64::new(0),
            wakes: AtomicU64::new(0),
            starvation_trips: AtomicU64::new(0),
        }
    }

    /// Approximate number of processors currently asleep (may lag; no
    /// locking). Busy processors use this to skip `notify_work` when
    /// nobody is listening.
    pub fn approx_sleeping(&self) -> usize {
        self.sleeping_hint.load(Ordering::Relaxed)
    }

    /// Number of processors in the team.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Reconfigures the starvation threshold (`None` disables it).
    ///
    /// Intended for a detector owned by a persistent executor: each job
    /// sets the threshold it wants before the team starts. Must not
    /// race with `idle_wait` (call while the team is quiescent).
    ///
    /// # Panics
    ///
    /// Panics if `threshold == Some(0)`.
    pub fn set_threshold(&self, threshold: Option<usize>) {
        let t = threshold.unwrap_or(usize::MAX);
        assert!(t > 0, "a zero threshold would starve immediately");
        self.threshold.store(t, Ordering::Relaxed);
    }

    /// Called by a processor that has no local work and failed to steal.
    /// Sleeps for at most `timeout` and reports why it woke.
    pub fn idle_wait(&self, timeout: Duration) -> IdleOutcome {
        let mut s = self.state.lock();
        if s.done {
            return IdleOutcome::AllDone;
        }
        if s.starved {
            return IdleOutcome::Starved;
        }
        s.sleeping += 1;
        self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
        self.sleeps.fetch_add(1, Ordering::Relaxed);
        if s.sleeping == self.p {
            // Quiescence: this processor is the last to go idle.
            s.done = true;
            s.sleeping -= 1;
            self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
            self.wakes.fetch_add(1, Ordering::Relaxed);
            self.cv.notify_all();
            return IdleOutcome::AllDone;
        }
        if s.sleeping >= self.threshold.load(Ordering::Relaxed) {
            // Starvation: enough of the team is asleep while someone is
            // still busy.
            s.starved = true;
            s.sleeping -= 1;
            self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
            self.wakes.fetch_add(1, Ordering::Relaxed);
            self.starvation_trips.fetch_add(1, Ordering::Relaxed);
            self.cv.notify_all();
            return IdleOutcome::Starved;
        }
        let epoch = s.work_epoch;
        loop {
            let timed_out = self.cv.wait_for(&mut s, timeout).timed_out();
            if s.done {
                s.sleeping -= 1;
                self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
                self.wakes.fetch_add(1, Ordering::Relaxed);
                return IdleOutcome::AllDone;
            }
            if s.starved {
                s.sleeping -= 1;
                self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
                self.wakes.fetch_add(1, Ordering::Relaxed);
                return IdleOutcome::Starved;
            }
            if timed_out || s.work_epoch != epoch {
                s.sleeping -= 1;
                self.sleeping_hint.store(s.sleeping, Ordering::Relaxed);
                self.wakes.fetch_add(1, Ordering::Relaxed);
                return IdleOutcome::Retry;
            }
        }
    }

    /// Called by a busy processor after making new work stealable; wakes
    /// sleepers so they can retry their steal sweep.
    pub fn notify_work(&self) {
        let mut s = self.state.lock();
        s.work_epoch += 1;
        self.cv.notify_all();
    }

    /// True once quiescence has been observed.
    pub fn is_done(&self) -> bool {
        self.state.lock().done
    }

    /// True once the starvation threshold has fired.
    pub fn is_starved(&self) -> bool {
        self.state.lock().starved
    }

    /// Resets the detector for another traversal round (driver only; must
    /// not race with `idle_wait`). Cumulative [`stats`](Self::stats)
    /// survive this — a multi-round job keeps one running total; use
    /// [`reset_stats`](Self::reset_stats) at job boundaries.
    ///
    /// # Panics
    ///
    /// Panics if any processor is still waiting inside
    /// [`idle_wait`](Self::idle_wait). This was previously only a
    /// `debug_assert`, so a driver bug in a release build would zero
    /// `sleeping` under a live waiter; when that waiter then decremented
    /// on wake, `sleeping` wrapped to `usize::MAX`, permanently
    /// satisfying every threshold comparison — the detector would report
    /// `Starved`/`AllDone` forever after. A loud panic at the call site
    /// that broke the contract is strictly better than that silent
    /// corruption.
    pub fn reset(&self) {
        let mut s = self.state.lock();
        assert_eq!(
            s.sleeping, 0,
            "TerminationDetector::reset while processors are waiting in idle_wait"
        );
        *s = DetectorState::default();
        self.sleeping_hint.store(0, Ordering::Relaxed);
    }

    /// Cumulative activity since the last [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> DetectorStats {
        DetectorStats {
            sleeps: self.sleeps.load(Ordering::Relaxed),
            wakes: self.wakes.load(Ordering::Relaxed),
            starvation_trips: self.starvation_trips.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the cumulative stats (job boundary; must not race with
    /// `idle_wait`).
    pub fn reset_stats(&self) {
        self.sleeps.store(0, Ordering::Relaxed);
        self.wakes.store(0, Ordering::Relaxed);
        self.starvation_trips.store(0, Ordering::Relaxed);
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    const SHORT: Duration = Duration::from_millis(5);
    const LONG: Duration = Duration::from_secs(10);

    #[test]
    fn single_processor_is_immediately_done() {
        let d = TerminationDetector::new(1);
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::AllDone);
        assert!(d.is_done());
    }

    #[test]
    fn all_idle_means_done() {
        const P: usize = 4;
        let d = TerminationDetector::new(P);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    assert_eq!(d.idle_wait(LONG), IdleOutcome::AllDone);
                });
            }
        })
        .unwrap();
        assert!(d.is_done());
        assert!(!d.is_starved());
    }

    #[test]
    fn threshold_triggers_starvation() {
        // 3 of 4 sleeping crosses threshold 3 while the 4th stays busy.
        const P: usize = 4;
        let d = TerminationDetector::with_threshold(P, 3);
        crossbeam::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|_| loop {
                    match d.idle_wait(LONG) {
                        IdleOutcome::Starved => break,
                        IdleOutcome::AllDone => panic!("should starve, not finish"),
                        IdleOutcome::Retry => continue,
                    }
                });
            }
            // The 4th processor never goes idle.
        })
        .unwrap();
        assert!(d.is_starved());
        assert!(!d.is_done());
    }

    #[test]
    fn notify_work_wakes_sleepers_to_retry() {
        let d = TerminationDetector::new(2);
        let retries = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                // First wait should be woken by notify_work -> Retry;
                // second wait coincides with the other processor -> done.
                match d.idle_wait(LONG) {
                    IdleOutcome::Retry => {
                        retries.fetch_add(1, Ordering::Relaxed);
                    }
                    other => panic!("expected retry, got {other:?}"),
                }
                assert_eq!(d.idle_wait(LONG), IdleOutcome::AllDone);
            });
            s.spawn(|_| {
                // Give the first thread time to start sleeping.
                std::thread::sleep(Duration::from_millis(50));
                d.notify_work();
                std::thread::sleep(Duration::from_millis(50));
                assert_eq!(d.idle_wait(LONG), IdleOutcome::AllDone);
            });
        })
        .unwrap();
        assert_eq!(retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn timeout_returns_retry() {
        let d = TerminationDetector::new(2);
        // Only one of two processors idles; its short timeout fires.
        assert_eq!(d.idle_wait(Duration::from_millis(1)), IdleOutcome::Retry);
        assert!(!d.is_done());
    }

    /// `reset` while a processor is parked in `idle_wait` is a driver
    /// bug: zeroing `sleeping` under a live waiter would wrap the count
    /// negative on its way out in release builds. The guard is a real
    /// `assert!` (not `debug_assert!`), so this holds in every profile.
    #[test]
    fn reset_with_live_waiter_panics_in_release_too() {
        let d = TerminationDetector::new(2);
        crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                // Woken by notify_work below once the reset attempt is done.
                assert_eq!(d.idle_wait(LONG), IdleOutcome::Retry);
            });
            // Wait until the sleeper is registered.
            while d.stats().sleeps == 0 {
                std::thread::yield_now();
            }
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.reset()));
            assert!(r.is_err(), "reset must refuse while a waiter sleeps");
            d.notify_work();
        })
        .unwrap();
        // The sleeper's books survived the refused reset.
        let st = d.stats();
        assert_eq!(st.sleeps, st.wakes);
        d.reset(); // quiescent now: allowed
        assert!(!d.is_done());
    }

    #[test]
    fn reset_allows_reuse() {
        let d = TerminationDetector::new(1);
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::AllDone);
        d.reset();
        assert!(!d.is_done());
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::AllDone);
    }

    #[test]
    fn done_sticks_for_late_callers() {
        let d = TerminationDetector::new(1);
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::AllDone);
        // A (hypothetical) late call still sees done.
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::AllDone);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        TerminationDetector::new(0);
    }

    #[test]
    fn stats_count_sleeps_wakes_and_trips() {
        // Threshold 1 with p=2: the first idle processor trips starvation.
        let d = TerminationDetector::with_threshold(2, 1);
        assert_eq!(d.idle_wait(SHORT), IdleOutcome::Starved);
        let st = d.stats();
        assert_eq!(st.sleeps, 1);
        assert_eq!(st.wakes, 1);
        assert_eq!(st.starvation_trips, 1);
        // A per-round reset keeps the cumulative stats...
        d.reset();
        assert_eq!(d.stats().sleeps, 1);
        // ...and a job-boundary reset clears them.
        d.reset_stats();
        assert_eq!(d.stats(), DetectorStats::default());
    }

    #[test]
    fn every_sleep_is_paired_with_a_wake() {
        const P: usize = 4;
        let d = TerminationDetector::new(P);
        crossbeam::thread::scope(|s| {
            for _ in 0..P {
                s.spawn(|_| {
                    assert_eq!(d.idle_wait(LONG), IdleOutcome::AllDone);
                });
            }
        })
        .unwrap();
        let st = d.stats();
        assert_eq!(st.sleeps, P as u64);
        assert_eq!(st.wakes, st.sleeps);
        assert_eq!(st.starvation_trips, 0);
    }
}
