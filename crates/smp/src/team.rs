//! Processor teams: the SIMPLE-style "pardo" region.
//!
//! [`run_team`] runs a closure on a team of `p` ranks, handing each a
//! [`TeamCtx`] carrying its rank and a shared [`SenseBarrier`]. This
//! mirrors how the paper's POSIX-threads code structures every
//! algorithm: a fixed team, ranks `0..p`, and explicit software
//! barriers between phases.
//!
//! Since the introduction of the persistent [`Executor`], `run_team` is
//! a thin compatibility wrapper: it builds a scoped executor for the
//! duration of one job and tears it down again. Code that dispatches
//! repeatedly should hold an [`Executor`] instead.

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::executor::Executor;

/// Per-thread context inside a team region.
pub struct TeamCtx<'a> {
    rank: usize,
    size: usize,
    barrier: &'a SenseBarrier,
    token: &'a BarrierToken,
}

impl<'a> TeamCtx<'a> {
    /// Builds the context the executor hands to one rank.
    pub(crate) fn new(
        rank: usize,
        size: usize,
        barrier: &'a SenseBarrier,
        token: &'a BarrierToken,
    ) -> Self {
        Self {
            rank,
            size,
            barrier,
            token,
        }
    }
}

impl TeamCtx<'_> {
    /// This thread's rank in `0..p`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Team size p.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Waits for the whole team; returns `true` on exactly one thread.
    #[inline]
    pub fn barrier(&self) -> bool {
        self.barrier.wait(self.token)
    }

    /// The half-open range of `0..total` assigned to this rank under a
    /// balanced block distribution (the standard SIMPLE data partition).
    pub fn block_range(&self, total: usize) -> std::ops::Range<usize> {
        block_range(self.rank, self.size, total)
    }
}

/// Balanced block partition of `0..total` into `p` ranges: the first
/// `total % p` ranks get one extra element.
pub fn block_range(rank: usize, p: usize, total: usize) -> std::ops::Range<usize> {
    assert!(rank < p, "rank {rank} out of range for team of {p}");
    let base = total / p;
    let extra = total % p;
    let start = rank * base + rank.min(extra);
    let len = base + usize::from(rank < extra);
    start..start + len
}

/// Runs `f` on a team of `p` threads and returns each rank's result in
/// rank order. Panics in any worker propagate after all threads join.
///
/// Compatibility wrapper: builds a scoped [`Executor`] (spawning `p − 1`
/// threads, none for `p == 1`), runs the single job, and drops the team.
pub fn run_team<R, F>(p: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(TeamCtx<'_>) -> R + Sync,
{
    Executor::new(p).run(f)
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ranks_are_distinct_and_complete() {
        let ranks = run_team(4, |ctx| ctx.rank());
        assert_eq!(ranks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_thread_fast_path() {
        let r = run_team(1, |ctx| {
            assert_eq!(ctx.size(), 1);
            assert!(ctx.barrier());
            7
        });
        assert_eq!(r, vec![7]);
    }

    #[test]
    fn barrier_separates_phases() {
        const P: usize = 4;
        let counter = AtomicUsize::new(0);
        run_team(P, |ctx| {
            counter.fetch_add(1, Ordering::AcqRel);
            ctx.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::Acquire), P);
        });
    }

    #[test]
    fn block_ranges_partition_exactly() {
        for p in 1..=7 {
            for total in [0usize, 1, 5, 16, 17, 100] {
                let mut covered = 0;
                let mut expected_start = 0;
                for rank in 0..p {
                    let r = block_range(rank, p, total);
                    assert_eq!(r.start, expected_start, "p={p} total={total}");
                    expected_start = r.end;
                    covered += r.len();
                }
                assert_eq!(covered, total);
                assert_eq!(expected_start, total);
            }
        }
    }

    #[test]
    fn block_ranges_are_balanced() {
        let sizes: Vec<usize> = (0..4).map(|r| block_range(r, 4, 10).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_team_rejected() {
        run_team(0, |_| ());
    }

    #[test]
    fn results_in_rank_order() {
        let out = run_team(5, |ctx| ctx.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }
}
