//! Synchronization abstraction layer: the single import point for every
//! primitive the runtime substrate builds on.
//!
//! Normally this re-exports `std` atomics/threads and the vendored
//! `parking_lot` mutex/condvar. With the `loom` feature it re-exports
//! the vendored loom model checker's instrumented equivalents instead,
//! so the `tests/loom_models` suite can exhaustively explore the
//! interleavings of `lock`, `barrier`, `dissemination`, `steal`,
//! `detect`, and the executor handoff without changing a line of
//! protocol code. See DESIGN.md §13 ("Model-checked concurrency") for
//! the harness layout and the memory-ordering audit the models
//! cross-reference.
//!
//! Rules for code in this crate:
//! - never import `std::sync::atomic`, `std::thread`, `std::hint`, or
//!   `parking_lot` directly — go through this module;
//! - spin loops use [`Backoff`], whose loom flavor yields on every
//!   iteration (the model deprioritizes yielded threads, keeping the
//!   schedule space finite).

#[cfg(feature = "loom")]
pub use loom::{hint, thread};

#[cfg(feature = "loom")]
pub use loom::sync::{atomic, Arc, Condvar, Mutex, MutexGuard};

/// Entry point of the model checker (loom builds only): explores every
/// schedule of the closure within the preemption bound.
#[cfg(feature = "loom")]
pub use loom::model;

#[cfg(not(feature = "loom"))]
pub use std::{hint, thread};

#[cfg(not(feature = "loom"))]
pub use std::sync::atomic;

#[cfg(not(feature = "loom"))]
pub use std::sync::Arc;

#[cfg(not(feature = "loom"))]
pub use parking_lot::{Condvar, Mutex, MutexGuard};

/// Spin iterations before a waiter escalates from `spin_loop` hints to
/// OS yields. Under loom every backoff step must be a yield so the
/// scheduler can bound spinning.
#[cfg(not(feature = "loom"))]
const SPIN_LIMIT: u32 = 64;
#[cfg(feature = "loom")]
const SPIN_LIMIT: u32 = 0;

/// Escalating spin-wait helper shared by every spin loop in this crate
/// (TTAS/ticket locks, both barriers).
///
/// The counter saturates instead of wrapping: an oversubscribed waiter
/// can easily exceed `u32::MAX` iterations on a descheduled owner, and
/// the pre-audit `spins += 1` overflowed (a debug-build panic in
/// exactly the starved schedules that matter most).
#[derive(Debug, Default)]
pub struct Backoff {
    spins: u32,
}

impl Backoff {
    /// A fresh backoff (starts in the spin-hint phase).
    pub const fn new() -> Self {
        Self { spins: 0 }
    }

    /// A backoff whose counter is already at `u32::MAX`, as after
    /// ~4 billion spin iterations. Exposed for the overflow regression
    /// test only.
    #[doc(hidden)]
    pub const fn saturated() -> Self {
        Self { spins: u32::MAX }
    }

    /// One wait step: spin-hint while young, yield to the OS once the
    /// wait has clearly outlived its welcome.
    // With SPIN_LIMIT = 0 (loom) the comparison is always false by
    // design: every backoff step yields so the model stays bounded.
    #[allow(clippy::absurd_extreme_comparisons)]
    #[inline]
    pub fn snooze(&mut self) {
        self.spins = self.spins.saturating_add(1);
        if self.spins < SPIN_LIMIT {
            hint::spin_loop();
        } else {
            thread::yield_now();
        }
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::Backoff;

    /// Regression for the satellite-1 overflow: a waiter that has
    /// already spun `u32::MAX` times must keep waiting, not panic on
    /// `+= 1` in debug builds.
    #[test]
    fn backoff_counter_saturates_instead_of_overflowing() {
        let mut b = Backoff::saturated();
        b.snooze();
        b.snooze();
    }
}
