#![warn(missing_docs)]

//! # st-smp — SMP runtime substrate
//!
//! The paper implements its algorithms "using POSIX threads and
//! software-based barriers" (Bader–JáJá SIMPLE methodology). This crate is
//! the Rust equivalent of that runtime layer:
//!
//! * [`team`] — a processor team: spawn p workers, give each a rank, and
//!   let them synchronize through a shared barrier, like a SIMPLE
//!   "pardo" region.
//! * [`executor`] — the persistent version of a team: p workers spawned
//!   once and parked between jobs, with the barrier and termination
//!   detector owned by the team and reused across jobs.
//! * [`pool`] — a fixed set of persistent teams with RAII lease/return,
//!   the substrate the multi-tenant job service shards the machine over.
//! * [`cancel`] — cooperative cancellation tokens (explicit cancel +
//!   deadlines) that algorithms poll at synchronization boundaries.
//! * [`barrier`] — a centralized sense-reversing software barrier.
//! * [`lock`] — test-and-test-and-set spin lock (with a safe guard API)
//!   and a FIFO ticket lock; used by the lock-based Shiloach–Vishkin
//!   grafting variant the paper reports as slow.
//! * [`steal`] — the per-processor work-stealing BFS queue of the new
//!   spanning-tree algorithm (owner operates FIFO at the front, thieves
//!   take a chunk from the back).
//! * [`detect`] — the condition-variable starvation/termination detector
//!   of §2: sleeping processors are counted; all-asleep means the
//!   traversal is done, and crossing a configurable threshold triggers
//!   the fallback algorithm.
//! * [`mem`] — memory-placement hints: transparent-hugepage advice for
//!   the big shared arrays and the software-prefetch primitive.
//! * [`pad`] — cache-line padding to keep per-processor counters off
//!   shared lines.
//! * [`atomics`] — a shared atomic `u32` array used for vertex colors and
//!   parent slots.
//! * [`sync`] — the synchronization abstraction layer every module above
//!   imports its atomics/mutexes/condvars/spins through; with the `loom`
//!   feature it swaps in the vendored loom model checker so
//!   `tests/loom_models` can exhaustively verify the protocols.
//!
//! Everything here is algorithm-agnostic; the spanning-tree logic lives
//! in `st-core`.

pub mod atomics;
pub mod barrier;
pub mod cancel;
pub mod detect;
pub mod dissemination;
pub mod executor;
pub mod lock;
pub mod mem;
pub mod pad;
pub mod pool;
pub mod steal;
pub mod sync;
pub mod team;

pub use atomics::AtomicU32Array;
pub use barrier::{BarrierToken, SenseBarrier};
pub use cancel::CancelToken;
pub use detect::{DetectorStats, IdleOutcome, TerminationDetector};
pub use dissemination::{DisseminationBarrier, DisseminationToken};
pub use executor::Executor;
pub use lock::{SpinLock, TicketLock};
pub use pad::{CacheAligned, CachePadded};
pub use pool::{ExecutorLease, ExecutorPool};
pub use steal::{StealPolicy, WorkQueue};
pub use team::{run_team, TeamCtx};
