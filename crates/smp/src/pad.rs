//! Cache-line padding.

/// Wraps a value in its own cache line (128-byte aligned, covering the
/// adjacent-line prefetcher on x86 and the 128-byte lines on some ARM
/// parts).
///
/// Per-processor counters (visited counts, steal statistics, model
/// counters) are stored as `Vec<CacheAligned<_>>` so that writes by one
/// processor do not invalidate lines read by another — false sharing is
/// exactly the kind of hidden non-contiguous traffic the Helman–JáJá
/// model penalizes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(align(128))]
pub struct CacheAligned<T>(pub T);

/// Conventional alias (crossbeam naming) for [`CacheAligned`]; the
/// observability layer's counter slots use this name.
pub type CachePadded<T> = CacheAligned<T>;

impl<T> CacheAligned<T> {
    /// Wraps `value`.
    pub const fn new(value: T) -> Self {
        Self(value)
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.0
    }
}

impl<T> std::ops::Deref for CacheAligned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T> std::ops::DerefMut for CacheAligned<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T> From<T> for CacheAligned<T> {
    fn from(value: T) -> Self {
        Self(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_128() {
        assert_eq!(std::mem::align_of::<CacheAligned<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CacheAligned<u8>>(), 128);
        let v = vec![CacheAligned::new(0u64); 4];
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert_eq!(b - a, 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut c = CacheAligned::new(41u32);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn from_value() {
        let c: CacheAligned<&str> = "x".into();
        assert_eq!(*c, "x");
    }
}
