//! Per-processor work-stealing queues.
//!
//! Phase 2 of the new algorithm gives each processor a BFS queue; "
//! whenever any processor finishes with its own work …, it randomly
//! checks other processors' queues. If it finds a non-empty queue, the
//! processor steals part of the queue" (§2). The owner consumes FIFO from
//! the front (preserving breadth-first order); thieves detach a chunk
//! from the back, where the most recently discovered — and therefore
//! most expansion-rich — vertices sit.
//!
//! The queue is a short-critical-section locked deque rather than a
//! lock-free Chase–Lev deque: the protocol steals *batches*, the lock is
//! held for O(batch) pointer moves, and the paper's own protocol is a
//! "lightweight work stealing protocol" rather than a lock-free one.

use std::collections::VecDeque;

use crate::lock::SpinLock;
use crate::sync::atomic::{AtomicUsize, Ordering};

/// How much a thief takes from a victim queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StealPolicy {
    /// Take ⌈len/2⌉ elements (the default; matches "steals part of the
    /// queue" with the standard steal-half heuristic).
    Half,
    /// Take a single element (ablation baseline).
    One,
    /// Take at most this many elements.
    Chunk(usize),
}

impl StealPolicy {
    fn amount(self, available: usize) -> usize {
        match self {
            StealPolicy::Half => available.div_ceil(2),
            StealPolicy::One => 1.min(available),
            StealPolicy::Chunk(c) => c.min(available),
        }
    }
}

/// A work queue owned by one processor and stealable by the rest.
///
/// ```
/// use st_smp::{StealPolicy, WorkQueue};
/// use std::collections::VecDeque;
///
/// let q = WorkQueue::new();
/// q.push_all(1..=4);
/// assert_eq!(q.pop(), Some(1));            // owner: FIFO front
/// let mut stolen = VecDeque::new();
/// q.steal_into(&mut stolen, StealPolicy::Half); // thief: back half
/// assert_eq!(stolen, VecDeque::from(vec![3, 4]));
/// ```
#[derive(Debug)]
pub struct WorkQueue<T> {
    deque: SpinLock<VecDeque<T>>,
    /// Approximate length, maintained outside the lock so idle processors
    /// can scan for victims without bouncing lock lines.
    approx_len: AtomicUsize,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> WorkQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self {
            deque: SpinLock::new(VecDeque::new()),
            approx_len: AtomicUsize::new(0),
        }
    }

    /// An empty queue with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            deque: SpinLock::new(VecDeque::with_capacity(cap)),
            approx_len: AtomicUsize::new(0),
        }
    }

    /// Enqueues at the back (owner side).
    pub fn push(&self, item: T) {
        let mut q = self.deque.lock();
        q.push_back(item);
        self.approx_len.store(q.len(), Ordering::Release);
    }

    /// Enqueues many items at the back.
    pub fn push_all<I: IntoIterator<Item = T>>(&self, items: I) {
        let mut q = self.deque.lock();
        q.extend(items);
        self.approx_len.store(q.len(), Ordering::Release);
    }

    /// Dequeues from the front (owner side, FIFO — preserves BFS order).
    pub fn pop(&self) -> Option<T> {
        let mut q = self.deque.lock();
        let item = q.pop_front();
        self.approx_len.store(q.len(), Ordering::Release);
        item
    }

    /// Dequeues up to `k` items from the front into `out` under a single
    /// lock acquisition; returns how many moved. Batching amortizes the
    /// queue lock when the owner's per-vertex work is tiny (the
    /// `ablate_chunk` design knob); items moved out are no longer
    /// stealable, exactly like a single dequeued vertex.
    pub fn pop_chunk(&self, out: &mut VecDeque<T>, k: usize) -> usize {
        if k == 0 {
            return 0;
        }
        let mut q = self.deque.lock();
        let take = k.min(q.len());
        if take == 0 {
            return 0;
        }
        // Drain in place: the ring buffer's head advances, so the cost
        // is O(take) regardless of queue length. (A `split_off(take)`
        // here allocates a fresh buffer and copies the *remainder* —
        // O(len) per call, quadratic over a drain, and a page-fault
        // storm once the queue holds millions of entries.)
        out.extend(q.drain(..take));
        self.approx_len.store(q.len(), Ordering::Release);
        take
    }

    /// Steals according to `policy` from the back of this queue into
    /// `out` (preserving their relative order); returns how many items
    /// moved.
    pub fn steal_into(&self, out: &mut VecDeque<T>, policy: StealPolicy) -> usize {
        let mut q = self.deque.lock();
        let take = policy.amount(q.len());
        if take == 0 {
            return 0;
        }
        // Drain the tail in place rather than `split_off`: same O(take)
        // element moves while the lock is held, without allocating a
        // transfer buffer per steal.
        let split_at = q.len() - take;
        out.extend(q.drain(split_at..));
        self.approx_len.store(q.len(), Ordering::Release);
        take
    }

    /// Approximate number of queued items (no locking; may lag).
    pub fn approx_len(&self) -> usize {
        self.approx_len.load(Ordering::Acquire)
    }

    /// True when the queue *appears* empty (no locking; may lag).
    pub fn appears_empty(&self) -> bool {
        self.approx_len() == 0
    }

    /// Exact length (takes the lock).
    pub fn len(&self) -> usize {
        self.deque.lock().len()
    }

    /// True when the queue is empty.
    ///
    /// Lock-free: reads the `approx_len` mirror, which every mutating
    /// operation updates *before* releasing the queue lock, so the answer
    /// is exact whenever no operation is concurrently in flight. Under
    /// concurrency it may lag by one in-flight operation — callers that
    /// need an exact answer mid-flight must use [`len`](Self::len). The
    /// traversal engine only consults this at quiescent points (between
    /// round barriers) and in idle sweeps that tolerate staleness by
    /// retrying.
    pub fn is_empty(&self) -> bool {
        self.appears_empty()
    }

    /// Forces the `approx_len` mirror out of sync with the real deque,
    /// simulating the in-flight window where another processor has
    /// mutated the deque but not yet published the mirror. Test-only
    /// hook for the stale-emptiness regression tests; never called by
    /// the engine.
    #[doc(hidden)]
    pub fn desync_mirror_for_test(&self, fake_len: usize) {
        self.approx_len.store(fake_len, Ordering::Release);
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_for_owner() {
        let q = WorkQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn steal_half_takes_back_half() {
        let q = WorkQueue::new();
        q.push_all(1..=5);
        let mut out = VecDeque::new();
        let got = q.steal_into(&mut out, StealPolicy::Half);
        assert_eq!(got, 3); // ceil(5/2)
        assert_eq!(out, VecDeque::from(vec![3, 4, 5]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn steal_one_and_chunk() {
        let q = WorkQueue::new();
        q.push_all(1..=4);
        let mut out = VecDeque::new();
        assert_eq!(q.steal_into(&mut out, StealPolicy::One), 1);
        assert_eq!(out.back(), Some(&4));
        assert_eq!(q.steal_into(&mut out, StealPolicy::Chunk(2)), 2);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn steal_from_empty_is_zero() {
        let q: WorkQueue<u32> = WorkQueue::new();
        let mut out = VecDeque::new();
        assert_eq!(q.steal_into(&mut out, StealPolicy::Half), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn approx_len_tracks_operations() {
        let q = WorkQueue::with_capacity(8);
        assert!(q.appears_empty());
        q.push(1);
        q.push(2);
        assert_eq!(q.approx_len(), 2);
        q.pop();
        assert_eq!(q.approx_len(), 1);
    }

    #[test]
    fn concurrent_producers_and_thieves_lose_nothing() {
        use std::sync::atomic::AtomicUsize;
        const ITEMS: usize = 20_000;
        const THIEVES: usize = 3;
        let q = WorkQueue::new();
        let consumed = AtomicUsize::new(0);
        let sum = AtomicUsize::new(0);
        crossbeam::thread::scope(|s| {
            // Owner: produce everything, then drain its own queue.
            s.spawn(|_| {
                for i in 1..=ITEMS {
                    q.push(i);
                }
                while let Some(v) = q.pop() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            });
            for _ in 0..THIEVES {
                s.spawn(|_| {
                    let mut out = VecDeque::new();
                    // Keep stealing until the owner has visibly finished
                    // producing and the queue stays empty a few rounds.
                    let mut dry = 0;
                    while dry < 100 {
                        if q.steal_into(&mut out, StealPolicy::Half) == 0 {
                            dry += 1;
                            std::thread::yield_now();
                        } else {
                            dry = 0;
                        }
                        while let Some(v) = out.pop_front() {
                            sum.fetch_add(v, Ordering::Relaxed);
                            consumed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        })
        .unwrap();
        // Everything produced was consumed exactly once.
        assert_eq!(consumed.load(Ordering::Relaxed), ITEMS);
        assert_eq!(sum.load(Ordering::Relaxed), ITEMS * (ITEMS + 1) / 2);
    }

    #[test]
    fn pop_chunk_takes_from_the_front() {
        let q = WorkQueue::new();
        q.push_all(1..=6);
        let mut out = VecDeque::new();
        assert_eq!(q.pop_chunk(&mut out, 4), 4);
        assert_eq!(out, VecDeque::from(vec![1, 2, 3, 4]));
        assert_eq!(q.len(), 2);
        assert_eq!(q.approx_len(), 2);
        // Draining the remainder.
        assert_eq!(q.pop_chunk(&mut out, 10), 2);
        assert_eq!(out.len(), 6);
        assert_eq!(q.pop_chunk(&mut out, 3), 0);
        assert_eq!(q.pop_chunk(&mut out, 0), 0);
    }

    #[test]
    fn pop_chunk_and_steal_split_the_queue() {
        let q = WorkQueue::new();
        q.push_all(0..10);
        let mut owner = VecDeque::new();
        let mut thief = VecDeque::new();
        q.pop_chunk(&mut owner, 3); // front: 0,1,2
        q.steal_into(&mut thief, StealPolicy::Half); // back half of the rest
        assert_eq!(owner, VecDeque::from(vec![0, 1, 2]));
        assert_eq!(thief, VecDeque::from(vec![6, 7, 8, 9]));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn steal_preserves_relative_order() {
        let q = WorkQueue::new();
        q.push_all(0..10);
        let mut out = VecDeque::new();
        q.steal_into(&mut out, StealPolicy::Chunk(4));
        assert_eq!(out, VecDeque::from(vec![6, 7, 8, 9]));
    }
}
