//! Memory-placement helpers: transparent-hugepage advice and software
//! prefetch.
//!
//! The traversal at scale ≥ 20 is memory-bound: the CSR arrays and the
//! color/parent workspace span hundreds of megabytes, and with the
//! default 4 KiB pages the random vertex accesses of both traversal
//! directions thrash the TLB. [`advise_hugepages`] asks the kernel
//! (`madvise(MADV_HUGEPAGE)`) to back a buffer with transparent huge
//! pages — effective when issued *before* the first touch, so the
//! initial population faults 2 MiB pages directly; on hosts where THP
//! is in `madvise` mode this is the only way to get huge pages at all.
//!
//! [`prefetch_read`] is the one software-prefetch primitive the
//! workspace uses; the traversal engine routes its lookahead distance
//! through a config knob rather than hard-coding it at call sites.
//!
//! Everything here is a hint: failures are reported but never fatal,
//! and non-Linux / non-x86_64 builds compile to no-ops.

#[cfg(target_os = "linux")]
use std::ffi::c_void;

/// The transparent-hugepage size the advice targets (x86_64: 2 MiB).
pub const HUGE_PAGE_BYTES: usize = 2 * 1024 * 1024;

/// Base page size used to align the advised range inward.
const PAGE_BYTES: usize = 4096;

/// `MADV_HUGEPAGE` from `<sys/mman.h>` (Linux, stable ABI constant).
#[cfg(target_os = "linux")]
const MADV_HUGEPAGE: i32 = 14;

// `std` already links libc on Linux; declaring the one symbol we need
// avoids growing the dependency tree for a single hint call.
#[cfg(target_os = "linux")]
extern "C" {
    fn madvise(addr: *mut c_void, length: usize, advice: i32) -> i32;
}

/// Advises the kernel to back `[ptr, ptr + bytes)` with transparent
/// huge pages. Returns `true` when the advice was applied to at least
/// one full huge page.
///
/// Call this right after allocating and *before* writing the buffer:
/// `khugepaged` may eventually collapse already-touched memory, but
/// only pre-touch advice makes the initial population fault 2 MiB pages
/// directly. The range is aligned inward to base-page boundaries
/// (`madvise` rejects unaligned starts); buffers smaller than one huge
/// page are skipped. Purely a performance hint — never required for
/// correctness, a no-op off Linux.
pub fn advise_hugepages(ptr: *const u8, bytes: usize) -> bool {
    #[cfg(target_os = "linux")]
    {
        if bytes < HUGE_PAGE_BYTES {
            return false;
        }
        let start = (ptr as usize).next_multiple_of(PAGE_BYTES);
        let end = (ptr as usize).saturating_add(bytes) & !(PAGE_BYTES - 1);
        if end <= start || end - start < HUGE_PAGE_BYTES {
            return false;
        }
        // SAFETY: the range lies within the caller's allocation (aligned
        // inward), and MADV_HUGEPAGE only adjusts kernel page-size
        // policy — it cannot unmap, discard, or otherwise alter the
        // memory's contents.
        unsafe { madvise(start as *mut c_void, end - start, MADV_HUGEPAGE) == 0 }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (ptr, bytes);
        false
    }
}

/// Hints the CPU to pull the cache line holding `*ptr` toward L1.
///
/// No architectural effect: dangling or unaligned pointers are allowed
/// (the CPU drops bad prefetches), and non-x86_64 targets compile this
/// to nothing.
#[inline(always)]
pub fn prefetch_read<T>(ptr: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch instructions never fault and have no effect
    // beyond the cache hierarchy, regardless of the address.
    unsafe {
        std::arch::x86_64::_mm_prefetch(ptr as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = ptr;
    }
}

#[cfg(all(test, not(feature = "loom")))]
mod tests {
    use super::*;

    #[test]
    fn tiny_buffers_are_skipped() {
        let buf = [0u8; 64];
        assert!(!advise_hugepages(buf.as_ptr(), buf.len()));
    }

    #[test]
    fn null_range_is_rejected_not_fatal() {
        // Zero bytes never covers a huge page; must not call madvise.
        assert!(!advise_hugepages(std::ptr::null(), 0));
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn large_buffer_accepts_advice() {
        // 3 huge pages guarantees at least one aligned huge page inside
        // the allocation regardless of where malloc placed it.
        let mut buf: Vec<u8> = Vec::with_capacity(3 * HUGE_PAGE_BYTES);
        assert!(advise_hugepages(buf.as_ptr(), 3 * HUGE_PAGE_BYTES));
        // The buffer stays fully usable after the advice.
        buf.resize(3 * HUGE_PAGE_BYTES, 7);
        assert!(buf.iter().all(|&b| b == 7));
    }

    #[test]
    fn prefetch_accepts_any_pointer() {
        let v = [1u32, 2, 3];
        prefetch_read(v.as_ptr());
        prefetch_read(v.as_ptr().wrapping_add(1 << 20));
        prefetch_read::<u32>(std::ptr::null());
    }
}
