//! Models: sense reversal across consecutive episodes of the
//! centralized [`SenseBarrier`] (including a `with_sense` mid-stream
//! join, the executor's token-minting pattern) and phase separation of
//! the [`DisseminationBarrier`].

use st_smp::sync::atomic::{AtomicUsize, Ordering};
use st_smp::sync::{model, thread, Arc};
use st_smp::{BarrierToken, DisseminationBarrier, SenseBarrier};

/// Two threads, two consecutive episodes: nobody may pass episode k+1
/// while the other is still before episode k's barrier (the classic
/// sense-reuse bug), and each episode elects exactly one leader.
#[test]
fn sense_barrier_separates_consecutive_episodes() {
    model(|| {
        let barrier = Arc::new(SenseBarrier::new(2));
        let arrived = Arc::new(AtomicUsize::new(0));
        let leaders = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let arrived = Arc::clone(&arrived);
                let leaders = Arc::clone(&leaders);
                thread::spawn(move || {
                    let token = BarrierToken::new();
                    for episode in 1..=2usize {
                        arrived.fetch_add(1, Ordering::SeqCst);
                        if barrier.wait(&token) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                        // After the barrier, both arrivals of this
                        // episode must be visible.
                        assert_eq!(
                            arrived.load(Ordering::SeqCst),
                            2 * episode,
                            "passed the episode-{episode} barrier early"
                        );
                        if barrier.wait(&token) {
                            leaders.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(barrier.generations(), 4);
        assert_eq!(leaders.load(Ordering::SeqCst), 4, "leader count drifted");
    });
}

/// The executor's mid-stream join pattern: A and B complete an episode,
/// B leaves, C joins with a token minted from `current_sense()`. C's
/// first wait must block until A arrives — with a plain `new()` token it
/// would fall straight through the already-completed episode.
#[test]
fn with_sense_token_joins_mid_stream() {
    model(|| {
        let barrier = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let b_thread = thread::spawn(move || {
            let token = BarrierToken::new();
            b2.wait(&token);
        });
        let token_a = BarrierToken::new();
        barrier.wait(&token_a); // episode 1 with B
        b_thread.join().unwrap();
        assert_eq!(barrier.generations(), 1);

        // C joins for episode 2, minting its token from the barrier's
        // current sense (read while quiescent, as the executor does).
        let passed = Arc::new(AtomicUsize::new(0));
        let b3 = Arc::clone(&barrier);
        let p2 = Arc::clone(&passed);
        let c_thread = thread::spawn(move || {
            let token_c = BarrierToken::with_sense(b3.current_sense());
            p2.fetch_add(1, Ordering::SeqCst);
            b3.wait(&token_c);
            // If the token had been minted with the wrong sense, this
            // wait would have fallen straight through the completed
            // episode 1 — possibly before A even arrived.
            assert_eq!(
                p2.load(Ordering::SeqCst),
                2,
                "C passed episode 2 without A (stale-sense fall-through)"
            );
        });
        passed.fetch_add(1, Ordering::SeqCst);
        barrier.wait(&token_a); // episode 2 with C
        assert_eq!(
            passed.load(Ordering::SeqCst),
            2,
            "A passed episode 2 without C"
        );
        c_thread.join().unwrap();
        assert_eq!(barrier.generations(), 2);
        assert_eq!(passed.load(Ordering::SeqCst), 2);
    });
}

/// Dissemination barrier, p = 3, one episode: every pre-barrier write
/// must be visible to every thread after its wait returns.
#[test]
fn dissemination_publishes_all_arrivals() {
    model(|| {
        let barrier = Arc::new(DisseminationBarrier::new(3));
        let sum = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..3)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                let sum = Arc::clone(&sum);
                thread::spawn(move || {
                    let token = barrier.token(id);
                    sum.fetch_add(id + 1, Ordering::SeqCst);
                    barrier.wait(&token);
                    assert_eq!(
                        sum.load(Ordering::SeqCst),
                        6,
                        "thread {id} passed the dissemination barrier early"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}

/// Dissemination barrier across two episodes: the monotone per-round
/// counters must not let episode-2 signals satisfy episode-1 waits.
#[test]
fn dissemination_two_episodes_do_not_cross_talk() {
    model(|| {
        let barrier = Arc::new(DisseminationBarrier::new(2));
        let phase = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|id| {
                let barrier = Arc::clone(&barrier);
                let phase = Arc::clone(&phase);
                thread::spawn(move || {
                    let token = barrier.token(id);
                    for episode in 1..=2usize {
                        phase.fetch_add(1, Ordering::SeqCst);
                        barrier.wait(&token);
                        assert_eq!(
                            phase.load(Ordering::SeqCst),
                            2 * episode,
                            "episode {episode} barrier leaked an arrival"
                        );
                        barrier.wait(&token);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });
}
