//! Exhaustive (preemption-bounded) model checking of the st-smp
//! concurrency protocols, via the vendored loom stand-in.
//!
//! Run with:
//!
//! ```sh
//! cargo test -p st-smp --features loom --test loom_models
//! ```
//!
//! Every test wraps a small protocol instance in `sync::model`, which
//! replays it under *every* sequentially-consistent schedule with at
//! most `LOOM_MAX_PREEMPTIONS` (default 2) preemptions — including
//! condvar timeouts firing at any legal moment. Assertion failures,
//! deadlocks, and livelocks in *any* schedule fail the test with the
//! reproducing decision prefix.
//!
//! The five protocol families of the harness (cross-referenced from the
//! DESIGN.md memory-ordering audit):
//!
//! * [`locks`] — SpinLock/TicketLock mutual exclusion + guard-drop
//!   publication,
//! * [`queue`] — WorkQueue owner/thief no-lost-items and `approx_len`
//!   mirror exactness at quiescence,
//! * [`barriers`] — SenseBarrier sense reversal across episodes
//!   (including a `with_sense` mid-stream join) and the dissemination
//!   barrier's phase separation,
//! * [`detector`] — the termination detector's false-quiescence window,
//!   timeout/notify races, starvation threshold, and sleeps==wakes
//!   pairing,
//! * [`executor`] — the persistent team's job-epoch publish/consume
//!   handshake, panic lifecycle, and detector reuse between jobs,
//! * [`pool`] — the executor pool's lease/resize handshake (elastic
//!   width changes may only claim idle teams; teams are conserved),
//! * [`dyn_forest`] — the batch-dynamic maintainer's CAS-hook union
//!   (claim-then-store exclusivity) and the replacement scan's
//!   write-once edge election.

#![cfg(feature = "loom")]

mod barriers;
mod bottom_up;
mod detector;
mod dyn_forest;
mod executor;
mod locks;
mod pool;
mod queue;
