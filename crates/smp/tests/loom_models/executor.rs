//! Models: the persistent executor's job-epoch publish/consume
//! handshake — submit publishes (job, epoch, remaining) under the state
//! mutex, the worker consumes exactly once per epoch, the submitter
//! cannot return before the worker's decrement, and the team-owned
//! barrier/detector stay consistent across jobs.

use std::time::Duration;

use st_smp::sync::atomic::{AtomicUsize, Ordering};
use st_smp::sync::{model, Arc};
use st_smp::{Executor, IdleOutcome};

/// Two consecutive jobs on a p = 2 team: each job runs on both ranks
/// exactly once, the in-job barrier separates phases, and results come
/// back in rank order. Exercises the with_sense token minting on the
/// worker's side of the handshake.
#[test]
fn epoch_handshake_runs_each_job_once_per_rank() {
    model(|| {
        let exec = Executor::new(2);
        let counter = Arc::new(AtomicUsize::new(0));
        for job in 1..=2usize {
            let counter = Arc::clone(&counter);
            let ranks = exec.run(move |ctx| {
                counter.fetch_add(1, Ordering::SeqCst);
                ctx.barrier();
                // Both ranks of this job must have arrived; earlier
                // jobs' increments are already in.
                assert_eq!(
                    counter.load(Ordering::SeqCst),
                    2 * job,
                    "job {job} barrier passed early or a rank ran twice"
                );
                ctx.rank()
            });
            assert_eq!(ranks, vec![0, 1]);
        }
        assert_eq!(exec.jobs_completed(), 2);
        assert_eq!(exec.barrier().generations(), 2);
        drop(exec); // shutdown handshake must not deadlock or leak a job
    });
}

/// The executor's detector is retuned between jobs (`set_threshold` on
/// a persistent team, satellite 4): job 1 quiesces to AllDone; job 2,
/// with threshold 1, must starve the first sleeper instead.
#[test]
fn set_threshold_between_jobs_changes_verdict() {
    model(|| {
        let exec = Executor::new(2);
        let timeout = Duration::from_millis(1);
        exec.run(|ctx| loop {
            match ctx_detector(&exec).idle_wait(timeout) {
                IdleOutcome::AllDone => break,
                IdleOutcome::Retry => continue,
                IdleOutcome::Starved => panic!("job 1 must not starve (rank {})", ctx.rank()),
            }
        });
        assert!(exec.detector().is_done());

        // Quiescent between jobs: retune and rearm.
        exec.detector().reset();
        exec.detector().set_threshold(Some(1));

        exec.run(|_ctx| {
            // With threshold 1, the first sleeper trips starvation and
            // the verdict is sticky for the other rank.
            assert_eq!(ctx_detector(&exec).idle_wait(timeout), IdleOutcome::Starved);
        });
        assert!(exec.detector().is_starved());
        assert_eq!(exec.detector().stats().starvation_trips, 1);
        drop(exec);
    });
}

fn ctx_detector(exec: &Executor) -> &st_smp::TerminationDetector {
    exec.detector()
}

/// A panicking rank must not corrupt the handshake: the submitter
/// panics with "team worker panicked" only after the whole team
/// finished, the job is still counted, and the team survives to run a
/// clean follow-up job.
#[test]
fn panicked_job_leaves_team_reusable() {
    model(|| {
        let exec = Executor::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.run(|ctx| {
                if ctx.rank() == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err(), "worker panic must propagate to the submitter");
        assert_eq!(exec.jobs_completed(), 1, "panicked job must still count");
        // The team must still work.
        assert_eq!(exec.run(|ctx| ctx.rank() + 10), vec![10, 11]);
        assert_eq!(exec.jobs_completed(), 2);
        drop(exec);
    });
}
