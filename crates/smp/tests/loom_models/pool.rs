//! Loom models for the executor pool's lease/resize handshake.
//!
//! The elastic resize protocol claims an idle team under the pool lock,
//! rebuilds the executor unlocked, then publishes the new width and the
//! new executor back atomically. The properties the models check:
//!
//! * a resize and a lease can never both own the same team — whoever
//!   claims the idle entry first wins, the other observes "not idle";
//! * teams are conserved: any interleaving of lease / return / resize
//!   ends with the team back in the idle set exactly once;
//! * width metadata is consistent: whenever a lease holds a team, the
//!   pool's `team_sizes()` entry for that id equals the leased width.

use st_smp::sync::{model, thread, Arc};
use st_smp::ExecutorPool;

#[test]
fn lease_and_resize_race_exactly_one_claims_the_team() {
    model(|| {
        let pool = Arc::new(ExecutorPool::new([1]));
        let p2 = Arc::clone(&pool);
        let lessee = thread::spawn(move || {
            match p2.try_lease(1) {
                Some(lease) => {
                    // While held, the metadata must describe this team:
                    // a resize either ran fully before the lease or was
                    // refused — it can never retune a held team.
                    assert_eq!(
                        p2.team_sizes()[lease.team_id()],
                        lease.size(),
                        "width metadata must match the leased team"
                    );
                    drop(lease);
                }
                None => {
                    // The resizer owns the team right now; nothing to
                    // assert beyond not deadlocking.
                }
            }
        });
        let resized = pool.try_resize_team(0, 2);
        lessee.join().unwrap();

        // Quiescent again: the team is idle exactly once and the
        // metadata matches whatever executor actually sits there.
        assert_eq!(pool.idle_teams(), 1, "the team must be conserved");
        let sizes = pool.team_sizes();
        let lease = pool.try_lease(sizes[0]).expect("team is idle");
        assert_eq!(lease.size(), sizes[0]);
        if resized {
            assert_eq!(lease.size(), 2, "a successful resize must stick");
        }
        drop(lease);
    });
}

#[test]
fn resize_races_the_give_back_without_losing_the_team() {
    model(|| {
        let pool = Arc::new(ExecutorPool::new([1]));
        let lease = pool.try_lease(1).expect("fresh pool");
        let p2 = Arc::clone(&pool);
        let resizer = thread::spawn(move || p2.try_resize_team(0, 2));
        drop(lease); // the return races the resize attempt
        let resized = resizer.join().unwrap();

        assert_eq!(pool.idle_teams(), 1, "never zero, never duplicated");
        let sizes = pool.team_sizes();
        let expected = if resized { 2 } else { 1 };
        assert_eq!(sizes, vec![expected]);
        let lease = pool.try_lease(expected).expect("team is idle");
        assert_eq!(lease.size(), expected);
        drop(lease);
    });
}
