//! Models: mutual exclusion and guard-drop publication for the TTAS
//! [`SpinLock`] and the FIFO [`TicketLock`].

use st_smp::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use st_smp::sync::{model, thread, Arc};
use st_smp::{SpinLock, TicketLock};

/// Two threads contend; an atomic `in_critical` flag (a schedule point
/// on every access) proves at most one thread is ever inside, and the
/// plain counter under the lock proves guard-drop publishes the write.
#[test]
fn spinlock_mutual_exclusion() {
    model(|| {
        let lock = Arc::new(SpinLock::new(0usize));
        let in_critical = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let in_critical = Arc::clone(&in_critical);
                thread::spawn(move || {
                    let mut g = lock.lock();
                    assert_eq!(
                        in_critical.fetch_add(1, Ordering::SeqCst),
                        0,
                        "two threads inside the SpinLock critical section"
                    );
                    *g += 1;
                    in_critical.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 2, "an increment was lost");
    });
}

#[test]
fn ticketlock_mutual_exclusion() {
    model(|| {
        let lock = Arc::new(TicketLock::new(0usize));
        let in_critical = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let in_critical = Arc::clone(&in_critical);
                thread::spawn(move || {
                    let mut g = lock.lock();
                    assert_eq!(
                        in_critical.fetch_add(1, Ordering::SeqCst),
                        0,
                        "two threads inside the TicketLock critical section"
                    );
                    *g += 1;
                    in_critical.fetch_sub(1, Ordering::SeqCst);
                    drop(g);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*lock.lock(), 2, "an increment was lost");
    });
}

/// Guard-drop ordering: a pair of plain fields mutated only under the
/// lock must never be observed torn by the next acquirer.
#[test]
fn spinlock_guard_drop_publishes_consistent_state() {
    model(|| {
        let lock = Arc::new(SpinLock::new((0u64, 0u64)));
        let l2 = Arc::clone(&lock);
        let t = thread::spawn(move || {
            let mut g = l2.lock();
            g.0 += 1;
            g.1 += 1;
        });
        {
            let g = lock.lock();
            assert_eq!(g.0, g.1, "guard drop published a torn update");
        }
        t.join().unwrap();
        let g = lock.lock();
        assert_eq!((g.0, g.1), (1, 1));
    });
}

/// `try_lock` must fail while the lock is held and never produce a
/// second guard.
#[test]
fn spinlock_try_lock_respects_holder() {
    model(|| {
        let lock = Arc::new(SpinLock::new(()));
        let held = Arc::new(AtomicBool::new(false));
        let g = lock.lock();
        held.store(true, Ordering::SeqCst);
        let l2 = Arc::clone(&lock);
        let h2 = Arc::clone(&held);
        let thief = thread::spawn(move || {
            if l2.try_lock().is_some() {
                assert!(
                    !h2.load(Ordering::SeqCst),
                    "try_lock succeeded while the lock was held"
                );
            }
        });
        held.store(false, Ordering::SeqCst);
        drop(g);
        thief.join().unwrap();
    });
}
