//! Models: the §2 termination detector. The load-bearing property is
//! the *false-quiescence window*: `AllDone` must never be declared
//! while a published, stealable item still exists — even when
//! `notify_work` races the last sleeper's registration or a timeout
//! fires concurrently with a notification.

use std::collections::VecDeque;
use std::time::Duration;

use st_smp::sync::atomic::{AtomicUsize, Ordering};
use st_smp::sync::{model, thread, Arc};
use st_smp::{IdleOutcome, StealPolicy, TerminationDetector, WorkQueue};

const TIMEOUT: Duration = Duration::from_millis(1);

/// Both processors go idle with nothing to do: every schedule must end
/// in `AllDone` on both, with every sleep paired with a wake.
#[test]
fn all_idle_reaches_all_done() {
    model(|| {
        let d = Arc::new(TerminationDetector::new(2));
        let d2 = Arc::clone(&d);
        let t = thread::spawn(move || loop {
            match d2.idle_wait(TIMEOUT) {
                IdleOutcome::AllDone => break,
                IdleOutcome::Retry => continue,
                IdleOutcome::Starved => panic!("starved without a threshold"),
            }
        });
        loop {
            match d.idle_wait(TIMEOUT) {
                IdleOutcome::AllDone => break,
                IdleOutcome::Retry => continue,
                IdleOutcome::Starved => panic!("starved without a threshold"),
            }
        }
        t.join().unwrap();
        assert!(d.is_done());
        let st = d.stats();
        assert_eq!(st.sleeps, st.wakes, "unpaired sleep registration");
        assert_eq!(st.starvation_trips, 0);
    });
}

/// The tentpole model: a faithful miniature of the traversal idle loop.
/// Processor 0 publishes one stealable item and calls `notify_work`;
/// both processors then run drain → steal-sweep → `idle_wait`. In every
/// schedule — including `notify_work` racing the other rank's sleep
/// registration — `AllDone` may only be declared once the item has been
/// consumed and both queues are exactly empty.
#[test]
fn all_done_never_declared_while_item_stealable() {
    model(|| {
        let queues = Arc::new([WorkQueue::new(), WorkQueue::new()]);
        let detector = Arc::new(TerminationDetector::new(2));
        let consumed = Arc::new(AtomicUsize::new(0));

        let worker = |rank: usize,
                      queues: Arc<[WorkQueue<u32>; 2]>,
                      detector: Arc<TerminationDetector>,
                      consumed: Arc<AtomicUsize>| {
            move || {
                if rank == 0 {
                    // Publish one unit of work, then tell sleepers.
                    queues[0].push(41);
                    detector.notify_work();
                }
                loop {
                    // Drain own queue.
                    while queues[rank].pop().is_some() {
                        consumed.fetch_add(1, Ordering::SeqCst);
                    }
                    // Deterministic steal sweep (exact check is inside
                    // steal_into's lock).
                    let mut out = VecDeque::new();
                    if queues[1 - rank].steal_into(&mut out, StealPolicy::Half) > 0 {
                        queues[rank].push_all(out);
                        continue;
                    }
                    match detector.idle_wait(TIMEOUT) {
                        IdleOutcome::AllDone => break,
                        IdleOutcome::Retry => continue,
                        IdleOutcome::Starved => panic!("starved without a threshold"),
                    }
                }
                // False-quiescence check: at AllDone nothing may remain
                // published anywhere.
                assert_eq!(queues[0].len(), 0, "AllDone with a stealable item");
                assert_eq!(queues[1].len(), 0, "AllDone with a stealable item");
                assert_eq!(
                    consumed.load(Ordering::SeqCst),
                    1,
                    "AllDone before the published item was consumed"
                );
            }
        };

        let t = thread::spawn(worker(
            1,
            Arc::clone(&queues),
            Arc::clone(&detector),
            Arc::clone(&consumed),
        ));
        worker(0, queues, Arc::clone(&detector), consumed)();
        t.join().unwrap();
        let st = detector.stats();
        assert_eq!(st.sleeps, st.wakes, "unpaired sleep registration");
    });
}

/// Timeout firing concurrently with `notify_work`: whichever way the
/// race lands (timed_out, epoch-changed, or both at once), the sleeper
/// must get `Retry` — never a spurious verdict — and the books must
/// balance.
#[test]
fn timeout_racing_notify_work_yields_retry() {
    model(|| {
        let d = Arc::new(TerminationDetector::new(2));
        let d2 = Arc::clone(&d);
        let busy = thread::spawn(move || {
            d2.notify_work();
        });
        // With p = 2 and the other processor never sleeping, the only
        // legal outcome is Retry (via timeout, via the notify, or both).
        assert_eq!(d.idle_wait(TIMEOUT), IdleOutcome::Retry);
        busy.join().unwrap();
        assert!(!d.is_done());
        assert!(!d.is_starved());
        let st = d.stats();
        assert_eq!(st.sleeps, 1);
        assert_eq!(st.wakes, 1);
    });
}

/// Starvation threshold 1 with one processor forever busy: the idle
/// processor must starve (never AllDone), exactly one trip is counted,
/// and late callers see the sticky verdict.
#[test]
fn threshold_trips_starvation_once() {
    model(|| {
        let d = Arc::new(TerminationDetector::with_threshold(2, 1));
        let d2 = Arc::clone(&d);
        let idle = thread::spawn(move || {
            assert_eq!(d2.idle_wait(TIMEOUT), IdleOutcome::Starved);
            // Sticky for late callers.
            assert_eq!(d2.idle_wait(TIMEOUT), IdleOutcome::Starved);
        });
        idle.join().unwrap();
        assert!(d.is_starved());
        assert!(!d.is_done());
        let st = d.stats();
        assert_eq!(st.starvation_trips, 1);
        assert_eq!(st.sleeps, st.wakes);
    });
}

/// A reset between rounds on a quiescent detector must rearm it: a
/// second round reaches AllDone again and keeps cumulative stats.
#[test]
fn reset_rearms_between_rounds() {
    model(|| {
        let d = Arc::new(TerminationDetector::new(2));
        for round in 1..=2u64 {
            let d2 = Arc::clone(&d);
            let t = thread::spawn(move || loop {
                match d2.idle_wait(TIMEOUT) {
                    IdleOutcome::AllDone => break,
                    IdleOutcome::Retry => continue,
                    IdleOutcome::Starved => panic!("starved without a threshold"),
                }
            });
            loop {
                match d.idle_wait(TIMEOUT) {
                    IdleOutcome::AllDone => break,
                    IdleOutcome::Retry => continue,
                    IdleOutcome::Starved => panic!("starved without a threshold"),
                }
            }
            t.join().unwrap();
            assert!(d.is_done(), "round {round} did not quiesce");
            d.reset();
            assert!(!d.is_done());
        }
        let st = d.stats();
        assert_eq!(st.sleeps, st.wakes);
    });
}
