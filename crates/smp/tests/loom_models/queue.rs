//! Models: the [`WorkQueue`] owner/thief protocol — no item is lost or
//! duplicated under any interleaving of owner pops and thief steals,
//! FIFO order survives for the owner, and the lock-free `approx_len`
//! mirror is exact whenever the queue is quiescent.

use std::collections::VecDeque;

use st_smp::sync::{model, thread, Arc};
use st_smp::{StealPolicy, WorkQueue};

/// Owner pushes 1..=3 then drains from the front while a thief steals
/// half from the back: every item must surface exactly once, and the
/// owner's share must stay in FIFO order.
#[test]
fn no_item_lost_under_owner_thief_race() {
    model(|| {
        let q = Arc::new(WorkQueue::new());
        let q2 = Arc::clone(&q);
        let thief = thread::spawn(move || {
            let mut out = VecDeque::new();
            q2.steal_into(&mut out, StealPolicy::Half);
            out
        });
        let mut mine = Vec::new();
        q.push(1usize);
        q.push(2);
        q.push(3);
        while let Some(v) = q.pop() {
            mine.push(v);
        }
        let stolen = thief.join().unwrap();
        assert!(
            mine.windows(2).all(|w| w[0] < w[1]),
            "owner saw items out of FIFO order: {mine:?}"
        );
        let mut all: Vec<usize> = mine;
        all.extend(stolen.iter().copied());
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "items lost or duplicated");
        assert_eq!(q.len(), 0);
    });
}

/// Concurrent `pop_chunk` (owner batching) versus a thief's
/// `steal_into`: the two detachments must partition the queue.
#[test]
fn pop_chunk_and_steal_partition_the_queue() {
    model(|| {
        let q = Arc::new(WorkQueue::new());
        q.push_all(0..4usize);
        let q2 = Arc::clone(&q);
        let thief = thread::spawn(move || {
            let mut out = VecDeque::new();
            q2.steal_into(&mut out, StealPolicy::Chunk(2));
            out
        });
        let mut front = VecDeque::new();
        q.pop_chunk(&mut front, 2);
        let back = thief.join().unwrap();
        let mut rest = VecDeque::new();
        q.pop_chunk(&mut rest, 8);
        let mut all: Vec<usize> = front.into_iter().chain(back).chain(rest).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3], "items lost or duplicated");
    });
}

/// The `approx_len` mirror is published before each operation releases
/// the queue lock, so at quiescence (all operations joined) it must
/// equal the exact `len()` — the invariant the traversal's
/// deterministic steal sweep and the metrics tests rely on.
#[test]
fn approx_len_mirror_exact_at_quiescence() {
    model(|| {
        let q = Arc::new(WorkQueue::new());
        let q2 = Arc::clone(&q);
        let t = thread::spawn(move || {
            q2.push(10usize);
            q2.push(11);
        });
        q.push(1usize);
        q.pop();
        t.join().unwrap();
        assert_eq!(
            q.approx_len(),
            q.len(),
            "approx_len mirror out of sync at quiescence"
        );
        assert_eq!(q.len(), 2);
        assert!(!q.appears_empty());
    });
}
