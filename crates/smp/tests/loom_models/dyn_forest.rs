//! Models: the two sync protocols the batch-dynamic forest maintainer
//! (st-core `dyn_forest`) adds on top of the workspace arena.
//!
//! Insertion waves union touched components with the CAS-hook idiom:
//! a rank first claims the smaller root's *hook cell* (CAS from EMPTY
//! to its edge index), and only the claim winner writes the union-find
//! parent. The claim makes the parent store exclusive; between claim
//! and store there is a window where the hook is taken but the parent
//! still reads EMPTY, which `find` must (and does) treat as "still a
//! root".
//!
//! Deletion's parallel replacement scan elects one crossing edge into a
//! shared `AtomicU64` slot (packed `(x << 32) | y`, `u64::MAX` = no
//! winner yet) via CAS-from-empty. The slot is write-once: scanners
//! poll it to stop early, and a failed CAS exposes the winner, so every
//! rank retires agreeing on the same replacement edge.

use st_smp::sync::atomic::{AtomicU64, Ordering};
use st_smp::sync::{model, thread, Arc};
use st_smp::AtomicU32Array;

/// The arena's EMPTY sentinel (`u32::MAX`), as used by dyn_forest for
/// both unclaimed hook cells and root union-find entries.
const EMPTY: u32 = u32::MAX;

/// Two ranks race to hook root 0 under two different larger roots.
/// Exactly one hook claim may win; only the winner stores the parent;
/// and any rank reading the parent afterwards sees either EMPTY (the
/// claim/store window — still a root to `find`) or the winner's value,
/// never the loser's.
#[test]
fn hook_claim_makes_the_parent_store_exclusive() {
    model(|| {
        // hooks[0] guards root 0; uf holds three roots (all EMPTY).
        let hooks = Arc::new(AtomicU32Array::new(1, EMPTY));
        let uf = Arc::new(AtomicU32Array::new(3, EMPTY));

        let handles: Vec<_> = [(1u32, 7u32), (2u32, 9u32)]
            .into_iter()
            .map(|(parent, edge)| {
                let hooks = Arc::clone(&hooks);
                let uf = Arc::clone(&uf);
                thread::spawn(move || {
                    if hooks.try_claim(0, EMPTY, edge) {
                        // The claim is exclusive, so the parent store
                        // needs no CAS — Release pairs with the readers'
                        // Acquire loads in `find`.
                        uf.store(0, parent, Ordering::Release);
                        (Some((parent, edge)), uf.load(0, Ordering::Acquire))
                    } else {
                        // The loser walks away; its `find` keeps
                        // treating whatever it reads as the truth.
                        (None, uf.load(0, Ordering::Acquire))
                    }
                })
            })
            .collect();

        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let winners: Vec<(u32, u32)> = results.iter().filter_map(|(w, _)| *w).collect();
        assert_eq!(winners.len(), 1, "exactly one hook claim must win");
        let (won_parent, won_edge) = winners[0];
        assert_eq!(
            hooks.load(0, Ordering::Acquire),
            won_edge,
            "the hook cell must record the winning edge"
        );
        assert_eq!(
            uf.load(0, Ordering::Acquire),
            won_parent,
            "the parent must settle on the claim winner's root"
        );
        for (won, observed) in &results {
            if won.is_none() {
                // The window between claim and store may expose EMPTY
                // (root 0 still its own root); it must never expose a
                // value nobody stored.
                assert!(
                    *observed == EMPTY || *observed == won_parent,
                    "loser observed parent {observed} that no winner stored"
                );
            }
        }
    });
}

/// Replacement-edge election sentinel: no winner yet.
const NO_WINNER: u64 = u64::MAX;

/// Packs a crossing edge the way the replacement scan does.
fn pack(x: u32, y: u32) -> u64 {
    (u64::from(x) << 32) | u64::from(y)
}

/// Two scanners each find a crossing edge and CAS it into the shared
/// election slot while a third rank polls the slot (the every-16-pops
/// early-exit check). The slot is write-once from NO_WINNER, so every
/// rank — winner, CAS loser, and poller — must retire agreeing on the
/// single settled edge.
#[test]
fn replacement_election_elects_exactly_one_edge() {
    model(|| {
        let slot = Arc::new(AtomicU64::new(NO_WINNER));

        let scanners: Vec<_> = [pack(1, 2), pack(3, 4)]
            .into_iter()
            .map(|candidate| {
                let slot = Arc::clone(&slot);
                thread::spawn(move || {
                    match slot.compare_exchange(
                        NO_WINNER,
                        candidate,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => candidate,
                        Err(seen) => {
                            // A failed CAS exposes the winner, and the
                            // scanner stops with that edge.
                            assert_ne!(seen, NO_WINNER, "failed CAS must expose the winner");
                            seen
                        }
                    }
                })
            })
            .collect();
        let poller = {
            let slot = Arc::clone(&slot);
            thread::spawn(move || slot.load(Ordering::Acquire))
        };

        let agreed: Vec<u64> = scanners.into_iter().map(|h| h.join().unwrap()).collect();
        let polled = poller.join().unwrap();
        let settled = slot.load(Ordering::Acquire);
        assert!(
            settled == pack(1, 2) || settled == pack(3, 4),
            "slot settled on an edge nobody proposed"
        );
        for edge in agreed {
            assert_eq!(edge, settled, "a scanner retired with a different edge");
        }
        // The slot is write-once: a poll sees NO_WINNER (keep scanning)
        // or the final edge, never a value that later changes.
        assert!(
            polled == NO_WINNER || polled == settled,
            "poller observed a non-final winner"
        );
    });
}
