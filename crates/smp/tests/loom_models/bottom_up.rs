//! Models: the bottom-up sweep protocol of the direction-optimizing
//! traversal (st-core `traversal::bottom_up_phase`), and the
//! CAS-from-clean abort-byte rendezvous that gets the team there.
//!
//! The sweep protocol under test: a leader-written control word decides
//! each sweep in the window between the sweep-end barrier and the next
//! sweep-start barrier (followers never read the claim tally directly —
//! that read would race the leader's reset); the chunk cursor hands
//! each vertex to exactly one rank per sweep, which is why the claim
//! write is a single *relaxed* store, not a CAS; and the sweep-end
//! barrier is the sole publication point those relaxed stores rely on.

use st_smp::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use st_smp::sync::{model, thread, Arc};
use st_smp::{AtomicU32Array, BarrierToken, SenseBarrier};

const UNCOLORED: u32 = 0;

const CTL_RUN: u8 = 0;
const CTL_DONE: u8 = 1;

/// Two ranks sweep a 3-vertex chain (vertex 0 pre-seeded) bottom-up
/// until a sweep claims nothing. Every schedule must uphold the real
/// protocol's invariants: each vertex is claimed at most once (cursor
/// exclusivity, no CAS), each rank observes every earlier sweep's
/// relaxed claim stores after the sweep-end barrier, both ranks take
/// the same number of sweeps (uniform leader-decided termination), and
/// the chain ends fully colored.
#[test]
fn bottom_up_sweeps_claim_once_and_publish_through_barrier() {
    model(|| {
        const N: usize = 3;
        let color = Arc::new(AtomicU32Array::new(N, UNCOLORED));
        color.store(0, 1, Ordering::Release); // the seed vertex
        let barrier = Arc::new(SenseBarrier::new(2));
        let cursor = Arc::new(AtomicUsize::new(0));
        let sweep_claims = Arc::new(AtomicUsize::new(0));
        let sweep_ctl = Arc::new(AtomicU8::new(CTL_RUN));
        let claim_counts: Arc<Vec<AtomicUsize>> =
            Arc::new((0..N).map(|_| AtomicUsize::new(0)).collect());

        let handles: Vec<_> = (0..2usize)
            .map(|rank| {
                let color = Arc::clone(&color);
                let barrier = Arc::clone(&barrier);
                let cursor = Arc::clone(&cursor);
                let sweep_claims = Arc::clone(&sweep_claims);
                let sweep_ctl = Arc::clone(&sweep_ctl);
                let claim_counts = Arc::clone(&claim_counts);
                thread::spawn(move || {
                    let token = BarrierToken::new();
                    let my_label = rank as u32 + 2;
                    let mut sweeps = 0usize;
                    let mut first = true;
                    loop {
                        if rank == 0 {
                            // Decision window: only the leader reads the
                            // tally, then resets per-sweep state. No
                            // follower touches any of it until after the
                            // sweep-start barrier below.
                            let ctl = if !first && sweep_claims.load(Ordering::Relaxed) == 0 {
                                CTL_DONE
                            } else {
                                CTL_RUN
                            };
                            cursor.store(0, Ordering::Relaxed);
                            sweep_claims.store(0, Ordering::Relaxed);
                            sweep_ctl.store(ctl, Ordering::Relaxed);
                        }
                        first = false;
                        barrier.wait(&token); // sweep start: ctl published
                        if sweep_ctl.load(Ordering::Relaxed) == CTL_DONE {
                            return sweeps;
                        }
                        // Visibility: every vertex claimed in an earlier
                        // sweep must be readable now, through Relaxed
                        // loads — the barriers are the only ordering.
                        for v in 0..N {
                            if claim_counts[v].load(Ordering::SeqCst) > 0 {
                                assert_ne!(
                                    color.load(v, Ordering::Relaxed),
                                    UNCOLORED,
                                    "earlier sweep's claim of {v} not visible after barrier"
                                );
                            }
                        }
                        let mut local = 0usize;
                        loop {
                            let v = cursor.fetch_add(1, Ordering::Relaxed);
                            if v >= N {
                                break;
                            }
                            if color.load(v, Ordering::Acquire) != UNCOLORED {
                                continue;
                            }
                            let visited_neighbor = (v > 0
                                && color.load(v - 1, Ordering::Acquire) != UNCOLORED)
                                || (v + 1 < N && color.load(v + 1, Ordering::Acquire) != UNCOLORED);
                            if visited_neighbor {
                                // The cursor handed v to this rank
                                // exclusively: a plain relaxed store
                                // suffices, no claim CAS.
                                color.store(v, my_label, Ordering::Relaxed);
                                claim_counts[v].fetch_add(1, Ordering::SeqCst);
                                local += 1;
                            }
                        }
                        if local > 0 {
                            sweep_claims.fetch_add(local, Ordering::Relaxed);
                        }
                        sweeps += 1;
                        assert!(sweeps <= N + 1, "sweeps failed to converge");
                        barrier.wait(&token); // sweep end: claims published
                    }
                })
            })
            .collect();

        let sweep_counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            sweep_counts[0], sweep_counts[1],
            "ranks disagreed on the sweep count"
        );
        // Chain 0-1-2 from seed 0: claims may propagate one hop per
        // sweep (vertex 2 waits for sweep 2) or ride a same-sweep claim
        // of vertex 1 — both benign, any visited vertex is a valid
        // parent — plus one final empty sweep to detect quiescence.
        assert!(
            sweep_counts[0] == 2 || sweep_counts[0] == 3,
            "unexpected sweep count {}",
            sweep_counts[0]
        );
        for v in 0..N {
            let claims = claim_counts[v].load(Ordering::SeqCst);
            assert!(claims <= 1, "vertex {v} claimed {claims} times");
            assert_ne!(color.load(v, Ordering::Relaxed), UNCOLORED, "vertex {v}");
        }
    });
}

const ABORT_NONE: u8 = 0;
const ABORT_CANCELLED: u8 = 2;
const ABORT_SWITCH: u8 = 3;

/// The abort-byte rendezvous: one rank raises a direction switch while
/// another raises a cancellation, both via CAS-from-clean. Exactly one
/// transition may win, and the loser must observe and follow the
/// winner's value — the invariant that keeps every rank heading to the
/// same place (the switch barrier or the cancelled exit).
#[test]
fn abort_byte_single_writer_wins_and_loser_follows() {
    model(|| {
        let abort = Arc::new(AtomicU8::new(ABORT_NONE));
        let handles: Vec<_> = [ABORT_SWITCH, ABORT_CANCELLED]
            .into_iter()
            .map(|mine| {
                let abort = Arc::clone(&abort);
                thread::spawn(move || {
                    match abort.compare_exchange(
                        ABORT_NONE,
                        mine,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => mine,
                        Err(actual) => {
                            assert_ne!(actual, ABORT_NONE, "failed CAS must expose the winner");
                            actual
                        }
                    }
                })
            })
            .collect();
        let followed: Vec<u8> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let settled = abort.load(Ordering::Acquire);
        assert!(settled == ABORT_SWITCH || settled == ABORT_CANCELLED);
        for f in followed {
            assert_eq!(
                f, settled,
                "a rank followed a value the byte never settled on"
            );
        }
    });
}
