//! Trace identity and the bounded structured event journal.
//!
//! A `/metrics` page answers "how is the pool doing?"; it cannot answer
//! "what happened to *my* job?". [`TraceId`] is the per-job identity
//! minted at submission and carried through the wire protocol, queue,
//! dispatcher, and [`JobMetrics`](crate::JobMetrics); [`EventJournal`]
//! is the bounded ring of lifecycle events
//! (submitted → admitted → dequeued → started → finished, plus
//! direction switches) stamped with that id, the tenant lane, the
//! executing team, and a monotonic timestamp. When the ring is full the
//! oldest events are dropped and counted — the journal never blocks or
//! grows without bound.
//!
//! Events render as JSONL (one JSON object per line), hand-written so
//! the format is stable and dependency-free.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Instant;

/// Process-unique identity of one job, minted at submission.
///
/// Ids are sequential from a process-wide counter (never 0), rendered
/// as 16-digit hex. Sequential rather than random: the journal is
/// in-process, collisions are impossible, and ordered ids make ring
/// dumps greppable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Mints the next process-unique id.
    pub fn mint() -> Self {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(NEXT.fetch_add(1, Relaxed))
    }

    /// The raw id value (never 0 for minted ids).
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One step of a job's lifecycle, in causal order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum JobEventKind {
    /// The submission arrived (wire or in-process) and was assigned a
    /// trace id.
    Submitted,
    /// The job entered a queue lane (or resolved at the door: a cache
    /// hit or an already-expired deadline — see `detail`).
    Admitted,
    /// A dispatcher popped the job from its lane.
    Dequeued,
    /// Execution began on a team.
    Started,
    /// The hybrid traversal switched direction at least once while the
    /// job ran (recorded when execution metrics show bottom-up rounds).
    DirectionSwitched,
    /// The job left the service; `detail` carries the outcome.
    Finished,
}

impl JobEventKind {
    /// Stable lowercase name used in the JSONL rendering.
    pub fn name(self) -> &'static str {
        match self {
            JobEventKind::Submitted => "submitted",
            JobEventKind::Admitted => "admitted",
            JobEventKind::Dequeued => "dequeued",
            JobEventKind::Started => "started",
            JobEventKind::DirectionSwitched => "direction_switched",
            JobEventKind::Finished => "finished",
        }
    }
}

/// One journal entry: what happened, to which job, when, and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobEvent {
    /// The job this event belongs to.
    pub trace: TraceId,
    /// Lifecycle step.
    pub kind: JobEventKind,
    /// Nanoseconds since the journal's epoch (monotonic, comparable
    /// across events of one process).
    pub t_ns: u64,
    /// Priority lane (0 = highest) when known.
    pub lane: Option<u8>,
    /// Executing team id when known (only from `Started` onward).
    pub team: Option<u32>,
    /// Free-form annotation: outcome for `Finished`, "cache_hit" for
    /// door-resolved admissions, round counts for direction switches.
    pub detail: Option<String>,
}

impl JobEvent {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str("{\"trace\":\"");
        out.push_str(&format!("{:016x}", self.trace.0));
        out.push_str("\",\"event\":\"");
        out.push_str(self.kind.name());
        out.push_str("\",\"t_ns\":");
        out.push_str(&self.t_ns.to_string());
        if let Some(lane) = self.lane {
            out.push_str(",\"lane\":");
            out.push_str(&lane.to_string());
        }
        if let Some(team) = self.team {
            out.push_str(",\"team\":");
            out.push_str(&team.to_string());
        }
        if let Some(detail) = &self.detail {
            out.push_str(",\"detail\":\"");
            escape_json_into(detail, &mut out);
            out.push('"');
        }
        out.push('}');
        out
    }
}

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A bounded ring of [`JobEvent`]s with drop-oldest overflow.
///
/// Writers take a short mutex per event (the critical section is a
/// `VecDeque` push plus possible pop — no allocation beyond the event
/// itself); readers copy the ring out. The cap bounds memory, the
/// `dropped` counter makes overflow observable instead of silent.
pub struct EventJournal {
    ring: Mutex<VecDeque<JobEvent>>,
    cap: usize,
    dropped: AtomicU64,
    epoch: Instant,
}

impl fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventJournal")
            .field("cap", &self.cap)
            .field("dropped", &self.dropped.load(Relaxed))
            .finish()
    }
}

impl EventJournal {
    /// A journal holding at most `cap` events (at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        Self {
            ring: Mutex::new(VecDeque::with_capacity(cap.min(4096))),
            cap,
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds since this journal's epoch (saturating at `u64::MAX`
    /// after ~584 years).
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Appends an event, dropping the oldest if the ring is full.
    pub fn record(&self, mut event: JobEvent) {
        if event.t_ns == 0 {
            event.t_ns = self.now_ns();
        }
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() >= self.cap {
            ring.pop_front();
            self.dropped.fetch_add(1, Relaxed);
        }
        ring.push_back(event);
    }

    /// Convenience: records `kind` for `trace` now.
    pub fn record_now(
        &self,
        trace: TraceId,
        kind: JobEventKind,
        lane: Option<u8>,
        team: Option<u32>,
        detail: Option<String>,
    ) {
        self.record(JobEvent {
            trace,
            kind,
            t_ns: self.now_ns(),
            lane,
            team,
            detail,
        });
    }

    /// Events dropped to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Relaxed)
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Copies the ring out, oldest first.
    pub fn events(&self) -> Vec<JobEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Copies out only the events for `trace`, oldest first.
    pub fn events_for(&self, trace: TraceId) -> Vec<JobEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|e| e.trace == trace)
            .cloned()
            .collect()
    }

    /// Renders the ring as JSONL, oldest first, one event per line
    /// (trailing newline included when non-empty). `trace` filters to
    /// one job.
    pub fn to_jsonl(&self, trace: Option<TraceId>) -> String {
        let events = match trace {
            Some(t) => self.events_for(t),
            None => self.events(),
        };
        let mut out = String::with_capacity(events.len() * 96);
        for e in &events {
            out.push_str(&e.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = TraceId::mint();
        let b = TraceId::mint();
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), 0);
        assert_ne!(b.as_u64(), 0);
        assert_eq!(format!("{a}").len(), 16);
    }

    #[test]
    fn journal_records_in_order() {
        let j = EventJournal::new(16);
        let t = TraceId::mint();
        j.record_now(t, JobEventKind::Submitted, Some(1), None, None);
        j.record_now(t, JobEventKind::Admitted, Some(1), None, None);
        j.record_now(t, JobEventKind::Dequeued, Some(1), None, None);
        j.record_now(t, JobEventKind::Started, Some(1), Some(0), None);
        j.record_now(
            t,
            JobEventKind::Finished,
            Some(1),
            Some(0),
            Some("completed".into()),
        );
        let events = j.events_for(t);
        assert_eq!(events.len(), 5);
        let kinds: Vec<_> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                JobEventKind::Submitted,
                JobEventKind::Admitted,
                JobEventKind::Dequeued,
                JobEventKind::Started,
                JobEventKind::Finished,
            ]
        );
        assert!(
            events.windows(2).all(|w| w[0].t_ns <= w[1].t_ns),
            "timestamps must be monotone"
        );
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let j = EventJournal::new(3);
        for i in 0..5u64 {
            j.record_now(TraceId(i + 1), JobEventKind::Submitted, None, None, None);
        }
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(events[0].trace, TraceId(3), "oldest two were dropped");
        assert_eq!(events[2].trace, TraceId(5));
    }

    #[test]
    fn jsonl_rendering_is_parseable() {
        let j = EventJournal::new(8);
        let t = TraceId(0xabcd);
        j.record_now(
            t,
            JobEventKind::Finished,
            Some(2),
            Some(1),
            Some("panicked: \"boom\"\n".into()),
        );
        let jsonl = j.to_jsonl(Some(t));
        let line = jsonl.trim_end();
        let v = serde_json::parse_value(line).expect("valid JSON");
        let o = match v {
            serde::Value::Object(o) => o,
            other => panic!("expected object, got {other:?}"),
        };
        assert_eq!(
            o.get("trace"),
            Some(&serde::Value::String("000000000000abcd".into()))
        );
        assert_eq!(
            o.get("event"),
            Some(&serde::Value::String("finished".into()))
        );
        assert_eq!(o.get("lane"), Some(&serde::Value::Number(2.0)));
        assert_eq!(o.get("team"), Some(&serde::Value::Number(1.0)));
        assert_eq!(
            o.get("detail"),
            Some(&serde::Value::String("panicked: \"boom\"\n".into()))
        );
    }

    #[test]
    fn filter_by_trace() {
        let j = EventJournal::new(8);
        j.record_now(TraceId(1), JobEventKind::Submitted, None, None, None);
        j.record_now(TraceId(2), JobEventKind::Submitted, None, None, None);
        j.record_now(TraceId(1), JobEventKind::Finished, None, None, None);
        assert_eq!(j.events_for(TraceId(1)).len(), 2);
        assert_eq!(j.events_for(TraceId(2)).len(), 1);
        assert_eq!(j.to_jsonl(Some(TraceId(3))), "");
    }
}
