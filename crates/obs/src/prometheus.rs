//! Prometheus text exposition of the service pool gauges and latency
//! histograms.
//!
//! The service's `/metrics` endpoint (HTTP, plus the wire op `METRICS`)
//! renders one [`PoolSnapshot`] — and optionally a set of
//! [`HistogramFamily`]s — in the [Prometheus text exposition format]:
//! for each metric family a `# HELP` line, a `# TYPE` line, then the
//! samples. Counters follow the `_total` suffix convention; durations
//! are exported in seconds as Prometheus prescribes; the per-outcome
//! and per-lane breakdowns use labels so dashboards can aggregate or
//! slice without new metric names. Histograms render the canonical
//! `_bucket{le=…}`/`_sum`/`_count` triple over a fixed ladder of
//! second-denominated bounds ([`DEFAULT_LATENCY_BOUNDS_NS`]),
//! cumulative by construction.
//!
//! The renderer is deliberately dependency-free, and the format is
//! checkable offline: [`lint_exposition`] validates a rendered page
//! against the grammar subset we emit (metric name charset, label
//! syntax, float-parsable values, HELP/TYPE ordering, no duplicate
//! samples) plus the histogram invariants (bucket monotonicity,
//! `+Inf` bucket equal to `_count`, `_sum` present). CI curls the live
//! `/metrics` page through it so a broken scrape fails the build.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;

use crate::hist::HistogramSnapshot;
use crate::pool::PoolSnapshot;

/// Content type remote scrapers should be told (`text/plain; version
/// 0.0.4` is the canonical exposition content type).
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

/// The `le` ladder for latency histograms, in nanoseconds: 50µs to 30s
/// in a 1–2.5–5 progression. Rendered bounds are divided by 1e9 into
/// seconds; a final `+Inf` bucket is always appended.
pub const DEFAULT_LATENCY_BOUNDS_NS: [u64; 18] = [
    50_000,
    100_000,
    250_000,
    500_000,
    1_000_000,
    2_500_000,
    5_000_000,
    10_000_000,
    25_000_000,
    50_000_000,
    100_000_000,
    250_000_000,
    500_000_000,
    1_000_000_000,
    2_500_000_000,
    5_000_000_000,
    10_000_000_000,
    30_000_000_000,
];

/// One labeled series inside a [`HistogramFamily`]: a label set (e.g.
/// `lane="high"` or `algorithm="bader-cong"`) and the merged snapshot
/// to render under it.
pub struct HistogramSeries {
    /// Label pairs attached to every `_bucket`/`_sum`/`_count` sample
    /// (the `le` label is appended by the renderer).
    pub labels: Vec<(&'static str, String)>,
    /// The histogram data, in nanoseconds.
    pub snapshot: HistogramSnapshot,
}

/// One histogram metric family: a name, help text, and its labeled
/// series.
pub struct HistogramFamily {
    /// Family name (`st_service_…_seconds`); the renderer appends the
    /// `_bucket`/`_sum`/`_count` suffixes.
    pub name: &'static str,
    /// HELP text.
    pub help: &'static str,
    /// The labeled series to render.
    pub series: Vec<HistogramSeries>,
}

struct Page {
    out: String,
}

impl Page {
    fn new() -> Self {
        Self {
            out: String::with_capacity(4096),
        }
    }

    /// Opens a metric family: HELP + TYPE header lines.
    fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name}");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// One unlabeled sample.
    fn sample(&mut self, name: &str, value: f64) -> &mut Self {
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
        self
    }

    /// One sample carrying a single label.
    fn labeled(&mut self, name: &str, label: &str, label_value: &str, value: f64) -> &mut Self {
        let _ = writeln!(
            self.out,
            "{name}{{{label}=\"{label_value}\"}} {}",
            fmt_value(value)
        );
        self
    }

    /// One sample carrying an arbitrary label set (rendered in order).
    fn multi_labeled(&mut self, name: &str, labels: &[(&str, &str)], value: f64) -> &mut Self {
        let _ = write!(self.out, "{name}");
        if !labels.is_empty() {
            let _ = write!(self.out, "{{");
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    let _ = write!(self.out, ",");
                }
                let _ = write!(self.out, "{k}=\"{v}\"");
            }
            let _ = write!(self.out, "}}");
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
        self
    }

    /// Renders one histogram series: the cumulative `_bucket` ladder
    /// (in seconds), then `_sum` and `_count` under the same labels.
    fn histogram_series(&mut self, family: &str, series: &HistogramSeries) {
        let cum = series.snapshot.cumulative_le(&DEFAULT_LATENCY_BOUNDS_NS);
        let bucket = format!("{family}_bucket");
        let base: Vec<(&str, &str)> = series
            .labels
            .iter()
            .map(|(k, v)| (*k, v.as_str()))
            .collect();
        for (i, &bound_ns) in DEFAULT_LATENCY_BOUNDS_NS.iter().enumerate() {
            let le = fmt_value(bound_ns as f64 / 1e9);
            let mut labels = base.clone();
            labels.push(("le", le.as_str()));
            self.multi_labeled(&bucket, &labels, cum[i] as f64);
        }
        let mut labels = base.clone();
        labels.push(("le", "+Inf"));
        self.multi_labeled(&bucket, &labels, series.snapshot.count as f64);
        self.multi_labeled(
            &format!("{family}_sum"),
            &base,
            series.snapshot.sum as f64 / 1e9,
        );
        self.multi_labeled(
            &format!("{family}_count"),
            &base,
            series.snapshot.count as f64,
        );
    }
}

/// Values render as integers when they are integral (the common case
/// for counters) and as plain decimals otherwise — both are valid
/// exposition floats.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// True for names matching `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub(crate) fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Renders `snap` as a Prometheus text-format page with no histogram
/// families (the pre-telemetry page; the wire `METRICS` op still
/// serves it).
pub fn render_pool_prometheus(snap: &PoolSnapshot) -> String {
    render_service_prometheus(snap, &[])
}

/// Renders `snap` plus the given latency histogram families as a
/// Prometheus text-format page.
///
/// Every metric is prefixed `st_service_`; nanosecond totals are
/// converted to seconds. Alongside the raw gauges the page carries the
/// SLO series ROADMAP item 5 needs: deadline-miss ratio, result-cache
/// hit ratio, and per-lane rejects.
pub fn render_service_prometheus(snap: &PoolSnapshot, histograms: &[HistogramFamily]) -> String {
    let mut p = Page::new();
    p.family(
        "st_service_jobs_submitted_total",
        "counter",
        "Jobs accepted by the admission queue or served from the result cache.",
    )
    .sample("st_service_jobs_submitted_total", snap.submitted as f64);
    p.family(
        "st_service_jobs_rejected_total",
        "counter",
        "Submissions rejected at admission, any reason.",
    )
    .sample("st_service_jobs_rejected_total", snap.rejected as f64);

    p.family(
        "st_service_lane_rejected_total",
        "counter",
        "Submissions rejected at admission, by target priority lane.",
    );
    for (lane, v) in [
        ("high", snap.rejected_high),
        ("normal", snap.rejected_normal),
        ("low", snap.rejected_low),
    ] {
        p.labeled("st_service_lane_rejected_total", "lane", lane, v as f64);
    }

    p.family(
        "st_service_reject_reason_total",
        "counter",
        "Submissions rejected at admission, by reason.",
    );
    for (reason, v) in [
        ("backpressure", snap.rejected_backpressure()),
        ("quota", snap.rejected_quota),
        ("deadline_unmeetable", snap.rejected_deadline_unmeetable),
    ] {
        p.labeled("st_service_reject_reason_total", "reason", reason, v as f64);
    }

    p.family(
        "st_service_lane_dequeued_total",
        "counter",
        "Jobs the scheduler drained from each priority lane (its per-lane service rate).",
    );
    for (lane, v) in [
        ("high", snap.dequeued_high),
        ("normal", snap.dequeued_normal),
        ("low", snap.dequeued_low),
    ] {
        p.labeled("st_service_lane_dequeued_total", "lane", lane, v as f64);
    }

    p.family(
        "st_service_jobs_finished_total",
        "counter",
        "Jobs that left the service, by outcome (cached = served from the result cache without executing).",
    );
    for (outcome, v) in [
        ("completed", snap.completed),
        ("cached", snap.completed_cached),
        ("cancelled", snap.cancelled),
        ("deadline_exceeded", snap.deadline_exceeded),
        ("panicked", snap.panicked),
    ] {
        p.labeled(
            "st_service_jobs_finished_total",
            "outcome",
            outcome,
            v as f64,
        );
    }

    p.family(
        "st_service_queue_depth",
        "gauge",
        "Jobs currently waiting in the admission queue.",
    )
    .sample("st_service_queue_depth", snap.queue_depth as f64);

    p.family(
        "st_service_lane_queue_depth",
        "gauge",
        "Jobs currently waiting, by priority lane.",
    );
    for (lane, v) in [
        ("high", snap.queue_depth_high),
        ("normal", snap.queue_depth_normal),
        ("low", snap.queue_depth_low),
    ] {
        p.labeled("st_service_lane_queue_depth", "lane", lane, v as f64);
    }

    p.family(
        "st_service_queue_depth_peak",
        "gauge",
        "High-water mark of the admission queue depth.",
    )
    .sample("st_service_queue_depth_peak", snap.max_queue_depth as f64);
    p.family(
        "st_service_busy_teams",
        "gauge",
        "Executor teams currently running a job.",
    )
    .sample("st_service_busy_teams", snap.busy_teams as f64);

    p.family(
        "st_service_pool_resizes_total",
        "counter",
        "Elastic team resizes, by direction.",
    );
    for (direction, v) in [("grow", snap.teams_grown), ("shrink", snap.teams_shrunk)] {
        p.labeled(
            "st_service_pool_resizes_total",
            "direction",
            direction,
            v as f64,
        );
    }

    p.family(
        "st_service_queue_wait_seconds_total",
        "counter",
        "Summed queue wait of finished jobs, seconds.",
    )
    .sample(
        "st_service_queue_wait_seconds_total",
        snap.queue_ns_total as f64 / 1e9,
    );
    p.family(
        "st_service_exec_seconds_total",
        "counter",
        "Summed execution time of finished jobs, seconds.",
    )
    .sample(
        "st_service_exec_seconds_total",
        snap.exec_ns_total as f64 / 1e9,
    );

    p.family(
        "st_service_result_cache_hits_total",
        "counter",
        "Catalog-addressed submissions served from the result cache.",
    )
    .sample("st_service_result_cache_hits_total", snap.cache_hits as f64);
    p.family(
        "st_service_result_cache_misses_total",
        "counter",
        "Catalog-addressed submissions that had to execute.",
    )
    .sample(
        "st_service_result_cache_misses_total",
        snap.cache_misses as f64,
    );

    p.family(
        "st_service_updates_incremental_total",
        "counter",
        "Batch updates whose spanning forest was repaired in place.",
    )
    .sample(
        "st_service_updates_incremental_total",
        snap.updates_incremental as f64,
    );
    p.family(
        "st_service_updates_recomputed_total",
        "counter",
        "Batch updates that fell back to a full recompute.",
    )
    .sample(
        "st_service_updates_recomputed_total",
        snap.updates_recomputed as f64,
    );
    p.family(
        "st_service_update_edges_added_total",
        "counter",
        "Edges actually added across all applied batch updates.",
    )
    .sample(
        "st_service_update_edges_added_total",
        snap.update_edges_added as f64,
    );
    p.family(
        "st_service_update_edges_removed_total",
        "counter",
        "Edges actually removed across all applied batch updates.",
    )
    .sample(
        "st_service_update_edges_removed_total",
        snap.update_edges_removed as f64,
    );

    // SLO ratio gauges: ready-made series so dashboards and alert rules
    // need no PromQL division (and stay correct across counter resets).
    let finished = snap.finished();
    let miss_ratio = if finished == 0 {
        0.0
    } else {
        snap.deadline_exceeded as f64 / finished as f64
    };
    p.family(
        "st_service_deadline_miss_ratio",
        "gauge",
        "Fraction of finished jobs that exceeded their deadline.",
    )
    .sample("st_service_deadline_miss_ratio", miss_ratio);
    let lookups = snap.cache_hits + snap.cache_misses;
    let hit_ratio = if lookups == 0 {
        0.0
    } else {
        snap.cache_hits as f64 / lookups as f64
    };
    p.family(
        "st_service_result_cache_hit_ratio",
        "gauge",
        "Fraction of catalog-addressed submissions served from the result cache.",
    )
    .sample("st_service_result_cache_hit_ratio", hit_ratio);

    for family in histograms {
        p.family(family.name, "histogram", family.help);
        for series in &family.series {
            p.histogram_series(family.name, series);
        }
    }
    p.out
}

/// Validates `page` against the exposition-format grammar subset the
/// exporter emits, plus histogram invariants (monotone cumulative
/// buckets, `+Inf` bucket equal to `_count`, `_sum` present).
///
/// Returns the parsed (name or name+labels) → value map on success, a
/// line-qualified description of the first violation otherwise. This
/// is the offline lint CI runs against the live `/metrics` page.
pub fn lint_exposition(page: &str) -> Result<HashMap<String, f64>, String> {
    let mut typed: HashMap<String, String> = HashMap::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut samples: HashMap<String, f64> = HashMap::new();
    // (family, non-le labels) → ladder of (le, cumulative count).
    let mut buckets: HashMap<(String, String), Vec<(f64, f64)>> = HashMap::new();

    // The TYPE-declared family a sample belongs to: histogram samples
    // carry a suffix on top of the family name.
    fn family_of<'a>(name: &'a str, typed: &HashMap<String, String>) -> Option<(&'a str, String)> {
        if let Some(kind) = typed.get(name) {
            return Some((name, kind.clone()));
        }
        for suffix in ["_bucket", "_sum", "_count"] {
            if let Some(base) = name.strip_suffix(suffix) {
                if typed.get(base).map(String::as_str) == Some("histogram") {
                    return Some((base, "histogram".to_owned()));
                }
            }
        }
        None
    }

    for (i, line) in page.lines().enumerate() {
        let ctx = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
        if line.is_empty() {
            return Err(ctx("empty line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let (kw, rest) = rest
                .split_once(' ')
                .ok_or_else(|| ctx("comment must be `# HELP|TYPE name …`"))?;
            let (name, payload) = rest.split_once(' ').ok_or_else(|| ctx("missing payload"))?;
            if !is_valid_metric_name(name) {
                return Err(ctx("bad metric name"));
            }
            match kw {
                "HELP" => {
                    if !helped.insert(name.to_owned()) {
                        return Err(ctx("duplicate HELP"));
                    }
                    if payload.is_empty() {
                        return Err(ctx("empty help text"));
                    }
                }
                "TYPE" => {
                    if !helped.contains(name) {
                        return Err(ctx("TYPE must follow its HELP"));
                    }
                    if !["counter", "gauge", "histogram", "summary", "untyped"].contains(&payload) {
                        return Err(ctx("unknown metric type"));
                    }
                    if typed.insert(name.to_owned(), payload.to_owned()).is_some() {
                        return Err(ctx("duplicate TYPE"));
                    }
                }
                _ => return Err(ctx("unknown comment keyword")),
            }
            continue;
        }
        // Sample line: name[{label="value",…}] value
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| ctx("sample must be `series value`"))?;
        let mut labels: Vec<(String, String)> = Vec::new();
        let name = match series.split_once('{') {
            None => series,
            Some((name, rest)) => {
                let rest = rest
                    .strip_suffix('}')
                    .ok_or_else(|| ctx("unterminated label set"))?;
                for pair in rest.split(',') {
                    let (k, v) = pair
                        .split_once('=')
                        .ok_or_else(|| ctx("label without `=`"))?;
                    if !is_valid_metric_name(k) {
                        return Err(ctx("bad label name"));
                    }
                    if !(v.starts_with('"') && v.ends_with('"') && v.len() >= 2) {
                        return Err(ctx("label value must be quoted"));
                    }
                    labels.push((k.to_owned(), v[1..v.len() - 1].to_owned()));
                }
                name
            }
        };
        if !is_valid_metric_name(name) {
            return Err(ctx("bad sample name"));
        }
        let (fam, kind) = family_of(name, &typed).ok_or_else(|| ctx("sample before its TYPE"))?;
        if kind == "counter" && !name.ends_with("_total") {
            return Err(ctx("counter without _total"));
        }
        let value: f64 = value.parse().map_err(|_| ctx("unparsable sample value"))?;
        if samples.insert(series.to_owned(), value).is_some() {
            return Err(ctx("duplicate sample"));
        }
        if kind == "histogram" && name.ends_with("_bucket") {
            let le = labels
                .iter()
                .find(|(k, _)| k == "le")
                .ok_or_else(|| ctx("histogram bucket without le label"))?;
            let le_value = if le.1 == "+Inf" {
                f64::INFINITY
            } else {
                le.1.parse::<f64>()
                    .map_err(|_| ctx("unparsable le bound"))?
            };
            let rest: Vec<String> = labels
                .iter()
                .filter(|(k, _)| k != "le")
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            buckets
                .entry((fam.to_owned(), rest.join(",")))
                .or_default()
                .push((le_value, value));
        }
    }

    // Histogram invariants, per (family, label-set) series.
    for ((fam, label_set), ladder) in &buckets {
        let here = |what: &str| format!("histogram {fam}{{{label_set}}}: {what}");
        if !ladder.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(here("le bounds out of order or duplicated"));
        }
        if !ladder.windows(2).all(|w| w[0].1 <= w[1].1) {
            return Err(here("bucket counts are not monotone non-decreasing"));
        }
        let last = ladder.last().expect("group exists implies non-empty");
        if last.0 != f64::INFINITY {
            return Err(here("missing +Inf bucket"));
        }
        // Rebuild the label strings the way the renderer quotes them.
        let quoted: String = label_set
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|pair| {
                let (k, v) = pair.split_once('=').expect("built above with =");
                format!("{k}=\"{v}\"")
            })
            .collect::<Vec<_>>()
            .join(",");
        let count_key = if quoted.is_empty() {
            format!("{fam}_count")
        } else {
            format!("{fam}_count{{{quoted}}}")
        };
        let sum_key = if quoted.is_empty() {
            format!("{fam}_sum")
        } else {
            format!("{fam}_sum{{{quoted}}}")
        };
        let count = samples
            .get(&count_key)
            .ok_or_else(|| here("missing _count sample"))?;
        if last.1 != *count {
            return Err(here(&format!(
                "+Inf bucket ({}) disagrees with _count ({count})",
                last.1
            )));
        }
        if !samples.contains_key(&sum_key) {
            return Err(here("missing _sum sample"));
        }
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;
    use crate::pool::{JobOutcomeKind, PoolGauges};

    /// Test-local shim over [`lint_exposition`] that panics on
    /// violations (the historical interface of this module's tests).
    fn check_exposition(page: &str) -> HashMap<String, f64> {
        lint_exposition(page).unwrap_or_else(|e| panic!("invalid exposition: {e}"))
    }

    #[test]
    fn rendered_page_passes_the_grammar() {
        let g = PoolGauges::new();
        for lane in [0, 1, 1, 2] {
            g.on_submit(lane);
        }
        g.on_dequeue(1);
        g.on_finish(JobOutcomeKind::Completed, 1_500_000_000, 500_000_000);
        g.on_reject(2);
        g.on_cache_hit();
        g.on_cache_miss();
        let page = render_pool_prometheus(&g.snapshot());
        let samples = check_exposition(&page);

        assert_eq!(samples["st_service_jobs_submitted_total"], 5.0);
        assert_eq!(samples["st_service_jobs_rejected_total"], 1.0);
        assert_eq!(samples["st_service_lane_rejected_total{lane=\"low\"}"], 1.0);
        assert_eq!(
            samples["st_service_reject_reason_total{reason=\"backpressure\"}"],
            1.0
        );
        assert_eq!(
            samples["st_service_reject_reason_total{reason=\"quota\"}"],
            0.0
        );
        assert_eq!(
            samples["st_service_lane_dequeued_total{lane=\"normal\"}"],
            1.0
        );
        assert_eq!(
            samples["st_service_jobs_finished_total{outcome=\"completed\"}"],
            1.0
        );
        assert_eq!(
            samples["st_service_jobs_finished_total{outcome=\"cached\"}"],
            1.0
        );
        assert_eq!(samples["st_service_queue_depth"], 3.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"high\"}"], 1.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"normal\"}"], 1.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"low\"}"], 1.0);
        assert_eq!(samples["st_service_queue_wait_seconds_total"], 1.5);
        assert_eq!(samples["st_service_exec_seconds_total"], 0.5);
        assert_eq!(samples["st_service_result_cache_hits_total"], 1.0);
        assert_eq!(samples["st_service_result_cache_misses_total"], 1.0);
        assert_eq!(samples["st_service_result_cache_hit_ratio"], 0.5);
        assert_eq!(samples["st_service_deadline_miss_ratio"], 0.0);
    }

    #[test]
    fn histograms_render_and_lint() {
        let h = Histogram::new();
        // 1ms, 3ms, 40ms, 2s — spread across the ladder.
        for ns in [1_000_000u64, 3_000_000, 40_000_000, 2_000_000_000] {
            h.record(ns);
        }
        let families = [HistogramFamily {
            name: "st_service_job_wall_seconds",
            help: "End-to-end job latency.",
            series: vec![
                HistogramSeries {
                    labels: vec![("lane", "high".to_owned())],
                    snapshot: h.snapshot(),
                },
                HistogramSeries {
                    labels: vec![("lane", "normal".to_owned())],
                    snapshot: Histogram::new().snapshot(),
                },
            ],
        }];
        let page = render_service_prometheus(&PoolSnapshot::default(), &families);
        let samples = check_exposition(&page);
        assert_eq!(
            samples["st_service_job_wall_seconds_count{lane=\"high\"}"],
            4.0
        );
        assert_eq!(
            samples["st_service_job_wall_seconds_bucket{lane=\"high\",le=\"+Inf\"}"],
            4.0
        );
        // 1ms and 3ms land at or below the 5ms bound; 40ms and 2s above.
        assert_eq!(
            samples["st_service_job_wall_seconds_bucket{lane=\"high\",le=\"0.005\"}"],
            2.0
        );
        let sum = samples["st_service_job_wall_seconds_sum{lane=\"high\"}"];
        assert!((sum - 2.044).abs() < 1e-9, "sum = {sum}");
        assert_eq!(
            samples["st_service_job_wall_seconds_count{lane=\"normal\"}"], 0.0,
            "empty series still render (stable scrape set)"
        );
    }

    #[test]
    fn empty_snapshot_renders_every_family_at_zero() {
        let page = render_pool_prometheus(&PoolSnapshot::default());
        let samples = check_exposition(&page);
        assert!(samples.values().all(|&v| v == 0.0));
        // Every family the exporter promises is present even when zero
        // (scrapers need stable series).
        for name in [
            "st_service_jobs_submitted_total",
            "st_service_queue_depth",
            "st_service_busy_teams",
            "st_service_queue_depth_peak",
            "st_service_result_cache_hits_total",
            "st_service_deadline_miss_ratio",
            "st_service_result_cache_hit_ratio",
        ] {
            assert!(samples.contains_key(name), "missing {name}");
        }
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_jobs_finished_total"))
                .count(),
            5,
            "all five outcome labels must be exported"
        );
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_lane_rejected_total"))
                .count(),
            3
        );
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_reject_reason_total"))
                .count(),
            3,
            "backpressure, quota, and deadline_unmeetable reasons"
        );
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_lane_dequeued_total"))
                .count(),
            3
        );
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_pool_resizes_total"))
                .count(),
            2,
            "grow and shrink directions"
        );
    }

    #[test]
    fn lint_rejects_violations() {
        let bad_pages = [
            "st_service_x 1\n",                       // sample before TYPE
            "# HELP m h\n# TYPE m counter\nm{x=y} 1", // unquoted label value
            "# HELP m h\n# TYPE m counter\nm one",    // non-numeric value
            "# HELP m h\n# TYPE m wibble\n",          // unknown type
            "# HELP m h\n# TYPE m counter\nm 1\nm 1", // duplicate sample
        ];
        for page in bad_pages {
            assert!(
                lint_exposition(page).is_err(),
                "lint accepted invalid page {page:?}"
            );
        }
    }

    #[test]
    fn lint_rejects_histogram_violations() {
        // Non-monotone buckets.
        let shrinking = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
             h_sum 1\nh_count 5";
        assert!(lint_exposition(shrinking).is_err(), "shrinking buckets");
        // +Inf disagrees with _count.
        let mismatch = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 3";
        assert!(lint_exposition(mismatch).is_err(), "+Inf != _count");
        // Missing +Inf.
        let no_inf = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 2\nh_sum 1\nh_count 2";
        assert!(lint_exposition(no_inf).is_err(), "missing +Inf");
        // Missing _sum.
        let no_sum = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2";
        assert!(lint_exposition(no_sum).is_err(), "missing _sum");
        // A correct histogram passes.
        let good = "# HELP h x\n# TYPE h histogram\n\
             h_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 3\nh_sum 1.5\nh_count 3";
        assert!(lint_exposition(good).is_ok(), "valid histogram rejected");
    }

    #[test]
    fn metric_name_charset() {
        assert!(is_valid_metric_name("st_service_jobs_total"));
        assert!(is_valid_metric_name("_private:metric"));
        assert!(!is_valid_metric_name("9leading_digit"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(!is_valid_metric_name(""));
    }

    #[test]
    fn values_render_compactly() {
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(1.5), "1.5");
    }
}
