//! Prometheus text exposition of the service pool gauges.
//!
//! The service's `/metrics` (wire op `METRICS`) endpoint renders one
//! [`PoolSnapshot`] in the [Prometheus text exposition format]: for
//! each metric family a `# HELP` line, a `# TYPE` line, then the
//! samples. Counters follow the `_total` suffix convention; durations
//! are exported in seconds as Prometheus prescribes; the per-outcome
//! and per-lane breakdowns use labels so dashboards can aggregate or
//! slice without new metric names.
//!
//! The renderer is deliberately dependency-free — the format is line
//! oriented and this module emits a fixed metric set — but the unit
//! tests run every rendered page through a small grammar checker
//! ([`tests::check_exposition`]) covering the subset we emit: metric
//! name charset, label syntax, float-parsable values, HELP/TYPE
//! ordering, and no duplicate samples.
//!
//! [Prometheus text exposition format]:
//!     https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

use crate::pool::PoolSnapshot;

/// Content type remote scrapers should be told (`text/plain; version
/// 0.0.4` is the canonical exposition content type).
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4";

struct Page {
    out: String,
}

impl Page {
    fn new() -> Self {
        Self {
            out: String::with_capacity(2048),
        }
    }

    /// Opens a metric family: HELP + TYPE header lines.
    fn family(&mut self, name: &str, kind: &str, help: &str) -> &mut Self {
        debug_assert!(is_valid_metric_name(name), "bad metric name {name}");
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
        self
    }

    /// One unlabeled sample.
    fn sample(&mut self, name: &str, value: f64) -> &mut Self {
        let _ = writeln!(self.out, "{name} {}", fmt_value(value));
        self
    }

    /// One sample carrying a single label.
    fn labeled(&mut self, name: &str, label: &str, label_value: &str, value: f64) -> &mut Self {
        let _ = writeln!(
            self.out,
            "{name}{{{label}=\"{label_value}\"}} {}",
            fmt_value(value)
        );
        self
    }
}

/// Values render as integers when they are integral (the common case
/// for counters) and as plain decimals otherwise — both are valid
/// exposition floats.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// True for names matching `[a-zA-Z_:][a-zA-Z0-9_:]*`.
pub(crate) fn is_valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Renders `snap` as a Prometheus text-format page.
///
/// Every metric is prefixed `st_service_`; nanosecond totals are
/// converted to seconds.
pub fn render_pool_prometheus(snap: &PoolSnapshot) -> String {
    let mut p = Page::new();
    p.family(
        "st_service_jobs_submitted_total",
        "counter",
        "Jobs accepted by the admission queue or served from the result cache.",
    )
    .sample("st_service_jobs_submitted_total", snap.submitted as f64);
    p.family(
        "st_service_jobs_rejected_total",
        "counter",
        "Submissions rejected with backpressure (full queue).",
    )
    .sample("st_service_jobs_rejected_total", snap.rejected as f64);

    p.family(
        "st_service_jobs_finished_total",
        "counter",
        "Jobs that left the service, by outcome.",
    );
    for (outcome, v) in [
        ("completed", snap.completed),
        ("cancelled", snap.cancelled),
        ("deadline_exceeded", snap.deadline_exceeded),
        ("panicked", snap.panicked),
    ] {
        p.labeled(
            "st_service_jobs_finished_total",
            "outcome",
            outcome,
            v as f64,
        );
    }

    p.family(
        "st_service_queue_depth",
        "gauge",
        "Jobs currently waiting in the admission queue.",
    )
    .sample("st_service_queue_depth", snap.queue_depth as f64);

    p.family(
        "st_service_lane_queue_depth",
        "gauge",
        "Jobs currently waiting, by priority lane.",
    );
    for (lane, v) in [
        ("high", snap.queue_depth_high),
        ("normal", snap.queue_depth_normal),
        ("low", snap.queue_depth_low),
    ] {
        p.labeled("st_service_lane_queue_depth", "lane", lane, v as f64);
    }

    p.family(
        "st_service_queue_depth_peak",
        "gauge",
        "High-water mark of the admission queue depth.",
    )
    .sample("st_service_queue_depth_peak", snap.max_queue_depth as f64);
    p.family(
        "st_service_busy_teams",
        "gauge",
        "Executor teams currently running a job.",
    )
    .sample("st_service_busy_teams", snap.busy_teams as f64);

    p.family(
        "st_service_queue_wait_seconds_total",
        "counter",
        "Summed queue wait of finished jobs, seconds.",
    )
    .sample(
        "st_service_queue_wait_seconds_total",
        snap.queue_ns_total as f64 / 1e9,
    );
    p.family(
        "st_service_exec_seconds_total",
        "counter",
        "Summed execution time of finished jobs, seconds.",
    )
    .sample(
        "st_service_exec_seconds_total",
        snap.exec_ns_total as f64 / 1e9,
    );

    p.family(
        "st_service_result_cache_hits_total",
        "counter",
        "Catalog-addressed submissions served from the result cache.",
    )
    .sample("st_service_result_cache_hits_total", snap.cache_hits as f64);
    p.family(
        "st_service_result_cache_misses_total",
        "counter",
        "Catalog-addressed submissions that had to execute.",
    )
    .sample(
        "st_service_result_cache_misses_total",
        snap.cache_misses as f64,
    );
    p.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{JobOutcomeKind, PoolGauges};
    use std::collections::{HashMap, HashSet};

    /// Checks `page` against the exposition-format grammar subset the
    /// exporter emits. Panics with a line-qualified message on any
    /// violation; returns the parsed (name or name+labels) → value map.
    pub(crate) fn check_exposition(page: &str) -> HashMap<String, f64> {
        let mut typed: HashMap<String, String> = HashMap::new();
        let mut helped: HashSet<String> = HashSet::new();
        let mut samples: HashMap<String, f64> = HashMap::new();
        for (i, line) in page.lines().enumerate() {
            let ctx = |what: &str| format!("line {}: {what}: {line:?}", i + 1);
            assert!(!line.is_empty(), "{}", ctx("empty line"));
            if let Some(rest) = line.strip_prefix("# ") {
                let (kw, rest) = rest
                    .split_once(' ')
                    .unwrap_or_else(|| panic!("{}", ctx("comment must be `# HELP|TYPE name …`")));
                let (name, payload) = rest
                    .split_once(' ')
                    .unwrap_or_else(|| panic!("{}", ctx("missing payload")));
                assert!(is_valid_metric_name(name), "{}", ctx("bad metric name"));
                match kw {
                    "HELP" => {
                        assert!(helped.insert(name.to_owned()), "{}", ctx("duplicate HELP"));
                        assert!(!payload.is_empty(), "{}", ctx("empty help text"));
                    }
                    "TYPE" => {
                        assert!(
                            helped.contains(name),
                            "{}",
                            ctx("TYPE must follow its HELP")
                        );
                        assert!(
                            ["counter", "gauge", "histogram", "summary", "untyped"]
                                .contains(&payload),
                            "{}",
                            ctx("unknown metric type")
                        );
                        assert!(
                            typed.insert(name.to_owned(), payload.to_owned()).is_none(),
                            "{}",
                            ctx("duplicate TYPE")
                        );
                    }
                    _ => panic!("{}", ctx("unknown comment keyword")),
                }
                continue;
            }
            // Sample line: name[{label="value",…}] value
            let (series, value) = line
                .rsplit_once(' ')
                .unwrap_or_else(|| panic!("{}", ctx("sample must be `series value`")));
            let name = match series.split_once('{') {
                None => series,
                Some((name, labels)) => {
                    let labels = labels
                        .strip_suffix('}')
                        .unwrap_or_else(|| panic!("{}", ctx("unterminated label set")));
                    for pair in labels.split(',') {
                        let (k, v) = pair
                            .split_once('=')
                            .unwrap_or_else(|| panic!("{}", ctx("label without `=`")));
                        assert!(is_valid_metric_name(k), "{}", ctx("bad label name"));
                        assert!(
                            v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                            "{}",
                            ctx("label value must be quoted")
                        );
                    }
                    name
                }
            };
            assert!(is_valid_metric_name(name), "{}", ctx("bad sample name"));
            assert!(
                typed.contains_key(name),
                "{}",
                ctx("sample before its TYPE")
            );
            if typed[name] == "counter" {
                assert!(
                    name.ends_with("_total"),
                    "{}",
                    ctx("counter without _total")
                );
            }
            let value: f64 = value
                .parse()
                .unwrap_or_else(|_| panic!("{}", ctx("unparsable sample value")));
            assert!(
                samples.insert(series.to_owned(), value).is_none(),
                "{}",
                ctx("duplicate sample")
            );
        }
        samples
    }

    #[test]
    fn rendered_page_passes_the_grammar() {
        let g = PoolGauges::new();
        for lane in [0, 1, 1, 2] {
            g.on_submit(lane);
        }
        g.on_dequeue(1);
        g.on_finish(JobOutcomeKind::Completed, 1_500_000_000, 500_000_000);
        g.on_reject();
        g.on_cache_hit();
        g.on_cache_miss();
        let page = render_pool_prometheus(&g.snapshot());
        let samples = check_exposition(&page);

        assert_eq!(samples["st_service_jobs_submitted_total"], 5.0);
        assert_eq!(samples["st_service_jobs_rejected_total"], 1.0);
        assert_eq!(
            samples["st_service_jobs_finished_total{outcome=\"completed\"}"],
            1.0
        );
        assert_eq!(samples["st_service_queue_depth"], 3.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"high\"}"], 1.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"normal\"}"], 1.0);
        assert_eq!(samples["st_service_lane_queue_depth{lane=\"low\"}"], 1.0);
        assert_eq!(samples["st_service_queue_wait_seconds_total"], 1.5);
        assert_eq!(samples["st_service_exec_seconds_total"], 0.5);
        assert_eq!(samples["st_service_result_cache_hits_total"], 1.0);
        assert_eq!(samples["st_service_result_cache_misses_total"], 1.0);
    }

    #[test]
    fn empty_snapshot_renders_every_family_at_zero() {
        let page = render_pool_prometheus(&PoolSnapshot::default());
        let samples = check_exposition(&page);
        assert!(samples.values().all(|&v| v == 0.0));
        // Every family the exporter promises is present even when zero
        // (scrapers need stable series).
        for name in [
            "st_service_jobs_submitted_total",
            "st_service_queue_depth",
            "st_service_busy_teams",
            "st_service_queue_depth_peak",
            "st_service_result_cache_hits_total",
        ] {
            assert!(samples.contains_key(name), "missing {name}");
        }
        assert_eq!(
            samples
                .keys()
                .filter(|k| k.starts_with("st_service_jobs_finished_total"))
                .count(),
            4,
            "all four outcome labels must be exported"
        );
    }

    #[test]
    fn grammar_checker_rejects_violations() {
        let bad_pages = [
            "st_service_x 1\n",                       // sample before TYPE
            "# HELP m h\n# TYPE m counter\nm{x=y} 1", // unquoted label value
            "# HELP m h\n# TYPE m counter\nm one",    // non-numeric value
            "# HELP m h\n# TYPE m wibble\n",          // unknown type
            "# HELP m h\n# TYPE m counter\nm 1\nm 1", // duplicate sample
        ];
        for page in bad_pages {
            let failed = std::panic::catch_unwind(|| check_exposition(page)).is_err();
            assert!(failed, "checker accepted invalid page {page:?}");
        }
    }

    #[test]
    fn metric_name_charset() {
        assert!(is_valid_metric_name("st_service_jobs_total"));
        assert!(is_valid_metric_name("_private:metric"));
        assert!(!is_valid_metric_name("9leading_digit"));
        assert!(!is_valid_metric_name("has-dash"));
        assert!(!is_valid_metric_name(""));
    }

    #[test]
    fn values_render_compactly() {
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(1.5), "1.5");
    }
}
