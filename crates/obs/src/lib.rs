#![warn(missing_docs)]

//! # st-obs — observability for the spanning-tree engine
//!
//! The paper's performance claims are arguments about *where time
//! goes*: steal traffic versus local work, barrier waits, detector
//! sleeps, stub-walk length. This crate turns every engine job into a
//! structured report of exactly those quantities:
//!
//! * [`counters`] — always-on, cache-padded per-rank [`CounterSlot`]s
//!   (Relaxed increments on rank-private lines), merged into a
//!   [`CounterSnapshot`] at job completion.
//! * [`trace`] — per-rank phase timing: always-on coarse per-phase
//!   totals (count + wall ns, in every build), plus feature-gated
//!   (`obs-trace`) span ring buffers recording individual phase
//!   intervals against a process-monotonic clock.
//! * [`metrics`] — [`JobMetrics`], the per-job report every
//!   `Engine`/`Executor` job returns: wall time, merged and per-rank
//!   counters, and recorded spans.
//! * [`chrome`] — a Chrome trace-event (Perfetto-loadable) JSON writer
//!   for those spans.
//! * [`pool`] — aggregate gauges for the multi-tenant job service
//!   (admission/outcome counters, per-lane queue depth, team busyness,
//!   result-cache hit rates).
//! * [`hist`] — lock-free log-linear latency [`Histogram`]s with
//!   cache-padded sharding, exact-bucket quantiles, and cumulative
//!   ladders for Prometheus `_bucket` rendering.
//! * [`journal`] — per-job [`TraceId`]s and the bounded structured
//!   [`EventJournal`] of lifecycle events (JSONL ring buffer).
//! * [`prometheus`] — text-exposition rendering of a [`PoolSnapshot`]
//!   (plus latency histogram families) for scrape endpoints, and
//!   [`lint_exposition`], an offline grammar checker for the rendered
//!   page.
//!
//! The layer is algorithm-agnostic: `st-core` owns *when* to count
//! (claim races, publications, grafts); this crate owns the storage,
//! merging, and export.

pub mod chrome;
pub mod counters;
pub mod hist;
pub mod journal;
pub mod metrics;
pub mod pool;
pub mod prometheus;
pub mod trace;

pub use chrome::write_chrome_trace;
pub use counters::{Counter, CounterSet, CounterSlot, CounterSnapshot, NUM_COUNTERS};
pub use hist::{Histogram, HistogramSnapshot, ShardedHistogram};
pub use journal::{EventJournal, JobEvent, JobEventKind, TraceId};
pub use metrics::{JobMetrics, PhaseTotal};
pub use pool::{JobOutcomeKind, PoolGauges, PoolSnapshot, QUEUE_LANES};
pub use prometheus::{
    lint_exposition, render_pool_prometheus, render_service_prometheus, HistogramFamily,
    HistogramSeries, PROMETHEUS_CONTENT_TYPE,
};
pub use trace::{now_ns, Phase, SpanEvent, SpanRing, TraceSet, DEFAULT_SPAN_CAPACITY, NUM_PHASES};
