//! Structured per-job reports.

use serde::Serialize;

use crate::counters::{Counter, CounterSnapshot};
use crate::trace::{Phase, SpanEvent};

pub use crate::trace::PhaseTotal;

/// Everything one engine job reported: merged counters, per-rank
/// breakdowns, and (when `obs-trace` is compiled in) the recorded phase
/// spans.
///
/// Returned by `Workspace::finish_job` and carried on `AlgoStats`, so
/// every `Engine` run hands one back.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize)]
pub struct JobMetrics {
    /// Trace id of the service job this report belongs to (0 when the
    /// job ran outside the service and no id was minted). Matches the
    /// `trace` field of the service event journal, so a slow-job dump
    /// can be joined against its lifecycle events.
    pub trace_id: u64,
    /// Team size the job ran with.
    pub p: usize,
    /// Total wall-clock nanoseconds attributed to the job: always
    /// `queue_ns + exec_ns` (kept for compatibility with consumers that
    /// predate the split).
    pub wall_ns: u64,
    /// Nanoseconds the job spent waiting before execution began (zero
    /// outside a shared pool; the job service records its admission
    /// queue wait here).
    pub queue_ns: u64,
    /// Nanoseconds from `begin_job` to `finish_job` — the execution
    /// time proper, excluding any queue wait.
    pub exec_ns: u64,
    /// Counters summed across ranks.
    pub totals: CounterSnapshot,
    /// Per-rank counter snapshots, `per_rank.len() == p`.
    pub per_rank: Vec<CounterSnapshot>,
    /// Coarse per-phase wall totals from the always-on accumulators —
    /// populated in every build, unlike [`spans`](Self::spans).
    pub phases: Vec<PhaseTotal>,
    /// Phase spans across all ranks, sorted by start time. Empty unless
    /// built with `--features obs-trace`.
    pub spans: Vec<SpanEvent>,
    /// Spans lost to ring overflow (0 when tracing is compiled out).
    pub spans_dropped: u64,
}

impl JobMetrics {
    /// Merged value of one counter.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.totals.get(c)
    }

    /// Per-phase totals derived from the recorded [`spans`](Self::spans)
    /// (phases with no spans are omitted; empty without `obs-trace`).
    /// For totals that exist in every build, read
    /// [`phases`](Self::phases) instead.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let (mut count, mut total_ns) = (0u64, 0u64);
                for s in self.spans.iter().filter(|s| s.phase == phase) {
                    count += 1;
                    total_ns += s.dur_ns;
                }
                (count > 0).then_some(PhaseTotal {
                    phase,
                    count,
                    total_ns,
                })
            })
            .collect()
    }

    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("value-tree serialization is infallible")
    }

    /// Indented JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("value-tree serialization is infallible")
    }

    /// The job as a Chrome trace-event JSON string (see
    /// [`crate::chrome`]).
    pub fn to_chrome_trace(&self) -> String {
        let mut buf = Vec::new();
        crate::chrome::write_chrome_trace(self, &mut buf).expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("chrome trace is valid UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::CounterSet;

    fn sample() -> JobMetrics {
        let set = CounterSet::new(2);
        set.rank(0).add(Counter::Processed, 3);
        set.rank(1).add(Counter::Processed, 4);
        set.rank(1).incr(Counter::Steals);
        JobMetrics {
            trace_id: 7,
            p: 2,
            wall_ns: 1_000,
            queue_ns: 300,
            exec_ns: 700,
            totals: set.merged(),
            per_rank: set.snapshots(2),
            phases: vec![PhaseTotal {
                phase: Phase::Traverse,
                count: 2,
                total_ns: 1350,
            }],
            spans: vec![
                SpanEvent {
                    rank: 0,
                    phase: Phase::Traverse,
                    start_ns: 0,
                    dur_ns: 700,
                },
                SpanEvent {
                    rank: 1,
                    phase: Phase::Traverse,
                    start_ns: 10,
                    dur_ns: 650,
                },
                SpanEvent {
                    rank: 1,
                    phase: Phase::Idle,
                    start_ns: 660,
                    dur_ns: 40,
                },
            ],
            spans_dropped: 0,
        }
    }

    #[test]
    fn totals_and_accessor_agree() {
        let m = sample();
        assert_eq!(m.get(Counter::Processed), 7);
        assert_eq!(m.get(Counter::Steals), 1);
        assert_eq!(m.per_rank.len(), 2);
    }

    #[test]
    fn phase_totals_aggregate() {
        let m = sample();
        let pt = m.phase_totals();
        assert_eq!(pt.len(), 2);
        assert_eq!(pt[0].phase, Phase::Traverse);
        assert_eq!(pt[0].count, 2);
        assert_eq!(pt[0].total_ns, 1350);
        assert_eq!(pt[1].phase, Phase::Idle);
        assert_eq!(pt[1].total_ns, 40);
    }

    #[test]
    fn json_round_trips_through_parser() {
        let m = sample();
        let parsed = serde_json::parse_value(&m.to_json()).expect("valid JSON");
        match parsed {
            serde::Value::Object(o) => {
                assert_eq!(o.get("p"), Some(&serde::Value::Number(2.0)));
                assert!(o.contains_key("totals"));
                assert!(o.contains_key("per_rank"));
                assert!(o.contains_key("spans"));
            }
            other => panic!("expected object, got {other:?}"),
        }
        // Pretty output parses to the same tree.
        let pretty = serde_json::parse_value(&m.to_json_pretty()).expect("valid JSON");
        assert_eq!(pretty, serde_json::parse_value(&m.to_json()).unwrap());
    }

    #[test]
    fn default_is_empty() {
        let m = JobMetrics::default();
        assert_eq!(m.p, 0);
        assert!(m.totals.is_zero());
        assert!(m.spans.is_empty());
    }
}
