//! Pool-level gauges for the multi-tenant job service.
//!
//! [`JobMetrics`](crate::JobMetrics) describes one job; a shared
//! service also needs the *population* view — how many jobs entered,
//! how they left, how deep the admission queue runs, how busy the teams
//! are. [`PoolGauges`] is that aggregate: a set of always-on atomic
//! lanes the service bumps from its submitters and dispatchers, and a
//! serializable [`PoolSnapshot`] read out for dashboards, logs, and the
//! `service_throughput` benchmark report.
//!
//! Lanes are Relaxed: they are statistics, not synchronization. The
//! snapshot is therefore approximate under concurrency — each value is
//! individually correct, but the set is not an atomic cut.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use serde::Serialize;

/// Number of admission-queue priority lanes the gauges track (the
/// service's High / Normal / Low classes, in that order).
pub const QUEUE_LANES: usize = 3;

/// Aggregate counters and gauges for one service pool.
#[derive(Debug, Default)]
pub struct PoolGauges {
    /// Jobs accepted into the admission queue.
    submitted: AtomicU64,
    /// Jobs rejected at admission, any reason (backpressure, tenant
    /// quota, unmeetable deadline).
    rejected: AtomicU64,
    /// Rejected submissions, split by the lane they would have entered.
    lane_rejected: [AtomicU64; QUEUE_LANES],
    /// Rejections because the tenant's queued-job quota was full.
    rejected_quota: AtomicU64,
    /// Rejections because the lane's queue-delay estimate already
    /// exceeded the job's deadline at arrival.
    rejected_deadline_unmeetable: AtomicU64,
    /// Jobs that left each lane for a dispatcher (or were swept out by
    /// an eager cancel) — the scheduler's per-lane service rate.
    lane_dequeued: [AtomicU64; QUEUE_LANES],
    /// Jobs that finished with a valid result after real execution.
    completed: AtomicU64,
    /// Submissions answered from the result cache (zero-cost
    /// completions, kept out of `completed` so execution latency
    /// statistics are not understated).
    completed_cached: AtomicU64,
    /// Jobs that ended via explicit cancellation.
    cancelled: AtomicU64,
    /// Jobs that ended because their deadline passed.
    deadline_exceeded: AtomicU64,
    /// Jobs whose algorithm panicked (isolated; the pool survived).
    panicked: AtomicU64,
    /// Jobs currently waiting in the admission queue.
    queue_depth: AtomicU64,
    /// Jobs currently waiting, split by priority lane (0 = highest).
    lane_depth: [AtomicU64; QUEUE_LANES],
    /// High-water mark of `queue_depth`.
    max_queue_depth: AtomicU64,
    /// Teams currently executing a job.
    busy_teams: AtomicU64,
    /// Summed queue-wait nanoseconds over all finished jobs.
    queue_ns_total: AtomicU64,
    /// Summed execution nanoseconds over all finished jobs.
    exec_ns_total: AtomicU64,
    /// Catalog-addressed submissions answered from the result cache
    /// without touching a team.
    cache_hits: AtomicU64,
    /// Catalog-addressed submissions that had to execute.
    cache_misses: AtomicU64,
    /// Elastic resizes that widened a team.
    teams_grown: AtomicU64,
    /// Elastic resizes that narrowed a team.
    teams_shrunk: AtomicU64,
    /// Batch updates whose forest was maintained incrementally.
    updates_incremental: AtomicU64,
    /// Batch updates that fell back to a full recompute.
    updates_recomputed: AtomicU64,
    /// Edges actually added across all batch updates.
    update_edges_added: AtomicU64,
    /// Edges actually removed across all batch updates.
    update_edges_removed: AtomicU64,
}

impl PoolGauges {
    /// Fresh, all-zero gauges.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an accepted submission into priority lane `lane`
    /// (queue depth rises).
    pub fn on_submit(&self, lane: usize) {
        self.submitted.fetch_add(1, Relaxed);
        self.lane_depth[lane].fetch_add(1, Relaxed);
        let depth = self.queue_depth.fetch_add(1, Relaxed) + 1;
        self.max_queue_depth.fetch_max(depth, Relaxed);
    }

    /// Records a submission rejected before entering lane `lane`
    /// (backpressure).
    pub fn on_reject(&self, lane: usize) {
        self.rejected.fetch_add(1, Relaxed);
        self.lane_rejected[lane].fetch_add(1, Relaxed);
    }

    /// Records a submission rejected because its tenant's queued-job
    /// quota was already full.
    pub fn on_reject_quota(&self, lane: usize) {
        self.rejected.fetch_add(1, Relaxed);
        self.lane_rejected[lane].fetch_add(1, Relaxed);
        self.rejected_quota.fetch_add(1, Relaxed);
    }

    /// Records a submission rejected at arrival because the lane's
    /// queue-delay estimate already exceeded the job's deadline.
    pub fn on_reject_deadline_unmeetable(&self, lane: usize) {
        self.rejected.fetch_add(1, Relaxed);
        self.lane_rejected[lane].fetch_add(1, Relaxed);
        self.rejected_deadline_unmeetable.fetch_add(1, Relaxed);
    }

    /// Records a job leaving lane `lane` of the queue for a dispatcher.
    ///
    /// A dequeue without a matching [`on_submit`](Self::on_submit)
    /// (a double-dequeue bug) would wrap the gauge to ~2^64 and poison
    /// every subsequent scrape; the decrement therefore asserts in
    /// debug builds and saturates at zero in release.
    pub fn on_dequeue(&self, lane: usize) {
        self.lane_dequeued[lane].fetch_add(1, Relaxed);
        Self::dec_guarded(&self.lane_depth[lane], "lane_depth");
        Self::dec_guarded(&self.queue_depth, "queue_depth");
    }

    /// Decrements `gauge`, refusing to wrap below zero.
    fn dec_guarded(gauge: &AtomicU64, name: &str) {
        let res = gauge.fetch_update(Relaxed, Relaxed, |v| v.checked_sub(1));
        debug_assert!(res.is_ok(), "gauge underflow: {name} decremented below 0");
        let _ = (res, name);
    }

    /// Records a submission served entirely from the result cache: it
    /// counts as submitted and as a cached completion but never enters
    /// the queue and never touches the execution-latency series.
    pub fn on_cache_hit(&self) {
        self.submitted.fetch_add(1, Relaxed);
        self.cache_hits.fetch_add(1, Relaxed);
        self.completed_cached.fetch_add(1, Relaxed);
    }

    /// Records an accepted submission that resolved at the door
    /// without ever entering a queue lane (e.g. its deadline was
    /// already expired): it counts as submitted so the finish counters
    /// stay reconcilable against `submitted`.
    pub fn on_submit_unqueued(&self) {
        self.submitted.fetch_add(1, Relaxed);
    }

    /// Records a catalog-addressed submission the cache could not serve.
    pub fn on_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Relaxed);
    }

    /// Records a team starting a job.
    pub fn on_team_busy(&self) {
        self.busy_teams.fetch_add(1, Relaxed);
    }

    /// Records a team returning to the pool.
    pub fn on_team_idle(&self) {
        self.busy_teams.fetch_sub(1, Relaxed);
    }

    /// Records an elastic resize that widened a team.
    pub fn on_team_grown(&self) {
        self.teams_grown.fetch_add(1, Relaxed);
    }

    /// Records an elastic resize that narrowed a team.
    pub fn on_team_shrunk(&self) {
        self.teams_shrunk.fetch_add(1, Relaxed);
    }

    /// Records one applied batch update: which maintenance path ran
    /// (incremental splice vs full recompute) and what the batch
    /// actually changed.
    pub fn on_update(&self, incremental: bool, edges_added: u64, edges_removed: u64) {
        if incremental {
            self.updates_incremental.fetch_add(1, Relaxed);
        } else {
            self.updates_recomputed.fetch_add(1, Relaxed);
        }
        self.update_edges_added.fetch_add(edges_added, Relaxed);
        self.update_edges_removed.fetch_add(edges_removed, Relaxed);
    }

    /// Records a finished job: its outcome lane plus the queue/exec
    /// time totals.
    pub fn on_finish(&self, outcome: JobOutcomeKind, queue_ns: u64, exec_ns: u64) {
        let lane = match outcome {
            JobOutcomeKind::Completed => &self.completed,
            JobOutcomeKind::Cancelled => &self.cancelled,
            JobOutcomeKind::DeadlineExceeded => &self.deadline_exceeded,
            JobOutcomeKind::Panicked => &self.panicked,
        };
        lane.fetch_add(1, Relaxed);
        self.queue_ns_total.fetch_add(queue_ns, Relaxed);
        self.exec_ns_total.fetch_add(exec_ns, Relaxed);
    }

    /// A point-in-time copy of every lane.
    pub fn snapshot(&self) -> PoolSnapshot {
        PoolSnapshot {
            submitted: self.submitted.load(Relaxed),
            rejected: self.rejected.load(Relaxed),
            rejected_high: self.lane_rejected[0].load(Relaxed),
            rejected_normal: self.lane_rejected[1].load(Relaxed),
            rejected_low: self.lane_rejected[2].load(Relaxed),
            rejected_quota: self.rejected_quota.load(Relaxed),
            rejected_deadline_unmeetable: self.rejected_deadline_unmeetable.load(Relaxed),
            dequeued_high: self.lane_dequeued[0].load(Relaxed),
            dequeued_normal: self.lane_dequeued[1].load(Relaxed),
            dequeued_low: self.lane_dequeued[2].load(Relaxed),
            completed: self.completed.load(Relaxed),
            completed_cached: self.completed_cached.load(Relaxed),
            cancelled: self.cancelled.load(Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Relaxed),
            panicked: self.panicked.load(Relaxed),
            queue_depth: self.queue_depth.load(Relaxed),
            queue_depth_high: self.lane_depth[0].load(Relaxed),
            queue_depth_normal: self.lane_depth[1].load(Relaxed),
            queue_depth_low: self.lane_depth[2].load(Relaxed),
            max_queue_depth: self.max_queue_depth.load(Relaxed),
            busy_teams: self.busy_teams.load(Relaxed),
            queue_ns_total: self.queue_ns_total.load(Relaxed),
            exec_ns_total: self.exec_ns_total.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            teams_grown: self.teams_grown.load(Relaxed),
            teams_shrunk: self.teams_shrunk.load(Relaxed),
            updates_incremental: self.updates_incremental.load(Relaxed),
            updates_recomputed: self.updates_recomputed.load(Relaxed),
            update_edges_added: self.update_edges_added.load(Relaxed),
            update_edges_removed: self.update_edges_removed.load(Relaxed),
        }
    }
}

/// How a job left the service, for [`PoolGauges::on_finish`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobOutcomeKind {
    /// Finished with a result.
    Completed,
    /// Explicitly cancelled (before or during execution).
    Cancelled,
    /// Deadline passed (before or during execution).
    DeadlineExceeded,
    /// The algorithm panicked; the pool isolated it.
    Panicked,
}

/// A point-in-time copy of a [`PoolGauges`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct PoolSnapshot {
    /// Jobs accepted into the admission queue.
    pub submitted: u64,
    /// Jobs rejected at admission (backpressure).
    pub rejected: u64,
    /// Rejections bound for the High lane.
    pub rejected_high: u64,
    /// Rejections bound for the Normal lane.
    pub rejected_normal: u64,
    /// Rejections bound for the Low lane.
    pub rejected_low: u64,
    /// Rejections because the tenant's queued-job quota was full.
    pub rejected_quota: u64,
    /// Rejections because the deadline was unmeetable at arrival.
    pub rejected_deadline_unmeetable: u64,
    /// Jobs that left the High lane for a dispatcher.
    pub dequeued_high: u64,
    /// Jobs that left the Normal lane for a dispatcher.
    pub dequeued_normal: u64,
    /// Jobs that left the Low lane for a dispatcher.
    pub dequeued_low: u64,
    /// Jobs finished with a result after real execution.
    pub completed: u64,
    /// Submissions answered from the result cache (no execution).
    pub completed_cached: u64,
    /// Jobs cancelled.
    pub cancelled: u64,
    /// Jobs past their deadline.
    pub deadline_exceeded: u64,
    /// Jobs whose algorithm panicked.
    pub panicked: u64,
    /// Current admission-queue depth.
    pub queue_depth: u64,
    /// Jobs waiting in the High lane.
    pub queue_depth_high: u64,
    /// Jobs waiting in the Normal lane.
    pub queue_depth_normal: u64,
    /// Jobs waiting in the Low lane.
    pub queue_depth_low: u64,
    /// High-water mark of the queue depth.
    pub max_queue_depth: u64,
    /// Teams currently executing.
    pub busy_teams: u64,
    /// Summed queue-wait nanoseconds of finished jobs.
    pub queue_ns_total: u64,
    /// Summed execution nanoseconds of finished jobs.
    pub exec_ns_total: u64,
    /// Submissions answered from the result cache (no execution).
    pub cache_hits: u64,
    /// Catalog-addressed submissions that executed.
    pub cache_misses: u64,
    /// Elastic resizes that widened a team.
    pub teams_grown: u64,
    /// Elastic resizes that narrowed a team.
    pub teams_shrunk: u64,
    /// Batch updates whose forest was maintained incrementally.
    pub updates_incremental: u64,
    /// Batch updates that fell back to a full recompute.
    pub updates_recomputed: u64,
    /// Edges actually added across all batch updates.
    pub update_edges_added: u64,
    /// Edges actually removed across all batch updates.
    pub update_edges_removed: u64,
}

impl PoolSnapshot {
    /// Jobs that left the service, by any road (including cached
    /// completions, which never executed).
    pub fn finished(&self) -> u64 {
        self.completed
            + self.completed_cached
            + self.cancelled
            + self.deadline_exceeded
            + self.panicked
    }

    /// Rejections that were plain backpressure (full queue), i.e. not
    /// attributed to a tenant quota or an unmeetable deadline.
    pub fn rejected_backpressure(&self) -> u64 {
        self.rejected
            .saturating_sub(self.rejected_quota)
            .saturating_sub(self.rejected_deadline_unmeetable)
    }

    /// Jobs that left the service after actually running or waiting —
    /// the population the queue/exec time totals describe.
    pub fn finished_executed(&self) -> u64 {
        self.completed + self.cancelled + self.deadline_exceeded + self.panicked
    }

    /// Mean queue wait over executed finished jobs, nanoseconds
    /// (0 when none).
    pub fn mean_queue_ns(&self) -> u64 {
        self.queue_ns_total
            .checked_div(self.finished_executed())
            .unwrap_or(0)
    }

    /// Compact JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("value-tree serialization is infallible")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_accounting() {
        let g = PoolGauges::new();
        g.on_submit(1);
        g.on_submit(2);
        g.on_reject(0);
        let s = g.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.rejected_high, 1);
        assert_eq!(s.rejected_normal + s.rejected_low, 0);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.queue_depth_normal, 1);
        assert_eq!(s.queue_depth_low, 1);
        assert_eq!(s.queue_depth_high, 0);
        assert_eq!(s.max_queue_depth, 2);

        g.on_dequeue(1);
        g.on_team_busy();
        g.on_finish(JobOutcomeKind::Completed, 100, 900);
        g.on_team_idle();
        g.on_dequeue(2);
        g.on_finish(JobOutcomeKind::Cancelled, 50, 0);

        let s = g.snapshot();
        assert_eq!(s.queue_depth, 0);
        assert_eq!(
            s.queue_depth_high + s.queue_depth_normal + s.queue_depth_low,
            0
        );
        assert_eq!(s.dequeued_normal, 1);
        assert_eq!(s.dequeued_low, 1);
        assert_eq!(s.dequeued_high, 0);
        assert_eq!(s.max_queue_depth, 2, "high-water mark must persist");
        assert_eq!(s.busy_teams, 0);
        assert_eq!(s.completed, 1);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.finished(), 2);
        assert_eq!(s.queue_ns_total, 150);
        assert_eq!(s.exec_ns_total, 900);
        assert_eq!(s.mean_queue_ns(), 75);
    }

    #[test]
    fn cache_hits_count_as_submissions_not_queue_entries() {
        let g = PoolGauges::new();
        g.on_cache_miss();
        g.on_submit(1);
        g.on_dequeue(1);
        g.on_finish(JobOutcomeKind::Completed, 10, 20);
        g.on_cache_hit();
        let s = g.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1, "cached completions stay out of completed");
        assert_eq!(s.completed_cached, 1);
        assert_eq!(s.finished(), 2);
        assert_eq!(s.finished_executed(), 1);
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 1);
        assert_eq!(s.queue_depth, 0, "hits never enter the queue");
        assert_eq!(s.max_queue_depth, 1);
        assert_eq!(
            s.mean_queue_ns(),
            10,
            "zero-cost cache hits must not dilute the mean"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "gauge underflow")]
    fn double_dequeue_asserts_in_debug() {
        let g = PoolGauges::new();
        g.on_submit(0);
        g.on_dequeue(0);
        g.on_dequeue(0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn double_dequeue_saturates_in_release() {
        let g = PoolGauges::new();
        g.on_submit(0);
        g.on_dequeue(0);
        g.on_dequeue(0);
        let s = g.snapshot();
        assert_eq!(s.queue_depth, 0, "must saturate, not wrap to ~2^64");
        assert_eq!(s.queue_depth_high, 0);
    }

    #[test]
    fn reject_reasons_split_the_total() {
        let g = PoolGauges::new();
        g.on_reject(0);
        g.on_reject_quota(1);
        g.on_reject_quota(1);
        g.on_reject_deadline_unmeetable(2);
        let s = g.snapshot();
        assert_eq!(s.rejected, 4, "every reason counts toward the total");
        assert_eq!(s.rejected_quota, 2);
        assert_eq!(s.rejected_deadline_unmeetable, 1);
        assert_eq!(s.rejected_backpressure(), 1);
        assert_eq!(s.rejected_high, 1);
        assert_eq!(s.rejected_normal, 2);
        assert_eq!(s.rejected_low, 1);
    }

    #[test]
    fn elastic_resizes_are_counted() {
        let g = PoolGauges::new();
        g.on_team_grown();
        g.on_team_grown();
        g.on_team_shrunk();
        let s = g.snapshot();
        assert_eq!(s.teams_grown, 2);
        assert_eq!(s.teams_shrunk, 1);
    }

    #[test]
    fn batch_updates_split_by_maintenance_path() {
        let g = PoolGauges::new();
        g.on_update(true, 8, 2);
        g.on_update(true, 1, 0);
        g.on_update(false, 100, 50);
        let s = g.snapshot();
        assert_eq!(s.updates_incremental, 2);
        assert_eq!(s.updates_recomputed, 1);
        assert_eq!(s.update_edges_added, 109);
        assert_eq!(s.update_edges_removed, 52);
    }

    #[test]
    fn empty_snapshot_means() {
        let s = PoolSnapshot::default();
        assert_eq!(s.finished(), 0);
        assert_eq!(s.mean_queue_ns(), 0);
    }

    #[test]
    fn snapshot_serializes() {
        let g = PoolGauges::new();
        g.on_submit(0);
        let json = g.snapshot().to_json();
        assert!(json.contains("\"submitted\""));
        assert!(json.contains("\"queue_depth\""));
        assert!(json.contains("\"cache_hits\""));
    }
}
