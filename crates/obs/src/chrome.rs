//! Chrome trace-event export.
//!
//! Emits the JSON-array flavor of the Trace Event Format, loadable in
//! `chrome://tracing` and <https://ui.perfetto.dev>: one complete
//! (`"ph": "X"`) event per recorded span, thread-name metadata per
//! rank, and a single instant event carrying the job's merged counter
//! totals as `args`. Timestamps are microseconds (the format's unit),
//! converted from the span clock's nanoseconds.

use std::collections::BTreeMap;
use std::io::{self, Write};

use serde::{Serialize, Value};

use crate::metrics::JobMetrics;

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    let mut m = BTreeMap::new();
    for (k, v) in pairs {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn s(text: &str) -> Value {
    Value::String(text.to_string())
}

fn us(ns: u64) -> Value {
    Value::Number(ns as f64 / 1_000.0)
}

/// Writes `m` as a Chrome trace-event JSON array.
///
/// Always emits the metadata and counter-totals events, so the output
/// is a valid, openable trace even when the build had span recording
/// compiled out (the timeline is then simply empty).
pub fn write_chrome_trace<W: Write>(m: &JobMetrics, mut w: W) -> io::Result<()> {
    let mut events: Vec<Value> = Vec::with_capacity(m.spans.len() + m.p + 2);

    events.push(obj(vec![
        ("ph", s("M")),
        ("pid", Value::Number(0.0)),
        ("tid", Value::Number(0.0)),
        ("name", s("process_name")),
        ("args", obj(vec![("name", s("spanning-engine"))])),
    ]));
    for rank in 0..m.p.max(1) {
        events.push(obj(vec![
            ("ph", s("M")),
            ("pid", Value::Number(0.0)),
            ("tid", Value::Number(rank as f64)),
            ("name", s("thread_name")),
            ("args", obj(vec![("name", s(&format!("rank {rank}")))])),
        ]));
    }

    for span in &m.spans {
        events.push(obj(vec![
            ("ph", s("X")),
            ("pid", Value::Number(0.0)),
            ("tid", Value::Number(span.rank as f64)),
            ("ts", us(span.start_ns)),
            ("dur", us(span.dur_ns)),
            ("name", s(span.phase.name())),
            ("cat", s("phase")),
        ]));
    }

    let start = m.spans.first().map_or(0, |sp| sp.start_ns);
    events.push(obj(vec![
        ("ph", s("I")),
        ("pid", Value::Number(0.0)),
        ("tid", Value::Number(0.0)),
        ("ts", us(start)),
        ("s", s("g")),
        ("name", s("job_totals")),
        ("args", m.totals.to_value()),
    ]));

    let json = serde_json::to_string(&Value::Array(events)).map_err(io::Error::other)?;
    w.write_all(json.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counters::{Counter, CounterSet};
    use crate::trace::{Phase, SpanEvent};

    fn sample() -> JobMetrics {
        let set = CounterSet::new(2);
        set.rank(0).add(Counter::Steals, 2);
        JobMetrics {
            trace_id: 0,
            p: 2,
            wall_ns: 500,
            queue_ns: 0,
            exec_ns: 500,
            totals: set.merged(),
            per_rank: set.snapshots(2),
            phases: Vec::new(),
            spans: vec![SpanEvent {
                rank: 1,
                phase: Phase::Traverse,
                start_ns: 2_000,
                dur_ns: 3_000,
            }],
            spans_dropped: 0,
        }
    }

    #[test]
    fn trace_is_parseable_array_with_events() {
        let m = sample();
        let mut buf = Vec::new();
        write_chrome_trace(&m, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = serde_json::parse_value(&text).expect("valid JSON");
        let events = match v {
            Value::Array(events) => events,
            other => panic!("expected array, got {other:?}"),
        };
        // process_name + 2 thread_name + 1 span + totals instant.
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find_map(|e| match e {
                Value::Object(o) if o.get("ph") == Some(&Value::String("X".into())) => Some(o),
                _ => None,
            })
            .expect("one complete event");
        assert_eq!(span.get("ts"), Some(&Value::Number(2.0)));
        assert_eq!(span.get("dur"), Some(&Value::Number(3.0)));
        assert_eq!(span.get("tid"), Some(&Value::Number(1.0)));
        assert_eq!(span.get("name"), Some(&Value::String("traverse".into())));
    }

    #[test]
    fn empty_metrics_still_produce_valid_trace() {
        let m = JobMetrics::default();
        let text = m.to_chrome_trace();
        let v = serde_json::parse_value(&text).expect("valid JSON");
        match v {
            Value::Array(events) => assert!(!events.is_empty()),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn totals_ride_along_as_args() {
        let m = sample();
        let text = m.to_chrome_trace();
        assert!(text.contains("job_totals"));
        assert!(text.contains("\"steals\":2"));
    }
}
