//! Always-on per-rank event counters.
//!
//! Each worker rank owns one cache-line-padded [`CounterSlot`]: a fixed
//! array of `AtomicU64`, indexed by [`Counter`]. Increments are Relaxed
//! stores to a line no other rank writes, so the always-on cost is a
//! single uncontended RMW — the same discipline the traversal already
//! used for its ad-hoc steal counters, generalized to every quantity
//! the Helman–JáJá accounting argues about (steal traffic, publication
//! balance, barrier waits, detector activity, SV grafting, stub walks).
//!
//! At job completion the slots are merged into an immutable
//! [`CounterSnapshot`] and handed back inside a `JobMetrics`.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use serde::{Serialize, Value};
use st_smp::pad::CachePadded;

/// Everything the engine counts, one variant per slot lane.
///
/// The discriminant is the lane index; [`Counter::ALL`] lists every
/// variant in lane order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Vertices popped from the private frontier and scanned.
    Processed,
    /// Vertices this rank colored first (won the claim race).
    Discovered,
    /// Claim races lost: the neighbor was colored under us.
    MultiColored,
    /// Steal sweeps that brought back at least one item.
    Steals,
    /// Steal sweeps attempted (successful or not).
    StealAttempts,
    /// Steal sweeps that probed every queue and found nothing.
    FailedSweeps,
    /// Items obtained by stealing from other ranks' queues.
    StolenItems,
    /// Items made visible to thieves (seeded or pushed to the shared
    /// queue).
    ItemsPublished,
    /// Items processed straight from the private buffer without ever
    /// being published.
    ItemsKeptLocal,
    /// Barrier episodes this rank participated in.
    Barriers,
    /// Cumulative nanoseconds this rank spent waiting at barriers.
    BarrierWaitNs,
    /// Times this rank registered as sleeping in the termination
    /// detector.
    DetectorSleeps,
    /// Times this rank was woken (or timed out) inside the detector.
    DetectorWakes,
    /// Times this rank observed the starvation threshold trip.
    StarvationTrips,
    /// Successful grafts (SV/HCS hook edges won).
    Grafts,
    /// Pointer-jumping shortcut rounds executed.
    ShortcutRounds,
    /// Vertices appended to a stub spanning tree walk.
    StubVertices,
    /// Stub walks performed.
    StubWalks,
    /// Top-down traversal segments executed (recorded by rank 0 once
    /// per segment, so the value is segments, not segments × p).
    RoundsTopDown,
    /// Bottom-up sweeps executed (rank 0, once per sweep).
    RoundsBottomUp,
    /// Largest estimated live frontier observed by the direction
    /// heuristic, summed across rounds (hybrid traversals only; a
    /// single-component job reports its true peak).
    FrontierPeak,
}

/// Number of counter lanes.
pub const NUM_COUNTERS: usize = 21;

impl Counter {
    /// Every counter, in lane order.
    pub const ALL: [Counter; NUM_COUNTERS] = [
        Counter::Processed,
        Counter::Discovered,
        Counter::MultiColored,
        Counter::Steals,
        Counter::StealAttempts,
        Counter::FailedSweeps,
        Counter::StolenItems,
        Counter::ItemsPublished,
        Counter::ItemsKeptLocal,
        Counter::Barriers,
        Counter::BarrierWaitNs,
        Counter::DetectorSleeps,
        Counter::DetectorWakes,
        Counter::StarvationTrips,
        Counter::Grafts,
        Counter::ShortcutRounds,
        Counter::StubVertices,
        Counter::StubWalks,
        Counter::RoundsTopDown,
        Counter::RoundsBottomUp,
        Counter::FrontierPeak,
    ];

    /// Stable snake_case name used in JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::Processed => "processed",
            Counter::Discovered => "discovered",
            Counter::MultiColored => "multi_colored",
            Counter::Steals => "steals",
            Counter::StealAttempts => "steal_attempts",
            Counter::FailedSweeps => "failed_sweeps",
            Counter::StolenItems => "stolen_items",
            Counter::ItemsPublished => "items_published",
            Counter::ItemsKeptLocal => "items_kept_local",
            Counter::Barriers => "barriers",
            Counter::BarrierWaitNs => "barrier_wait_ns",
            Counter::DetectorSleeps => "detector_sleeps",
            Counter::DetectorWakes => "detector_wakes",
            Counter::StarvationTrips => "starvation_trips",
            Counter::Grafts => "grafts",
            Counter::ShortcutRounds => "shortcut_rounds",
            Counter::StubVertices => "stub_vertices",
            Counter::StubWalks => "stub_walks",
            Counter::RoundsTopDown => "rounds_top_down",
            Counter::RoundsBottomUp => "rounds_bottom_up",
            Counter::FrontierPeak => "frontier_peak",
        }
    }
}

/// One rank's counter lanes. Lives behind a [`CachePadded`] wrapper in
/// [`CounterSet`] so neighboring ranks never share a line.
#[derive(Debug)]
pub struct CounterSlot {
    vals: [AtomicU64; NUM_COUNTERS],
}

impl CounterSlot {
    /// A slot with every lane zero.
    pub fn new() -> Self {
        Self {
            vals: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Adds one to `c`.
    #[inline]
    pub fn incr(&self, c: Counter) {
        self.add(c, 1);
    }

    /// Adds `n` to `c` (Relaxed; the slot is logically rank-private).
    #[inline]
    pub fn add(&self, c: Counter, n: u64) {
        self.vals[c as usize].fetch_add(n, Relaxed);
    }

    /// Current value of `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize].load(Relaxed)
    }

    /// Zeroes every lane.
    pub fn reset(&self) {
        for v in &self.vals {
            v.store(0, Relaxed);
        }
    }

    /// Immutable copy of every lane.
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            vals: std::array::from_fn(|i| self.vals[i].load(Relaxed)),
        }
    }
}

impl Default for CounterSlot {
    fn default() -> Self {
        Self::new()
    }
}

/// One padded [`CounterSlot`] per rank, sized lazily to the team.
#[derive(Debug, Default)]
pub struct CounterSet {
    slots: Vec<CachePadded<CounterSlot>>,
}

impl CounterSet {
    /// A set with `p` zeroed slots.
    pub fn new(p: usize) -> Self {
        let mut s = Self::default();
        s.ensure(p);
        s
    }

    /// Grows (never shrinks) to at least `p` slots.
    pub fn ensure(&mut self, p: usize) {
        while self.slots.len() < p {
            self.slots.push(CachePadded::new(CounterSlot::new()));
        }
    }

    /// Number of slots currently allocated.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no slots are allocated yet.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Rank `r`'s slot.
    #[inline]
    pub fn rank(&self, r: usize) -> &CounterSlot {
        &self.slots[r]
    }

    /// Zeroes every slot.
    pub fn reset(&self) {
        for s in &self.slots {
            s.reset();
        }
    }

    /// Element-wise sum over all slots.
    pub fn merged(&self) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for s in &self.slots {
            out.merge(&s.snapshot());
        }
        out
    }

    /// Per-rank snapshots for the first `p` slots.
    pub fn snapshots(&self, p: usize) -> Vec<CounterSnapshot> {
        self.slots.iter().take(p).map(|s| s.snapshot()).collect()
    }
}

/// Immutable copy of a slot's lanes (or a merged total).
///
/// Serializes as a JSON object keyed by [`Counter::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CounterSnapshot {
    vals: [u64; NUM_COUNTERS],
}

impl Default for CounterSnapshot {
    fn default() -> Self {
        Self {
            vals: [0; NUM_COUNTERS],
        }
    }
}

impl CounterSnapshot {
    /// Value of `c`.
    #[inline]
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Adds `other` lane-wise into `self`.
    pub fn merge(&mut self, other: &CounterSnapshot) {
        for (a, b) in self.vals.iter_mut().zip(other.vals.iter()) {
            *a += *b;
        }
    }

    /// `(counter, value)` pairs in lane order.
    pub fn iter(&self) -> impl Iterator<Item = (Counter, u64)> + '_ {
        Counter::ALL.iter().map(move |&c| (c, self.get(c)))
    }

    /// Whether every lane is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }
}

impl Serialize for CounterSnapshot {
    fn to_value(&self) -> Value {
        let mut m = std::collections::BTreeMap::new();
        for (c, v) in self.iter() {
            m.insert(c.name().to_string(), v.to_value());
        }
        Value::Object(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_order_matches_discriminants() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{c:?}");
        }
    }

    #[test]
    fn slot_add_get_reset() {
        let s = CounterSlot::new();
        s.incr(Counter::Steals);
        s.add(Counter::StolenItems, 7);
        assert_eq!(s.get(Counter::Steals), 1);
        assert_eq!(s.get(Counter::StolenItems), 7);
        s.reset();
        assert!(s.snapshot().is_zero());
    }

    #[test]
    fn set_merges_across_ranks() {
        let set = CounterSet::new(3);
        set.rank(0).add(Counter::Processed, 10);
        set.rank(1).add(Counter::Processed, 5);
        set.rank(2).incr(Counter::Barriers);
        let m = set.merged();
        assert_eq!(m.get(Counter::Processed), 15);
        assert_eq!(m.get(Counter::Barriers), 1);
        let per = set.snapshots(2);
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].get(Counter::Processed), 10);
        assert_eq!(per[1].get(Counter::Processed), 5);
    }

    #[test]
    fn ensure_grows_but_never_shrinks() {
        let mut set = CounterSet::new(2);
        set.rank(1).incr(Counter::Grafts);
        set.ensure(4);
        assert_eq!(set.len(), 4);
        // Growth preserved the existing slot's contents.
        assert_eq!(set.rank(1).get(Counter::Grafts), 1);
        set.ensure(1);
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn snapshot_serializes_named_lanes() {
        let s = CounterSlot::new();
        s.add(Counter::BarrierWaitNs, 123);
        let v = s.snapshot().to_value();
        match v {
            Value::Object(m) => {
                assert_eq!(m.len(), NUM_COUNTERS);
                assert_eq!(m.get("barrier_wait_ns"), Some(&Value::Number(123.0)));
                assert_eq!(m.get("steals"), Some(&Value::Number(0.0)));
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn slots_are_cache_padded() {
        let set = CounterSet::new(2);
        let a = set.rank(0) as *const _ as usize;
        let b = set.rank(1) as *const _ as usize;
        assert_eq!((b - a) % 128, 0);
    }
}
