//! Feature-gated per-worker phase span tracing.
//!
//! With the `obs-trace` feature enabled, each rank owns a fixed-capacity
//! ring buffer of [`SpanEvent`]s stamped with a monotonic coarse clock
//! ([`now_ns`], nanoseconds since a process-wide epoch). The ring drops
//! the oldest span on overflow and counts what it dropped, so a long job
//! keeps its tail — the part a Perfetto reader usually cares about —
//! without unbounded memory.
//!
//! Without the feature (the default), [`now_ns`] returns 0, [`SpanRing`]
//! carries no state, and every recording call is an empty `#[inline]`
//! body the optimizer deletes — the zero-cost-when-disabled claim CI
//! enforces by building the cfg-off configuration.

use serde::{Serialize, Value};
use st_smp::pad::CachePadded;

#[cfg(feature = "obs-trace")]
use st_smp::SpinLock;

/// Default per-rank span capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// What a span covers. Serializes as its [`Phase::name`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// A worker's whole traversal shift (pop/scan/publish/steal loop).
    Traverse,
    /// Waiting inside the termination detector.
    Idle,
    /// Waiting at a software barrier.
    Barrier,
    /// Sequential stub-tree growth at round start.
    Stub,
    /// SV/HCS graft pass.
    Graft,
    /// SV/HCS pointer-jumping shortcut pass.
    Shortcut,
    /// The starvation fallback (SV core run mid-job).
    Fallback,
}

impl Phase {
    /// Every phase.
    pub const ALL: [Phase; 7] = [
        Phase::Traverse,
        Phase::Idle,
        Phase::Barrier,
        Phase::Stub,
        Phase::Graft,
        Phase::Shortcut,
        Phase::Fallback,
    ];

    /// Stable lowercase name used in JSON and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Traverse => "traverse",
            Phase::Idle => "idle",
            Phase::Barrier => "barrier",
            Phase::Stub => "stub",
            Phase::Graft => "graft",
            Phase::Shortcut => "shortcut",
            Phase::Fallback => "fallback",
        }
    }
}

impl Serialize for Phase {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

/// One recorded phase interval on one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// Rank that recorded the span.
    pub rank: u32,
    /// What the span covers.
    pub phase: Phase,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Nanoseconds since a process-wide monotonic epoch (first call wins).
///
/// Coarse by design: spans are recorded at phase granularity, not per
/// vertex, so one `Instant` read per record is the whole cost.
#[cfg(feature = "obs-trace")]
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Tracing disabled: the clock is a constant and spans are never kept.
#[cfg(not(feature = "obs-trace"))]
#[inline(always)]
pub fn now_ns() -> u64 {
    0
}

#[cfg(feature = "obs-trace")]
#[derive(Debug)]
struct RingInner {
    /// Spans in ring order; `events.len() < cap` means no wrap yet.
    events: Vec<SpanEvent>,
    /// Oldest element once wrapped.
    head: usize,
    /// Spans overwritten after the ring filled.
    dropped: u64,
    cap: usize,
}

/// A fixed-capacity, drop-oldest span ring for one rank.
///
/// All methods take `&self`; the (feature-gated) interior is a
/// `SpinLock`, uncontended in practice because each rank writes only
/// its own ring — the lock exists so a driver thread can drain rings
/// after the team quiesces without unsafe code.
#[derive(Debug)]
pub struct SpanRing {
    #[cfg(feature = "obs-trace")]
    inner: SpinLock<RingInner>,
}

impl SpanRing {
    /// A ring holding at most `cap` spans (ignored when tracing is
    /// compiled out).
    pub fn with_capacity(cap: usize) -> Self {
        #[cfg(feature = "obs-trace")]
        {
            Self {
                inner: SpinLock::new(RingInner {
                    events: Vec::with_capacity(cap.max(1)),
                    head: 0,
                    dropped: 0,
                    cap: cap.max(1),
                }),
            }
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = cap;
            Self {}
        }
    }

    /// Records a span from `start_ns` until now.
    #[inline]
    pub fn record(&self, phase: Phase, start_ns: u64) {
        #[cfg(feature = "obs-trace")]
        self.push(phase, start_ns, now_ns().saturating_sub(start_ns));
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = (phase, start_ns);
        }
    }

    /// Records a span with an explicit duration.
    #[inline]
    pub fn record_span(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        #[cfg(feature = "obs-trace")]
        self.push(phase, start_ns, dur_ns);
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = (phase, start_ns, dur_ns);
        }
    }

    #[cfg(feature = "obs-trace")]
    fn push(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        let ev = SpanEvent {
            rank: 0, // stamped at drain time from the ring's index
            phase,
            start_ns,
            dur_ns,
        };
        let mut r = self.inner.lock();
        if r.events.len() < r.cap {
            r.events.push(ev);
        } else {
            let head = r.head;
            r.events[head] = ev;
            r.head = (head + 1) % r.cap;
            r.dropped += 1;
        }
    }

    /// Spans in record order (oldest first), stamped with `rank`.
    /// Always empty when tracing is compiled out.
    pub fn spans(&self, rank: u32) -> Vec<SpanEvent> {
        #[cfg(feature = "obs-trace")]
        {
            let r = self.inner.lock();
            let mut out = Vec::with_capacity(r.events.len());
            out.extend_from_slice(&r.events[r.head..]);
            out.extend_from_slice(&r.events[..r.head]);
            for ev in &mut out {
                ev.rank = rank;
            }
            out
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = rank;
            Vec::new()
        }
    }

    /// Spans overwritten since the last [`SpanRing::clear`].
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "obs-trace")]
        {
            self.inner.lock().dropped
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            0
        }
    }

    /// Empties the ring.
    pub fn clear(&self) {
        #[cfg(feature = "obs-trace")]
        {
            let mut r = self.inner.lock();
            r.events.clear();
            r.head = 0;
            r.dropped = 0;
        }
    }
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

/// One padded [`SpanRing`] per rank.
#[derive(Debug, Default)]
pub struct TraceSet {
    rings: Vec<CachePadded<SpanRing>>,
}

impl TraceSet {
    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        cfg!(feature = "obs-trace")
    }

    /// Grows (never shrinks) to at least `p` rings.
    pub fn ensure(&mut self, p: usize) {
        while self.rings.len() < p {
            self.rings.push(CachePadded::new(SpanRing::default()));
        }
    }

    /// Number of rings currently allocated.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether no rings are allocated yet.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Rank `r`'s ring.
    #[inline]
    pub fn rank(&self, r: usize) -> &SpanRing {
        &self.rings[r]
    }

    /// Empties every ring.
    pub fn clear(&self) {
        for r in &self.rings {
            r.clear();
        }
    }

    /// All spans across ranks, each stamped with its ring index, sorted
    /// by start time. Empty when tracing is compiled out.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for (i, r) in self.rings.iter().enumerate() {
            out.extend(r.spans(i as u32));
        }
        out.sort_by_key(|e| (e.start_ns, e.rank));
        out
    }

    /// Total spans overwritten across rings since the last clear.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_noop_or_records_by_feature() {
        let ring = SpanRing::with_capacity(4);
        ring.record_span(Phase::Barrier, 10, 5);
        let spans = ring.spans(3);
        if TraceSet::enabled() {
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].rank, 3);
            assert_eq!(spans[0].phase, Phase::Barrier);
            assert_eq!(spans[0].dur_ns, 5);
        } else {
            assert!(spans.is_empty());
        }
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn ring_drops_oldest_on_overflow() {
        let ring = SpanRing::with_capacity(2);
        for i in 0..5u64 {
            ring.record_span(Phase::Idle, i, 1);
        }
        let spans = ring.spans(0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_ns, 3);
        assert_eq!(spans[1].start_ns, 4);
        assert_eq!(ring.dropped(), 3);
        ring.clear();
        assert!(ring.spans(0).is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn trace_set_drains_sorted_by_start() {
        let mut ts = TraceSet::default();
        ts.ensure(2);
        ts.rank(1).record_span(Phase::Traverse, 5, 1);
        ts.rank(0).record_span(Phase::Traverse, 2, 1);
        let spans = ts.drain();
        if TraceSet::enabled() {
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].start_ns, 2);
            assert_eq!(spans[0].rank, 0);
            assert_eq!(spans[1].rank, 1);
        } else {
            assert!(spans.is_empty());
        }
    }

    #[test]
    fn phase_names_are_stable() {
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
            assert_eq!(p.to_value(), serde::Value::String(p.name().to_string()));
        }
    }
}
