//! Per-worker phase timing: always-on coarse totals, feature-gated
//! span rings.
//!
//! Every [`SpanRing`] keeps an always-on pair of per-phase accumulators
//! (span count and summed nanoseconds, Relaxed adds to rank-private
//! lines), so default builds still report where wall time went — this is
//! what fills the `phases` section of the benchmark reports. Recording
//! happens at *phase* granularity (one per traversal shift, idle
//! episode, barrier episode, or bottom-up sweep, never per vertex), so
//! the always-on cost is one `Instant` read plus two Relaxed adds per
//! phase boundary.
//!
//! With the `obs-trace` feature enabled, each rank additionally owns a
//! fixed-capacity ring buffer of [`SpanEvent`]s stamped with a monotonic
//! coarse clock ([`now_ns`], nanoseconds since a process-wide epoch).
//! The ring drops the oldest span on overflow and counts what it
//! dropped, so a long job keeps its tail — the part a Perfetto reader
//! usually cares about — without unbounded memory. Without the feature
//! (the default), the ring carries no state and individual spans are
//! never kept; only the coarse totals remain.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use serde::{Serialize, Value};
use st_smp::pad::CachePadded;

#[cfg(feature = "obs-trace")]
use st_smp::SpinLock;

/// Default per-rank span capacity.
pub const DEFAULT_SPAN_CAPACITY: usize = 4096;

/// What a span covers. Serializes as its [`Phase::name`].
///
/// The discriminant is the lane index of the always-on per-phase
/// accumulators; [`Phase::ALL`] lists every variant in lane order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum Phase {
    /// A worker's whole traversal shift (pop/scan/publish/steal loop,
    /// including any idle waits and bottom-up sweeps inside it — phases
    /// nest, they do not partition).
    Traverse,
    /// Waiting inside the termination detector.
    Idle,
    /// Waiting at a software barrier.
    Barrier,
    /// Sequential stub-tree growth at round start.
    Stub,
    /// SV/HCS graft pass.
    Graft,
    /// SV/HCS pointer-jumping shortcut pass.
    Shortcut,
    /// The starvation fallback (SV core run mid-job).
    Fallback,
    /// One bottom-up sweep of the direction-optimizing traversal
    /// (nested inside [`Phase::Traverse`]).
    BottomUp,
}

/// Number of phase lanes.
pub const NUM_PHASES: usize = 8;

impl Phase {
    /// Every phase.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::Traverse,
        Phase::Idle,
        Phase::Barrier,
        Phase::Stub,
        Phase::Graft,
        Phase::Shortcut,
        Phase::Fallback,
        Phase::BottomUp,
    ];

    /// Stable lowercase name used in JSON and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Traverse => "traverse",
            Phase::Idle => "idle",
            Phase::Barrier => "barrier",
            Phase::Stub => "stub",
            Phase::Graft => "graft",
            Phase::Shortcut => "shortcut",
            Phase::Fallback => "fallback",
            Phase::BottomUp => "bottom_up",
        }
    }
}

/// Aggregate time attributed to one phase across all ranks.
///
/// Produced by [`TraceSet::phase_totals`] from the always-on
/// accumulators (default builds included) and by
/// `JobMetrics::phase_totals` from recorded spans (`obs-trace` only).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PhaseTotal {
    /// The phase.
    pub phase: Phase,
    /// Number of spans recorded for it.
    pub count: u64,
    /// Summed span duration in nanoseconds.
    pub total_ns: u64,
}

impl Serialize for Phase {
    fn to_value(&self) -> Value {
        Value::String(self.name().to_string())
    }
}

/// One recorded phase interval on one rank.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// Rank that recorded the span.
    pub rank: u32,
    /// What the span covers.
    pub phase: Phase,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Nanoseconds since a process-wide monotonic epoch (first call wins).
///
/// Always on: the coarse per-phase totals in default builds need a real
/// clock. Coarse by design — spans are recorded at phase granularity,
/// not per vertex, so one `Instant` read per record is the whole cost.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    use std::time::Instant;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

#[cfg(feature = "obs-trace")]
#[derive(Debug)]
struct RingInner {
    /// Spans in ring order; `events.len() < cap` means no wrap yet.
    events: Vec<SpanEvent>,
    /// Oldest element once wrapped.
    head: usize,
    /// Spans overwritten after the ring filled.
    dropped: u64,
    cap: usize,
}

/// A fixed-capacity, drop-oldest span ring for one rank, plus the
/// always-on per-phase totals.
///
/// All methods take `&self`; the (feature-gated) ring interior is a
/// `SpinLock`, uncontended in practice because each rank writes only
/// its own ring — the lock exists so a driver thread can drain rings
/// after the team quiesces without unsafe code. The totals are plain
/// Relaxed atomics on the rank-private line, present in every build.
#[derive(Debug)]
pub struct SpanRing {
    /// Always-on per-phase span counts, indexed by discriminant.
    counts: [AtomicU64; NUM_PHASES],
    /// Always-on per-phase summed durations (ns).
    total_ns: [AtomicU64; NUM_PHASES],
    #[cfg(feature = "obs-trace")]
    inner: SpinLock<RingInner>,
}

impl SpanRing {
    /// A ring holding at most `cap` spans (the cap only affects the
    /// feature-gated span storage, never the always-on totals).
    pub fn with_capacity(cap: usize) -> Self {
        #[cfg(not(feature = "obs-trace"))]
        let _ = cap;
        Self {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            #[cfg(feature = "obs-trace")]
            inner: SpinLock::new(RingInner {
                events: Vec::with_capacity(cap.max(1)),
                head: 0,
                dropped: 0,
                cap: cap.max(1),
            }),
        }
    }

    /// Records a span from `start_ns` until now.
    #[inline]
    pub fn record(&self, phase: Phase, start_ns: u64) {
        self.record_span(phase, start_ns, now_ns().saturating_sub(start_ns));
    }

    /// Records a span with an explicit duration.
    #[inline]
    pub fn record_span(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        self.counts[phase as usize].fetch_add(1, Relaxed);
        self.total_ns[phase as usize].fetch_add(dur_ns, Relaxed);
        #[cfg(feature = "obs-trace")]
        self.push(phase, start_ns, dur_ns);
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = start_ns;
        }
    }

    /// This rank's always-on totals for one phase, as `(count, ns)`.
    #[inline]
    pub fn phase_total(&self, phase: Phase) -> (u64, u64) {
        (
            self.counts[phase as usize].load(Relaxed),
            self.total_ns[phase as usize].load(Relaxed),
        )
    }

    #[cfg(feature = "obs-trace")]
    fn push(&self, phase: Phase, start_ns: u64, dur_ns: u64) {
        let ev = SpanEvent {
            rank: 0, // stamped at drain time from the ring's index
            phase,
            start_ns,
            dur_ns,
        };
        let mut r = self.inner.lock();
        if r.events.len() < r.cap {
            r.events.push(ev);
        } else {
            let head = r.head;
            r.events[head] = ev;
            r.head = (head + 1) % r.cap;
            r.dropped += 1;
        }
    }

    /// Spans in record order (oldest first), stamped with `rank`.
    /// Always empty when tracing is compiled out.
    pub fn spans(&self, rank: u32) -> Vec<SpanEvent> {
        #[cfg(feature = "obs-trace")]
        {
            let r = self.inner.lock();
            let mut out = Vec::with_capacity(r.events.len());
            out.extend_from_slice(&r.events[r.head..]);
            out.extend_from_slice(&r.events[..r.head]);
            for ev in &mut out {
                ev.rank = rank;
            }
            out
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            let _ = rank;
            Vec::new()
        }
    }

    /// Spans overwritten since the last [`SpanRing::clear`].
    pub fn dropped(&self) -> u64 {
        #[cfg(feature = "obs-trace")]
        {
            self.inner.lock().dropped
        }
        #[cfg(not(feature = "obs-trace"))]
        {
            0
        }
    }

    /// Empties the ring and zeroes the always-on totals.
    pub fn clear(&self) {
        for lane in self.counts.iter().chain(self.total_ns.iter()) {
            lane.store(0, Relaxed);
        }
        #[cfg(feature = "obs-trace")]
        {
            let mut r = self.inner.lock();
            r.events.clear();
            r.head = 0;
            r.dropped = 0;
        }
    }
}

impl Default for SpanRing {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

/// One padded [`SpanRing`] per rank.
#[derive(Debug, Default)]
pub struct TraceSet {
    rings: Vec<CachePadded<SpanRing>>,
}

impl TraceSet {
    /// Whether span recording is compiled in.
    pub const fn enabled() -> bool {
        cfg!(feature = "obs-trace")
    }

    /// Grows (never shrinks) to at least `p` rings.
    pub fn ensure(&mut self, p: usize) {
        while self.rings.len() < p {
            self.rings.push(CachePadded::new(SpanRing::default()));
        }
    }

    /// Number of rings currently allocated.
    pub fn len(&self) -> usize {
        self.rings.len()
    }

    /// Whether no rings are allocated yet.
    pub fn is_empty(&self) -> bool {
        self.rings.is_empty()
    }

    /// Rank `r`'s ring.
    #[inline]
    pub fn rank(&self, r: usize) -> &SpanRing {
        &self.rings[r]
    }

    /// Empties every ring.
    pub fn clear(&self) {
        for r in &self.rings {
            r.clear();
        }
    }

    /// All spans across ranks, each stamped with its ring index, sorted
    /// by start time. Empty when tracing is compiled out.
    pub fn drain(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for (i, r) in self.rings.iter().enumerate() {
            out.extend(r.spans(i as u32));
        }
        out.sort_by_key(|e| (e.start_ns, e.rank));
        out
    }

    /// Total spans overwritten across rings since the last clear.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(|r| r.dropped()).sum()
    }

    /// Per-phase totals summed across ranks from the always-on
    /// accumulators (phases never recorded are omitted). Available in
    /// every build — this is what the default-build benchmark reports
    /// ship as their `phases` section.
    pub fn phase_totals(&self) -> Vec<PhaseTotal> {
        Phase::ALL
            .iter()
            .filter_map(|&phase| {
                let (mut count, mut total_ns) = (0u64, 0u64);
                for r in &self.rings {
                    let (c, ns) = r.phase_total(phase);
                    count += c;
                    total_ns += ns;
                }
                (count > 0).then_some(PhaseTotal {
                    phase,
                    count,
                    total_ns,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_noop_or_records_by_feature() {
        let ring = SpanRing::with_capacity(4);
        ring.record_span(Phase::Barrier, 10, 5);
        let spans = ring.spans(3);
        if TraceSet::enabled() {
            assert_eq!(spans.len(), 1);
            assert_eq!(spans[0].rank, 3);
            assert_eq!(spans[0].phase, Phase::Barrier);
            assert_eq!(spans[0].dur_ns, 5);
        } else {
            assert!(spans.is_empty());
        }
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn ring_drops_oldest_on_overflow() {
        let ring = SpanRing::with_capacity(2);
        for i in 0..5u64 {
            ring.record_span(Phase::Idle, i, 1);
        }
        let spans = ring.spans(0);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_ns, 3);
        assert_eq!(spans[1].start_ns, 4);
        assert_eq!(ring.dropped(), 3);
        ring.clear();
        assert!(ring.spans(0).is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[cfg(feature = "obs-trace")]
    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn trace_set_drains_sorted_by_start() {
        let mut ts = TraceSet::default();
        ts.ensure(2);
        ts.rank(1).record_span(Phase::Traverse, 5, 1);
        ts.rank(0).record_span(Phase::Traverse, 2, 1);
        let spans = ts.drain();
        if TraceSet::enabled() {
            assert_eq!(spans.len(), 2);
            assert_eq!(spans[0].start_ns, 2);
            assert_eq!(spans[0].rank, 0);
            assert_eq!(spans[1].rank, 1);
        } else {
            assert!(spans.is_empty());
        }
    }

    #[test]
    fn phase_names_are_stable() {
        for p in Phase::ALL {
            assert!(!p.name().is_empty());
            assert_eq!(p.to_value(), serde::Value::String(p.name().to_string()));
        }
    }

    #[test]
    fn phase_lanes_match_discriminants() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i, "{p:?}");
        }
    }

    #[test]
    fn totals_are_always_on() {
        // The coarse per-phase accumulators work in every build, with or
        // without obs-trace.
        let mut ts = TraceSet::default();
        ts.ensure(2);
        ts.rank(0).record_span(Phase::BottomUp, 0, 100);
        ts.rank(1).record_span(Phase::BottomUp, 5, 50);
        ts.rank(1).record_span(Phase::Barrier, 0, 7);
        let totals = ts.phase_totals();
        assert_eq!(totals.len(), 2);
        let bu = totals
            .iter()
            .find(|t| t.phase == Phase::BottomUp)
            .expect("bottom_up total present");
        assert_eq!(bu.count, 2);
        assert_eq!(bu.total_ns, 150);
        ts.clear();
        assert!(ts.phase_totals().is_empty(), "clear zeroes the totals");
    }

    #[test]
    fn clock_runs_in_every_build() {
        let a = now_ns();
        std::thread::sleep(std::time::Duration::from_millis(1));
        assert!(now_ns() > a, "now_ns must be a real clock in all builds");
    }
}
