//! Lock-free log-linear latency histograms.
//!
//! The paper's argument is distributional — a mean hides exactly the
//! tail behavior (steal storms, direction switches, queue spikes) the
//! Helman–JáJá methodology exists to expose. [`Histogram`] records
//! nanosecond values into HDR-style log-linear buckets: exact below
//! [`SUB`](Histogram) and a fixed relative error (≤ 1/16 ≈ 6%) above
//! it, over the full `u64` range, with every update a handful of
//! `Relaxed` `fetch_add`s — no locks, no allocation, no floating
//! point on the hot path.
//!
//! [`ShardedHistogram`] spreads recorders across cache-padded shards
//! (one per recording thread, assigned round-robin on first use) so
//! concurrent dispatchers never contend on the same bucket lines;
//! [`snapshot`](ShardedHistogram::snapshot) merges the shards into a
//! [`HistogramSnapshot`] for quantile extraction
//! ([`quantile`](HistogramSnapshot::quantile) walks the exact buckets)
//! and Prometheus `_bucket`/`_sum`/`_count` rendering (see
//! [`crate::prometheus`]).

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering::Relaxed};

use st_smp::pad::CachePadded;

/// Sub-bucket resolution exponent: each power-of-two octave is split
/// into `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;

/// Linear sub-buckets per octave (16): the worst-case relative error of
/// a bucket bound is `1 / 16`.
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count covering all of `u64`: indices `0..2*SUB` are
/// exact values, then 16 buckets per octave up to `2^63`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS) as usize + 1) * SUB as usize;

/// Bucket index for `v` (total order preserving: `v <= w` implies
/// `index(v) <= index(w)`).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros(); // >= SUB_BITS + 1
    let shift = msb - SUB_BITS;
    let sub = (v >> shift) - SUB; // in 0..SUB
    ((msb - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// Largest value stored in bucket `i` (the bucket's inclusive upper
/// bound — what quantile extraction reports).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i < 2 * SUB as usize {
        return i as u64;
    }
    let octave = (i as u64) >> SUB_BITS; // >= 2
    let sub = (i as u64) & (SUB - 1);
    let shift = (octave - 1) as u32;
    // Upper bound is one below the next bucket's first value.
    ((SUB + sub + 1) << shift).wrapping_sub(1)
}

/// One lock-free log-linear histogram: fixed bucket array plus running
/// sum and count, all `Relaxed` atomics. Snapshots are therefore
/// approximate under concurrency (each cell individually correct, the
/// set not an atomic cut) — statistics, not synchronization.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count.load(Relaxed))
            .field("sum", &self.sum.load(Relaxed))
            .finish()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // `AtomicU64` is not `Copy`; build the boxed array in place.
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> = (0..NUM_BUCKETS)
            .map(|_| AtomicU64::new(0))
            .collect::<Vec<_>>()
            .into_boxed_slice()
            .try_into()
            .unwrap_or_else(|_| unreachable!("length is NUM_BUCKETS by construction"));
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value (typically nanoseconds). Lock-free; callable
    /// from any thread.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
    }

    /// Values recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Merges this histogram's cells into `snap`.
    fn merge_into(&self, snap: &mut HistogramSnapshot) {
        for (i, b) in self.buckets.iter().enumerate() {
            snap.buckets[i] += b.load(Relaxed);
        }
        snap.count += self.count.load(Relaxed);
        snap.sum += self.sum.load(Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        self.merge_into(&mut snap);
        snap
    }
}

/// Process-wide dense thread index for shard selection: each thread is
/// assigned the next integer on first use, so the first `k` recording
/// threads land on `k` distinct shards of any `k`-shard histogram.
fn thread_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Relaxed);
    }
    INDEX.with(|i| *i)
}

/// A histogram sharded across cache-padded sub-histograms, one per
/// recording thread (round-robin when threads outnumber shards), merged
/// on [`snapshot`](Self::snapshot).
pub struct ShardedHistogram {
    shards: Box<[CachePadded<Histogram>]>,
}

impl std::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedHistogram")
            .field("shards", &self.shards.len())
            .field("count", &self.snapshot().count)
            .finish()
    }
}

impl ShardedHistogram {
    /// A histogram with `shards` independent recorders (at least 1).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        Self {
            shards: (0..shards)
                .map(|_| CachePadded::new(Histogram::new()))
                .collect(),
        }
    }

    /// Records one value into the calling thread's shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.shards[thread_index() % self.shards.len()].record(v);
    }

    /// Merges all shards into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for s in self.shards.iter() {
            s.merge_into(&mut snap);
        }
        snap
    }
}

/// A merged, immutable copy of a histogram: per-bucket counts plus the
/// running sum and count.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Raw (non-cumulative) bucket counts, index order = value order.
    pub buckets: Vec<u64>,
    /// Total values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// An all-zero snapshot.
    pub fn empty() -> Self {
        Self {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// The exact-bucket quantile: the inclusive upper bound of the
    /// bucket containing the `q`-th ranked value (`q` in `[0, 1]`).
    /// Returns 0 when the histogram is empty. The reported value is
    /// never below the true quantile and overshoots by at most one
    /// bucket width (≤ 1/16 relative).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(NUM_BUCKETS - 1)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Cumulative counts for a ladder of inclusive upper bounds (in the
    /// recorded unit): entry `i` is the number of values whose *bucket*
    /// lies entirely at or below `bounds[i]`. Monotone non-decreasing
    /// by construction; a trailing `+Inf` bound is the caller's job
    /// (it equals [`count`](Self::count)).
    pub fn cumulative_le(&self, bounds: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(bounds.len());
        let mut cum = 0u64;
        let mut next_bucket = 0usize;
        for &bound in bounds {
            while next_bucket < NUM_BUCKETS && bucket_upper(next_bucket) <= bound {
                cum += self.buckets[next_bucket];
                next_bucket += 1;
            }
            out.push(cum);
        }
        debug_assert!(out.windows(2).all(|w| w[0] <= w[1]), "monotone cumulative");
        out
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 32);
        assert_eq!(snap.sum, (0..32).sum::<u64>());
        for i in 0..32 {
            assert_eq!(snap.buckets[i], 1, "bucket {i}");
            assert_eq!(bucket_upper(i), i as u64);
        }
    }

    #[test]
    fn index_is_monotone_and_bounded() {
        let mut last = 0usize;
        let mut v = 1u64;
        loop {
            let i = bucket_index(v);
            assert!(i >= last, "index must not decrease (v = {v})");
            assert!(i < NUM_BUCKETS);
            last = i;
            v = match v.checked_mul(3) {
                Some(t) => t / 2 + 1,
                None => break,
            };
        }
        assert!(bucket_index(u64::MAX) < NUM_BUCKETS);
    }

    #[test]
    fn upper_bound_brackets_its_bucket() {
        for v in [
            1u64,
            100,
            1_000,
            65_535,
            1_000_000,
            123_456_789,
            u64::MAX / 3,
        ] {
            let i = bucket_index(v);
            let upper = bucket_upper(i);
            assert!(upper >= v, "upper({i}) = {upper} < v = {v}");
            // Relative error of reporting the upper bound is <= 1/SUB.
            assert!(
                (upper - v) as f64 <= v as f64 / SUB as f64 + 1.0,
                "error too large: v = {v}, upper = {upper}"
            );
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_upper(i + 1) > upper);
            }
        }
    }

    #[test]
    fn quantiles_walk_exact_buckets() {
        let h = Histogram::new();
        // 100 values: 1..=100 (all exact or near-exact buckets).
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let p50 = snap.quantile(0.50);
        let p99 = snap.quantile(0.99);
        assert!((48..=56).contains(&p50), "p50 = {p50}");
        assert!((95..=103).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.quantile(0.0), 1, "q=0 is the minimum's bucket");
        assert!(snap.quantile(1.0) >= 100);
    }

    #[test]
    fn empty_quantile_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
    }

    #[test]
    fn cumulative_ladder_is_monotone_and_complete() {
        let h = Histogram::new();
        for v in [10u64, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        let bounds = [50u64, 500, 5_000, 50_000, 500_000, u64::MAX];
        let cum = snap.cumulative_le(&bounds);
        assert_eq!(cum, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn sharded_merges_across_threads() {
        let h = ShardedHistogram::new(4);
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.sum, (0..4000u64).sum::<u64>());
        assert_eq!(snap.cumulative_le(&[u64::MAX]), vec![4000]);
    }

    #[test]
    fn merge_folds_snapshots() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count, 2);
        assert_eq!(snap.sum, 505);
    }
}
