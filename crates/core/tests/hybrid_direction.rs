//! Integration tests for the direction-optimizing traversal: forced
//! bottom-up and top-down runs across a shape gauntlet, the hybrid
//! switch-threshold sweep at several team sizes, prefetch-distance
//! settings, and cancellation on the bottom-up path.

use std::time::Duration;

use st_core::engine::Workspace;
use st_core::traversal::{Direction, TraversalConfig, TraversalOutcome};
use st_graph::gen::{chain, complete, random_connected, star, torus2d};
use st_graph::validate::is_spanning_tree;
use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{Counter, JobMetrics};
use st_smp::{CancelToken, Executor};

/// One traversal round over connected `g` on a fresh `p`-rank team,
/// seeded at vertex 0. Returns the parent array, every rank's outcome,
/// and the job metrics.
fn run_direction(
    g: &CsrGraph,
    p: usize,
    cfg: TraversalConfig,
) -> (Vec<VertexId>, Vec<TraversalOutcome>, JobMetrics) {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    ws.begin_job(&exec);
    let outcomes = {
        let t = ws.traversal(g, &exec, cfg);
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        exec.run(|ctx| t.run_worker_ctx(&ctx).1)
    };
    let metrics = ws.finish_job(&exec);
    (ws.parents_prefix(g.num_vertices()), outcomes, metrics)
}

fn assert_tree(name: &str, p: usize, g: &CsrGraph, parents: &[VertexId], out: &[TraversalOutcome]) {
    assert!(
        out.iter().all(|&o| o == TraversalOutcome::Completed),
        "{name} p={p}: outcomes {out:?}"
    );
    assert!(
        is_spanning_tree(g, parents, 0),
        "{name} p={p}: invalid tree"
    );
}

/// Shapes chosen to stress different sweep behaviors: a chain (maximum
/// diameter — one hop of progress per sweep, so it must stay small), a
/// star (one sweep colors everything), a torus (uniform degree), a
/// sparse random graph (the paper's main workload), and a complete
/// graph (every unvisited vertex finds a parent immediately).
fn gauntlet() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("chain", chain(96)),
        ("star", star(1 << 9)),
        ("torus2d", torus2d(24, 24)),
        ("random", random_connected(1 << 11, 1 << 13, 7)),
        ("complete", complete(80)),
    ]
}

#[test]
fn forced_bottom_up_builds_valid_trees_across_shapes() {
    for (name, g) in gauntlet() {
        for p in [1, 4] {
            let cfg = TraversalConfig {
                direction: Direction::BottomUp,
                ..TraversalConfig::default()
            };
            let (parents, out, metrics) = run_direction(&g, p, cfg);
            assert_tree(name, p, &g, &parents, &out);
            assert!(
                metrics.get(Counter::RoundsBottomUp) > 0,
                "{name} p={p}: forced bottom-up ran no sweeps"
            );
        }
    }
}

#[test]
fn forced_top_down_builds_valid_trees_across_shapes() {
    for (name, g) in gauntlet() {
        for p in [1, 4] {
            let cfg = TraversalConfig {
                direction: Direction::TopDown,
                ..TraversalConfig::default()
            };
            let (parents, out, metrics) = run_direction(&g, p, cfg);
            assert_tree(name, p, &g, &parents, &out);
            assert_eq!(
                metrics.get(Counter::RoundsBottomUp),
                0,
                "{name} p={p}: top-down must never sweep bottom-up"
            );
        }
    }
}

/// The switch thresholds swept from "flip to bottom-up almost
/// immediately" through the Beamer defaults to "never flip", at the
/// team sizes the acceptance criteria name. Every setting must produce
/// a valid tree, and the extremes must actually take the intended
/// paths (telemetry proves the heuristic fired / stayed quiet).
#[test]
fn hybrid_switch_threshold_sweep() {
    let g = random_connected(1 << 12, 1 << 14, 21);
    for p in [1, 4, 8] {
        // Switch fires on `frontier·α > unvisited && frontier·β > n`:
        // a huge α (with a huge β disarming the second guard) flips
        // almost immediately, while β = 1 demands an impossible
        // frontier larger than n and so can never flip.
        for (alpha, beta, expect_bu) in [
            (1e6, 1e6, Some(true)),
            (14.0, 24.0, None),
            (14.0, 1.0, Some(false)),
        ] {
            let cfg = TraversalConfig {
                direction: Direction::Hybrid,
                alpha,
                beta,
                ..TraversalConfig::default()
            };
            let (parents, out, metrics) = run_direction(&g, p, cfg);
            let label = format!("hybrid alpha={alpha} beta={beta}");
            assert_tree(&label, p, &g, &parents, &out);
            let bu = metrics.get(Counter::RoundsBottomUp);
            match expect_bu {
                Some(true) => assert!(bu > 0, "p={p}: eager thresholds never switched"),
                Some(false) => assert_eq!(bu, 0, "p={p}: beta=1 still switched to bottom-up"),
                None => {}
            }
            assert!(
                metrics.get(Counter::FrontierPeak) > 0,
                "p={p} alpha={alpha}: frontier estimator recorded no peak"
            );
        }
    }
}

/// The prefetch distance is a tuning knob, not a correctness knob:
/// disabled, default, and aggressive settings must all build valid
/// trees in both directions.
#[test]
fn prefetch_distance_settings_stay_correct() {
    let g = random_connected(1 << 11, 1 << 13, 3);
    for direction in [Direction::TopDown, Direction::BottomUp] {
        for prefetch_distance in [0, 1, 8, 64] {
            let cfg = TraversalConfig {
                direction,
                prefetch_distance,
                ..TraversalConfig::default()
            };
            let (parents, out, _) = run_direction(&g, 4, cfg);
            assert_tree(
                &format!("{direction:?} pf={prefetch_distance}"),
                4,
                &g,
                &parents,
                &out,
            );
        }
    }
}

/// A token cancelled before the round starts: the bottom-up leader
/// polls it in the first decision window and routes the whole team to
/// a cancelled exit before any sweep runs.
#[test]
fn pre_cancelled_token_cancels_bottom_up_before_sweeping() {
    let g = random_connected(1 << 10, 1 << 12, 5);
    let token = CancelToken::new();
    token.cancel();
    let cfg = TraversalConfig {
        direction: Direction::BottomUp,
        cancel: token,
        ..TraversalConfig::default()
    };
    let (_, out, metrics) = run_direction(&g, 4, cfg);
    assert!(
        out.iter().all(|&o| o == TraversalOutcome::Cancelled),
        "outcomes {out:?}"
    );
    assert_eq!(
        metrics.get(Counter::RoundsBottomUp),
        0,
        "cancelled before the first sweep, yet sweeps ran"
    );
}

/// A cancellation raised mid-run from outside the team: the chunk-level
/// poll inside the sweep and the leader's window poll must pick it up.
/// Seeding the chain at its far end defeats the ascending cursor's
/// same-sweep cascade, so the uncancelled run needs one sweep per hop
/// (thousands of barriered sweeps) — a prompt exit can only come from
/// the bottom-up path actually polling the token.
#[test]
fn mid_run_cancellation_is_polled_on_the_bottom_up_path() {
    let n = 8192usize;
    let g = chain(n);
    let token = CancelToken::new();
    let cfg = TraversalConfig {
        direction: Direction::BottomUp,
        cancel: token.clone(),
        ..TraversalConfig::default()
    };
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(10));
        token.cancel();
    });
    let exec = Executor::new(4);
    let mut ws = Workspace::new();
    ws.begin_job(&exec);
    let out = {
        let t = ws.traversal(&g, &exec, cfg);
        t.begin_round();
        t.seed(0, (n - 1) as VertexId, NO_VERTEX);
        exec.run(|ctx| t.run_worker_ctx(&ctx).1)
    };
    ws.finish_job(&exec);
    canceller.join().unwrap();
    assert!(
        out.iter().all(|&o| o == TraversalOutcome::Cancelled),
        "outcomes {out:?}"
    );
}
