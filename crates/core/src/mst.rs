//! Minimum spanning forest — the paper's stated future work.
//!
//! "We plan to apply the techniques discussed in this paper to other
//! related graph problems, for instance, minimum spanning tree (forest)"
//! (§5). This module does exactly that with the same substrate the
//! spanning-tree algorithms use:
//!
//! * [`kruskal`] — the sequential baseline (sort + union-find), the
//!   comparator the Chung–Condon study the paper cites also measures
//!   against.
//! * [`boruvka`] — parallel Borůvka with the HCS-style atomic
//!   min-reduction: every component finds its lexicographically minimum
//!   incident edge by `fetch_min` over packed (weight, edge-id) keys,
//!   hooks across it (mutual pairs broken toward the smaller root), and
//!   pointer-jumps back to rooted stars — the graft-and-shortcut
//!   skeleton with "minimum" instead of "any".
//!
//! Packing the unique edge id into the low bits makes every component's
//! minimum *strict*, which is what rules out hook cycles longer than the
//! mutual pair: in any would-be cycle of chosen edges, the largest edge
//! cannot be its tail component's minimum because the previous cycle
//! edge is also incident to it and smaller.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use st_graph::dsu::DisjointSets;
use st_graph::weighted::{Weight, WeightedGraph};
use st_graph::VertexId;
use st_smp::team::block_range;
use st_smp::Executor;

use crate::engine::Workspace;

/// Result of a minimum-spanning-forest computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MstResult {
    /// The forest edges (one per union), as graph edges.
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Sum of the forest's edge weights.
    pub total_weight: u64,
    /// Borůvka iterations (1 for Kruskal).
    pub iterations: usize,
    /// Barrier episodes (0 for Kruskal).
    pub barriers: usize,
}

/// Sequential Kruskal: the baseline.
///
/// ```
/// use st_core::mst;
/// use st_graph::WeightedGraph;
///
/// let wg = WeightedGraph::from_weighted_edges(
///     3,
///     vec![(0, 1, 5), (1, 2, 2), (0, 2, 9)],
/// );
/// let k = mst::kruskal(&wg);
/// assert_eq!(k.total_weight, 7); // edges (1,2) and (0,1)
/// assert_eq!(k.total_weight, mst::boruvka(&wg, 2).total_weight);
/// ```
pub fn kruskal(wg: &WeightedGraph) -> MstResult {
    let n = wg.num_vertices();
    let mut edges: Vec<(Weight, VertexId, VertexId)> =
        wg.weighted_edges().map(|(u, v, w)| (w, u, v)).collect();
    edges.sort_unstable();
    let mut dsu = DisjointSets::new(n);
    let mut tree_edges = Vec::new();
    let mut total_weight = 0u64;
    for (w, u, v) in edges {
        if dsu.union(u, v) {
            tree_edges.push((u, v));
            total_weight += w as u64;
        }
    }
    MstResult {
        tree_edges,
        total_weight,
        iterations: 1,
        barriers: 0,
    }
}

const EMPTY: u64 = u64::MAX;

#[inline]
fn pack(w: Weight, edge: usize) -> u64 {
    ((w as u64) << 32) | edge as u64
}

/// Parallel Borůvka minimum spanning forest with a one-shot team of `p`
/// processors.
pub fn boruvka(wg: &WeightedGraph, p: usize) -> MstResult {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    boruvka_on(wg, &exec, &mut ws)
}

/// Parallel Borůvka on an existing team, with the hook array, snapshot,
/// best-edge slots, and per-rank edge lists drawn from `ws`.
pub fn boruvka_on(wg: &WeightedGraph, exec: &Executor, ws: &mut Workspace) -> MstResult {
    let p = exec.size();
    let n = wg.num_vertices();
    let edges: Vec<(VertexId, VertexId, Weight)> = wg.weighted_edges().collect();
    let m = edges.len();
    assert!(m < u32::MAX as usize, "edge index must fit the packed key");

    ws.init_labels(n, None);
    // Iteration-start snapshot of d (rooted stars), for race-free hook
    // targets.
    ws.snap.ensure_len(n);
    ws.ensure_slots(n);
    ws.ensure_graft(p);
    let d = &ws.labels;
    let snap = &ws.snap;
    let best: &[AtomicU64] = &ws.slots[..n];
    let graft = &ws.graft[..p];

    let hook_epoch = AtomicU64::new(EMPTY);
    let shortcut_epoch = [AtomicU64::new(EMPTY), AtomicU64::new(EMPTY)];
    let barriers = AtomicUsize::new(0);
    let iterations = AtomicUsize::new(0);

    let per_rank_weight: Vec<u64> = exec.run(|ctx| {
        let rank = ctx.rank();
        let my_edges = block_range(rank, p, m);
        let my_verts = block_range(rank, p, n);
        let mut my_tree_edges = graft[rank].lock();
        let mut my_weight = 0u64;
        let bar = |counter: &AtomicUsize| {
            if ctx.barrier() {
                counter.fetch_add(1, Ordering::Relaxed);
            }
        };

        let mut iter: u64 = 0;
        let mut sc_stamp: u64 = 0;
        loop {
            // --- Reset best slots and snapshot d (rooted stars).
            for v in my_verts.clone() {
                best[v].store(EMPTY, Ordering::Relaxed);
                snap.store(v, d.load(v, Ordering::Relaxed), Ordering::Relaxed);
            }
            bar(&barriers);

            // --- Min-reduction: every edge offers itself to both
            // endpoint roots.
            for e in my_edges.clone() {
                let (u, v, w) = edges[e];
                let du = snap.load(u as usize, Ordering::Relaxed);
                let dv = snap.load(v as usize, Ordering::Relaxed);
                if du == dv {
                    continue;
                }
                let key = pack(w, e);
                best[du as usize].fetch_min(key, Ordering::Relaxed);
                best[dv as usize].fetch_min(key, Ordering::Relaxed);
            }
            bar(&barriers);

            // --- Hook: every root crosses its strict-minimum edge;
            // mutual pairs break toward the smaller root.
            for v in my_verts.clone() {
                if snap.load(v, Ordering::Relaxed) != v as VertexId {
                    continue; // not a root at iteration start
                }
                let key = best[v].load(Ordering::Relaxed);
                if key == EMPTY {
                    continue;
                }
                let e = (key & 0xFFFF_FFFF) as usize;
                let (eu, ev, w) = edges[e];
                let ru = snap.load(eu as usize, Ordering::Relaxed);
                let rv = snap.load(ev as usize, Ordering::Relaxed);
                let other = if ru == v as VertexId { rv } else { ru };
                debug_assert!(ru == v as VertexId || rv == v as VertexId);
                // Mutual-minimum pair: both roots chose edge e. Only the
                // larger root hooks, so the pair contributes one tree
                // edge and no 2-cycle.
                if best[other as usize].load(Ordering::Relaxed) == key && (v as VertexId) < other {
                    continue;
                }
                d.store(v, other, Ordering::Release);
                my_tree_edges.push((eu, ev));
                my_weight += w as u64;
                hook_epoch.store(iter, Ordering::Release);
            }
            bar(&barriers);

            let changed = hook_epoch.load(Ordering::Acquire) == iter;
            if rank == 0 {
                iterations.fetch_add(1, Ordering::Relaxed);
            }
            if !changed {
                break;
            }

            // --- Shortcut to rooted stars (parity-slot protocol, as in
            // SV/HCS).
            loop {
                let mut local_changed = false;
                for v in my_verts.clone() {
                    let dv = d.load(v, Ordering::Acquire);
                    let ddv = d.load(dv as usize, Ordering::Acquire);
                    if dv != ddv {
                        d.store(v, ddv, Ordering::Release);
                        local_changed = true;
                    }
                }
                let slot = &shortcut_epoch[(sc_stamp % 2) as usize];
                if local_changed {
                    slot.store(sc_stamp, Ordering::Release);
                }
                bar(&barriers);
                let again = slot.load(Ordering::Acquire) == sc_stamp;
                sc_stamp += 1;
                if !again {
                    break;
                }
            }
            iter += 1;
        }
        my_weight
    });

    let tree_edges = ws.drain_graft(p);
    let total_weight: u64 = per_rank_weight.into_iter().sum();
    MstResult {
        tree_edges,
        total_weight,
        iterations: iterations.load(Ordering::Relaxed),
        barriers: barriers.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::orient_forest;
    use st_graph::gen::{complete, random_connected, random_gnm, torus2d};
    use st_graph::validate::{count_components, is_spanning_forest};

    fn check_agreement(wg: &WeightedGraph, p: usize) {
        let k = kruskal(wg);
        let b = boruvka(wg, p);
        assert_eq!(
            k.total_weight, b.total_weight,
            "MSF weights disagree (p = {p})"
        );
        assert_eq!(k.tree_edges.len(), b.tree_edges.len());
        // Borůvka's edges must form a spanning forest of the topology.
        let parents = orient_forest(wg.num_vertices(), &b.tree_edges, p);
        assert!(is_spanning_forest(wg.topology(), &parents));
    }

    #[test]
    fn hand_checked_mst() {
        // Square with diagonal: 0-1 (1), 1-2 (2), 2-3 (3), 3-0 (4),
        // 0-2 (5). MST = {0-1, 1-2, 2-3} with weight 6.
        let wg = WeightedGraph::from_weighted_edges(
            4,
            vec![(0, 1, 1), (1, 2, 2), (2, 3, 3), (3, 0, 4), (0, 2, 5)],
        );
        let k = kruskal(&wg);
        assert_eq!(k.total_weight, 6);
        let b = boruvka(&wg, 2);
        assert_eq!(b.total_weight, 6);
        let mut be = b.tree_edges.clone();
        be.sort_unstable();
        assert_eq!(be, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn random_graphs_agree_across_p() {
        for seed in 0..4 {
            let g = random_gnm(300, 500, seed);
            let wg = WeightedGraph::with_random_weights(&g, 1000, seed);
            for p in [1usize, 2, 4] {
                check_agreement(&wg, p);
            }
        }
    }

    #[test]
    fn disconnected_minimum_spanning_forest() {
        let g = random_gnm(200, 120, 7); // disconnected
        let wg = WeightedGraph::with_random_weights(&g, 50, 3);
        let k = kruskal(&wg);
        assert_eq!(k.tree_edges.len(), 200 - count_components(&g));
        check_agreement(&wg, 4);
    }

    #[test]
    fn duplicate_weights_are_fine() {
        // All weights equal: any spanning forest is minimum; totals must
        // still agree (matroid property), and the strict (weight, id)
        // tie-break keeps Borůvka cycle-free.
        let g = torus2d(10, 10);
        let wg = WeightedGraph::with_random_weights(&g, 1, 0);
        check_agreement(&wg, 4);
        assert_eq!(kruskal(&wg).total_weight, 99);
    }

    #[test]
    fn boruvka_iterations_are_logarithmic() {
        let g = random_connected(4_096, 4_096, 5);
        let wg = WeightedGraph::with_random_weights(&g, 10_000, 6);
        let b = boruvka(&wg, 4);
        assert!(
            b.iterations <= 15,
            "Borůvka took {} iterations on 4k vertices",
            b.iterations
        );
        check_agreement(&wg, 4);
    }

    #[test]
    fn complete_graph_mst() {
        let g = complete(40);
        let wg = WeightedGraph::with_random_weights(&g, 500, 9);
        check_agreement(&wg, 3);
    }

    #[test]
    fn empty_and_edgeless() {
        let wg = WeightedGraph::from_weighted_edges(5, Vec::new());
        let k = kruskal(&wg);
        assert_eq!(k.total_weight, 0);
        assert!(k.tree_edges.is_empty());
        let b = boruvka(&wg, 2);
        assert_eq!(b.total_weight, 0);
        assert_eq!(b.iterations, 1);
    }

    #[test]
    fn reused_workspace_agrees_with_kruskal() {
        let exec = st_smp::Executor::new(4);
        let mut ws = crate::engine::Workspace::new();
        for seed in 0..3 {
            let g = random_gnm(400, 700, seed);
            let wg = WeightedGraph::with_random_weights(&g, 777, seed);
            let b = boruvka_on(&wg, &exec, &mut ws);
            assert_eq!(b.total_weight, kruskal(&wg).total_weight, "seed {seed}");
        }
    }

    #[test]
    fn boruvka_is_deterministic_across_p() {
        let g = random_gnm(500, 900, 2);
        let wg = WeightedGraph::with_random_weights(&g, 100, 4);
        let mut e1 = boruvka(&wg, 1).tree_edges;
        let mut e4 = boruvka(&wg, 4).tree_edges;
        e1.sort_unstable();
        e4.sort_unstable();
        assert_eq!(e1, e4, "strict-min hooking is schedule-independent");
    }
}
