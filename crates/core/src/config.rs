//! Typed runtime configuration from the environment.
//!
//! Every `ST_*` knob the workspace honors is parsed here, once, with
//! validation errors instead of silent fallbacks: a malformed value
//! (`ST_BENCH_SCALE=abc`, `ST_PUBLISH_THRESHOLD=-1`) surfaces a
//! [`ConfigError`] naming the variable, the offending value, and the
//! expected shape — it no longer quietly reverts to a default, which
//! previously made a typo'd benchmark run look like a baseline run.
//!
//! Consumers:
//!
//! * [`TraversalConfig::default`](crate::traversal::TraversalConfig)
//!   applies the frontier knobs to every default-configured traversal
//!   in the process (panicking with the validation message — a bad
//!   environment should stop the run, not skew it);
//! * the `st-bench` binaries and Criterion benches read
//!   [`bench_scale`](RuntimeConfig::bench_scale);
//! * the `st-service` builder seeds its team layout and queue capacity
//!   from [`service_teams`](RuntimeConfig::service_teams) and
//!   [`service_queue_capacity`](RuntimeConfig::service_queue_capacity).
//!
//! | variable | type | meaning |
//! |---|---|---|
//! | `ST_PUBLISH_THRESHOLD` | integer ≥ 1 or `max` | private-buffer size that triggers publication |
//! | `ST_PUBLISH_ON_SLEEPERS` | bool | publish the buffer whenever sleepers are reported |
//! | `ST_LOCAL_BATCH` | integer ≥ 1 | owner dequeue batch per queue lock |
//! | `ST_DIRECTION` | `top-down` / `bottom-up` / `hybrid` | traversal direction strategy |
//! | `ST_HYBRID_ALPHA` | finite float > 0 | hybrid switch-forward weight (Beamer's α) |
//! | `ST_HYBRID_BETA` | finite float ≥ 1 | hybrid switch-back weight (Beamer's β) |
//! | `ST_PREFETCH_DISTANCE` | integer 0–256 | software-prefetch lookahead (0 disables) |
//! | `ST_HUGEPAGES` | bool | back CSR/workspace arrays with transparent huge pages |
//! | `ST_BENCH_SCALE` | integer (log2 n) | default problem scale of the bench bins |
//! | `ST_SERVICE_TEAMS` | comma list of integers ≥ 1 | service pool team widths, e.g. `4,2,2` |
//! | `ST_SERVICE_QUEUE_CAP` | integer ≥ 1 | service admission-queue capacity |
//! | `ST_LISTEN_ADDR` | `host:port` socket address | TCP bind address of the service front-end |
//! | `ST_MAX_CONNECTIONS` | integer ≥ 1 | concurrent TCP connections before `Busy` |
//! | `ST_RESULT_CACHE_CAP` | integer ≥ 0 | result-cache entries (0 disables caching) |
//! | `ST_JOURNAL_CAP` | integer 1–1048576 | telemetry event-journal ring capacity |
//! | `ST_SLOW_JOB_MS` | integer 1–3600000 | slow-job threshold (wall ms) for the full-metrics dump |
//! | `ST_LANE_WEIGHTS` | three integers ≥ 1, e.g. `4,2,1` | deficit-round-robin credits per High/Normal/Low lane |
//! | `ST_TENANT_QUOTA` | integer ≥ 1 | max queued jobs per tenant id |
//! | `ST_ELASTIC` | bool | enable the elastic pool controller |
//! | `ST_ELASTIC_IDLE_MS` | integer 1–3600000 | idle time before a team is shrunk |
//! | `ST_ELASTIC_BACKLOG` | integer ≥ 1 | queue depth that counts as sustained backlog |
//! | `ST_ELASTIC_MAX_WIDTH` | integer 1–512 | widest a team may grow |
//! | `ST_DELTA_REBUILD_FRACTION` | finite float 0–1 | patched-row fraction past which a COW delta is flattened to a fresh CSR |
//! | `ST_DYN_RECOMPUTE_FRACTION` | finite float ≥ 0 | touched-component fraction past which a batch triggers full recompute instead of incremental maintenance |

use std::fmt;

use crate::traversal::Direction;

/// A rejected environment value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable at fault.
    pub var: &'static str,
    /// The value it held.
    pub value: String,
    /// What was expected instead.
    pub reason: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// The process-wide `ST_*` environment knobs, parsed and validated.
///
/// Every field is `None` when the corresponding variable is unset —
/// callers keep their own defaults. Construction fails loudly on the
/// first malformed value.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RuntimeConfig {
    /// `ST_PUBLISH_THRESHOLD`: frontier publication threshold
    /// (`usize::MAX` for `max`).
    pub publish_threshold: Option<usize>,
    /// `ST_PUBLISH_ON_SLEEPERS`: sleeper-driven publication toggle.
    pub publish_on_sleepers: Option<bool>,
    /// `ST_LOCAL_BATCH`: owner dequeue batch size.
    pub local_batch: Option<usize>,
    /// `ST_DIRECTION`: traversal direction strategy.
    pub direction: Option<Direction>,
    /// `ST_HYBRID_ALPHA`: hybrid switch-forward weight.
    pub hybrid_alpha: Option<f64>,
    /// `ST_HYBRID_BETA`: hybrid switch-back weight.
    pub hybrid_beta: Option<f64>,
    /// `ST_PREFETCH_DISTANCE`: software-prefetch lookahead (0 disables).
    pub prefetch_distance: Option<usize>,
    /// `ST_HUGEPAGES`: transparent-hugepage advice for the CSR and
    /// workspace arrays.
    pub hugepages: Option<bool>,
    /// `ST_BENCH_SCALE`: default log2 problem size of the bench bins.
    pub bench_scale: Option<u32>,
    /// `ST_SERVICE_TEAMS`: job-service team widths.
    pub service_teams: Option<Vec<usize>>,
    /// `ST_SERVICE_QUEUE_CAP`: job-service admission queue capacity.
    pub service_queue_capacity: Option<usize>,
    /// `ST_LISTEN_ADDR`: TCP bind address of the service front-end.
    pub listen_addr: Option<std::net::SocketAddr>,
    /// `ST_MAX_CONNECTIONS`: concurrent TCP connections the front-end
    /// accepts before answering `Busy`.
    pub max_connections: Option<usize>,
    /// `ST_RESULT_CACHE_CAP`: result-cache entry capacity (0 disables
    /// the cache).
    pub result_cache_capacity: Option<usize>,
    /// `ST_JOURNAL_CAP`: telemetry event-journal ring capacity.
    pub journal_capacity: Option<usize>,
    /// `ST_SLOW_JOB_MS`: wall-latency threshold, in milliseconds, past
    /// which the service dumps a job's full `JobMetrics`.
    pub slow_job_ms: Option<u64>,
    /// `ST_LANE_WEIGHTS`: deficit-round-robin credits granted per
    /// scheduling round to the High/Normal/Low admission lanes.
    pub lane_weights: Option<[u32; 3]>,
    /// `ST_TENANT_QUOTA`: maximum queued jobs per tenant id.
    pub tenant_quota: Option<usize>,
    /// `ST_ELASTIC`: whether the service runs the elastic pool
    /// controller.
    pub elastic: Option<bool>,
    /// `ST_ELASTIC_IDLE_MS`: how long a team must sit idle before the
    /// controller shrinks it.
    pub elastic_idle_ms: Option<u64>,
    /// `ST_ELASTIC_BACKLOG`: admission-queue depth the controller
    /// treats as sustained backlog (triggers growth).
    pub elastic_backlog: Option<usize>,
    /// `ST_ELASTIC_MAX_WIDTH`: the widest the controller may grow any
    /// team.
    pub elastic_max_width: Option<usize>,
    /// `ST_DELTA_REBUILD_FRACTION`: patched-row fraction past which the
    /// catalog flattens a COW delta into a fresh CSR.
    pub delta_rebuild_fraction: Option<f64>,
    /// `ST_DYN_RECOMPUTE_FRACTION`: touched-component fraction past
    /// which a batch falls back to full recompute (0 forces recompute
    /// on every batch; > 1 never recomputes).
    pub dyn_recompute_fraction: Option<f64>,
}

impl RuntimeConfig {
    /// Reads and validates every `ST_*` knob from the process
    /// environment.
    pub fn from_env() -> Result<Self, ConfigError> {
        Ok(Self {
            publish_threshold: read("ST_PUBLISH_THRESHOLD", parse_threshold)?,
            publish_on_sleepers: read("ST_PUBLISH_ON_SLEEPERS", parse_bool)?,
            local_batch: read("ST_LOCAL_BATCH", parse_positive)?,
            direction: read("ST_DIRECTION", parse_direction)?,
            hybrid_alpha: read("ST_HYBRID_ALPHA", parse_alpha)?,
            hybrid_beta: read("ST_HYBRID_BETA", parse_beta)?,
            prefetch_distance: read("ST_PREFETCH_DISTANCE", parse_prefetch)?,
            hugepages: read("ST_HUGEPAGES", parse_bool)?,
            bench_scale: read("ST_BENCH_SCALE", parse_scale)?,
            service_teams: read("ST_SERVICE_TEAMS", parse_team_list)?,
            service_queue_capacity: read("ST_SERVICE_QUEUE_CAP", parse_positive)?,
            listen_addr: read("ST_LISTEN_ADDR", parse_socket_addr)?,
            max_connections: read("ST_MAX_CONNECTIONS", parse_positive)?,
            result_cache_capacity: read("ST_RESULT_CACHE_CAP", parse_nonnegative)?,
            journal_capacity: read("ST_JOURNAL_CAP", parse_journal_cap)?,
            slow_job_ms: read("ST_SLOW_JOB_MS", parse_slow_job_ms)?,
            lane_weights: read("ST_LANE_WEIGHTS", parse_lane_weights)?,
            tenant_quota: read("ST_TENANT_QUOTA", parse_positive)?,
            elastic: read("ST_ELASTIC", parse_bool)?,
            elastic_idle_ms: read("ST_ELASTIC_IDLE_MS", parse_bounded_ms)?,
            elastic_backlog: read("ST_ELASTIC_BACKLOG", parse_positive)?,
            elastic_max_width: read("ST_ELASTIC_MAX_WIDTH", parse_team_width)?,
            delta_rebuild_fraction: read("ST_DELTA_REBUILD_FRACTION", parse_unit_fraction)?,
            dyn_recompute_fraction: read("ST_DYN_RECOMPUTE_FRACTION", parse_fraction)?,
        })
    }

    /// Overlays the frontier knobs onto a traversal configuration
    /// (fields left unset keep `cfg`'s current values).
    pub fn apply_frontier(&self, cfg: &mut crate::traversal::TraversalConfig) {
        if let Some(t) = self.publish_threshold {
            cfg.publish_threshold = t;
        }
        if let Some(s) = self.publish_on_sleepers {
            cfg.publish_on_sleepers = s;
        }
        if let Some(b) = self.local_batch {
            cfg.local_batch = b;
        }
        if let Some(d) = self.direction {
            cfg.direction = d;
        }
        if let Some(a) = self.hybrid_alpha {
            cfg.alpha = a;
        }
        if let Some(b) = self.hybrid_beta {
            cfg.beta = b;
        }
        if let Some(d) = self.prefetch_distance {
            cfg.prefetch_distance = d;
        }
    }
}

fn read<T>(
    var: &'static str,
    parse: fn(&str) -> Result<T, &'static str>,
) -> Result<Option<T>, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => parse(raw.trim()).map(Some).map_err(|reason| ConfigError {
            var,
            value: raw,
            reason,
        }),
    }
}

fn parse_threshold(s: &str) -> Result<usize, &'static str> {
    if s.eq_ignore_ascii_case("max") {
        return Ok(usize::MAX);
    }
    parse_positive(s).map_err(|_| "an integer ≥ 1 or `max`")
}

fn parse_positive(s: &str) -> Result<usize, &'static str> {
    match s.parse::<usize>() {
        Ok(0) | Err(_) => Err("an integer ≥ 1"),
        Ok(v) => Ok(v),
    }
}

fn parse_nonnegative(s: &str) -> Result<usize, &'static str> {
    s.parse::<usize>().map_err(|_| "an integer ≥ 0")
}

fn parse_socket_addr(s: &str) -> Result<std::net::SocketAddr, &'static str> {
    s.parse()
        .map_err(|_| "a socket address like `127.0.0.1:7077` or `[::1]:7077`")
}

fn parse_scale(s: &str) -> Result<u32, &'static str> {
    s.parse::<u32>().map_err(|_| "an integer (log2 of n)")
}

fn parse_bool(s: &str) -> Result<bool, &'static str> {
    match s.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err("a boolean (1/0, true/false, on/off, yes/no)"),
    }
}

fn parse_direction(s: &str) -> Result<Direction, &'static str> {
    match s.to_ascii_lowercase().as_str() {
        "top-down" | "topdown" | "td" => Ok(Direction::TopDown),
        "bottom-up" | "bottomup" | "bu" => Ok(Direction::BottomUp),
        "hybrid" => Ok(Direction::Hybrid),
        _ => Err("one of `top-down`, `bottom-up`, `hybrid`"),
    }
}

fn parse_alpha(s: &str) -> Result<f64, &'static str> {
    const REASON: &str = "a finite float > 0";
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() && v > 0.0 => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_beta(s: &str) -> Result<f64, &'static str> {
    // β < 1 would demand a frontier larger than the graph before ever
    // switching forward, and a switch-back threshold above n: the knob
    // would silently disable the hybrid while looking configured.
    const REASON: &str = "a finite float ≥ 1";
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 1.0 => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_prefetch(s: &str) -> Result<usize, &'static str> {
    // 256 entries is already far beyond any useful lookahead; larger
    // values are a typo (e.g. a threshold pasted into the wrong var).
    const REASON: &str = "an integer between 0 (off) and 256";
    match s.parse::<usize>() {
        Ok(v) if v <= 256 => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_journal_cap(s: &str) -> Result<usize, &'static str> {
    // A zero cap silently discards every event; a multi-million-entry
    // ring is a unit mix-up (each entry is ~100 bytes). Either way the
    // operator meant something else.
    const REASON: &str = "an integer between 1 and 1048576 (journal entries)";
    match s.parse::<usize>() {
        Ok(v) if (1..=1_048_576).contains(&v) => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_slow_job_ms(s: &str) -> Result<u64, &'static str> {
    // 0 would dump metrics for every job (that is what the journal is
    // for); beyond an hour the knob can never fire before a deadline
    // or the operator's patience does — both are configuration typos.
    const REASON: &str = "an integer between 1 and 3600000 (milliseconds)";
    match s.parse::<u64>() {
        Ok(v) if (1..=3_600_000).contains(&v) => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_lane_weights(s: &str) -> Result<[u32; 3], &'static str> {
    // The admission queue has exactly three lanes; a zero weight would
    // starve its lane outright, which is what the scheduler exists to
    // prevent.
    const REASON: &str = "exactly three comma-separated weights ≥ 1, e.g. `4,2,1`";
    let parts: Vec<u32> = s
        .split(',')
        .map(|part| match part.trim().parse::<u32>() {
            Ok(0) | Err(_) => Err(REASON),
            Ok(v) => Ok(v),
        })
        .collect::<Result<_, _>>()?;
    <[u32; 3]>::try_from(parts).map_err(|_| REASON)
}

fn parse_bounded_ms(s: &str) -> Result<u64, &'static str> {
    // Same bounds rationale as the slow-job threshold: 0 would fire
    // continuously, beyond an hour is a unit mix-up.
    const REASON: &str = "an integer between 1 and 3600000 (milliseconds)";
    match s.parse::<u64>() {
        Ok(v) if (1..=3_600_000).contains(&v) => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_team_width(s: &str) -> Result<usize, &'static str> {
    // 512 processors in one team is already far past any SMP this
    // targets; larger values are a pasted queue capacity.
    const REASON: &str = "an integer between 1 and 512 (processors per team)";
    match s.parse::<usize>() {
        Ok(v) if (1..=512).contains(&v) => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_unit_fraction(s: &str) -> Result<f64, &'static str> {
    // The patched-row fraction is a proportion; anything past 1 can
    // never trigger, which silently disables flattening.
    const REASON: &str = "a finite float between 0 and 1";
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() && (0.0..=1.0).contains(&v) => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_fraction(s: &str) -> Result<f64, &'static str> {
    // Unlike the rebuild knob, values above 1 are deliberate here: a
    // touched-fraction threshold > 1 means "never recompute", which the
    // bench uses to isolate the incremental path.
    const REASON: &str = "a finite float ≥ 0";
    match s.parse::<f64>() {
        Ok(v) if v.is_finite() && v >= 0.0 => Ok(v),
        _ => Err(REASON),
    }
}

fn parse_team_list(s: &str) -> Result<Vec<usize>, &'static str> {
    const REASON: &str = "a comma-separated list of team widths ≥ 1, e.g. `4,2,2`";
    let teams: Vec<usize> = s
        .split(',')
        .map(|part| parse_positive(part.trim()).map_err(|_| REASON))
        .collect::<Result<_, _>>()?;
    if teams.is_empty() {
        return Err(REASON);
    }
    Ok(teams)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parsers are tested directly (not through the process
    // environment) so the suite stays safe under parallel test
    // execution — `std::env::set_var` is unsound with threads.

    #[test]
    fn threshold_accepts_max_and_integers() {
        assert_eq!(parse_threshold("max"), Ok(usize::MAX));
        assert_eq!(parse_threshold("MAX"), Ok(usize::MAX));
        assert_eq!(parse_threshold("64"), Ok(64));
        assert!(parse_threshold("0").is_err());
        assert!(parse_threshold("-3").is_err());
        assert!(parse_threshold("sixty").is_err());
    }

    #[test]
    fn bools_accept_common_spellings() {
        for s in ["1", "true", "ON", "yes"] {
            assert_eq!(parse_bool(s), Ok(true), "{s}");
        }
        for s in ["0", "false", "off", "NO"] {
            assert_eq!(parse_bool(s), Ok(false), "{s}");
        }
        assert!(parse_bool("maybe").is_err());
    }

    #[test]
    fn team_lists_parse_and_validate() {
        assert_eq!(parse_team_list("4,2,2"), Ok(vec![4, 2, 2]));
        assert_eq!(parse_team_list(" 8 , 1 "), Ok(vec![8, 1]));
        assert!(parse_team_list("4,0,2").is_err());
        assert!(parse_team_list("").is_err());
        assert!(parse_team_list("a,b").is_err());
    }

    #[test]
    fn direction_accepts_all_spellings() {
        for s in ["top-down", "TopDown", "td"] {
            assert_eq!(parse_direction(s), Ok(Direction::TopDown), "{s}");
        }
        for s in ["bottom-up", "bottomup", "BU"] {
            assert_eq!(parse_direction(s), Ok(Direction::BottomUp), "{s}");
        }
        assert_eq!(parse_direction("hybrid"), Ok(Direction::Hybrid));
        assert!(parse_direction("sideways").is_err());
    }

    #[test]
    fn alpha_requires_positive_finite() {
        assert_eq!(parse_alpha("14"), Ok(14.0));
        assert_eq!(parse_alpha("0.5"), Ok(0.5));
        assert!(parse_alpha("0").is_err());
        assert!(parse_alpha("-2").is_err());
        assert!(parse_alpha("inf").is_err());
        assert!(parse_alpha("NaN").is_err());
        assert!(parse_alpha("fast").is_err());
    }

    #[test]
    fn beta_requires_at_least_one() {
        assert_eq!(parse_beta("24"), Ok(24.0));
        assert_eq!(parse_beta("1"), Ok(1.0));
        assert!(parse_beta("0.5").is_err());
        assert!(parse_beta("-1").is_err());
        assert!(parse_beta("inf").is_err());
    }

    #[test]
    fn prefetch_distance_is_bounded() {
        assert_eq!(parse_prefetch("0"), Ok(0));
        assert_eq!(parse_prefetch("1"), Ok(1));
        assert_eq!(parse_prefetch("256"), Ok(256));
        assert!(parse_prefetch("257").is_err());
        assert!(parse_prefetch("-1").is_err());
        assert!(parse_prefetch("near").is_err());
    }

    #[test]
    fn hybrid_knobs_overlay_traversal_config() {
        use crate::traversal::TraversalConfig;
        let cfg = RuntimeConfig {
            direction: Some(Direction::Hybrid),
            hybrid_alpha: Some(7.5),
            hybrid_beta: Some(12.0),
            prefetch_distance: Some(0),
            ..RuntimeConfig::default()
        };
        let mut t = TraversalConfig::paper_protocol();
        cfg.apply_frontier(&mut t);
        assert_eq!(t.direction, Direction::Hybrid);
        assert_eq!(t.alpha, 7.5);
        assert_eq!(t.beta, 12.0);
        assert_eq!(t.prefetch_distance, 0);
    }

    #[test]
    fn listen_addr_requires_a_socket_address() {
        assert_eq!(
            parse_socket_addr("127.0.0.1:7077"),
            Ok("127.0.0.1:7077".parse().unwrap())
        );
        assert_eq!(
            parse_socket_addr("[::1]:9000"),
            Ok("[::1]:9000".parse().unwrap())
        );
        assert!(parse_socket_addr("localhost:7077").is_err(), "no DNS here");
        assert!(parse_socket_addr("127.0.0.1").is_err(), "port required");
        assert!(parse_socket_addr("").is_err());
    }

    #[test]
    fn cache_capacity_accepts_zero() {
        assert_eq!(parse_nonnegative("0"), Ok(0), "0 disables the cache");
        assert_eq!(parse_nonnegative("4096"), Ok(4096));
        assert!(parse_nonnegative("-1").is_err());
        assert!(parse_nonnegative("lots").is_err());
    }

    #[test]
    fn journal_cap_rejects_zero_and_absurd_values() {
        assert_eq!(parse_journal_cap("1"), Ok(1));
        assert_eq!(parse_journal_cap("4096"), Ok(4096));
        assert_eq!(parse_journal_cap("1048576"), Ok(1_048_576));
        assert!(parse_journal_cap("0").is_err(), "0 discards every event");
        assert!(parse_journal_cap("1048577").is_err(), "unit mix-up");
        assert!(parse_journal_cap("-5").is_err());
        assert!(parse_journal_cap("big").is_err());
    }

    #[test]
    fn slow_job_threshold_rejects_zero_and_absurd_values() {
        assert_eq!(parse_slow_job_ms("1"), Ok(1));
        assert_eq!(parse_slow_job_ms("250"), Ok(250));
        assert_eq!(parse_slow_job_ms("3600000"), Ok(3_600_000));
        assert!(parse_slow_job_ms("0").is_err(), "0 dumps every job");
        assert!(parse_slow_job_ms("3600001").is_err(), "beyond an hour");
        assert!(parse_slow_job_ms("-1").is_err());
        assert!(parse_slow_job_ms("slow").is_err());
    }

    #[test]
    fn lane_weights_require_exactly_three_positive_entries() {
        assert_eq!(parse_lane_weights("4,2,1"), Ok([4, 2, 1]));
        assert_eq!(parse_lane_weights(" 10 , 1 , 1 "), Ok([10, 1, 1]));
        assert!(parse_lane_weights("4,2").is_err(), "three lanes, not two");
        assert!(parse_lane_weights("4,2,1,1").is_err());
        assert!(parse_lane_weights("4,0,1").is_err(), "zero starves a lane");
        assert!(parse_lane_weights("").is_err());
        assert!(parse_lane_weights("a,b,c").is_err());
    }

    #[test]
    fn elastic_windows_and_widths_are_bounded() {
        assert_eq!(parse_bounded_ms("250"), Ok(250));
        assert!(parse_bounded_ms("0").is_err(), "would fire continuously");
        assert!(parse_bounded_ms("3600001").is_err(), "unit mix-up");
        assert_eq!(parse_team_width("1"), Ok(1));
        assert_eq!(parse_team_width("512"), Ok(512));
        assert!(parse_team_width("0").is_err());
        assert!(parse_team_width("513").is_err());
        assert!(parse_team_width("wide").is_err());
    }

    #[test]
    fn dynamic_fractions_are_validated() {
        assert_eq!(parse_unit_fraction("0"), Ok(0.0));
        assert_eq!(parse_unit_fraction("0.25"), Ok(0.25));
        assert_eq!(parse_unit_fraction("1"), Ok(1.0));
        assert!(parse_unit_fraction("1.5").is_err(), "can never trigger");
        assert!(parse_unit_fraction("-0.1").is_err());
        assert!(parse_unit_fraction("inf").is_err());
        assert_eq!(parse_fraction("0"), Ok(0.0), "0 forces recompute");
        assert_eq!(parse_fraction("0.1"), Ok(0.1));
        assert_eq!(parse_fraction("2"), Ok(2.0), "> 1 never recomputes");
        assert!(parse_fraction("-1").is_err());
        assert!(parse_fraction("NaN").is_err());
        assert!(parse_fraction("half").is_err());
    }

    #[test]
    fn scale_rejects_garbage() {
        assert_eq!(parse_scale("20"), Ok(20));
        assert!(parse_scale("abc").is_err(), "was the silent-13 fallback");
        assert!(parse_scale("-1").is_err());
    }

    #[test]
    fn error_display_names_the_variable() {
        let e = ConfigError {
            var: "ST_BENCH_SCALE",
            value: "abc".into(),
            reason: "an integer (log2 of n)",
        };
        let msg = e.to_string();
        assert!(msg.contains("ST_BENCH_SCALE"));
        assert!(msg.contains("abc"));
        assert!(msg.contains("log2"));
    }

    #[test]
    fn unset_environment_is_all_none() {
        // The ST_* variables are not set in the test environment (the
        // CI stress job sets ST_PUBLISH_THRESHOLD; tolerate that one).
        let cfg = RuntimeConfig::from_env().expect("clean env parses");
        assert_eq!(cfg.bench_scale, None);
        assert_eq!(cfg.service_teams, None);
    }
}
