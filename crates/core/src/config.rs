//! Typed runtime configuration from the environment.
//!
//! Every `ST_*` knob the workspace honors is parsed here, once, with
//! validation errors instead of silent fallbacks: a malformed value
//! (`ST_BENCH_SCALE=abc`, `ST_PUBLISH_THRESHOLD=-1`) surfaces a
//! [`ConfigError`] naming the variable, the offending value, and the
//! expected shape — it no longer quietly reverts to a default, which
//! previously made a typo'd benchmark run look like a baseline run.
//!
//! Consumers:
//!
//! * [`TraversalConfig::default`](crate::traversal::TraversalConfig)
//!   applies the frontier knobs to every default-configured traversal
//!   in the process (panicking with the validation message — a bad
//!   environment should stop the run, not skew it);
//! * the `st-bench` binaries and Criterion benches read
//!   [`bench_scale`](RuntimeConfig::bench_scale);
//! * the `st-service` builder seeds its team layout and queue capacity
//!   from [`service_teams`](RuntimeConfig::service_teams) and
//!   [`service_queue_capacity`](RuntimeConfig::service_queue_capacity).
//!
//! | variable | type | meaning |
//! |---|---|---|
//! | `ST_PUBLISH_THRESHOLD` | integer ≥ 1 or `max` | private-buffer size that triggers publication |
//! | `ST_PUBLISH_ON_SLEEPERS` | bool | publish the buffer whenever sleepers are reported |
//! | `ST_LOCAL_BATCH` | integer ≥ 1 | owner dequeue batch per queue lock |
//! | `ST_BENCH_SCALE` | integer (log2 n) | default problem scale of the bench bins |
//! | `ST_SERVICE_TEAMS` | comma list of integers ≥ 1 | service pool team widths, e.g. `4,2,2` |
//! | `ST_SERVICE_QUEUE_CAP` | integer ≥ 1 | service admission-queue capacity |

use std::fmt;

/// A rejected environment value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The environment variable at fault.
    pub var: &'static str,
    /// The value it held.
    pub value: String,
    /// What was expected instead.
    pub reason: &'static str,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid {}={:?}: expected {}",
            self.var, self.value, self.reason
        )
    }
}

impl std::error::Error for ConfigError {}

/// The process-wide `ST_*` environment knobs, parsed and validated.
///
/// Every field is `None` when the corresponding variable is unset —
/// callers keep their own defaults. Construction fails loudly on the
/// first malformed value.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// `ST_PUBLISH_THRESHOLD`: frontier publication threshold
    /// (`usize::MAX` for `max`).
    pub publish_threshold: Option<usize>,
    /// `ST_PUBLISH_ON_SLEEPERS`: sleeper-driven publication toggle.
    pub publish_on_sleepers: Option<bool>,
    /// `ST_LOCAL_BATCH`: owner dequeue batch size.
    pub local_batch: Option<usize>,
    /// `ST_BENCH_SCALE`: default log2 problem size of the bench bins.
    pub bench_scale: Option<u32>,
    /// `ST_SERVICE_TEAMS`: job-service team widths.
    pub service_teams: Option<Vec<usize>>,
    /// `ST_SERVICE_QUEUE_CAP`: job-service admission queue capacity.
    pub service_queue_capacity: Option<usize>,
}

impl RuntimeConfig {
    /// Reads and validates every `ST_*` knob from the process
    /// environment.
    pub fn from_env() -> Result<Self, ConfigError> {
        Ok(Self {
            publish_threshold: read("ST_PUBLISH_THRESHOLD", parse_threshold)?,
            publish_on_sleepers: read("ST_PUBLISH_ON_SLEEPERS", parse_bool)?,
            local_batch: read("ST_LOCAL_BATCH", parse_positive)?,
            bench_scale: read("ST_BENCH_SCALE", parse_scale)?,
            service_teams: read("ST_SERVICE_TEAMS", parse_team_list)?,
            service_queue_capacity: read("ST_SERVICE_QUEUE_CAP", parse_positive)?,
        })
    }

    /// Overlays the frontier knobs onto a traversal configuration
    /// (fields left unset keep `cfg`'s current values).
    pub fn apply_frontier(&self, cfg: &mut crate::traversal::TraversalConfig) {
        if let Some(t) = self.publish_threshold {
            cfg.publish_threshold = t;
        }
        if let Some(s) = self.publish_on_sleepers {
            cfg.publish_on_sleepers = s;
        }
        if let Some(b) = self.local_batch {
            cfg.local_batch = b;
        }
    }
}

fn read<T>(
    var: &'static str,
    parse: fn(&str) -> Result<T, &'static str>,
) -> Result<Option<T>, ConfigError> {
    match std::env::var(var) {
        Err(_) => Ok(None),
        Ok(raw) => parse(raw.trim()).map(Some).map_err(|reason| ConfigError {
            var,
            value: raw,
            reason,
        }),
    }
}

fn parse_threshold(s: &str) -> Result<usize, &'static str> {
    if s.eq_ignore_ascii_case("max") {
        return Ok(usize::MAX);
    }
    parse_positive(s).map_err(|_| "an integer ≥ 1 or `max`")
}

fn parse_positive(s: &str) -> Result<usize, &'static str> {
    match s.parse::<usize>() {
        Ok(0) | Err(_) => Err("an integer ≥ 1"),
        Ok(v) => Ok(v),
    }
}

fn parse_scale(s: &str) -> Result<u32, &'static str> {
    s.parse::<u32>().map_err(|_| "an integer (log2 of n)")
}

fn parse_bool(s: &str) -> Result<bool, &'static str> {
    match s.to_ascii_lowercase().as_str() {
        "1" | "true" | "on" | "yes" => Ok(true),
        "0" | "false" | "off" | "no" => Ok(false),
        _ => Err("a boolean (1/0, true/false, on/off, yes/no)"),
    }
}

fn parse_team_list(s: &str) -> Result<Vec<usize>, &'static str> {
    const REASON: &str = "a comma-separated list of team widths ≥ 1, e.g. `4,2,2`";
    let teams: Vec<usize> = s
        .split(',')
        .map(|part| parse_positive(part.trim()).map_err(|_| REASON))
        .collect::<Result<_, _>>()?;
    if teams.is_empty() {
        return Err(REASON);
    }
    Ok(teams)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The parsers are tested directly (not through the process
    // environment) so the suite stays safe under parallel test
    // execution — `std::env::set_var` is unsound with threads.

    #[test]
    fn threshold_accepts_max_and_integers() {
        assert_eq!(parse_threshold("max"), Ok(usize::MAX));
        assert_eq!(parse_threshold("MAX"), Ok(usize::MAX));
        assert_eq!(parse_threshold("64"), Ok(64));
        assert!(parse_threshold("0").is_err());
        assert!(parse_threshold("-3").is_err());
        assert!(parse_threshold("sixty").is_err());
    }

    #[test]
    fn bools_accept_common_spellings() {
        for s in ["1", "true", "ON", "yes"] {
            assert_eq!(parse_bool(s), Ok(true), "{s}");
        }
        for s in ["0", "false", "off", "NO"] {
            assert_eq!(parse_bool(s), Ok(false), "{s}");
        }
        assert!(parse_bool("maybe").is_err());
    }

    #[test]
    fn team_lists_parse_and_validate() {
        assert_eq!(parse_team_list("4,2,2"), Ok(vec![4, 2, 2]));
        assert_eq!(parse_team_list(" 8 , 1 "), Ok(vec![8, 1]));
        assert!(parse_team_list("4,0,2").is_err());
        assert!(parse_team_list("").is_err());
        assert!(parse_team_list("a,b").is_err());
    }

    #[test]
    fn scale_rejects_garbage() {
        assert_eq!(parse_scale("20"), Ok(20));
        assert!(parse_scale("abc").is_err(), "was the silent-13 fallback");
        assert!(parse_scale("-1").is_err());
    }

    #[test]
    fn error_display_names_the_variable() {
        let e = ConfigError {
            var: "ST_BENCH_SCALE",
            value: "abc".into(),
            reason: "an integer (log2 of n)",
        };
        let msg = e.to_string();
        assert!(msg.contains("ST_BENCH_SCALE"));
        assert!(msg.contains("abc"));
        assert!(msg.contains("log2"));
    }

    #[test]
    fn unset_environment_is_all_none() {
        // The ST_* variables are not set in the test environment (the
        // CI stress job sets ST_PUBLISH_THRESHOLD; tolerate that one).
        let cfg = RuntimeConfig::from_env().expect("clean env parses");
        assert_eq!(cfg.bench_scale, None);
        assert_eq!(cfg.service_teams, None);
    }
}
