//! The execution engine: reusable workspaces and the
//! [`SpanningAlgorithm`] trait.
//!
//! The paper's experimental methodology runs every algorithm on the same
//! processor team over a long series of inputs. This module reproduces
//! that shape in the API:
//!
//! * [`Workspace`] — an arena owning every scratch structure the
//!   algorithms need (color/parent arrays, hook labels, election slots,
//!   per-rank work queues, graft lists, stub-walk scratch). Arrays are
//!   grown geometrically and *never shrunk*, so running a sequence of
//!   graphs reuses allocations instead of re-malloc-ing per call — the
//!   dominant fixed cost once thread spawning is gone.
//! * [`SpanningAlgorithm`] — the common interface all five parallel
//!   algorithms implement (Bader–Cong, both SV variants, HCS, and the
//!   multi-root extension). Consumers like [`crate::biconnected`] take
//!   the trait, so any spanning-forest producer can back the higher-level
//!   routines.
//! * [`Engine`] — the convenience bundle: one persistent [`Executor`]
//!   team plus one [`Workspace`], with [`Engine::run`] dispatching any
//!   algorithm on them.
//!
//! ```
//! use st_core::engine::{Engine, SpanningAlgorithm};
//! use st_core::bader_cong::BaderCong;
//! use st_graph::gen::torus2d;
//!
//! let mut engine = Engine::new(4);
//! let algo = BaderCong::with_defaults();
//! let g = torus2d(16, 16);
//! let forest = engine.run(&algo, &g);        // first run grows the arena
//! let again = engine.run(&algo, &g);         // later runs reuse it
//! assert_eq!(forest.roots.len(), again.roots.len());
//! ```

use std::sync::atomic::AtomicU64;
use std::time::Instant;

use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{Counter, CounterSet, JobMetrics, TraceSet};
use st_smp::pad::CacheAligned;
use st_smp::steal::WorkQueue;
use st_smp::{AtomicU32Array, CancelToken, Executor, SpinLock};

use crate::result::SpanningForest;
use crate::stub::StubScratch;
use crate::traversal::{Traversal, TraversalConfig, UNCOLORED};

/// Sentinel for an empty election/candidate slot.
pub(crate) const EMPTY_SLOT: u64 = u64::MAX;

/// Whether `ST_HUGEPAGES` asked for transparent-hugepage backing of
/// the big per-vertex arenas (validated once per process).
pub(crate) fn hugepages_enabled() -> bool {
    crate::traversal::runtime_env().hugepages.unwrap_or(false)
}

/// One rank's tree-edge collection list (locked once per run by its
/// owning rank, drained by the driver afterwards).
pub(crate) type GraftList = CacheAligned<SpinLock<Vec<(VertexId, VertexId)>>>;

/// A reusable arena of algorithm scratch state.
///
/// One workspace serves one algorithm run at a time; the arrays are
/// grown to fit each graph and fully re-initialized (over the live
/// prefix) by the algorithm entry points, so no state leaks between
/// runs. Building a fresh `Workspace` per call is always correct — the
/// point of reusing one is to amortize allocation across a run sequence.
#[derive(Debug, Default)]
pub struct Workspace {
    /// Traversal colors ([`UNCOLORED`] / owner labels).
    pub(crate) color: AtomicU32Array,
    /// Traversal tree parents.
    pub(crate) parent: AtomicU32Array,
    /// Graft-and-shortcut hook array (SV's `D`, HCS/Borůvka's labels).
    pub(crate) labels: AtomicU32Array,
    /// Iteration-start snapshot of `labels` (Borůvka).
    pub(crate) snap: AtomicU32Array,
    /// Election / candidate / best-edge slots, one per vertex.
    pub(crate) slots: Vec<AtomicU64>,
    /// Per-root graft locks (SV's lock variant only).
    pub(crate) locks: Vec<SpinLock<()>>,
    /// Per-rank stealable frontier queues.
    pub(crate) queues: Vec<CacheAligned<WorkQueue<VertexId>>>,
    /// Flattened edge list scratch (graft passes iterate edges by index).
    pub(crate) edges: Vec<(VertexId, VertexId)>,
    /// Per-rank tree-edge collection lists. Each rank locks only its own
    /// entry; the driver drains them after the team joins, keeping the
    /// capacity in the arena.
    pub(crate) graft: Vec<GraftList>,
    /// Stub-walk scratch (Bader–Cong phase 1).
    pub(crate) stub: StubScratch,
    /// Per-rank observability counters (always on; reset per job).
    pub(crate) counters: CounterSet,
    /// Per-rank phase span rings (recording compiled in only with the
    /// `obs-trace` feature).
    pub(crate) trace: TraceSet,
    /// Set by [`begin_job`](Self::begin_job), consumed by
    /// [`finish_job`](Self::finish_job) for the job's execution time.
    job_started: Option<Instant>,
    /// Queue-wait nanoseconds noted via
    /// [`note_queue_wait`](Self::note_queue_wait), consumed by the next
    /// [`finish_job`](Self::finish_job).
    pending_queue_ns: u64,
    /// Trace id noted via [`note_trace_id`](Self::note_trace_id),
    /// consumed by the next [`finish_job`](Self::finish_job).
    pending_trace_id: u64,
}

impl Workspace {
    /// An empty workspace; arrays grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-grows the arena for an `n`-vertex, `m`-edge graph (the
    /// default [`SpanningAlgorithm::prepare`]). Purely an allocation
    /// hint — every entry point re-initializes what it uses. Fresh
    /// array growth honors `ST_HUGEPAGES` (advised before first touch,
    /// so the initializing writes fault 2 MiB pages directly).
    pub fn reserve(&mut self, n: usize, m: usize) {
        let huge = hugepages_enabled();
        self.color.ensure_len_with(n, huge);
        self.parent.ensure_len_with(n, huge);
        self.labels.ensure_len_with(n, huge);
        if self.edges.capacity() < m {
            self.edges.reserve(m - self.edges.len());
        }
    }

    /// Readies the frontier state for a traversal-family run: color and
    /// parent prefixes reset, `p` empty queues, and the team detector
    /// retuned to `threshold`.
    pub(crate) fn prep_frontier(
        &mut self,
        n: usize,
        p: usize,
        exec: &Executor,
        threshold: Option<usize>,
    ) {
        let huge = hugepages_enabled();
        self.color.ensure_len_with(n, huge);
        self.color.fill_prefix(n, UNCOLORED);
        self.parent.ensure_len_with(n, huge);
        self.parent.fill_prefix(n, NO_VERTEX);
        while self.queues.len() < p {
            self.queues.push(CacheAligned::new(WorkQueue::new()));
        }
        // A starved run abandons queue contents; drain defensively so a
        // reused workspace cannot leak stale vertices into the next run.
        for q in &self.queues[..p] {
            while q.pop().is_some() {}
        }
        // Size (but do not reset) the observability stores: a fallback
        // re-enters here mid-job and must keep what was counted so far.
        self.counters.ensure(p);
        self.trace.ensure(p);
        exec.detector().set_threshold(threshold);
    }

    /// Opens an observability window: zeroes the per-rank counters,
    /// span rings, and detector stats, and starts the job's wall clock.
    /// Algorithm entry points call this once per job, before any work
    /// (including seeding) is counted.
    pub fn begin_job(&mut self, exec: &Executor) {
        let p = exec.size();
        self.counters.ensure(p);
        self.trace.ensure(p);
        self.counters.reset();
        self.trace.clear();
        exec.detector().reset_stats();
        self.job_started = Some(Instant::now());
    }

    /// Records how long the upcoming (or running) job waited before
    /// execution — e.g. in a service admission queue. Folded into the
    /// next [`finish_job`](Self::finish_job)'s
    /// [`queue_ns`](st_obs::JobMetrics::queue_ns); jobs that never wait
    /// report zero.
    pub fn note_queue_wait(&mut self, ns: u64) {
        self.pending_queue_ns = ns;
    }

    /// Stamps the upcoming job's [`JobMetrics`] with a service trace
    /// id, so the per-job report can be joined against the service
    /// event journal. Consumed by the next
    /// [`finish_job`](Self::finish_job); jobs submitted outside the
    /// service report zero.
    pub fn note_trace_id(&mut self, trace_id: u64) {
        self.pending_trace_id = trace_id;
    }

    /// Closes the window opened by [`begin_job`](Self::begin_job):
    /// folds the detector's cumulative stats into rank 0's counters and
    /// returns the job's [`JobMetrics`] (merged totals, per-rank
    /// breakdown, and — when `obs-trace` is compiled in — the recorded
    /// spans).
    pub fn finish_job(&mut self, exec: &Executor) -> JobMetrics {
        let p = exec.size();
        let exec_ns = self
            .job_started
            .take()
            .map_or(0, |t| t.elapsed().as_nanos() as u64);
        let queue_ns = std::mem::take(&mut self.pending_queue_ns);
        let det = exec.detector().stats();
        let slot0 = self.counters.rank(0);
        slot0.add(Counter::DetectorSleeps, det.sleeps);
        slot0.add(Counter::DetectorWakes, det.wakes);
        slot0.add(Counter::StarvationTrips, det.starvation_trips);
        exec.detector().reset_stats();
        JobMetrics {
            trace_id: std::mem::take(&mut self.pending_trace_id),
            p,
            wall_ns: queue_ns + exec_ns,
            queue_ns,
            exec_ns,
            totals: self.counters.merged(),
            per_rank: self.counters.snapshots(p),
            phases: self.trace.phase_totals(),
            spans: self.trace.drain(),
            spans_dropped: self.trace.dropped(),
        }
    }

    /// Builds a traversal session over `g` on `exec`'s team, resetting
    /// the arena's color/parent/queue state. The returned view borrows
    /// the workspace for its lifetime; drop it (or let
    /// [`Traversal::into_parents`] consume it) before reusing the
    /// workspace.
    pub fn traversal<'a>(
        &'a mut self,
        g: &'a CsrGraph,
        exec: &'a Executor,
        cfg: TraversalConfig,
    ) -> Traversal<'a> {
        let p = exec.size();
        self.prep_frontier(g.num_vertices(), p, exec, cfg.starvation_threshold);
        Traversal::from_parts(
            g,
            &self.color,
            &self.parent,
            &self.queues[..p],
            exec.detector(),
            &self.counters,
            &self.trace,
            cfg,
        )
    }

    /// Like [`traversal`](Self::traversal), but also hands out the stub
    /// scratch (disjoint borrow) so the round driver can grow stub trees
    /// while the session is live.
    pub(crate) fn traversal_with_stub<'a>(
        &'a mut self,
        g: &'a CsrGraph,
        exec: &'a Executor,
        cfg: TraversalConfig,
    ) -> (Traversal<'a>, &'a mut StubScratch) {
        let p = exec.size();
        self.prep_frontier(g.num_vertices(), p, exec, cfg.starvation_threshold);
        let Self {
            color,
            parent,
            queues,
            stub,
            counters,
            trace,
            ..
        } = self;
        let t = Traversal::from_parts(
            g,
            color,
            parent,
            &queues[..p],
            exec.detector(),
            counters,
            trace,
            cfg,
        );
        (t, stub)
    }

    /// Fills `edges` with `g`'s edge list (graft passes address edges by
    /// index).
    pub(crate) fn collect_edges(&mut self, g: &CsrGraph) {
        self.edges.clear();
        self.edges.extend(g.edges());
    }

    /// Initializes the hook array prefix: identity, or the caller's
    /// pre-contraction (which must form rooted stars).
    pub(crate) fn init_labels(&mut self, n: usize, init: Option<&[VertexId]>) {
        self.labels.ensure_len_with(n, hugepages_enabled());
        match init {
            Some(init) => {
                assert_eq!(init.len(), n, "init must cover all vertices");
                debug_assert!(
                    init.iter().all(|&r| init[r as usize] == r),
                    "init must be rooted stars"
                );
                for (v, &r) in init.iter().enumerate() {
                    self.labels
                        .store(v, r, std::sync::atomic::Ordering::Relaxed);
                }
            }
            None => {
                for v in 0..n {
                    self.labels
                        .store(v, v as u32, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
    }

    /// Grows the slot array to `n` and fills the prefix with
    /// [`EMPTY_SLOT`].
    pub(crate) fn ensure_slots(&mut self, n: usize) {
        if self.slots.len() < n {
            let target = n.max(self.slots.len() * 2);
            self.slots
                .resize_with(target, || AtomicU64::new(EMPTY_SLOT));
        }
        for s in &self.slots[..n] {
            s.store(EMPTY_SLOT, std::sync::atomic::Ordering::Relaxed);
        }
    }

    /// Grows the per-root lock array to `n` (lock variant only; the
    /// locks themselves are stateless between runs).
    pub(crate) fn ensure_locks(&mut self, n: usize) {
        if self.locks.len() < n {
            let target = n.max(self.locks.len() * 2);
            self.locks.resize_with(target, || SpinLock::new(()));
        }
    }

    /// Ensures `p` per-rank graft lists exist and are empty.
    pub(crate) fn ensure_graft(&mut self, p: usize) {
        while self.graft.len() < p {
            self.graft
                .push(CacheAligned::new(SpinLock::new(Vec::new())));
        }
        for list in &self.graft[..p] {
            list.lock().clear();
        }
    }

    /// Drains the first `p` graft lists into one vector, in rank order,
    /// keeping the per-rank capacity in the arena.
    pub(crate) fn drain_graft(&mut self, p: usize) -> Vec<(VertexId, VertexId)> {
        let mut out = Vec::new();
        for list in &self.graft[..p] {
            out.extend(list.lock().drain(..));
        }
        out
    }

    /// Copies out the first `n` parent entries (the live prefix after a
    /// run over an `n`-vertex graph).
    pub fn parents_prefix(&self, n: usize) -> Vec<VertexId> {
        self.parent.snapshot_prefix(n)
    }

    /// Copies out the first `n` color entries.
    pub fn colors_prefix(&self, n: usize) -> Vec<u32> {
        self.color.snapshot_prefix(n)
    }
}

/// Marker error: a job ended early because its [`CancelToken`] fired
/// (explicit cancellation or an expired deadline).
///
/// The workspace and team remain fully reusable after a cancelled run —
/// cancellation abandons results, not infrastructure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("job cancelled")
    }
}

impl std::error::Error for Cancelled {}

/// A spanning-forest algorithm that runs on a persistent team with a
/// reusable workspace.
///
/// Implemented by [`BaderCong`](crate::bader_cong::BaderCong),
/// [`Sv`](crate::sv::Sv), [`Hcs`](crate::hcs::Hcs), and
/// [`Multiroot`](crate::multiroot::Multiroot); consumed by
/// [`Engine::run`] and the trait-generic entry points of
/// [`crate::biconnected`].
pub trait SpanningAlgorithm {
    /// Short stable identifier (e.g. for benchmark tables).
    fn name(&self) -> &'static str;

    /// Pre-sizes the workspace for `g`. The default reserves the shared
    /// arrays; override only when an algorithm needs additional scratch
    /// grown ahead of time.
    fn prepare(&self, ws: &mut Workspace, g: &CsrGraph) {
        ws.reserve(g.num_vertices(), g.num_edges());
    }

    /// Computes a spanning forest of `g` on `exec`'s team, using (and
    /// re-initializing) `ws` for all scratch state.
    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest;

    /// Like [`run`](Self::run), but cooperatively cancellable: the
    /// algorithm polls `cancel` at its natural boundaries (publication
    /// points and round barriers for the traversal family, iteration
    /// barriers for graft-and-shortcut) and returns `Err(Cancelled)` as
    /// soon as it observes the token fired, leaving `ws` and `exec`
    /// reusable.
    ///
    /// The default implementation checks once up front and otherwise
    /// runs to completion — correct for any algorithm, prompt only for
    /// those that override it (Bader–Cong and SV do).
    fn run_with_cancel(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        if cancel.is_cancelled() {
            return Err(Cancelled);
        }
        Ok(self.run(g, exec, ws))
    }
}

/// A persistent team plus its workspace: the one-stop handle for
/// running spanning-forest algorithms repeatedly without per-call thread
/// spawns or allocations.
#[derive(Debug)]
pub struct Engine {
    exec: Executor,
    ws: Workspace,
}

impl Engine {
    /// An engine with a team of `p` processors (spawning `p − 1` worker
    /// threads, none for `p == 1`).
    pub fn new(p: usize) -> Self {
        Self {
            exec: Executor::new(p),
            ws: Workspace::new(),
        }
    }

    /// Team size p.
    pub fn processors(&self) -> usize {
        self.exec.size()
    }

    /// The underlying persistent executor.
    pub fn executor(&self) -> &Executor {
        &self.exec
    }

    /// The workspace (e.g. to pre-[`reserve`](Workspace::reserve) before
    /// a timed section).
    pub fn workspace_mut(&mut self) -> &mut Workspace {
        &mut self.ws
    }

    /// Splits the engine into its team and workspace, for `*_on` entry
    /// points that take both.
    pub fn parts_mut(&mut self) -> (&Executor, &mut Workspace) {
        (&self.exec, &mut self.ws)
    }

    /// Runs `algo` on `g`, reusing this engine's team and workspace.
    pub fn run<A: SpanningAlgorithm + ?Sized>(&mut self, algo: &A, g: &CsrGraph) -> SpanningForest {
        algo.prepare(&mut self.ws, g);
        algo.run(g, &self.exec, &mut self.ws)
    }

    /// Starts a job submission for `g`: the builder-style entry point
    /// that unifies the per-algorithm `*_on` functions and one-shot
    /// wrappers.
    ///
    /// ```
    /// use st_core::{BaderCong, Engine};
    /// use st_graph::gen::torus2d;
    ///
    /// let mut engine = Engine::new(2);
    /// let g = torus2d(8, 8);
    /// let forest = engine.job(&g).run().expect("not cancelled");
    /// let sv = engine
    ///     .job(&g)
    ///     .algorithm(&st_core::sv::Sv::default())
    ///     .run()
    ///     .expect("not cancelled");
    /// assert_eq!(forest.roots.len(), sv.roots.len());
    /// ```
    pub fn job<'e, 'g>(&'e mut self, g: &'g CsrGraph) -> EngineJob<'e, 'g> {
        EngineJob {
            engine: self,
            g,
            algo: None,
            cancel: CancelToken::none(),
        }
    }
}

/// A pending job on an [`Engine`], built by [`Engine::job`].
///
/// Runs Bader–Cong with defaults unless [`algorithm`](Self::algorithm)
/// picks something else. This is the local, synchronous sibling of the
/// `st-service` submission builder: same vocabulary, no queue.
pub struct EngineJob<'e, 'g> {
    engine: &'e mut Engine,
    g: &'g CsrGraph,
    algo: Option<&'g dyn SpanningAlgorithm>,
    cancel: CancelToken,
}

impl<'e, 'g> EngineJob<'e, 'g> {
    /// Selects the algorithm (default: [`BaderCong`](crate::BaderCong)
    /// with defaults).
    pub fn algorithm(mut self, algo: &'g dyn SpanningAlgorithm) -> Self {
        self.algo = Some(algo);
        self
    }

    /// Attaches a cancellation token; the run returns
    /// `Err(`[`Cancelled`]`)` once it fires.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Runs the job to completion (or cancellation) on the engine's
    /// team.
    pub fn run(self) -> Result<SpanningForest, Cancelled> {
        let default_algo;
        let algo = match self.algo {
            Some(a) => a,
            None => {
                default_algo = crate::bader_cong::BaderCong::with_defaults();
                &default_algo
            }
        };
        let (exec, ws) = self.engine.parts_mut();
        algo.prepare(ws, self.g);
        algo.run_with_cancel(self.g, exec, ws, &self.cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bader_cong::BaderCong;
    use crate::hcs::Hcs;
    use crate::multiroot::Multiroot;
    use crate::sv::{GraftVariant, Sv, SvConfig};
    use st_graph::gen;
    use st_graph::validate::{count_components, is_spanning_forest};

    fn all_algorithms() -> Vec<Box<dyn SpanningAlgorithm>> {
        vec![
            Box::new(BaderCong::with_defaults()),
            Box::new(Sv::new(SvConfig::default())),
            Box::new(Sv::new(SvConfig {
                variant: GraftVariant::Lock,
                ..SvConfig::default()
            })),
            Box::new(Hcs),
            Box::new(Multiroot::with_defaults()),
        ]
    }

    #[test]
    fn every_algorithm_runs_through_the_trait() {
        let g = gen::random_gnm(800, 1_200, 5);
        let expected = count_components(&g);
        let mut engine = Engine::new(4);
        for algo in all_algorithms() {
            let f = engine.run(algo.as_ref(), &g);
            assert!(
                is_spanning_forest(&g, &f.parents),
                "{} produced an invalid forest",
                algo.name()
            );
            assert_eq!(f.roots.len(), expected, "{}", algo.name());
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<&str> = all_algorithms().iter().map(|a| a.name()).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "duplicate names: {names:?}");
    }

    #[test]
    fn engine_reuse_across_graph_shapes() {
        // One engine over very different shapes; arena state must not
        // leak between runs.
        let mut engine = Engine::new(2);
        let algo = BaderCong::with_defaults();
        for (g, comps) in [
            (gen::star(3_000), 1),
            (gen::chain(50), 1),
            (
                gen::random_gnm(1_000, 600, 2),
                count_components(&gen::random_gnm(1_000, 600, 2)),
            ),
            (gen::torus2d(12, 12), 1),
        ] {
            let f = engine.run(&algo, &g);
            assert!(is_spanning_forest(&g, &f.parents));
            assert_eq!(f.roots.len(), comps);
        }
    }

    #[test]
    fn single_processor_engine() {
        let mut engine = Engine::new(1);
        assert_eq!(engine.processors(), 1);
        let g = gen::torus2d(8, 8);
        let f = engine.run(&BaderCong::with_defaults(), &g);
        assert!(is_spanning_forest(&g, &f.parents));
    }
}
