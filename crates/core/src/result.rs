//! Common result types for spanning-forest algorithms.

use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::JobMetrics;

/// A rooted spanning forest plus execution statistics.
#[derive(Clone, Debug)]
pub struct SpanningForest {
    /// `parents[v]` is v's parent in its tree, or
    /// [`NO_VERTEX`] when v is a root.
    pub parents: Vec<VertexId>,
    /// The tree roots, one per connected component, in discovery order.
    pub roots: Vec<VertexId>,
    /// Execution statistics (which fields are populated depends on the
    /// algorithm).
    pub stats: AlgoStats,
}

impl SpanningForest {
    /// Number of trees (= components).
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Number of tree edges (n − #roots).
    pub fn num_tree_edges(&self) -> usize {
        self.parents.len() - self.roots.len()
    }

    /// The tree edges as (child, parent) pairs.
    pub fn tree_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.parents
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p != NO_VERTEX)
            .map(|(v, &p)| (v as VertexId, p))
    }

    /// Convenience re-check against the graph (delegates to
    /// [`st_graph::validate::is_spanning_forest`]).
    pub fn is_valid_for(&self, g: &CsrGraph) -> bool {
        st_graph::validate::is_spanning_forest(g, &self.parents)
    }
}

/// Execution statistics. Every algorithm fills the subset of fields that
/// makes sense for it and leaves the rest at their defaults.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AlgoStats {
    /// Connected components discovered.
    pub components: usize,
    /// Vertices observed to be colored concurrently by two or more
    /// processors (the paper's "< 10 per millions of vertices" claim —
    /// experiment CLAIM-RACE).
    pub multi_colored: usize,
    /// Successful steal operations across all processors.
    pub steals: usize,
    /// Total queue items moved by steals.
    pub stolen_items: usize,
    /// Graft-and-shortcut iterations (SV / HCS; the labeling-sensitivity
    /// experiment CLAIM-SVLABEL counts these). The multi-root driver
    /// ([`multiroot`](crate::multiroot)) stores its *claimed-root count*
    /// here instead.
    pub iterations: usize,
    /// Total grafts performed (SV / HCS). The multi-root driver stores
    /// its *tree-merge count* here (claims − merges = final trees).
    pub grafts: usize,
    /// Total pointer-jumping rounds across all shortcut phases (SV /
    /// HCS).
    pub shortcut_rounds: usize,
    /// Whether the starvation detector aborted the traversal and the SV
    /// fallback produced the result.
    pub fallback_triggered: bool,
    /// Vertices dequeued (processed) by each processor; duplicates from
    /// benign races count every time they are processed.
    pub per_proc_processed: Vec<usize>,
    /// Barrier episodes executed (the B term of the Helman–JáJá triplet).
    pub barriers: usize,
    /// The full observability report for the job: per-rank counter
    /// snapshots, merged totals, wall time, and (under `obs-trace`)
    /// phase spans. The flat fields above are convenience views of the
    /// same data; this carries everything.
    pub metrics: JobMetrics,
}

impl AlgoStats {
    /// Total vertices processed across processors.
    pub fn total_processed(&self) -> usize {
        self.per_proc_processed.iter().sum()
    }

    /// Load imbalance: max over processors of processed / mean
    /// (1.0 = perfectly balanced). Returns 0.0 when nothing was
    /// processed.
    pub fn load_imbalance(&self) -> f64 {
        let total = self.total_processed();
        if total == 0 || self.per_proc_processed.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.per_proc_processed.len() as f64;
        let max = *self.per_proc_processed.iter().max().unwrap() as f64;
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::chain;

    #[test]
    fn tree_edge_iteration() {
        let f = SpanningForest {
            parents: vec![NO_VERTEX, 0, 1],
            roots: vec![0],
            stats: AlgoStats::default(),
        };
        assert_eq!(f.num_trees(), 1);
        assert_eq!(f.num_tree_edges(), 2);
        let edges: Vec<_> = f.tree_edges().collect();
        assert_eq!(edges, vec![(1, 0), (2, 1)]);
        assert!(f.is_valid_for(&chain(3)));
    }

    #[test]
    fn load_imbalance_math() {
        let mut s = AlgoStats::default();
        assert_eq!(s.load_imbalance(), 0.0);
        s.per_proc_processed = vec![10, 10, 10, 10];
        assert!((s.load_imbalance() - 1.0).abs() < 1e-12);
        s.per_proc_processed = vec![40, 0, 0, 0];
        assert!((s.load_imbalance() - 4.0).abs() < 1e-12);
        assert_eq!(s.total_processed(), 40);
    }
}
