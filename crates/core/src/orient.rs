//! Orienting an undirected spanning forest into rooted parent arrays.
//!
//! Shiloach–Vishkin and HCS natively produce spanning forests as *sets of
//! undirected tree edges* (one per graft). Turning that into the rooted
//! parent-array form every consumer expects requires a traversal of the
//! forest itself. We run that traversal with the same parallel
//! work-stealing engine as the main algorithm (one team session, one
//! round per forest component), so the SV/HCS pipelines stay parallel
//! end to end. The orientation inherits the engine's two-level frontier
//! (see [`crate::traversal`]'s module docs): tree adjacency is sparse,
//! exactly the regime where batching publication away from the shared
//! queues pays off.

use st_graph::{CsrGraph, EdgeList, VertexId, NO_VERTEX};
use st_smp::Executor;

use crate::engine::Workspace;
use crate::traversal::TraversalConfig;

fn forest_adjacency(n: usize, tree_edges: &[(VertexId, VertexId)]) -> CsrGraph {
    let mut el = EdgeList::with_capacity(n, tree_edges.len());
    for &(u, v) in tree_edges {
        el.push(u, v);
    }
    CsrGraph::from_edge_list(&el)
}

/// Orients the forest given by `tree_edges` over `n` vertices into a
/// parent array, using `p` processors. Each forest component is rooted
/// at its smallest vertex id; vertices not covered by `tree_edges`
/// become singleton roots.
///
/// Convenience wrapper spawning a one-shot team; pipelines that already
/// hold a team use [`orient_forest_on`].
pub fn orient_forest(n: usize, tree_edges: &[(VertexId, VertexId)], p: usize) -> Vec<VertexId> {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    orient_forest_on(n, tree_edges, &exec, &mut ws)
}

/// [`orient_forest`] on an existing team and workspace.
///
/// `tree_edges` must actually be a forest (cycles indicate a bug in the
/// producing algorithm and surface as validation failures downstream).
pub fn orient_forest_on(
    n: usize,
    tree_edges: &[(VertexId, VertexId)],
    exec: &Executor,
    ws: &mut Workspace,
) -> Vec<VertexId> {
    let forest = forest_adjacency(n, tree_edges);
    let t = ws.traversal(&forest, exec, TraversalConfig::default());
    let mut cursor: VertexId = 0;
    t.run_rounds(exec, |t, _round| {
        while (cursor as usize) < n {
            if !t.is_colored(cursor) {
                t.seed(0, cursor, NO_VERTEX);
                return true;
            }
            cursor += 1;
        }
        false
    });
    t.into_parents()
}

/// Orients `tree_edges` while preserving an existing partial orientation.
///
/// Convenience wrapper spawning a one-shot team; see
/// [`orient_forest_with_mask_on`].
pub fn orient_forest_with_mask(
    n: usize,
    tree_edges: &[(VertexId, VertexId)],
    oriented_mask: &[bool],
    parents: &mut [VertexId],
    p: usize,
) {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    orient_forest_with_mask_on(n, tree_edges, oriented_mask, parents, &exec, &mut ws);
}

/// [`orient_forest_with_mask`] on an existing team and workspace.
///
/// `oriented_mask[v]` marks vertices whose `parents[v]` entry is already
/// final (the starvation fallback's partially-built trees). These act as
/// BFS seeds; every other vertex reached through `tree_edges` gets its
/// parent assigned, and unreachable unoriented vertices become singleton
/// roots.
pub fn orient_forest_with_mask_on(
    n: usize,
    tree_edges: &[(VertexId, VertexId)],
    oriented_mask: &[bool],
    parents: &mut [VertexId],
    exec: &Executor,
    ws: &mut Workspace,
) {
    assert_eq!(oriented_mask.len(), n);
    assert_eq!(parents.len(), n);
    let p = exec.size();
    let forest = forest_adjacency(n, tree_edges);
    let t = ws.traversal(&forest, exec, TraversalConfig::default());
    let mut cursor: VertexId = 0;
    let parents_in: &[VertexId] = parents;
    t.run_rounds(exec, |t, round| {
        if round == 0 {
            // Seed every pre-oriented vertex round-robin, keeping its
            // existing parent.
            let mut rank = 0usize;
            let mut any = false;
            for v in 0..n {
                if oriented_mask[v] {
                    t.seed(rank, v as VertexId, parents_in[v]);
                    rank = (rank + 1) % p;
                    any = true;
                }
            }
            if any {
                return true;
            }
            // Fall through to the component scan when nothing was
            // pre-oriented.
        }
        while (cursor as usize) < n {
            if !t.is_colored(cursor) {
                t.seed(0, cursor, NO_VERTEX);
                return true;
            }
            cursor += 1;
        }
        false
    });
    let oriented: Vec<VertexId> = t.into_parents();
    parents.copy_from_slice(&oriented);
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, random_connected};
    use st_graph::validate::{check_spanning_forest, is_spanning_forest};

    #[test]
    fn orients_a_simple_path() {
        // Forest edges of the path 0-1-2-3.
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        let parents = orient_forest(4, &edges, 2);
        let g = chain(4);
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn orients_two_components_and_isolated() {
        // Components {0,1}, {2,3,4}, {5}.
        let edges = vec![(0, 1), (2, 3), (3, 4)];
        let parents = orient_forest(6, &edges, 3);
        let roots = parents.iter().filter(|&&p| p == NO_VERTEX).count();
        assert_eq!(roots, 3);
    }

    #[test]
    fn orients_spanning_tree_of_random_graph() {
        let g = random_connected(500, 400, 5);
        let seq = crate::seq::bfs_forest(&g);
        let edges: Vec<_> = seq.tree_edges().collect();
        let parents = orient_forest(g.num_vertices(), &edges, 4);
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn orients_many_components_in_one_session() {
        // 100 disjoint 2-vertex components.
        let edges: Vec<(VertexId, VertexId)> = (0..100).map(|i| (2 * i, 2 * i + 1)).collect();
        let parents = orient_forest(200, &edges, 4);
        let roots = parents.iter().filter(|&&p| p == NO_VERTEX).count();
        assert_eq!(roots, 100);
    }

    #[test]
    fn shared_team_orients_repeatedly() {
        // Reusing one executor + workspace across orientations must give
        // the same results as fresh one-shot teams.
        let exec = Executor::new(3);
        let mut ws = Workspace::new();
        for n in [10u32, 200, 50] {
            let edges: Vec<(VertexId, VertexId)> = (1..n).map(|v| (v - 1, v)).collect();
            let on = orient_forest_on(n as usize, &edges, &exec, &mut ws);
            assert!(is_spanning_forest(&chain(n as usize), &on), "n = {n}");
        }
    }

    #[test]
    fn mask_preserves_existing_orientation() {
        // Path 0-1-2-3-4; vertices 0,1 already oriented (1 -> 0).
        let g = chain(5);
        let mut parents = vec![NO_VERTEX; 5];
        parents[1] = 0;
        let mask = vec![true, true, false, false, false];
        let edges = vec![(1, 2), (2, 3), (3, 4)];
        orient_forest_with_mask(5, &edges, &mask, &mut parents, 2);
        assert_eq!(parents[0], NO_VERTEX);
        assert_eq!(parents[1], 0);
        assert_eq!(parents[2], 1);
        assert_eq!(parents[3], 2);
        assert_eq!(parents[4], 3);
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn mask_handles_untouched_components() {
        // Two components; only the first has pre-oriented vertices.
        let mut parents = vec![NO_VERTEX; 5];
        parents[1] = 0;
        let mask = vec![true, true, false, false, false];
        let edges = vec![(3, 4)]; // component {3, 4}; vertex 2 isolated
        orient_forest_with_mask(5, &edges, &mask, &mut parents, 2);
        let check = check_spanning_forest(
            &{
                let mut el = st_graph::EdgeList::new(5);
                el.push(0, 1);
                el.push(3, 4);
                CsrGraph::from_edge_list(&el)
            },
            &parents,
        );
        assert!(check.is_valid(), "{check:?}");
    }

    #[test]
    fn empty_mask_behaves_like_fresh_orientation() {
        let mut parents = vec![NO_VERTEX; 4];
        let mask = vec![false; 4];
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        orient_forest_with_mask(4, &edges, &mask, &mut parents, 2);
        assert!(is_spanning_forest(&chain(4), &parents));
    }
}
