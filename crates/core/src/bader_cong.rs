//! The Bader–Cong SMP spanning-tree algorithm (the paper's contribution).
//!
//! Two steps per component (§2):
//!
//! 1. **Stub spanning tree** — one processor grows a small tree by a
//!    random walk of O(p) steps and distributes its vertices evenly into
//!    the processors' queues ([`crate::stub`]).
//! 2. **Work-stealing graph traversal** — all p processors run the
//!    modified BFS of Alg. 1 with randomized work stealing
//!    ([`crate::traversal`]).
//!
//! The paper's starvation mechanism is included: when the configured
//! number of processors sleeps simultaneously, the traversal halts, the
//! partially grown trees are merged into super-vertices, and the
//! Shiloach–Vishkin algorithm finishes the job (the `fallback` routine below).
//!
//! Unlike the paper (which assumes a connected input and produces a
//! spanning tree) this driver produces a spanning *forest*: components
//! are processed one round at a time inside a single team session, the
//! next root found by an id-order scan — the natural generalization, and
//! what the disconnected experiment inputs (2D60, 3D40, sparse random)
//! require.

use st_graph::preprocess::{eliminate_degree2, Reduction};
use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{now_ns, Counter, Phase};
use st_smp::{CancelToken, Executor};

use crate::engine::{Cancelled, SpanningAlgorithm, Workspace};
use crate::orient::orient_forest_with_mask_on;
use crate::result::{AlgoStats, SpanningForest};
use crate::stub::grow_stub_into;
use crate::sv::{self, SvConfig};
use crate::traversal::{Traversal, TraversalConfig, TraversalOutcome};

/// Configuration of the Bader–Cong algorithm.
#[derive(Clone, Debug, PartialEq)]
pub struct Config {
    /// Traversal tuning (steal policy, idle timeout, starvation
    /// threshold, RNG seed).
    pub traversal: TraversalConfig,
    /// Stub tree target length as a multiple of p (the paper: "O(p)
    /// steps").
    pub stub_factor: usize,
    /// Run the degree-2 chain-elimination preprocessing of §2 first.
    pub deg2_preprocess: bool,
    /// Root the first tree here instead of at the id-order scan start.
    pub start_root: Option<VertexId>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            traversal: TraversalConfig::default(),
            stub_factor: 2,
            deg2_preprocess: false,
            start_root: None,
        }
    }
}

/// The algorithm object; construct once, run on many graphs.
#[derive(Clone, Debug, Default)]
pub struct BaderCong {
    cfg: Config,
}

impl BaderCong {
    /// With explicit configuration.
    pub fn new(cfg: Config) -> Self {
        Self { cfg }
    }

    /// With the paper's defaults (steal-half, stub length 2p, starvation
    /// detector disabled).
    pub fn with_defaults() -> Self {
        Self::default()
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// Computes a spanning forest of `g` with a one-shot team of `p`
    /// processors.
    #[deprecated(
        since = "0.6.0",
        note = "spawns a fresh team per call; use `Engine::job(&g).run()` \
                or the st-service submission API"
    )]
    pub fn spanning_forest(&self, g: &CsrGraph, p: usize) -> SpanningForest {
        let exec = Executor::new(p);
        let mut ws = Workspace::new();
        self.run_on(g, &exec, &mut ws)
    }

    /// Computes a spanning forest of `g` on an existing team, with all
    /// scratch state drawn from `ws`.
    ///
    /// Infallible entry point: runs with an inert cancellation token.
    /// If [`Config::traversal`] carries a *live* token that fires
    /// mid-run, this panics — use [`try_run_on`](Self::try_run_on) (or
    /// [`SpanningAlgorithm::run_with_cancel`]) for cancellable jobs.
    pub fn run_on(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        self.try_run_on(g, exec, ws, &CancelToken::none())
            .expect("run cancelled mid-flight; use try_run_on for cancellable jobs")
    }

    /// Computes a spanning forest of `g` on an existing team, ending
    /// early with `Err(Cancelled)` if `cancel` (or a live token already
    /// in [`Config::traversal`]) fires. The token is polled at
    /// publication boundaries, on the idle path, at round barriers, and
    /// at the SV fallback's iteration barriers; the workspace and team
    /// stay reusable after a cancelled run.
    pub fn try_run_on(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        if self.cfg.deg2_preprocess {
            return self.forest_with_preprocess(g, exec, ws, cancel);
        }
        self.forest_direct(g, exec, ws, cancel)
    }

    /// Computes a spanning tree of a connected `g` rooted at `root`;
    /// `None` when `g` is not connected or `root` is out of range.
    pub fn spanning_tree(&self, g: &CsrGraph, root: VertexId, p: usize) -> Option<Vec<VertexId>> {
        if (root as usize) >= g.num_vertices() {
            return None;
        }
        let mut cfg = self.cfg.clone();
        cfg.start_root = Some(root);
        // Degree-2 preprocessing changes vertex identity; the rooted-tree
        // entry point keeps it off so `root` stays meaningful.
        cfg.deg2_preprocess = false;
        let exec = Executor::new(p);
        let mut ws = Workspace::new();
        let forest = BaderCong::new(cfg)
            .forest_direct(g, &exec, &mut ws, &CancelToken::none())
            .expect("inert token cannot cancel");
        (forest.roots.len() == 1).then_some(forest.parents)
    }

    fn forest_with_preprocess(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        let red: Reduction = eliminate_degree2(g);
        let mut inner_cfg = self.cfg.clone();
        inner_cfg.deg2_preprocess = false;
        inner_cfg.start_root = None;
        let reduced_forest =
            BaderCong::new(inner_cfg).forest_direct(&red.reduced, exec, ws, cancel)?;
        let parents = red.expand_parents(&reduced_forest.parents);
        let roots: Vec<VertexId> = parents
            .iter()
            .enumerate()
            .filter(|&(_, &pp)| pp == NO_VERTEX)
            .map(|(v, _)| v as VertexId)
            .collect();
        let mut stats = reduced_forest.stats;
        stats.components = roots.len();
        Ok(SpanningForest {
            parents,
            roots,
            stats,
        })
    }

    fn forest_direct(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        let n = g.num_vertices();
        let p = exec.size();
        // A live caller token takes over the traversal's cancellation
        // plumbing; otherwise any token already on the config applies.
        let mut tcfg = self.cfg.traversal.clone();
        if cancel.is_live() {
            tcfg.cancel = cancel.clone();
        }
        let cancel = tcfg.cancel.clone();
        ws.begin_job(exec);
        if n == 0 {
            return Ok(SpanningForest {
                parents: Vec::new(),
                roots: Vec::new(),
                stats: AlgoStats {
                    metrics: ws.finish_job(exec),
                    ..AlgoStats::default()
                },
            });
        }
        let mut roots: Vec<VertexId> = Vec::new();
        let stub_target = (self.cfg.stub_factor * p).max(1);
        let seed = self.cfg.traversal.seed;
        let start_root = self.cfg.start_root;

        // The session borrows the workspace; everything the fallback
        // needs is copied out before the borrow ends.
        let (stats, outcome, parents, colors) = {
            let (t, stub_scratch) = ws.traversal_with_stub(g, exec, tcfg);
            let mut cursor: VertexId = 0;
            let roots_sink = &mut roots;
            let (processed, barriers, outcome) = t.run_rounds(exec, move |t, round| {
                let mut walk = 0u64;
                loop {
                    // Pick the next component root.
                    let root = if round == 0 && walk == 0 {
                        match start_root {
                            Some(r) if (r as usize) < n && !t.is_colored(r) => Some(r),
                            _ => scan_uncolored(t, &mut cursor, n),
                        }
                    } else {
                        scan_uncolored(t, &mut cursor, n)
                    };
                    let Some(root) = root else { return false };
                    roots_sink.push(root);
                    // Phase 1: stub spanning tree, grown by "one
                    // processor" (the round driver).
                    let t_stub = now_ns();
                    let stub = grow_stub_into(
                        g,
                        root,
                        stub_target,
                        seed ^ (round as u64) ^ (walk << 32),
                        |v| t.is_colored(v),
                        stub_scratch,
                    );
                    t.trace().rank(0).record(Phase::Stub, t_stub);
                    let slot0 = t.counters().rank(0);
                    slot0.incr(Counter::StubWalks);
                    slot0.add(Counter::StubVertices, stub.len() as u64);
                    walk += 1;
                    if stub.len() < stub_target {
                        // The backtracking walk exhausted the component:
                        // it is fully covered, so no traversal round (and
                        // no barriers) are needed. Mark it and move to
                        // the next component — this keeps many-component
                        // inputs (2D60, sparse random) from paying two
                        // barriers per tiny component.
                        for (&v, &par) in stub.vertices.iter().zip(stub.parents.iter()) {
                            t.mark(v, par);
                        }
                        continue;
                    }
                    // Big component: deal the stub round-robin into the
                    // queues and run a work-stealing round.
                    for (i, (&v, &par)) in stub.vertices.iter().zip(stub.parents.iter()).enumerate()
                    {
                        t.seed(i % p, v, par);
                    }
                    return true;
                }
            });

            let totals = t.counters().merged();
            let stats = AlgoStats {
                components: roots.len(),
                multi_colored: totals.get(Counter::MultiColored) as usize,
                steals: totals.get(Counter::Steals) as usize,
                stolen_items: totals.get(Counter::StolenItems) as usize,
                per_proc_processed: processed,
                barriers,
                ..AlgoStats::default()
            };
            let colors = match outcome {
                TraversalOutcome::Completed | TraversalOutcome::Cancelled => Vec::new(),
                TraversalOutcome::Starved => t.colors_vec(),
            };
            (stats, outcome, t.into_parents(), colors)
        };

        match outcome {
            TraversalOutcome::Completed => {
                let mut stats = stats;
                stats.metrics = ws.finish_job(exec);
                Ok(SpanningForest {
                    parents,
                    roots,
                    stats,
                })
            }
            TraversalOutcome::Starved => fallback(g, exec, ws, colors, parents, stats, &cancel),
            TraversalOutcome::Cancelled => {
                // Close the observability window (discarding the report)
                // so the workspace is clean for its next job.
                let _ = ws.finish_job(exec);
                Err(Cancelled)
            }
        }
    }
}

impl SpanningAlgorithm for BaderCong {
    fn name(&self) -> &'static str {
        "bader-cong"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        self.run_on(g, exec, ws)
    }

    fn run_with_cancel(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        self.try_run_on(g, exec, ws, cancel)
    }
}

fn scan_uncolored(t: &Traversal<'_>, cursor: &mut VertexId, n: usize) -> Option<VertexId> {
    while (*cursor as usize) < n {
        if !t.is_colored(*cursor) {
            return Some(*cursor);
        }
        *cursor += 1;
    }
    None
}

/// The paper's starvation fallback: "merge the grown spanning subtree
/// into a super-vertex, and start a different algorithm, for instance,
/// the SV approach."
///
/// Every already-colored vertex is contracted into its tree's root by
/// initializing SV's hook array D with that root; uncolored vertices
/// start as their own super-vertices. SV's graft edges then connect the
/// unfinished region, and the combined forest is oriented while
/// preserving the parents the traversal already wrote.
fn fallback(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    colors: Vec<u32>,
    mut parents: Vec<VertexId>,
    mut stats: AlgoStats,
    cancel: &CancelToken,
) -> Result<SpanningForest, Cancelled> {
    let n = g.num_vertices();
    let t_fallback = now_ns();

    // Root of each colored vertex, by parent chasing with memoization.
    let mut comp_root: Vec<VertexId> = vec![NO_VERTEX; n];
    let mut chain: Vec<usize> = Vec::new();
    for v in 0..n {
        if colors[v] == crate::traversal::UNCOLORED || comp_root[v] != NO_VERTEX {
            continue;
        }
        chain.clear();
        let mut cur = v;
        let root = loop {
            if comp_root[cur] != NO_VERTEX {
                break comp_root[cur];
            }
            chain.push(cur);
            let pp = parents[cur];
            if pp == NO_VERTEX {
                break cur as VertexId;
            }
            cur = pp as usize;
        };
        for &u in &chain {
            comp_root[u] = root;
        }
    }

    // SV over the whole graph with colored regions pre-contracted.
    let init: Vec<u32> = (0..n)
        .map(|v| {
            if colors[v] != crate::traversal::UNCOLORED {
                comp_root[v]
            } else {
                v as VertexId
            }
        })
        .collect();
    let sv_out =
        match sv::sv_core_cancellable(g, exec, ws, Some(&init), SvConfig::default(), cancel) {
            Ok(out) => out,
            Err(Cancelled) => {
                let _ = ws.finish_job(exec);
                return Err(Cancelled);
            }
        };

    // Orient SV's tree edges while keeping the traversal's parents.
    let mask: Vec<bool> = colors
        .iter()
        .map(|&c| c != crate::traversal::UNCOLORED)
        .collect();
    orient_forest_with_mask_on(n, &sv_out.tree_edges, &mask, &mut parents, exec, ws);

    let roots: Vec<VertexId> = parents
        .iter()
        .enumerate()
        .filter(|&(_, &pp)| pp == NO_VERTEX)
        .map(|(v, _)| v as VertexId)
        .collect();
    stats.fallback_triggered = true;
    stats.components = roots.len();
    stats.iterations = sv_out.iterations;
    stats.grafts = sv_out.grafts;
    stats.shortcut_rounds = sv_out.shortcut_rounds;
    stats.barriers += sv_out.barriers;
    ws.trace.rank(0).record(Phase::Fallback, t_fallback);
    stats.metrics = ws.finish_job(exec);
    Ok(SpanningForest {
        parents,
        roots,
        stats,
    })
}

#[cfg(test)]
// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use st_graph::gen;
    use st_graph::label::{random_permutation, relabel};
    use st_graph::validate::{is_spanning_forest, is_spanning_tree};
    use st_smp::StealPolicy;

    fn check_forest(g: &CsrGraph, p: usize) -> SpanningForest {
        let f = BaderCong::with_defaults().spanning_forest(g, p);
        assert!(
            is_spanning_forest(g, &f.parents),
            "invalid forest for p = {p}"
        );
        assert_eq!(f.roots.len(), f.stats.components);
        f
    }

    #[test]
    fn torus_all_processor_counts() {
        let g = gen::torus2d(20, 20);
        for p in [1, 2, 3, 4, 8] {
            let f = check_forest(&g, p);
            assert_eq!(f.roots.len(), 1);
        }
    }

    #[test]
    fn random_graph_forest() {
        let g = gen::random_gnm(2_000, 3_000, 21);
        check_forest(&g, 4);
    }

    #[test]
    fn disconnected_mesh_forest() {
        // 2D60 meshes are naturally disconnected.
        let g = gen::mesh2d_p(30, 30, 0.6, 5);
        let f = check_forest(&g, 4);
        assert!(f.roots.len() > 1, "2D60 should have multiple components");
    }

    #[test]
    fn spanning_tree_api() {
        let g = gen::random_connected(500, 700, 2);
        let t = BaderCong::with_defaults()
            .spanning_tree(&g, 7, 4)
            .expect("graph is connected");
        assert!(is_spanning_tree(&g, &t, 7));
    }

    #[test]
    fn spanning_tree_rejects_disconnected_and_bad_root() {
        let g = gen::random_gnm(100, 30, 3);
        let algo = BaderCong::with_defaults();
        assert!(algo.spanning_tree(&g, 0, 2).is_none());
        let g2 = gen::chain(5);
        assert!(algo.spanning_tree(&g2, 500, 2).is_none());
    }

    #[test]
    fn labeling_does_not_break_correctness() {
        // The paper: "the labeling of vertices does not affect the
        // performance of our new algorithm" — and certainly not its
        // correctness.
        let g = gen::torus2d(16, 16);
        let perm = random_permutation(g.num_vertices(), 77);
        let h = relabel(&g, &perm);
        check_forest(&h, 4);
    }

    #[test]
    fn geometric_and_geographic_families() {
        check_forest(&gen::ad3(800, 4), 4);
        check_forest(
            &gen::geographic_flat(800, gen::GeoFlatParams::with_target_degree(800, 4.0), 9),
            4,
        );
        check_forest(&gen::geographic_hier(gen::GeoHierParams::default(), 3), 4);
    }

    #[test]
    fn chain_without_detector_still_correct() {
        let g = gen::chain(5_000);
        let f = check_forest(&g, 4);
        assert!(!f.stats.fallback_triggered);
    }

    #[test]
    fn chain_with_detector_falls_back_and_stays_correct() {
        let g = gen::chain(20_000);
        let cfg = Config {
            traversal: TraversalConfig {
                starvation_threshold: Some(3),
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        let f = BaderCong::new(cfg).spanning_forest(&g, 4);
        assert!(
            f.stats.fallback_triggered,
            "chain should trigger starvation with threshold 3"
        );
        assert!(is_spanning_forest(&g, &f.parents));
        assert_eq!(f.roots.len(), 1);
    }

    #[test]
    fn fallback_on_disconnected_graph() {
        // Long chain plus separate components, detector armed.
        let mut el = st_graph::EdgeList::new(10_050);
        for v in 1..10_000u32 {
            el.push(v - 1, v);
        }
        for v in 10_000..10_050u32 {
            if v > 10_000 && v % 5 != 0 {
                el.push(v - 1, v);
            }
        }
        let g = CsrGraph::from_edge_list(&el);
        let cfg = Config {
            traversal: TraversalConfig {
                starvation_threshold: Some(3),
                ..TraversalConfig::default()
            },
            ..Config::default()
        };
        let f = BaderCong::new(cfg).spanning_forest(&g, 4);
        assert!(
            is_spanning_forest(&g, &f.parents),
            "fallback forest invalid"
        );
    }

    #[test]
    fn deg2_preprocess_path() {
        // Lollipop-ish graph with long chains: preprocessing shrinks it.
        let g = {
            let mut el = st_graph::EdgeList::new(1_000);
            // Dense head.
            for u in 0..20u32 {
                for v in (u + 1)..20 {
                    el.push(u, v);
                }
            }
            // Long tail chain.
            for v in 20..1_000u32 {
                el.push(v - 1, v);
            }
            CsrGraph::from_edge_list(&el)
        };
        let cfg = Config {
            deg2_preprocess: true,
            ..Config::default()
        };
        let f = BaderCong::new(cfg).spanning_forest(&g, 4);
        assert!(is_spanning_forest(&g, &f.parents));
        assert_eq!(f.roots.len(), 1);
    }

    #[test]
    fn stats_are_populated() {
        let g = gen::random_connected(3_000, 4_500, 6);
        let f = check_forest(&g, 4);
        assert_eq!(f.stats.per_proc_processed.len(), 4);
        // Processed count >= n (duplicates possible from benign races).
        assert!(f.stats.total_processed() >= g.num_vertices());
        assert!(f.stats.barriers >= 2);
    }

    #[test]
    fn steal_policy_ablation_configs_work() {
        let g = gen::random_connected(1_500, 2_000, 8);
        for policy in [StealPolicy::Half, StealPolicy::One, StealPolicy::Chunk(8)] {
            let cfg = Config {
                traversal: TraversalConfig {
                    steal_policy: policy,
                    ..TraversalConfig::default()
                },
                ..Config::default()
            };
            let f = BaderCong::new(cfg).spanning_forest(&g, 4);
            assert!(is_spanning_forest(&g, &f.parents), "policy {policy:?}");
        }
    }

    #[test]
    fn empty_graph() {
        let f = BaderCong::with_defaults().spanning_forest(&CsrGraph::empty(0), 2);
        assert!(f.parents.is_empty());
    }

    #[test]
    fn edgeless_graph() {
        let f = BaderCong::with_defaults().spanning_forest(&CsrGraph::empty(7), 3);
        assert_eq!(f.roots.len(), 7);
    }

    #[test]
    fn stub_factor_variations() {
        let g = gen::torus2d(12, 12);
        for factor in [1, 4, 16] {
            let cfg = Config {
                stub_factor: factor,
                ..Config::default()
            };
            let f = BaderCong::new(cfg).spanning_forest(&g, 4);
            assert!(is_spanning_forest(&g, &f.parents), "stub factor {factor}");
        }
    }

    #[test]
    fn pre_cancelled_job_aborts_and_leaves_team_reusable() {
        use st_smp::CancelToken;
        let exec = Executor::new(4);
        let mut ws = Workspace::new();
        let g = gen::torus2d(30, 30);
        let token = CancelToken::new();
        token.cancel();
        let algo = BaderCong::with_defaults();
        let out = algo.try_run_on(&g, &exec, &mut ws, &token);
        assert!(out.is_err(), "cancelled token must abort the job");
        // The same team and workspace must run clean jobs afterwards.
        let f = algo
            .try_run_on(&g, &exec, &mut ws, &CancelToken::none())
            .expect("inert token cannot cancel");
        assert!(is_spanning_forest(&g, &f.parents));
    }

    #[test]
    fn cancel_mid_run_is_either_clean_or_complete() {
        use st_smp::CancelToken;
        use std::sync::Arc;
        // Racing a cancel against a running traversal must yield either
        // a complete valid forest or a clean `Cancelled` — never a
        // wedged team. Both outcomes are legitimate on a fast machine.
        let exec = Arc::new(Executor::new(4));
        let mut ws = Workspace::new();
        let g = gen::torus2d(120, 120);
        let algo = BaderCong::with_defaults();
        for delay_us in [0u64, 50, 500] {
            let token = CancelToken::new();
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    token.cancel();
                })
            };
            if let Ok(f) = algo.try_run_on(&g, &exec, &mut ws, &token) {
                assert!(is_spanning_forest(&g, &f.parents));
            }
            canceller.join().unwrap();
            // Team stays healthy either way.
            let f = algo.run_on(&g, &exec, &mut ws);
            assert!(is_spanning_forest(&g, &f.parents), "delay {delay_us}us");
        }
    }

    #[test]
    fn deadline_token_cancels_like_explicit_cancel() {
        use st_smp::CancelToken;
        use std::time::{Duration, Instant};
        let exec = Executor::new(2);
        let mut ws = Workspace::new();
        let g = gen::torus2d(40, 40);
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let out = BaderCong::with_defaults().try_run_on(&g, &exec, &mut ws, &expired);
        assert!(out.is_err(), "expired deadline must abort the job");
        assert!(expired.deadline_expired());
    }
}
