//! Sequential spanning-tree baselines.
//!
//! "The best sequential algorithm for finding a spanning tree … uses
//! depth- or breadth-first graph traversal, whose time complexity is
//! O(m + n)" (§1). In the paper's experiments the horizontal "Sequential"
//! line is breadth-first search; we provide both BFS and DFS so the
//! harness can pick the faster one per input, exactly as "best
//! sequential" demands.

use std::collections::VecDeque;

use st_graph::{CsrGraph, VertexId, NO_VERTEX};

use crate::result::{AlgoStats, SpanningForest};

/// BFS spanning forest. Components are rooted at their smallest-id
/// unvisited vertex, scanned in id order.
pub fn bfs_forest(g: &CsrGraph) -> SpanningForest {
    bfs_forest_from(g, 0)
}

/// BFS spanning forest whose first root is `start` (remaining components
/// are rooted by an id-order scan). `start` out of range falls back to 0.
pub fn bfs_forest_from(g: &CsrGraph, start: VertexId) -> SpanningForest {
    let n = g.num_vertices();
    let mut parents = vec![NO_VERTEX; n];
    let mut visited = vec![false; n];
    let mut roots = Vec::new();
    let mut queue = VecDeque::new();
    let mut processed = 0usize;

    let mut run_from = |s: VertexId,
                        visited: &mut Vec<bool>,
                        parents: &mut Vec<VertexId>,
                        roots: &mut Vec<VertexId>| {
        if visited[s as usize] {
            return;
        }
        visited[s as usize] = true;
        roots.push(s);
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            processed += 1;
            for &w in g.neighbors(v) {
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parents[w as usize] = v;
                    queue.push_back(w);
                }
            }
        }
    };

    if n > 0 {
        let s = if (start as usize) < n { start } else { 0 };
        run_from(s, &mut visited, &mut parents, &mut roots);
    }
    for s in 0..n as VertexId {
        run_from(s, &mut visited, &mut parents, &mut roots);
    }

    let components = roots.len();
    SpanningForest {
        parents,
        roots,
        stats: AlgoStats {
            components,
            per_proc_processed: vec![processed],
            ..AlgoStats::default()
        },
    }
}

/// BFS spanning tree of a connected graph rooted at `root`; `None` when
/// the graph is not connected (or `root` is out of range).
pub fn bfs_tree(g: &CsrGraph, root: VertexId) -> Option<Vec<VertexId>> {
    if (root as usize) >= g.num_vertices() {
        return None;
    }
    let f = bfs_forest_from(g, root);
    (f.roots.len() == 1).then_some(f.parents)
}

/// DFS spanning forest (iterative, explicit stack).
pub fn dfs_forest(g: &CsrGraph) -> SpanningForest {
    let n = g.num_vertices();
    let mut parents = vec![NO_VERTEX; n];
    let mut visited = vec![false; n];
    let mut roots = Vec::new();
    // Stack of (vertex, index of the next neighbor to try).
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    let mut processed = 0usize;

    for s in 0..n as VertexId {
        if visited[s as usize] {
            continue;
        }
        visited[s as usize] = true;
        roots.push(s);
        stack.push((s, 0));
        processed += 1;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            let nb = g.neighbors(v);
            if *i < nb.len() {
                let w = nb[*i];
                *i += 1;
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parents[w as usize] = v;
                    stack.push((w, 0));
                    processed += 1;
                }
            } else {
                stack.pop();
            }
        }
    }

    let components = roots.len();
    SpanningForest {
        parents,
        roots,
        stats: AlgoStats {
            components,
            per_proc_processed: vec![processed],
            ..AlgoStats::default()
        },
    }
}

/// DFS spanning tree of a connected graph rooted at 0-scan order; `None`
/// when disconnected.
pub fn dfs_tree(g: &CsrGraph, root: VertexId) -> Option<Vec<VertexId>> {
    if (root as usize) >= g.num_vertices() {
        return None;
    }
    // Run a DFS rooted at `root` first by a trivial relabel-free trick:
    // temporarily treat `root` as the scan start.
    let n = g.num_vertices();
    let mut parents = vec![NO_VERTEX; n];
    let mut visited = vec![false; n];
    let mut stack: Vec<(VertexId, usize)> = vec![(root, 0)];
    visited[root as usize] = true;
    while let Some(&mut (v, ref mut i)) = stack.last_mut() {
        let nb = g.neighbors(v);
        if *i < nb.len() {
            let w = nb[*i];
            *i += 1;
            if !visited[w as usize] {
                visited[w as usize] = true;
                parents[w as usize] = v;
                stack.push((w, 0));
            }
        } else {
            stack.pop();
        }
    }
    visited.iter().all(|&b| b).then_some(parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, complete, random_connected, random_gnm, star, torus2d};
    use st_graph::validate::{forest_depths, is_spanning_forest, is_spanning_tree};

    #[test]
    fn bfs_tree_on_torus() {
        let g = torus2d(8, 8);
        let t = bfs_tree(&g, 0).unwrap();
        assert!(is_spanning_tree(&g, &t, 0));
    }

    #[test]
    fn bfs_tree_rejects_disconnected() {
        let g = random_gnm(50, 20, 1); // too sparse to be connected
        assert!(bfs_tree(&g, 0).is_none());
    }

    #[test]
    fn bfs_tree_rejects_bad_root() {
        let g = chain(4);
        assert!(bfs_tree(&g, 99).is_none());
    }

    #[test]
    fn bfs_forest_on_disconnected() {
        let g = random_gnm(100, 50, 3);
        let f = bfs_forest(&g);
        assert!(is_spanning_forest(&g, &f.parents));
        assert_eq!(f.stats.components, f.roots.len());
        assert_eq!(
            f.stats.total_processed(),
            g.num_vertices(),
            "BFS processes every vertex exactly once"
        );
    }

    #[test]
    fn bfs_forest_from_custom_start() {
        let g = chain(5);
        let f = bfs_forest_from(&g, 3);
        assert_eq!(f.roots, vec![3]);
        assert!(is_spanning_forest(&g, &f.parents));
    }

    #[test]
    fn bfs_depths_are_graph_distances() {
        let g = star(10);
        let t = bfs_tree(&g, 0).unwrap();
        let d = forest_depths(&t);
        assert_eq!(d[0], 0);
        assert!(d[1..].iter().all(|&x| x == 1));
    }

    #[test]
    fn dfs_forest_matches_component_structure() {
        let g = random_gnm(80, 60, 7);
        let f = dfs_forest(&g);
        assert!(is_spanning_forest(&g, &f.parents));
        let b = bfs_forest(&g);
        assert_eq!(f.roots.len(), b.roots.len());
    }

    #[test]
    fn dfs_tree_on_connected_graphs() {
        for g in [complete(12), torus2d(5, 5), random_connected(64, 32, 9)] {
            let t = dfs_tree(&g, 2).unwrap();
            assert!(is_spanning_tree(&g, &t, 2));
        }
    }

    #[test]
    fn dfs_tree_rejects_disconnected() {
        let g = random_gnm(30, 5, 2);
        assert!(dfs_tree(&g, 0).is_none());
    }

    #[test]
    fn dfs_on_chain_is_a_path() {
        let g = chain(6);
        let t = dfs_tree(&g, 0).unwrap();
        let d = forest_depths(&t);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let f = bfs_forest(&CsrGraph::empty(0));
        assert!(f.parents.is_empty());
        assert!(f.roots.is_empty());

        let f = bfs_forest(&CsrGraph::empty(3));
        assert_eq!(f.roots.len(), 3);
        assert!(f.parents.iter().all(|&p| p == NO_VERTEX));

        let f = dfs_forest(&CsrGraph::empty(2));
        assert_eq!(f.roots.len(), 2);
    }
}
