//! Connected components.
//!
//! SV is natively a connectivity algorithm (§2: "The Shiloach-Vishkin
//! algorithm (SV) is in fact a connected-components algorithm"), and the
//! paper lists connected components among the problems its techniques
//! target. Both routes are provided: component labels straight from the
//! SV hook array, and labels derived from any spanning forest (the new
//! algorithm's output included).

use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_smp::Executor;

use crate::engine::Workspace;
use crate::sv::{self, SvConfig};

/// Component labeling of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `labels[v]` is a component id in `0..count`.
    pub labels: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// True when `u` and `v` are in the same component.
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Sizes of the components, indexed by label.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }
}

/// Compacts arbitrary per-vertex representative ids into consecutive
/// labels `0..count` (order of first appearance).
fn compact(reps: &[VertexId]) -> Components {
    let mut map: std::collections::HashMap<VertexId, u32> = std::collections::HashMap::new();
    let mut labels = Vec::with_capacity(reps.len());
    for &r in reps {
        let next = map.len() as u32;
        let l = *map.entry(r).or_insert(next);
        labels.push(l);
    }
    Components {
        labels,
        count: map.len(),
    }
}

/// Connected components via parallel SV with a one-shot team of `p`
/// processors.
pub fn connected_components(g: &CsrGraph, p: usize) -> Components {
    let out = sv::sv_core(g, p, None, SvConfig::default());
    compact(&out.labels)
}

/// Connected components via parallel SV on an existing team, with all
/// scratch drawn from `ws`.
pub fn connected_components_on(g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> Components {
    let out = sv::sv_core_on(g, exec, ws, None, SvConfig::default());
    compact(&out.labels)
}

/// Connected components read off an existing spanning forest's parent
/// array (each vertex labeled by its tree root).
pub fn components_from_forest(parents: &[VertexId]) -> Components {
    let n = parents.len();
    let mut root = vec![NO_VERTEX; n];
    let mut chain = Vec::new();
    for v in 0..n {
        if root[v] != NO_VERTEX {
            continue;
        }
        chain.clear();
        let mut cur = v;
        let r = loop {
            if root[cur] != NO_VERTEX {
                break root[cur];
            }
            chain.push(cur);
            let p = parents[cur];
            if p == NO_VERTEX {
                break cur as VertexId;
            }
            cur = p as usize;
            assert!(chain.len() <= n, "parent chains cycle; not a forest");
        };
        for &u in &chain {
            root[u] = r;
        }
    }
    compact(&root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen;
    use st_graph::validate::component_labels;

    /// Two labelings agree up to renaming.
    fn assert_same_partition(a: &[u32], b: &[u32]) {
        assert_eq!(a.len(), b.len());
        let mut fwd = std::collections::HashMap::new();
        let mut bwd = std::collections::HashMap::new();
        for (&x, &y) in a.iter().zip(b.iter()) {
            assert_eq!(*fwd.entry(x).or_insert(y), y, "partition mismatch");
            assert_eq!(*bwd.entry(y).or_insert(x), x, "partition mismatch");
        }
    }

    #[test]
    fn sv_components_match_reference() {
        for seed in 0..4 {
            let g = gen::random_gnm(500, 400, seed);
            let cc = connected_components(&g, 4);
            let reference = component_labels(&g);
            assert_same_partition(&cc.labels, &reference);
        }
    }

    #[test]
    fn forest_components_match_reference() {
        let g = gen::mesh2d_p(25, 25, 0.55, 7);
        let f = crate::engine::Engine::new(4).job(&g).run().unwrap();
        let cc = components_from_forest(&f.parents);
        assert_same_partition(&cc.labels, &component_labels(&g));
        assert_eq!(cc.count, f.roots.len());
    }

    #[test]
    fn same_and_sizes() {
        let g = {
            let mut el = st_graph::EdgeList::new(5);
            el.push(0, 1);
            el.push(2, 3);
            st_graph::CsrGraph::from_edge_list(&el)
        };
        let cc = connected_components(&g, 2);
        assert_eq!(cc.count, 3);
        assert!(cc.same(0, 1));
        assert!(!cc.same(1, 2));
        let mut sizes = cc.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 2]);
    }

    #[test]
    fn empty_graph() {
        let cc = connected_components(&st_graph::CsrGraph::empty(0), 2);
        assert_eq!(cc.count, 0);
        assert!(cc.labels.is_empty());
    }

    #[test]
    fn singleton_components() {
        let cc = connected_components(&st_graph::CsrGraph::empty(4), 2);
        assert_eq!(cc.count, 4);
        assert_eq!(cc.sizes(), vec![1, 1, 1, 1]);
    }
}
