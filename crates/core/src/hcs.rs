//! The Hirschberg–Chandra–Sarwate (HCS) algorithm, adapted for SMPs.
//!
//! The paper implemented HCS alongside SV and found "similar complexities
//! and running time … when implemented on an SMP, and hence, we leave it
//! out of further discussion" (§2). It is included here for completeness
//! and as a second, *deterministic* parallel baseline.
//!
//! Structure: like SV it alternates hooking and pointer jumping, but
//! instead of an arbitrary-write election it computes, for every tree
//! root, the **minimum** neighboring root label (the CREW-style
//! min-reduction at the heart of Hirschberg et al.'s algorithm) and
//! hooks to that. Hook targets are chosen by `fetch_min` on a packed
//! (root, edge) key, so the output is independent of both the processor
//! count and the scheduling — handy as a determinism oracle in tests.
//!
//! Like SV, all scratch lives in the caller's
//! [`Workspace`](crate::engine::Workspace) and the team comes from a
//! persistent [`Executor`] in the `*_on` entry points.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{now_ns, Counter, Phase};
use st_smp::team::block_range;
use st_smp::Executor;

use crate::engine::{SpanningAlgorithm, Workspace};
use crate::orient::orient_forest_on;
use crate::result::{AlgoStats, SpanningForest};

/// Raw result of the HCS engine (same shape as
/// [`SvOutcome`](crate::sv::SvOutcome)).
#[derive(Clone, Debug)]
pub struct HcsOutcome {
    /// One graph edge per hook; together a spanning forest.
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Final hook array: component root labels.
    pub labels: Vec<VertexId>,
    /// Hook-and-shortcut iterations (including the final empty one).
    pub iterations: usize,
    /// Total hooks.
    pub grafts: usize,
    /// Total pointer-jumping rounds.
    pub shortcut_rounds: usize,
    /// Barrier episodes used.
    pub barriers: usize,
}

const EMPTY: u64 = u64::MAX;

/// Packs a candidate (target root, edge index) so that `fetch_min` picks
/// the smallest target root, tie-broken by the smallest edge index.
#[inline]
fn pack(target: VertexId, edge: usize) -> u64 {
    ((target as u64) << 32) | edge as u64
}

/// Runs min-hook-and-shortcut with a one-shot team of `p` processors.
pub fn hcs_core(g: &CsrGraph, p: usize) -> HcsOutcome {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    hcs_core_on(g, &exec, &mut ws)
}

/// Runs min-hook-and-shortcut on an existing team, with all scratch in
/// `ws`.
pub fn hcs_core_on(g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> HcsOutcome {
    let p = exec.size();
    let n = g.num_vertices();
    ws.collect_edges(g);
    let m = ws.edges.len();
    assert!(m < u32::MAX as usize, "edge index must fit the packed key");
    ws.init_labels(n, None);
    ws.ensure_slots(n);
    ws.ensure_graft(p);
    ws.counters.ensure(p);
    ws.trace.ensure(p);

    let counters = &ws.counters;
    let trace = &ws.trace;
    let d = &ws.labels;
    let cand: &[AtomicU64] = &ws.slots[..n];
    let edges = &ws.edges[..];
    let graft = &ws.graft[..p];

    let hook_epoch = AtomicU64::new(EMPTY);
    // Parity slots: see the matching comment in `sv.rs` — a single slot
    // races between a fast rank's next-round store and a slow rank's
    // current-round read.
    let shortcut_epoch = [AtomicU64::new(EMPTY), AtomicU64::new(EMPTY)];
    let shortcut_rounds_total = AtomicUsize::new(0);
    let barriers = AtomicUsize::new(0);
    let iterations = AtomicUsize::new(0);

    exec.run(|ctx| {
        let rank = ctx.rank();
        let my_edges = block_range(rank, p, m);
        let my_verts = block_range(rank, p, n);
        let mut my_tree_edges = graft[rank].lock();
        let bar = |counter: &AtomicUsize| {
            let t_ns = now_ns();
            let t0 = Instant::now();
            if ctx.barrier() {
                counter.fetch_add(1, Ordering::Relaxed);
            }
            let waited = t0.elapsed().as_nanos() as u64;
            let slot = counters.rank(rank);
            slot.incr(Counter::Barriers);
            slot.add(Counter::BarrierWaitNs, waited);
            trace.rank(rank).record_span(Phase::Barrier, t_ns, waited);
        };

        let mut iter: u64 = 0;
        let mut sc_stamp: u64 = 0;
        let mut my_hooks: u64 = 0;
        loop {
            let t_hook = now_ns();
            // Reset candidate slots.
            for v in my_verts.clone() {
                cand[v].store(EMPTY, Ordering::Relaxed);
            }
            bar(&barriers);

            // Min-reduction: every edge offers each endpoint's root the
            // other endpoint's root, if smaller.
            for e in my_edges.clone() {
                let (u, v) = edges[e];
                let du = d.load(u as usize, Ordering::Relaxed);
                let dv = d.load(v as usize, Ordering::Relaxed);
                if du == dv {
                    continue;
                }
                if dv < du {
                    cand[du as usize].fetch_min(pack(dv, e), Ordering::Relaxed);
                } else {
                    cand[dv as usize].fetch_min(pack(du, e), Ordering::Relaxed);
                }
            }
            bar(&barriers);

            // Hook: every root with a candidate hooks to the minimum.
            for v in my_verts.clone() {
                if d.load(v, Ordering::Relaxed) != v as VertexId {
                    continue; // not a root
                }
                let c = cand[v].load(Ordering::Relaxed);
                if c == EMPTY {
                    continue;
                }
                let target = (c >> 32) as VertexId;
                let e = (c & 0xFFFF_FFFF) as usize;
                debug_assert!(target < v as VertexId);
                d.store(v, target, Ordering::Release);
                my_tree_edges.push(edges[e]);
                my_hooks += 1;
                hook_epoch.store(iter, Ordering::Release);
            }
            bar(&barriers);
            trace.rank(rank).record(Phase::Graft, t_hook);

            let changed = hook_epoch.load(Ordering::Acquire) == iter;
            if rank == 0 {
                iterations.fetch_add(1, Ordering::Relaxed);
            }
            if !changed {
                break;
            }

            // Shortcut to rooted stars (same protocol as SV).
            let t_shortcut = now_ns();
            loop {
                let mut local_changed = false;
                for v in my_verts.clone() {
                    let dv = d.load(v, Ordering::Acquire);
                    let ddv = d.load(dv as usize, Ordering::Acquire);
                    if dv != ddv {
                        d.store(v, ddv, Ordering::Release);
                        local_changed = true;
                    }
                }
                let slot = &shortcut_epoch[(sc_stamp % 2) as usize];
                if local_changed {
                    slot.store(sc_stamp, Ordering::Release);
                }
                bar(&barriers);
                let again = slot.load(Ordering::Acquire) == sc_stamp;
                sc_stamp += 1;
                if rank == 0 {
                    shortcut_rounds_total.fetch_add(1, Ordering::Relaxed);
                }
                if !again {
                    break;
                }
            }
            trace.rank(rank).record(Phase::Shortcut, t_shortcut);
            iter += 1;
        }
        counters.rank(rank).add(Counter::Grafts, my_hooks);
    });

    let labels = ws.labels.snapshot_prefix(n);
    let tree_edges = ws.drain_graft(p);
    let grafts = tree_edges.len();
    let shortcut_rounds = shortcut_rounds_total.load(Ordering::Relaxed);
    ws.counters
        .rank(0)
        .add(Counter::ShortcutRounds, shortcut_rounds as u64);
    HcsOutcome {
        tree_edges,
        labels,
        iterations: iterations.load(Ordering::Relaxed),
        grafts,
        shortcut_rounds,
        barriers: barriers.load(Ordering::Relaxed),
    }
}

/// Full HCS spanning forest with a one-shot team of `p` processors.
#[deprecated(
    since = "0.6.0",
    note = "spawns a fresh team per call; use `Engine::job(&g).algorithm(&Hcs).run()` or the st-service submission API"
)]
pub fn spanning_forest(g: &CsrGraph, p: usize) -> SpanningForest {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    spanning_forest_on(g, &exec, &mut ws)
}

/// Full HCS spanning forest on an existing team: hooks, then parallel
/// orientation.
pub fn spanning_forest_on(g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
    ws.begin_job(exec);
    let out = hcs_core_on(g, exec, ws);
    let parents = orient_forest_on(g.num_vertices(), &out.tree_edges, exec, ws);
    let roots: Vec<VertexId> = parents
        .iter()
        .enumerate()
        .filter(|&(_, &pp)| pp == NO_VERTEX)
        .map(|(v, _)| v as VertexId)
        .collect();
    let stats = AlgoStats {
        components: roots.len(),
        iterations: out.iterations,
        grafts: out.grafts,
        shortcut_rounds: out.shortcut_rounds,
        barriers: out.barriers,
        metrics: ws.finish_job(exec),
        ..AlgoStats::default()
    };
    SpanningForest {
        parents,
        roots,
        stats,
    }
}

/// HCS as a [`SpanningAlgorithm`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Hcs;

impl SpanningAlgorithm for Hcs {
    fn name(&self) -> &'static str {
        "hcs"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        spanning_forest_on(g, exec, ws)
    }
}

#[cfg(test)]
// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use st_graph::gen;
    use st_graph::validate::{count_components, is_spanning_forest};

    fn check(g: &CsrGraph, p: usize) -> SpanningForest {
        let f = spanning_forest(g, p);
        assert!(
            is_spanning_forest(g, &f.parents),
            "invalid HCS forest p={p}"
        );
        f
    }

    #[test]
    fn torus_and_random() {
        check(&gen::torus2d(14, 14), 4);
        check(&gen::random_gnm(1_200, 2_000, 9), 4);
    }

    #[test]
    fn disconnected() {
        let g = gen::mesh2d_p(20, 20, 0.5, 1);
        let f = check(&g, 3);
        assert_eq!(f.roots.len(), count_components(&g));
    }

    #[test]
    fn tree_edges_are_deterministic_across_p() {
        // Min-hooking with packed fetch_min is schedule-independent.
        let g = gen::random_gnm(800, 1_300, 4);
        let mut e1 = hcs_core(&g, 1).tree_edges;
        let mut e4 = hcs_core(&g, 4).tree_edges;
        e1.sort_unstable();
        e4.sort_unstable();
        assert_eq!(e1, e4);
    }

    #[test]
    fn reused_workspace_is_deterministic() {
        // HCS's full determinism makes it the sharpest probe for state
        // leaking through a reused workspace: every re-run must produce
        // byte-identical tree edges.
        let exec = Executor::new(4);
        let mut ws = Workspace::new();
        let big = gen::random_gnm(900, 1_500, 6);
        let small = gen::random_gnm(60, 80, 7);
        let reference = hcs_core(&big, 4).tree_edges;
        for _ in 0..3 {
            assert_eq!(hcs_core_on(&big, &exec, &mut ws).tree_edges, reference);
            // Interleave a smaller graph to shuffle the arena prefix.
            let _ = hcs_core_on(&small, &exec, &mut ws);
        }
    }

    #[test]
    fn graft_count_matches() {
        let g = gen::random_gnm(400, 500, 2);
        let out = hcs_core(&g, 4);
        assert_eq!(out.grafts, 400 - count_components(&g));
    }

    #[test]
    fn labels_are_component_minima() {
        // Min-hooking guarantees every component's label is its minimum
        // vertex id.
        let g = gen::random_gnm(300, 400, 8);
        let out = hcs_core(&g, 2);
        let ref_labels = st_graph::validate::component_labels(&g);
        let mut min_of_comp = std::collections::HashMap::new();
        for v in 0..300u32 {
            min_of_comp.entry(ref_labels[v as usize]).or_insert(v);
        }
        for v in 0..300usize {
            assert_eq!(out.labels[v], min_of_comp[&ref_labels[v]]);
        }
    }

    #[test]
    fn chain_iterations_logarithmic() {
        let g = gen::chain(1 << 12);
        let out = hcs_core(&g, 2);
        assert!(out.iterations <= 16, "iterations = {}", out.iterations);
    }

    #[test]
    fn empty_and_singletons() {
        let out = hcs_core(&CsrGraph::empty(5), 2);
        assert_eq!(out.grafts, 0);
        assert_eq!(out.labels, vec![0, 1, 2, 3, 4]);
    }
}
