//! Phase 1: the stub spanning tree.
//!
//! "One processor generates a stub spanning tree, that is, a small
//! portion of the spanning tree by randomly walking the graph for O(p)
//! steps. The vertices of the stub spanning tree are evenly distributed
//! into each processor's queue, and each processor traverses from the
//! first element in its queue." (§2)
//!
//! The walk only moves to unvisited neighbors (each step extends the
//! tree); when it reaches a vertex with no unvisited neighbor it
//! backtracks along the walk, so on high-diameter graphs the stub still
//! collects up to the requested number of vertices. Shorter-than-
//! requested stubs (tiny components) are fine — the remaining processors
//! start by stealing.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_graph::{CsrGraph, VertexId, NO_VERTEX};

/// A stub spanning tree: vertices in walk order with their tree parents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StubTree {
    /// Vertices in the order the walk visited them; `vertices[0]` is the
    /// root.
    pub vertices: Vec<VertexId>,
    /// `parents[i]` is the tree parent of `vertices[i]`
    /// ([`NO_VERTEX`] for the root).
    pub parents: Vec<VertexId>,
}

impl StubTree {
    /// Number of stub vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// True when the stub is empty (never produced by
    /// [`grow_stub`]; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// Reusable scratch for repeated stub walks (the round driver grows one
/// stub per component, so a single workspace-owned scratch saves an
/// allocation storm on many-component inputs).
#[derive(Debug, Default)]
pub struct StubScratch {
    tree: StubTree,
    /// Walk-with-backtracking position chain.
    path: Vec<VertexId>,
    /// Unvisited-neighbor candidates of the current position.
    candidates: Vec<VertexId>,
    /// Membership test local to one walk (the walk touches O(target)
    /// vertices, so a hash set beats an O(n) bitmap).
    in_stub: std::collections::HashSet<VertexId>,
}

/// Grows a stub spanning tree of up to `target` vertices from `root` by
/// a random walk over unvisited vertices, with backtracking.
///
/// `already_visited(v)` reports vertices claimed by earlier rounds (other
/// components' traversals); the walk never enters them. The root itself
/// must be unvisited.
pub fn grow_stub(
    g: &CsrGraph,
    root: VertexId,
    target: usize,
    seed: u64,
    already_visited: impl Fn(VertexId) -> bool,
) -> StubTree {
    let mut scratch = StubScratch::default();
    grow_stub_into(g, root, target, seed, already_visited, &mut scratch);
    scratch.tree
}

/// Allocation-reusing form of [`grow_stub`]: the walk runs entirely in
/// `scratch` and the resulting tree is borrowed from it. Identical walk
/// (and therefore identical tree) for identical inputs.
pub fn grow_stub_into<'s>(
    g: &CsrGraph,
    root: VertexId,
    target: usize,
    seed: u64,
    already_visited: impl Fn(VertexId) -> bool,
    scratch: &'s mut StubScratch,
) -> &'s StubTree {
    debug_assert!(!already_visited(root), "stub root must be unvisited");
    let mut rng = SmallRng::seed_from_u64(seed);
    let StubScratch {
        tree,
        path,
        candidates,
        in_stub,
    } = scratch;
    tree.vertices.clear();
    tree.parents.clear();
    path.clear();
    in_stub.clear();

    tree.vertices.push(root);
    tree.parents.push(NO_VERTEX);
    if target <= 1 {
        return tree;
    }
    in_stub.insert(root);
    path.push(root);
    while tree.vertices.len() < target {
        let Some(&cur) = path.last() else { break };
        candidates.clear();
        candidates.extend(
            g.neighbors(cur)
                .iter()
                .copied()
                .filter(|&w| !in_stub.contains(&w) && !already_visited(w)),
        );
        if candidates.is_empty() {
            path.pop();
            continue;
        }
        let next = candidates[rng.gen_range(0..candidates.len())];
        in_stub.insert(next);
        tree.vertices.push(next);
        tree.parents.push(cur);
        path.push(next);
    }
    tree
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, complete, star, torus2d};
    use st_graph::validate::is_spanning_forest;

    fn never_visited(_: VertexId) -> bool {
        false
    }

    /// Checks the stub is a valid tree over its own vertex set: parents
    /// are earlier stub vertices connected by graph edges.
    fn assert_stub_is_tree(g: &CsrGraph, stub: &StubTree) {
        assert_eq!(stub.vertices.len(), stub.parents.len());
        assert_eq!(stub.parents[0], NO_VERTEX);
        let mut seen = std::collections::HashSet::new();
        seen.insert(stub.vertices[0]);
        for i in 1..stub.len() {
            let v = stub.vertices[i];
            let p = stub.parents[i];
            assert!(seen.contains(&p), "parent {p} not an earlier stub vertex");
            assert!(
                g.neighbors(v).contains(&p),
                "stub edge ({v}, {p}) not in graph"
            );
            assert!(seen.insert(v), "vertex {v} appears twice in the stub");
        }
    }

    #[test]
    fn stub_on_torus_reaches_target() {
        let g = torus2d(20, 20);
        let stub = grow_stub(&g, 0, 16, 7, never_visited);
        assert_eq!(stub.len(), 16);
        assert_stub_is_tree(&g, &stub);
    }

    #[test]
    fn stub_on_chain_backtracks_to_target() {
        // Starting mid-chain, the walk hits an end and must backtrack.
        let g = chain(100);
        let stub = grow_stub(&g, 95, 10, 3, never_visited);
        assert_eq!(stub.len(), 10);
        assert_stub_is_tree(&g, &stub);
    }

    #[test]
    fn stub_capped_by_component_size() {
        let g = chain(5);
        let stub = grow_stub(&g, 2, 50, 0, never_visited);
        assert_eq!(stub.len(), 5, "stub covers the whole tiny component");
        assert_stub_is_tree(&g, &stub);
        // A full-component stub is itself a spanning forest of the chain.
        let mut parents = vec![NO_VERTEX; 5];
        for (i, &v) in stub.vertices.iter().enumerate() {
            parents[v as usize] = stub.parents[i];
        }
        assert!(is_spanning_forest(&g, &parents));
    }

    #[test]
    fn stub_respects_already_visited() {
        let g = chain(10);
        // Vertices >= 5 belong to an earlier traversal.
        let stub = grow_stub(&g, 2, 50, 1, |v| v >= 5);
        assert!(stub.vertices.iter().all(|&v| v < 5));
        assert_eq!(stub.len(), 5);
    }

    #[test]
    fn stub_target_one_is_just_the_root() {
        let g = complete(10);
        let stub = grow_stub(&g, 3, 1, 0, never_visited);
        assert_eq!(stub.vertices, vec![3]);
        assert_eq!(stub.parents, vec![NO_VERTEX]);
    }

    #[test]
    fn stub_on_star_walks_through_hub() {
        let g = star(50);
        let stub = grow_stub(&g, 5, 8, 2, never_visited);
        assert_eq!(stub.len(), 8);
        assert_stub_is_tree(&g, &stub);
    }

    #[test]
    fn stub_is_deterministic_in_seed() {
        let g = torus2d(10, 10);
        assert_eq!(
            grow_stub(&g, 0, 12, 9, never_visited),
            grow_stub(&g, 0, 12, 9, never_visited)
        );
        assert_ne!(
            grow_stub(&g, 0, 12, 9, never_visited),
            grow_stub(&g, 0, 12, 10, never_visited)
        );
    }

    #[test]
    fn reused_scratch_matches_fresh_walks() {
        let g = torus2d(15, 15);
        let mut scratch = StubScratch::default();
        for (root, seed) in [(0u32, 1u64), (37, 2), (100, 3), (5, 1)] {
            let reused = grow_stub_into(&g, root, 20, seed, never_visited, &mut scratch).clone();
            let fresh = grow_stub(&g, root, 20, seed, never_visited);
            assert_eq!(reused, fresh, "root {root} seed {seed}");
            assert_stub_is_tree(&g, &reused);
        }
    }

    #[test]
    fn isolated_root_yields_singleton() {
        let g = CsrGraph::empty(3);
        let stub = grow_stub(&g, 1, 8, 0, never_visited);
        assert_eq!(stub.vertices, vec![1]);
    }
}
