//! The Shiloach–Vishkin algorithm adapted for SMPs.
//!
//! SV is "in fact a connected-components algorithm" (§2) built on the
//! graft-and-shortcut pattern: every vertex starts as its own rooted
//! star; each iteration grafts tree roots onto neighboring trees with
//! smaller labels and then compresses every tree back to a rooted star
//! by pointer jumping. Extended to spanning trees, each successful graft
//! contributes the graph edge that caused it.
//!
//! The paper highlights the race the priority-CRCW model hides: several
//! processors may try to graft the same root onto different trees, which
//! would create false tree edges. Two SMP resolutions are implemented:
//!
//! * [`GraftVariant::Election`] — "always shortcut the tree to rooted
//!   star … and run an election among the processors that wish to graft
//!   the same tree … Only the winner of the election grafts" (§2). Pass
//!   A writes a unique (edge, direction) code into the root's winner
//!   slot (arbitrary-CRCW emulated by a plain atomic store); pass B lets
//!   exactly the edge that finds its own code perform the graft. Because
//!   codes are unique per (edge, direction) and each such pair writes a
//!   single slot, a stale re-read of the root cannot match a foreign
//!   code — the election is self-verifying.
//! * [`GraftVariant::Lock`] — "One straightforward solution uses locks to
//!   ensure that a tree gets grafted only once. The locking approach
//!   intuitively is slow and not scalable, and our test results agree."
//!   Kept as the paper's negative baseline (experiment CLAIM-LOCK).
//!
//! Grafts always point from a larger root label to a smaller one, so
//! concurrent grafts cannot form cycles. Iteration count depends on the
//! vertex labeling (experiment CLAIM-SVLABEL): row-major torus labels
//! finish in one iteration, random labels take up to ~log n.
//!
//! All scratch state (hook array, election slots, per-root locks, edge
//! list, per-rank graft lists) lives in the caller's
//! [`Workspace`](crate::engine::Workspace), and the team comes from a
//! persistent [`Executor`]; the `*_on` entry points reuse both across
//! runs. The legacy `p`-taking functions spawn a one-shot team.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{now_ns, Counter, Phase};
use st_smp::team::block_range;
use st_smp::{CancelToken, Executor};

use crate::engine::{Cancelled, SpanningAlgorithm, Workspace};
use crate::orient::orient_forest_on;
use crate::result::{AlgoStats, SpanningForest};

/// How grafting races are resolved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GraftVariant {
    /// Two-pass election (the paper's approach; fast).
    #[default]
    Election,
    /// Per-root spin locks (the paper's slow baseline).
    Lock,
}

/// SV configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct SvConfig {
    /// Race-resolution variant.
    pub variant: GraftVariant,
    /// Abort (panic) if this many iterations do not converge — a bug
    /// guard only; SV terminates unconditionally because every iteration
    /// either grafts or exits.
    pub max_iterations: Option<usize>,
}

/// Raw result of the graft-and-shortcut engine.
#[derive(Clone, Debug)]
pub struct SvOutcome {
    /// One graph edge per graft; together a spanning forest (undirected).
    pub tree_edges: Vec<(VertexId, VertexId)>,
    /// Final hook array: `labels[v]` is the root label of v's component.
    pub labels: Vec<VertexId>,
    /// Graft-and-shortcut iterations executed (including the final
    /// no-graft iteration that detects convergence).
    pub iterations: usize,
    /// Total grafts (= tree edges).
    pub grafts: usize,
    /// Total pointer-jumping rounds across all iterations.
    pub shortcut_rounds: usize,
    /// Barrier episodes used.
    pub barriers: usize,
}

/// Sentinel for an empty winner slot.
const NO_WINNER: u64 = u64::MAX;

/// Runs graft-and-shortcut with a one-shot team of `p` processors (see
/// [`sv_core_on`]).
pub fn sv_core(g: &CsrGraph, p: usize, init: Option<&[VertexId]>, cfg: SvConfig) -> SvOutcome {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    sv_core_on(g, &exec, &mut ws, init, cfg)
}

/// Runs graft-and-shortcut on an existing team, with all scratch in `ws`.
///
/// `init` optionally pre-contracts vertices: `init[v]` is v's starting
/// hook target, which must form rooted stars (every value is a root:
/// `init[init[v]] == init[v]`). The Bader–Cong starvation fallback uses
/// this to merge already-traversed trees into super-vertices. `None`
/// starts from singletons (`D[v] = v`).
pub fn sv_core_on(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    init: Option<&[VertexId]>,
    cfg: SvConfig,
) -> SvOutcome {
    sv_core_cancellable(g, exec, ws, init, cfg, &CancelToken::none())
        .expect("inert token cannot cancel")
}

/// Like [`sv_core_on`], but cooperatively cancellable: rank 0 polls
/// `cancel` at the top of each graft-and-shortcut iteration and raises a
/// shared abort flag that every rank reads behind the iteration's graft
/// barrier, so the whole team leaves the session together (the barrier
/// sequence stays rank-uniform). A cancelled run abandons its partial
/// grafts; the workspace and team stay reusable.
pub fn sv_core_cancellable(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    init: Option<&[VertexId]>,
    cfg: SvConfig,
    cancel: &CancelToken,
) -> Result<SvOutcome, Cancelled> {
    let p = exec.size();
    let n = g.num_vertices();
    ws.collect_edges(g);
    let m = ws.edges.len();
    assert!(
        m < (u32::MAX as usize) / 2,
        "edge count exceeds election code space"
    );
    ws.init_labels(n, init);
    // Election slots, one per vertex (only root slots are used).
    ws.ensure_slots(n);
    // Per-root graft locks for the Lock variant.
    if matches!(cfg.variant, GraftVariant::Lock) {
        ws.ensure_locks(n);
    }
    ws.ensure_graft(p);
    // Grow (never reset) the observability slots: sv_core_on may run
    // mid-job as the starvation fallback, whose counters must survive.
    ws.counters.ensure(p);
    ws.trace.ensure(p);

    let counters = &ws.counters;
    let trace = &ws.trace;
    let d = &ws.labels;
    let winner: &[AtomicU64] = &ws.slots[..n];
    let locks = &ws.locks[..];
    let edges = &ws.edges[..];
    let graft = &ws.graft[..p];

    // Epoch-stamped change flags (no reset races: each iteration/round
    // compares against its own stamp). The graft epoch is safe as a
    // single slot because two barriers separate its read from the next
    // write; the shortcut epoch is read and re-written with only one
    // barrier between rounds, so it uses parity slots — round s writes
    // and reads slot s mod 2, and round s + 2 (the next writer of that
    // slot) cannot start until every rank has passed round s + 1's
    // barrier, which is after every round-s read.
    let graft_epoch = AtomicU64::new(NO_WINNER);
    let shortcut_epoch = [AtomicU64::new(NO_WINNER), AtomicU64::new(NO_WINNER)];
    let shortcut_rounds_total = std::sync::atomic::AtomicUsize::new(0);
    let barriers = std::sync::atomic::AtomicUsize::new(0);
    let iterations = std::sync::atomic::AtomicUsize::new(0);
    // Cancellation: rank 0 stores before the iteration's first barrier,
    // everyone loads after the post-graft barrier — same value on every
    // rank, so the team exits the loop in lockstep.
    let aborted = AtomicBool::new(false);

    exec.run(|ctx| {
        let rank = ctx.rank();
        let my_edges = block_range(rank, p, m);
        let my_verts = block_range(rank, p, n);
        // Each rank's tree edges collect into its workspace graft list
        // (disjoint per rank; the lock is uncontended and held for the
        // whole job).
        let mut my_tree_edges = graft[rank].lock();
        let bar = |leader_count: &std::sync::atomic::AtomicUsize| {
            let t_ns = now_ns();
            let t0 = Instant::now();
            if ctx.barrier() {
                leader_count.fetch_add(1, Ordering::Relaxed);
            }
            let waited = t0.elapsed().as_nanos() as u64;
            let slot = counters.rank(rank);
            slot.incr(Counter::Barriers);
            slot.add(Counter::BarrierWaitNs, waited);
            trace.rank(rank).record_span(Phase::Barrier, t_ns, waited);
        };

        let mut iter: u64 = 0;
        // A single global shortcut-round counter shared by all
        // iterations; rounds are stamped with it.
        let mut sc_stamp: u64 = 0;
        // Grafts performed by this rank, flushed once at loop exit.
        let mut my_grafts: u64 = 0;
        loop {
            let t_graft = now_ns();
            if let Some(cap) = cfg.max_iterations {
                assert!(
                    (iter as usize) < cap,
                    "SV failed to converge within {cap} iterations"
                );
            }
            // Iteration-boundary cancellation checkpoint (one designated
            // poller keeps the store/load ordered by the barriers below).
            if rank == 0 && cancel.is_cancelled() {
                aborted.store(true, Ordering::Release);
            }
            // --- Reset winner slots for this iteration (election only).
            if matches!(cfg.variant, GraftVariant::Election) {
                for v in my_verts.clone() {
                    winner[v].store(NO_WINNER, Ordering::Relaxed);
                }
                bar(&barriers);

                // --- Pass A: election. After the previous shortcut, D[u]
                // is u's root.
                for e in my_edges.clone() {
                    let (u, v) = edges[e];
                    let du = d.load(u as usize, Ordering::Relaxed);
                    let dv = d.load(v as usize, Ordering::Relaxed);
                    if du == dv {
                        continue;
                    }
                    if dv < du {
                        winner[du as usize].store(code(e, 0), Ordering::Relaxed);
                    } else {
                        winner[dv as usize].store(code(e, 1), Ordering::Relaxed);
                    }
                }
                bar(&barriers);

                // --- Pass B: winners graft.
                for e in my_edges.clone() {
                    let (u, v) = edges[e];
                    let ru = d.load(u as usize, Ordering::Acquire);
                    if winner[ru as usize].load(Ordering::Relaxed) == code(e, 0) {
                        let target = d.load(v as usize, Ordering::Acquire);
                        d.store(ru as usize, target, Ordering::Release);
                        my_tree_edges.push((u, v));
                        my_grafts += 1;
                        graft_epoch.store(iter, Ordering::Release);
                    }
                    let rv = d.load(v as usize, Ordering::Acquire);
                    if winner[rv as usize].load(Ordering::Relaxed) == code(e, 1) {
                        let target = d.load(u as usize, Ordering::Acquire);
                        d.store(rv as usize, target, Ordering::Release);
                        my_tree_edges.push((u, v));
                        my_grafts += 1;
                        graft_epoch.store(iter, Ordering::Release);
                    }
                }
            } else {
                // --- Lock variant: single grafting pass with per-root
                // locks.
                bar(&barriers); // align the barrier count with pass-A's entry
                for e in my_edges.clone() {
                    let (u, v) = edges[e];
                    for (a, b) in [(u, v), (v, u)] {
                        let ra = d.load(a as usize, Ordering::Acquire);
                        let rb = d.load(b as usize, Ordering::Acquire);
                        if rb < ra && d.load(ra as usize, Ordering::Relaxed) == ra {
                            let _guard = locks[ra as usize].lock();
                            // Re-check under the lock: still a root?
                            if d.load(ra as usize, Ordering::Relaxed) == ra {
                                let target = d.load(b as usize, Ordering::Acquire);
                                if target < ra {
                                    d.store(ra as usize, target, Ordering::Release);
                                    my_tree_edges.push((a, b));
                                    my_grafts += 1;
                                    graft_epoch.store(iter, Ordering::Release);
                                }
                            }
                        }
                    }
                }
                bar(&barriers); // align with the end of pass A
            }
            bar(&barriers);
            trace.rank(rank).record(Phase::Graft, t_graft);

            if aborted.load(Ordering::Acquire) {
                break;
            }
            let changed = graft_epoch.load(Ordering::Acquire) == iter;
            if rank == 0 {
                iterations.fetch_add(1, Ordering::Relaxed);
            }
            if !changed {
                break;
            }

            // --- Shortcut: pointer-jump every vertex until all trees are
            // rooted stars again.
            let t_shortcut = now_ns();
            loop {
                let mut local_changed = false;
                for v in my_verts.clone() {
                    let dv = d.load(v, Ordering::Acquire);
                    let ddv = d.load(dv as usize, Ordering::Acquire);
                    if dv != ddv {
                        d.store(v, ddv, Ordering::Release);
                        local_changed = true;
                    }
                }
                let slot = &shortcut_epoch[(sc_stamp % 2) as usize];
                if local_changed {
                    slot.store(sc_stamp, Ordering::Release);
                }
                bar(&barriers);
                let again = slot.load(Ordering::Acquire) == sc_stamp;
                sc_stamp += 1;
                if rank == 0 {
                    shortcut_rounds_total.fetch_add(1, Ordering::Relaxed);
                }
                if !again {
                    break;
                }
            }
            trace.rank(rank).record(Phase::Shortcut, t_shortcut);
            iter += 1;
        }
        counters.rank(rank).add(Counter::Grafts, my_grafts);
    });

    if aborted.load(Ordering::Acquire) {
        // Abandon the partial grafts (drained so the arena lists are
        // clean for the workspace's next job).
        let _ = ws.drain_graft(p);
        return Err(Cancelled);
    }
    let labels = ws.labels.snapshot_prefix(n);
    let tree_edges = ws.drain_graft(p);
    let grafts = tree_edges.len();
    let shortcut_rounds = shortcut_rounds_total.load(Ordering::Relaxed);
    // Shortcut rounds are a team-wide quantity; book them on rank 0.
    ws.counters
        .rank(0)
        .add(Counter::ShortcutRounds, shortcut_rounds as u64);
    Ok(SvOutcome {
        tree_edges,
        labels,
        iterations: iterations.load(Ordering::Relaxed),
        grafts,
        shortcut_rounds,
        barriers: barriers.load(Ordering::Relaxed),
    })
}

#[inline]
fn code(edge: usize, dir: u64) -> u64 {
    (edge as u64) * 2 + dir
}

/// Full SV spanning forest with a one-shot team of `p` processors.
#[deprecated(
    since = "0.6.0",
    note = "spawns a fresh team per call; use \
            `Engine::job(&g).algorithm(&Sv::default()).run()` or the \
            st-service submission API"
)]
pub fn spanning_forest(g: &CsrGraph, p: usize, cfg: SvConfig) -> SpanningForest {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    spanning_forest_on(g, &exec, &mut ws, cfg)
}

/// Full SV spanning forest on an existing team: graft-and-shortcut, then
/// parallel orientation of the collected tree edges into rooted parent
/// arrays.
pub fn spanning_forest_on(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    cfg: SvConfig,
) -> SpanningForest {
    try_spanning_forest_on(g, exec, ws, cfg, &CancelToken::none())
        .expect("inert token cannot cancel")
}

/// Cancellable [`spanning_forest_on`]: `cancel` is polled at each
/// graft-and-shortcut iteration boundary (and before orientation).
pub fn try_spanning_forest_on(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    cfg: SvConfig,
    cancel: &CancelToken,
) -> Result<SpanningForest, Cancelled> {
    ws.begin_job(exec);
    let out = match sv_core_cancellable(g, exec, ws, None, cfg, cancel) {
        Ok(out) => out,
        Err(Cancelled) => {
            let _ = ws.finish_job(exec);
            return Err(Cancelled);
        }
    };
    if cancel.is_cancelled() {
        let _ = ws.finish_job(exec);
        return Err(Cancelled);
    }
    let parents = orient_forest_on(g.num_vertices(), &out.tree_edges, exec, ws);
    let roots: Vec<VertexId> = parents
        .iter()
        .enumerate()
        .filter(|&(_, &pp)| pp == NO_VERTEX)
        .map(|(v, _)| v as VertexId)
        .collect();
    let stats = AlgoStats {
        components: roots.len(),
        iterations: out.iterations,
        grafts: out.grafts,
        shortcut_rounds: out.shortcut_rounds,
        barriers: out.barriers,
        metrics: ws.finish_job(exec),
        ..AlgoStats::default()
    };
    Ok(SpanningForest {
        parents,
        roots,
        stats,
    })
}

/// Shiloach–Vishkin as a [`SpanningAlgorithm`] (either graft variant).
#[derive(Clone, Copy, Debug, Default)]
pub struct Sv {
    cfg: SvConfig,
}

impl Sv {
    /// With explicit configuration.
    pub fn new(cfg: SvConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &SvConfig {
        &self.cfg
    }
}

impl SpanningAlgorithm for Sv {
    fn name(&self) -> &'static str {
        match self.cfg.variant {
            GraftVariant::Election => "sv-election",
            GraftVariant::Lock => "sv-lock",
        }
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        spanning_forest_on(g, exec, ws, self.cfg)
    }

    fn run_with_cancel(
        &self,
        g: &CsrGraph,
        exec: &Executor,
        ws: &mut Workspace,
        cancel: &CancelToken,
    ) -> Result<SpanningForest, Cancelled> {
        try_spanning_forest_on(g, exec, ws, self.cfg, cancel)
    }
}

#[cfg(test)]
// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use st_graph::gen;
    use st_graph::label::{random_permutation, relabel};
    use st_graph::validate::{count_components, is_spanning_forest};

    fn check(g: &CsrGraph, p: usize, cfg: SvConfig) -> SpanningForest {
        let f = spanning_forest(g, p, cfg);
        assert!(
            is_spanning_forest(g, &f.parents),
            "invalid SV forest (p = {p}, {cfg:?})"
        );
        f
    }

    #[test]
    fn torus_election() {
        let g = gen::torus2d(16, 16);
        for p in [1, 2, 4] {
            let f = check(&g, p, SvConfig::default());
            assert_eq!(f.roots.len(), 1);
            assert_eq!(f.stats.grafts, g.num_vertices() - 1);
        }
    }

    #[test]
    fn torus_lock_variant() {
        let g = gen::torus2d(12, 12);
        let cfg = SvConfig {
            variant: GraftVariant::Lock,
            ..SvConfig::default()
        };
        for p in [1, 4] {
            let f = check(&g, p, cfg);
            assert_eq!(f.roots.len(), 1);
        }
    }

    #[test]
    fn disconnected_graphs() {
        let g = gen::mesh2d_p(25, 25, 0.55, 3);
        let f = check(&g, 4, SvConfig::default());
        assert_eq!(f.roots.len(), count_components(&g));
    }

    #[test]
    fn random_graph_all_variants() {
        let g = gen::random_gnm(1_500, 2_500, 13);
        for variant in [GraftVariant::Election, GraftVariant::Lock] {
            let cfg = SvConfig {
                variant,
                ..SvConfig::default()
            };
            check(&g, 4, cfg);
        }
    }

    #[test]
    fn rowmajor_torus_converges_in_one_graft_iteration() {
        // With row-major labels every vertex has a smaller neighbor
        // except vertex 0, and grafting cascades; SV needs very few
        // iterations (the paper's "best case one iteration" observation).
        let g = gen::torus2d(10, 10);
        let f = check(&g, 2, SvConfig::default());
        // iterations counts the final no-graft detection round too.
        assert!(
            f.stats.iterations <= 3,
            "row-major torus took {} iterations",
            f.stats.iterations
        );
    }

    #[test]
    fn random_labels_take_more_iterations() {
        // CLAIM-SVLABEL: random labeling needs more iterations than
        // row-major on the same topology.
        let g = gen::torus2d(32, 32);
        let f_row = check(&g, 2, SvConfig::default());
        let perm = random_permutation(g.num_vertices(), 5);
        let h = relabel(&g, &perm);
        let f_rand = check(&h, 2, SvConfig::default());
        assert!(
            f_rand.stats.iterations >= f_row.stats.iterations,
            "random {} < row-major {}",
            f_rand.stats.iterations,
            f_row.stats.iterations
        );
    }

    #[test]
    fn chain_labeled_sequentially_is_fast() {
        let g = gen::chain(1_000);
        let f = check(&g, 4, SvConfig::default());
        assert_eq!(f.roots.len(), 1);
        // Sequential labels: everything grafts toward 0 in one pass.
        assert!(f.stats.iterations <= 3);
    }

    #[test]
    fn chain_random_labels_need_log_iterations() {
        let g = gen::chain(4_096);
        let perm = random_permutation(4_096, 11);
        let h = relabel(&g, &perm);
        let f = check(&h, 4, SvConfig::default());
        assert!(
            f.stats.iterations >= 3,
            "random-labeled chain converged suspiciously fast ({})",
            f.stats.iterations
        );
        assert!(f.stats.iterations <= 30);
    }

    #[test]
    fn init_super_vertices() {
        // Path 0-1-2-3-4 where {0,1,2} is pre-merged into root 0.
        let g = gen::chain(5);
        let init = vec![0, 0, 0, 3, 4];
        let out = sv_core(&g, 2, Some(&init), SvConfig::default());
        // Grafts must connect {0,1,2}, {3}, {4}: exactly 2 tree edges.
        assert_eq!(out.grafts, 2);
        let mut labels = out.labels.clone();
        labels.dedup();
        // All vertices end in one component.
        assert!(out.labels.iter().all(|&l| l == out.labels[0]));
    }

    #[test]
    fn labels_identify_components() {
        let g = {
            let mut el = st_graph::EdgeList::new(6);
            el.push(0, 1);
            el.push(1, 2);
            el.push(3, 4);
            CsrGraph::from_edge_list(&el)
        };
        let out = sv_core(&g, 2, None, SvConfig::default());
        assert_eq!(out.labels[0], out.labels[1]);
        assert_eq!(out.labels[1], out.labels[2]);
        assert_eq!(out.labels[3], out.labels[4]);
        assert_ne!(out.labels[0], out.labels[3]);
        assert_ne!(out.labels[5], out.labels[0]);
        assert_eq!(out.grafts, 3);
    }

    #[test]
    fn empty_and_edgeless() {
        let out = sv_core(&CsrGraph::empty(0), 2, None, SvConfig::default());
        assert_eq!(out.grafts, 0);
        let f = spanning_forest(&CsrGraph::empty(4), 2, SvConfig::default());
        assert_eq!(f.roots.len(), 4);
    }

    #[test]
    fn complete_graph_one_iteration() {
        let g = gen::complete(64);
        let f = check(&g, 4, SvConfig::default());
        assert_eq!(f.roots.len(), 1);
        assert!(f.stats.iterations <= 2);
    }

    #[test]
    fn max_iterations_guard_is_quiet_on_normal_runs() {
        let g = gen::random_gnm(500, 800, 4);
        let cfg = SvConfig {
            max_iterations: Some(64),
            ..SvConfig::default()
        };
        check(&g, 2, cfg);
    }

    #[test]
    fn graft_count_equals_n_minus_components() {
        for seed in 0..5 {
            let g = gen::random_gnm(300, 350, seed);
            let out = sv_core(&g, 3, None, SvConfig::default());
            let c = count_components(&g);
            assert_eq!(out.grafts, 300 - c, "seed {seed}");
        }
    }

    #[test]
    fn reused_workspace_matches_fresh_runs() {
        // Same team + workspace over several graphs; outcomes must match
        // fresh one-shot runs (scratch fully re-initialized).
        let exec = Executor::new(3);
        let mut ws = Workspace::new();
        for (n, m, seed) in [(400usize, 600usize, 1u64), (50, 40, 2), (800, 900, 3)] {
            let g = gen::random_gnm(n, m, seed);
            let reused = sv_core_on(&g, &exec, &mut ws, None, SvConfig::default());
            let fresh = sv_core(&g, 3, None, SvConfig::default());
            assert_eq!(reused.grafts, fresh.grafts, "seed {seed}");
            assert_eq!(reused.labels, fresh.labels, "seed {seed}");
        }
    }

    #[test]
    fn cancelled_sv_aborts_and_team_stays_reusable() {
        use st_smp::CancelToken;
        let exec = Executor::new(3);
        let mut ws = Workspace::new();
        let g = gen::random_gnm(600, 900, 4);
        let token = CancelToken::new();
        token.cancel();
        let out = try_spanning_forest_on(&g, &exec, &mut ws, SvConfig::default(), &token);
        assert!(out.is_err(), "pre-cancelled token must abort");
        // Clean run afterwards on the same team + workspace.
        let f = spanning_forest_on(&g, &exec, &mut ws, SvConfig::default());
        assert!(is_spanning_forest(&g, &f.parents));
    }

    #[test]
    fn racing_cancel_against_sv_is_clean_either_way() {
        use st_smp::CancelToken;
        let exec = Executor::new(3);
        let mut ws = Workspace::new();
        let g = gen::random_gnm(4_000, 7_000, 11);
        for delay_us in [0u64, 30, 300] {
            let token = CancelToken::new();
            let canceller = {
                let token = token.clone();
                std::thread::spawn(move || {
                    std::thread::sleep(std::time::Duration::from_micros(delay_us));
                    token.cancel();
                })
            };
            if let Ok(f) = try_spanning_forest_on(&g, &exec, &mut ws, SvConfig::default(), &token) {
                assert!(is_spanning_forest(&g, &f.parents));
            }
            canceller.join().unwrap();
            let f = spanning_forest_on(&g, &exec, &mut ws, SvConfig::default());
            assert!(is_spanning_forest(&g, &f.parents), "delay {delay_us}us");
        }
    }
}
