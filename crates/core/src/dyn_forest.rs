//! Incremental spanning-forest maintenance under batch edge updates.
//!
//! A [`DynForest`] keeps a rooted spanning forest of an evolving graph
//! alive across [`EdgeBatch`](st_graph::EdgeBatch) applications without
//! recomputing it from scratch:
//!
//! * **Insertions** run the gbbs CAS-hook union-find idiom over the
//!   *components* touched by the batch (not the whole vertex set): each
//!   batch edge whose endpoints carry different component labels races
//!   to hook the smaller-indexed component root under the larger via a
//!   single CAS on a `hooks` slot; the winning edges — at most one per
//!   hooked component — are exactly the new tree edges. The local
//!   union-find state lives in the [`Workspace`] arena (`parent` and
//!   `color` arrays over the ≤ 2·batch locals), so a stream of batches
//!   allocates nothing.
//! * **Deletions** of non-tree edges are free. Cutting a tree edge
//!   (u, v) leaves both halves properly rooted (the child side's parent
//!   pointers already point at the cut point), so the maintainer finds
//!   the smaller half S by an alternating BFS in O(|S|), then searches
//!   the edges incident to S for a *replacement edge* back to the rest
//!   of the old component — in parallel, seeded from the workspace's
//!   per-processor work queues with a CAS election slot, when S is
//!   large. No replacement means the component genuinely split and S is
//!   relabeled fresh.
//!
//! The maintainer is exact, not approximate — after every batch the
//! forest is a true spanning forest of the new graph (the oracle
//! equivalence suite checks this against full recomputation). What it
//! does *not* promise is that incremental is always cheaper: a batch
//! that touches most of the graph costs more than a recompute, which is
//! why the service consults [`DynForest::touched_estimate`] against a
//! knob and falls back to the full Bader–Cong run past it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use st_graph::delta::Neighbors;
use st_graph::{VertexId, NO_VERTEX};
use st_smp::Executor;

use crate::engine::Workspace;
use crate::result::{AlgoStats, SpanningForest};

/// Sentinel for the workspace-local union-find: an `EMPTY` parent marks
/// a root, an `EMPTY` hook an unhooked component.
const EMPTY: u32 = u32::MAX;

/// Election-slot sentinel: no replacement edge published yet.
const NO_WINNER: u64 = u64::MAX;

/// Below this many cross-component batch edges the CAS-hook phase runs
/// sequentially — team handoff costs more than the loop.
const PAR_INSERT_THRESHOLD: usize = 64;

/// Below this many scanned edges the replacement search runs
/// sequentially on the cutting thread.
const PAR_SCAN_THRESHOLD: usize = 4096;

/// What one batch did to the forest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Components merged away by insertions (tree links added).
    pub tree_merges: usize,
    /// Components created by deletions that found no replacement.
    pub tree_splits: usize,
    /// Tree-edge deletions healed by a replacement edge.
    pub replacements: usize,
    /// Vertices whose component label was rewritten.
    pub relabeled: usize,
}

impl UpdateStats {
    fn absorb(&mut self, other: UpdateStats) {
        self.tree_merges += other.tree_merges;
        self.tree_splits += other.tree_splits;
        self.replacements += other.replacements;
        self.relabeled += other.relabeled;
    }
}

/// A rooted spanning forest maintained incrementally across batches.
///
/// Component identity is tracked by opaque `u64` labels drawn from a
/// never-reused counter — splits mint fresh labels, merges keep the
/// label of the largest constituent (fewest rewrites) — so label
/// comparisons are exact with no generation ambiguity.
#[derive(Clone, Debug)]
pub struct DynForest {
    /// Rootward parent per vertex; [`NO_VERTEX`] at roots.
    parents: Vec<VertexId>,
    /// Tree adjacency (each tree edge in both endpoint lists).
    adj: Vec<Vec<VertexId>>,
    /// Component label per vertex.
    comp: Vec<u64>,
    /// Live labels with their component sizes.
    comp_size: HashMap<u64, u32>,
    /// Next fresh label.
    next_label: u64,
    /// Epoch-stamped BFS visit marks (no O(n) clear per deletion).
    mark: Vec<u32>,
    epoch: u32,
}

impl DynForest {
    /// Adopts an existing forest (typically a full Bader–Cong run) as
    /// the maintenance baseline.
    pub fn from_forest(forest: &SpanningForest) -> Self {
        let n = forest.parents.len();
        let parents = forest.parents.clone();
        let mut adj = vec![Vec::new(); n];
        for (v, &p) in parents.iter().enumerate() {
            if p != NO_VERTEX {
                adj[v].push(p);
                adj[p as usize].push(v as VertexId);
            }
        }
        let mut comp = vec![0u64; n];
        let mut comp_size = HashMap::new();
        let mut next_label = 0u64;
        let mut stack = Vec::new();
        let mut seen = vec![false; n];
        for (v, &p) in parents.iter().enumerate() {
            if p != NO_VERTEX || seen[v] {
                continue;
            }
            let label = next_label;
            next_label += 1;
            let mut size = 0u32;
            stack.push(v as VertexId);
            seen[v] = true;
            while let Some(x) = stack.pop() {
                comp[x as usize] = label;
                size += 1;
                for &y in &adj[x as usize] {
                    if !seen[y as usize] {
                        seen[y as usize] = true;
                        stack.push(y);
                    }
                }
            }
            comp_size.insert(label, size);
        }
        Self {
            parents,
            adj,
            comp,
            comp_size,
            next_label,
            mark: vec![0; n],
            epoch: 0,
        }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.parents.len()
    }

    /// Number of components (= trees).
    pub fn num_components(&self) -> usize {
        self.comp_size.len()
    }

    /// The component label of `v` (opaque; equal iff same component).
    pub fn label(&self, v: VertexId) -> u64 {
        self.comp[v as usize]
    }

    /// True when (u, v) is currently a tree edge.
    pub fn is_tree_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.parents[u as usize] == v || self.parents[v as usize] == u
    }

    /// Snapshots the forest in the engine's result shape.
    pub fn forest(&self) -> SpanningForest {
        let roots: Vec<VertexId> = self
            .parents
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == NO_VERTEX)
            .map(|(v, _)| v as VertexId)
            .collect();
        SpanningForest {
            parents: self.parents.clone(),
            stats: AlgoStats {
                components: roots.len(),
                ..AlgoStats::default()
            },
            roots,
        }
    }

    /// Upper-bound estimate of the vertices a batch will touch: the
    /// total size of every component that a cross-component insertion
    /// merges or a tree-edge deletion cuts. The service divides this by
    /// n and compares against the recompute knob *before* mutating
    /// anything — past the knob, a fresh parallel run is cheaper than
    /// incremental maintenance.
    pub fn touched_estimate(&self, batch: &st_graph::EdgeBatch) -> usize {
        let mut labels: Vec<u64> = Vec::new();
        for &(u, v) in &batch.deletes {
            if (u as usize) < self.parents.len() && self.is_tree_edge(u, v) {
                labels.push(self.comp[u as usize]);
            }
        }
        for &(u, v) in &batch.inserts {
            if (u as usize) >= self.parents.len() || (v as usize) >= self.parents.len() {
                continue;
            }
            let (lu, lv) = (self.comp[u as usize], self.comp[v as usize]);
            if lu != lv {
                labels.push(lu);
                labels.push(lv);
            }
        }
        labels.sort_unstable();
        labels.dedup();
        labels
            .iter()
            .map(|l| self.comp_size.get(l).copied().unwrap_or(0) as usize)
            .sum()
    }

    /// Applies one batch to the forest: deletions first (mirroring the
    /// graph-layer order), then insertions. `g_after` must be the graph
    /// *with the batch already applied* — the replacement search scans
    /// its adjacency. Parallel phases run on `exec` using `ws` scratch.
    pub fn apply_batch<G: Neighbors + Sync>(
        &mut self,
        g_after: &G,
        batch: &st_graph::EdgeBatch,
        exec: &Executor,
        ws: &mut Workspace,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        stats.absorb(self.delete_edges(g_after, &batch.deletes, exec, ws));
        stats.absorb(self.insert_edges(&batch.inserts, exec, ws));
        stats
    }

    // ------------------------------------------------------------------
    // Insertion: CAS-hook union-find over touched components.
    // ------------------------------------------------------------------

    /// Splices the forest across `inserts`. Same-component edges are
    /// no-ops; cross-component edges merge trees, at most one tree link
    /// per component pair (extra parallel edges lose the CAS race or
    /// find the components already joined).
    pub fn insert_edges(
        &mut self,
        inserts: &[(VertexId, VertexId)],
        exec: &Executor,
        ws: &mut Workspace,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        // Map the distinct component labels at the batch's endpoints to
        // dense local indices 0..k. Each local remembers a member vertex
        // (for the relabel walk) — every touched component has one,
        // because locals only arise from endpoints.
        let mut local_of: HashMap<u64, u32> = HashMap::new();
        let mut label_of: Vec<u64> = Vec::new();
        let mut rep_of: Vec<VertexId> = Vec::new();
        let mut edges: Vec<(u32, u32, VertexId, VertexId)> = Vec::new();
        for &(u, v) in inserts {
            let (lu, lv) = (self.comp[u as usize], self.comp[v as usize]);
            if lu == lv {
                continue;
            }
            let a = *local_of.entry(lu).or_insert_with(|| {
                label_of.push(lu);
                rep_of.push(u);
                (label_of.len() - 1) as u32
            });
            let b = *local_of.entry(lv).or_insert_with(|| {
                label_of.push(lv);
                rep_of.push(v);
                (label_of.len() - 1) as u32
            });
            edges.push((a, b, u, v));
        }
        if edges.is_empty() {
            return stats;
        }
        let k = label_of.len();

        // Workspace arena: `parent` is the local union-find (EMPTY =
        // root), `color` the hooks array recording which batch edge
        // claimed each local root (Snippet-1 idiom: link smaller local
        // under larger via CAS on the hook slot).
        ws.parent.ensure_len(k);
        ws.parent.fill_prefix(k, EMPTY);
        ws.color.ensure_len(k);
        ws.color.fill_prefix(k, EMPTY);
        let uf = &ws.parent;
        let hooks = &ws.color;

        let hook_one = |i: usize| {
            let (a, b, ..) = edges[i];
            loop {
                let ra = find(uf, a);
                let rb = find(uf, b);
                if ra == rb {
                    break;
                }
                let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
                if hooks.try_claim(small as usize, EMPTY, i as u32) {
                    uf.store(small as usize, large, Ordering::Release);
                    break;
                }
                // Lost the hook race: someone else linked `small`;
                // re-find and retry.
            }
        };
        if edges.len() >= PAR_INSERT_THRESHOLD && exec.size() > 1 {
            let p = exec.size();
            exec.run(|ctx| {
                let mut i = ctx.rank();
                while i < edges.len() {
                    hook_one(i);
                    i += p;
                }
            });
        } else {
            for i in 0..edges.len() {
                hook_one(i);
            }
        }

        // Sequential reconstruction. Group locals by final union-find
        // root; each multi-member group is one merged component.
        let mut groups: HashMap<u32, Vec<u32>> = HashMap::new();
        for l in 0..k as u32 {
            groups.entry(find(uf, l)).or_default().push(l);
        }
        // Relabel FIRST, while the trees are still separate: each loser
        // constituent's tree is reachable from its representative via
        // the tree adjacency without bleeding into the winners.
        for members in groups.values() {
            if members.len() < 2 {
                continue;
            }
            let mut total = 0u32;
            let mut winner = members[0];
            for &l in members {
                let size = self.comp_size[&label_of[l as usize]];
                total += size;
                if size > self.comp_size[&label_of[winner as usize]] {
                    winner = l;
                }
            }
            let winner_label = label_of[winner as usize];
            for &l in members {
                if l == winner {
                    continue;
                }
                let loser_label = label_of[l as usize];
                stats.relabeled += self.relabel_tree(rep_of[l as usize], winner_label);
                self.comp_size.remove(&loser_label);
            }
            self.comp_size.insert(winner_label, total);
        }
        // Splice the trees along the hook edges. The hooks form a
        // forest over the locals, so each edge joins two distinct trees
        // regardless of processing order: re-root the u side at u, then
        // hang it under v.
        for l in 0..k {
            let i = hooks.load(l, Ordering::Acquire);
            if i == EMPTY {
                continue;
            }
            let (_, _, u, v) = edges[i as usize];
            self.reroot_at(u);
            self.parents[u as usize] = v;
            self.adj[u as usize].push(v);
            self.adj[v as usize].push(u);
            stats.tree_merges += 1;
        }
        stats
    }

    // ------------------------------------------------------------------
    // Deletion: cut, smaller-side search, replacement election.
    // ------------------------------------------------------------------

    /// Processes `deletes` against the post-batch graph `g_after`.
    pub fn delete_edges<G: Neighbors + Sync>(
        &mut self,
        g_after: &G,
        deletes: &[(VertexId, VertexId)],
        exec: &Executor,
        ws: &mut Workspace,
    ) -> UpdateStats {
        let mut stats = UpdateStats::default();
        for &(u, v) in deletes {
            // Non-tree edges never touch the forest. (A duplicate
            // delete of the same tree edge lands here on its second
            // occurrence, after the first cut.)
            let (child, parent) = if self.parents[u as usize] == v {
                (u, v)
            } else if self.parents[v as usize] == u {
                (v, u)
            } else {
                continue;
            };
            self.cut(child, parent);
            // Both halves are rooted trees now; find the smaller one.
            let (side, side_epoch) = self.smaller_side(child, parent);
            let old_label = self.comp[child as usize];
            match self.find_replacement(g_after, &side, side_epoch, old_label, exec, ws) {
                Some((x, y)) => {
                    // Heal: re-root the cut-off side at x and hang it
                    // back under y. Labels and sizes are untouched —
                    // the component never actually split.
                    self.reroot_at(x);
                    self.parents[x as usize] = y;
                    self.adj[x as usize].push(y);
                    self.adj[y as usize].push(x);
                    stats.replacements += 1;
                }
                None => {
                    // True split: the smaller side becomes a fresh
                    // component.
                    let label = self.next_label;
                    self.next_label += 1;
                    for &x in &side {
                        self.comp[x as usize] = label;
                    }
                    let s = side.len() as u32;
                    self.comp_size.insert(label, s);
                    let remaining = self
                        .comp_size
                        .get_mut(&old_label)
                        .expect("cut component is live");
                    *remaining -= s;
                    stats.tree_splits += 1;
                    stats.relabeled += side.len();
                }
            }
        }
        stats
    }

    /// Removes the tree edge (child, parent); the child side is left as
    /// its own properly-rooted tree (every parent pointer in the child's
    /// subtree already points toward `child`).
    fn cut(&mut self, child: VertexId, parent: VertexId) {
        debug_assert_eq!(self.parents[child as usize], parent);
        self.parents[child as usize] = NO_VERTEX;
        let ca = &mut self.adj[child as usize];
        let at = ca.iter().position(|&x| x == parent).expect("tree adj");
        ca.swap_remove(at);
        let pa = &mut self.adj[parent as usize];
        let at = pa.iter().position(|&x| x == child).expect("tree adj");
        pa.swap_remove(at);
    }

    /// Alternating BFS from both cut endpoints over the tree adjacency;
    /// returns the vertex list of the smaller side and the epoch its
    /// members are marked with — O(min(|A|, |B|)) on each side.
    fn smaller_side(&mut self, a: VertexId, b: VertexId) -> (Vec<VertexId>, u32) {
        if self.epoch >= u32::MAX - 2 {
            self.mark.fill(0);
            self.epoch = 0;
        }
        let ea = self.epoch + 1;
        let eb = self.epoch + 2;
        self.epoch += 2;
        let mut qa = vec![a];
        let mut qb = vec![b];
        self.mark[a as usize] = ea;
        self.mark[b as usize] = eb;
        let (mut ha, mut hb) = (0usize, 0usize);
        loop {
            // Expand one vertex on the A side, then one on B; the side
            // that runs out of frontier first is the smaller tree.
            if ha < qa.len() {
                let x = qa[ha];
                ha += 1;
                for &y in &self.adj[x as usize] {
                    if self.mark[y as usize] != ea {
                        self.mark[y as usize] = ea;
                        qa.push(y);
                    }
                }
            } else {
                return (qa, ea);
            }
            if hb < qb.len() {
                let x = qb[hb];
                hb += 1;
                for &y in &self.adj[x as usize] {
                    if self.mark[y as usize] != eb {
                        self.mark[y as usize] = eb;
                        qb.push(y);
                    }
                }
            } else {
                return (qb, eb);
            }
        }
    }

    /// Scans the post-batch edges incident to `side` for an edge (x, y)
    /// with x inside, y outside but still in the old component — the
    /// replacement that heals the cut. Large sides fan the scan out
    /// over the team: vertices are dealt round-robin into the
    /// workspace's per-rank queues and the first find wins a CAS
    /// election; ranks poll the slot and bail early once it is decided.
    fn find_replacement<G: Neighbors + Sync>(
        &self,
        g_after: &G,
        side: &[VertexId],
        side_epoch: u32,
        old_label: u64,
        exec: &Executor,
        ws: &mut Workspace,
    ) -> Option<(VertexId, VertexId)> {
        let accept = |x: VertexId, y: VertexId| {
            self.mark[y as usize] != side_epoch && self.comp[y as usize] == old_label
                // Guard against a stale mark from an earlier epoch that
                // happens to equal side_epoch after a wrap reset: the
                // label check is the authoritative one; the mark check
                // only excludes the side itself, whose labels still
                // read `old_label` here.
                && x != y
        };
        let scan_size: usize = side.iter().map(|&x| g_after.degree(x)).sum();
        let p = exec.size();
        if scan_size < PAR_SCAN_THRESHOLD || p < 2 || side.len() < p {
            for &x in side {
                for &y in g_after.neighbors(x) {
                    if accept(x, y) {
                        return Some((x, y));
                    }
                }
            }
            return None;
        }
        // Parallel election. Seed the per-rank queues round-robin.
        while ws.queues.len() < p {
            ws.queues
                .push(st_smp::CacheAligned::new(st_smp::WorkQueue::new()));
        }
        for q in &ws.queues[..p] {
            while q.pop().is_some() {}
        }
        for (i, &x) in side.iter().enumerate() {
            ws.queues[i % p].push(x);
        }
        let queues = &ws.queues[..p];
        let slot = AtomicU64::new(NO_WINNER);
        exec.run(|ctx| {
            let rank = ctx.rank();
            let mut since_poll = 0usize;
            while let Some(x) = queues[rank].pop() {
                if since_poll == 0 && slot.load(Ordering::Acquire) != NO_WINNER {
                    return;
                }
                since_poll = (since_poll + 1) % 16;
                for &y in g_after.neighbors(x) {
                    if accept(x, y) {
                        let packed = (u64::from(x) << 32) | u64::from(y);
                        let _ = slot.compare_exchange(
                            NO_WINNER,
                            packed,
                            Ordering::AcqRel,
                            Ordering::Acquire,
                        );
                        return;
                    }
                }
            }
        });
        match slot.load(Ordering::Acquire) {
            NO_WINNER => None,
            packed => Some(((packed >> 32) as VertexId, packed as VertexId)),
        }
    }

    // ------------------------------------------------------------------
    // Shared tree surgery.
    // ------------------------------------------------------------------

    /// Makes `v` the root of its tree by reversing the parent pointers
    /// along the single path v → old root; every other pointer in the
    /// tree is already oriented correctly.
    fn reroot_at(&mut self, v: VertexId) {
        let mut prev = NO_VERTEX;
        let mut cur = v;
        while cur != NO_VERTEX {
            let next = self.parents[cur as usize];
            self.parents[cur as usize] = prev;
            prev = cur;
            cur = next;
        }
    }

    /// Rewrites the component label of every vertex in `start`'s tree;
    /// returns how many were rewritten.
    fn relabel_tree(&mut self, start: VertexId, label: u64) -> usize {
        let mut stack = vec![start];
        let before = self.comp[start as usize];
        debug_assert_ne!(before, label);
        self.comp[start as usize] = label;
        let mut count = 1usize;
        while let Some(x) = stack.pop() {
            // Iterate over indices to appease the borrow checker while
            // mutating `comp`.
            for i in 0..self.adj[x as usize].len() {
                let y = self.adj[x as usize][i];
                if self.comp[y as usize] == before {
                    self.comp[y as usize] = label;
                    count += 1;
                    stack.push(y);
                }
            }
        }
        count
    }

    /// Internal-consistency audit for tests: parent pointers acyclic and
    /// mirrored in `adj`, labels uniform per tree, sizes exact.
    #[doc(hidden)]
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.parents.len();
        let mut seen_sizes: HashMap<u64, u32> = HashMap::new();
        for v in 0..n {
            *seen_sizes.entry(self.comp[v]).or_insert(0) += 1;
            let p = self.parents[v];
            if p != NO_VERTEX {
                if !self.adj[v].contains(&p) || !self.adj[p as usize].contains(&(v as VertexId)) {
                    return Err(format!("tree edge ({v}, {p}) missing from adj"));
                }
                if self.comp[v] != self.comp[p as usize] {
                    return Err(format!("edge ({v}, {p}) crosses labels"));
                }
            }
        }
        if seen_sizes != self.comp_size {
            return Err(format!(
                "size drift: counted {seen_sizes:?} vs tracked {:?}",
                self.comp_size
            ));
        }
        // Acyclicity: rootward walks terminate within n steps.
        for v in 0..n {
            let mut cur = v as VertexId;
            for _ in 0..=n {
                if cur == NO_VERTEX {
                    break;
                }
                cur = self.parents[cur as usize];
            }
            if cur != NO_VERTEX {
                return Err(format!("parent cycle reachable from {v}"));
            }
        }
        Ok(())
    }
}

/// Union-find `find` with path compression over the workspace array.
/// `EMPTY` parents mark roots; compression writes only move entries
/// rootward, so concurrent finds and CAS-hook links stay safe (the
/// Snippet-1 protocol: links happen only at roots, via the hook CAS).
fn find(uf: &st_smp::AtomicU32Array, start: u32) -> u32 {
    let mut root = start;
    loop {
        let p = uf.load(root as usize, Ordering::Acquire);
        if p == EMPTY {
            break;
        }
        root = p;
    }
    // Compress the path behind us.
    let mut cur = start;
    while cur != root {
        let p = uf.load(cur as usize, Ordering::Acquire);
        if p == EMPTY || p == root {
            break;
        }
        uf.store(cur as usize, root, Ordering::Release);
        cur = p;
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::delta::{CsrDelta, EdgeBatch, GraphView};
    use st_graph::{gen, validate::is_spanning_forest};
    use std::sync::Arc;

    fn maintained(
        g0: st_graph::CsrGraph,
        batches: &[EdgeBatch],
        exec: &Executor,
    ) -> (DynForest, st_graph::CsrGraph) {
        let mut ws = Workspace::new();
        let mut forest = DynForest::from_forest(&crate::seq::bfs_forest(&g0));
        let mut view = GraphView::Flat(Arc::new(g0));
        for batch in batches {
            let (next, _) = view.apply(batch).unwrap();
            forest.apply_batch(&next, batch, exec, &mut ws);
            view = next;
        }
        let flat = view.materialize();
        (forest, (*flat).clone())
    }

    fn assert_oracle(forest: &DynForest, g: &st_graph::CsrGraph) {
        forest.check_invariants().unwrap();
        let f = forest.forest();
        assert!(is_spanning_forest(g, &f.parents), "not a spanning forest");
        assert_eq!(
            forest.num_components(),
            st_graph::validate::count_components(g),
            "component count drifted from the oracle"
        );
    }

    #[test]
    fn adopts_forest_with_labels_and_sizes() {
        // Two components: a 4-chain and an isolated pair.
        let g = gen::random_gnm(64, 40, 3);
        let f = DynForest::from_forest(&crate::seq::bfs_forest(&g));
        f.check_invariants().unwrap();
        assert_eq!(f.num_components(), st_graph::validate::count_components(&g));
    }

    #[test]
    fn insert_merges_components() {
        let exec = Executor::new(2);
        // Two disjoint chains 0-1-2 and 3-4-5.
        let el = st_graph::EdgeList::from_edges(6, vec![(0, 1), (1, 2), (3, 4), (4, 5)]);
        let g = st_graph::CsrGraph::from_edge_list(&el);
        let batch = EdgeBatch::new().insert(2, 3);
        let (forest, flat) = maintained(g, std::slice::from_ref(&batch), &exec);
        assert_eq!(forest.num_components(), 1);
        assert_oracle(&forest, &flat);
    }

    #[test]
    fn parallel_insert_wave_is_exact() {
        let exec = Executor::new(4);
        // 256 isolated pairs, then one batch chaining them all together:
        // enough cross-component edges to take the parallel CAS path.
        let n = 512u32;
        let pairs: Vec<_> = (0..n / 2).map(|i| (2 * i, 2 * i + 1)).collect();
        let g = st_graph::CsrGraph::from_edge_list(&st_graph::EdgeList::from_edges(
            n as usize,
            pairs,
        ));
        let mut batch = EdgeBatch::new();
        for i in 0..(n / 2 - 1) {
            batch = batch.insert(2 * i + 1, 2 * i + 2);
        }
        // Parallel duplicates of the same merge must not double-link.
        for i in 0..(n / 2 - 1) {
            batch = batch.insert(2 * i + 1, 2 * i + 2);
        }
        let (forest, flat) = maintained(g, std::slice::from_ref(&batch), &exec);
        assert_eq!(forest.num_components(), 1);
        assert_oracle(&forest, &flat);
    }

    #[test]
    fn delete_with_replacement_keeps_component_whole() {
        let exec = Executor::new(2);
        // A 4-cycle: deleting any edge leaves it connected.
        let el = st_graph::EdgeList::from_edges(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]);
        let g = st_graph::CsrGraph::from_edge_list(&el);
        let batch = EdgeBatch::new().delete(0, 1);
        let (forest, flat) = maintained(g, std::slice::from_ref(&batch), &exec);
        assert_eq!(forest.num_components(), 1);
        assert_oracle(&forest, &flat);
    }

    #[test]
    fn delete_bridge_splits_component() {
        let exec = Executor::new(2);
        let g = gen::chain(10);
        let batch = EdgeBatch::new().delete(4, 5);
        let (forest, flat) = maintained(g, std::slice::from_ref(&batch), &exec);
        assert_eq!(forest.num_components(), 2);
        assert_oracle(&forest, &flat);
    }

    #[test]
    fn mixed_batch_stream_tracks_the_oracle() {
        let exec = Executor::new(4);
        let g = gen::random_gnm(300, 500, 7);
        // A deterministic pseudo-random stream of mixed batches.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut view = GraphView::Flat(Arc::new(g.clone()));
        let mut ws = Workspace::new();
        let mut forest = DynForest::from_forest(&crate::seq::bfs_forest(&g));
        for _ in 0..30 {
            let mut batch = EdgeBatch::new();
            for _ in 0..10 {
                let u = (next() % 300) as VertexId;
                let v = (next() % 300) as VertexId;
                if u == v {
                    continue;
                }
                if next() % 2 == 0 {
                    batch = batch.insert(u, v);
                } else {
                    batch = batch.delete(u, v);
                }
            }
            let (nv, _) = view.apply(&batch).unwrap();
            forest.apply_batch(&nv, &batch, &exec, &mut ws);
            view = nv;
            let flat = view.materialize();
            assert_oracle(&forest, &flat);
        }
    }

    #[test]
    fn touched_estimate_counts_affected_components() {
        let g = gen::chain(10); // one 10-vertex component
        let f = DynForest::from_forest(&crate::seq::bfs_forest(&g));
        // A same-component insert touches nothing.
        assert_eq!(f.touched_estimate(&EdgeBatch::new().insert(0, 9)), 0);
        // A tree-edge delete touches the whole component.
        assert_eq!(f.touched_estimate(&EdgeBatch::new().delete(3, 4)), 10);
        // A non-tree delete is free.
        assert_eq!(f.touched_estimate(&EdgeBatch::new().delete(0, 5)), 0);
    }

    #[test]
    fn large_cycle_uses_parallel_replacement_scan() {
        let exec = Executor::new(4);
        // One big cycle, so deleting an edge forces a half-graph side
        // search and a replacement scan above the parallel threshold.
        let n = 20_000u32;
        let mut edges: Vec<_> = (0..n - 1).map(|i| (i, i + 1)).collect();
        edges.push((n - 1, 0));
        let g = st_graph::CsrGraph::from_edge_list(&st_graph::EdgeList::from_edges(
            n as usize, edges,
        ));
        let batch = EdgeBatch::new().delete(0, 1);
        let (forest, flat) = maintained(g, std::slice::from_ref(&batch), &exec);
        assert_eq!(forest.num_components(), 1);
        assert_oracle(&forest, &flat);
    }

    #[test]
    fn delta_view_and_flat_graph_agree_for_maintenance() {
        // Maintenance runs against the overlay, never materializing.
        let exec = Executor::new(2);
        let g = gen::torus2d(16, 16);
        let mut ws = Workspace::new();
        let mut forest = DynForest::from_forest(&crate::seq::bfs_forest(&g));
        let d0 = CsrDelta::from_base(Arc::new(g));
        let batch = EdgeBatch::new().delete(0, 1).delete(0, 16).insert(5, 200);
        let (d1, _) = d0.apply(&batch).unwrap();
        forest.apply_batch(&d1, &batch, &exec, &mut ws);
        forest.check_invariants().unwrap();
        let flat = d1.materialize();
        assert!(is_spanning_forest(&flat, &forest.forest().parents));
    }
}
