//! Rooted-tree utilities: children arrays, Euler tours, and fast LCA.
//!
//! Spanning trees are only useful as building blocks if the downstream
//! algorithms can traverse them efficiently; the PRAM literature the
//! paper builds on (Tarjan–Vishkin, tree contraction — which the
//! authors' own WAE/HiPC work [2, 3] parallelizes) is organized around
//! the **Euler tour** of the tree. This module provides the shared
//! structure: a CSR-style children layout, the Euler tour, and
//! binary-lifting LCA queries in O(log n) after O(n log n) setup.

use st_graph::{VertexId, NO_VERTEX};

/// CSR-style children layout of a rooted forest.
#[derive(Clone, Debug)]
pub struct ChildrenIndex {
    start: Vec<usize>,
    children: Vec<VertexId>,
    roots: Vec<VertexId>,
}

impl ChildrenIndex {
    /// Builds from a parent array.
    pub fn new(parents: &[VertexId]) -> Self {
        let n = parents.len();
        let mut count = vec![0usize; n];
        let mut roots = Vec::new();
        for (v, &p) in parents.iter().enumerate() {
            if p == NO_VERTEX {
                roots.push(v as VertexId);
            } else {
                count[p as usize] += 1;
            }
        }
        let mut start = vec![0usize; n + 1];
        for v in 0..n {
            start[v + 1] = start[v] + count[v];
        }
        let mut cursor = start.clone();
        let mut children = vec![0 as VertexId; start[n]];
        for (v, &p) in parents.iter().enumerate() {
            if p != NO_VERTEX {
                children[cursor[p as usize]] = v as VertexId;
                cursor[p as usize] += 1;
            }
        }
        Self {
            start,
            children,
            roots,
        }
    }

    /// Children of `v`.
    pub fn children(&self, v: VertexId) -> &[VertexId] {
        &self.children[self.start[v as usize]..self.start[v as usize + 1]]
    }

    /// The forest's roots in id order.
    pub fn roots(&self) -> &[VertexId] {
        &self.roots
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.start.len() - 1
    }

    /// True when the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An Euler tour of a rooted forest: the sequence of vertices visited by
/// a DFS that records every entry and return (2·(size) − 1 entries per
/// tree).
#[derive(Clone, Debug)]
pub struct EulerTour {
    /// The tour itself (concatenated per tree, in root id order).
    pub tour: Vec<VertexId>,
    /// First index of each vertex in `tour`.
    pub first: Vec<usize>,
    /// Depth of each vertex.
    pub depth: Vec<u32>,
}

impl EulerTour {
    /// Builds the tour of the forest described by `parents`.
    pub fn new(parents: &[VertexId]) -> Self {
        let n = parents.len();
        let idx = ChildrenIndex::new(parents);
        let mut tour = Vec::with_capacity(2 * n);
        let mut first = vec![usize::MAX; n];
        let mut depth = vec![0u32; n];
        let mut stack: Vec<(VertexId, usize)> = Vec::new();
        for &root in idx.roots() {
            stack.push((root, 0));
            first[root as usize] = tour.len();
            tour.push(root);
            while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
                let kids = idx.children(v);
                if *ci < kids.len() {
                    let c = kids[*ci];
                    *ci += 1;
                    depth[c as usize] = depth[v as usize] + 1;
                    first[c as usize] = tour.len();
                    tour.push(c);
                    stack.push((c, 0));
                } else {
                    stack.pop();
                    if let Some(&(parent, _)) = stack.last() {
                        tour.push(parent);
                    }
                }
            }
        }
        Self { tour, first, depth }
    }
}

/// Binary-lifting LCA structure over a rooted forest.
#[derive(Clone, Debug)]
pub struct Lca {
    /// `up[k][v]` = 2^k-th ancestor of v ([`NO_VERTEX`] beyond the
    /// root).
    up: Vec<Vec<VertexId>>,
    depth: Vec<u32>,
}

impl Lca {
    /// Builds the lifting tables (O(n log n)).
    pub fn new(parents: &[VertexId]) -> Self {
        let n = parents.len();
        let tour = EulerTour::new(parents);
        let depth = tour.depth;
        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut up: Vec<Vec<VertexId>> = Vec::with_capacity(levels);
        up.push(parents.to_vec());
        for k in 1..levels {
            let prev = &up[k - 1];
            let next: Vec<VertexId> = (0..n)
                .map(|v| {
                    let mid = prev[v];
                    if mid == NO_VERTEX {
                        NO_VERTEX
                    } else {
                        prev[mid as usize]
                    }
                })
                .collect();
            up.push(next);
        }
        Self { up, depth }
    }

    /// Depth of `v` (root = 0).
    pub fn depth(&self, v: VertexId) -> u32 {
        self.depth[v as usize]
    }

    /// The `k`-th ancestor of `v`, or [`NO_VERTEX`] if the chain is
    /// shorter.
    pub fn ancestor(&self, mut v: VertexId, mut k: u32) -> VertexId {
        let mut level = 0;
        while k > 0 && v != NO_VERTEX {
            if k & 1 == 1 {
                if level >= self.up.len() {
                    return NO_VERTEX;
                }
                v = self.up[level][v as usize];
            }
            k >>= 1;
            level += 1;
        }
        v
    }

    /// Lowest common ancestor of `a` and `b`; [`NO_VERTEX`] when they
    /// are in different trees.
    pub fn lca(&self, mut a: VertexId, mut b: VertexId) -> VertexId {
        if self.depth(a) < self.depth(b) {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.ancestor(a, self.depth(a) - self.depth(b));
        if a == b || a == NO_VERTEX {
            return a;
        }
        for level in (0..self.up.len()).rev() {
            let ua = self.up[level][a as usize];
            let ub = self.up[level][b as usize];
            if ua != ub {
                if ua == NO_VERTEX || ub == NO_VERTEX {
                    // Different trees: lifting diverges at the roots.
                    continue;
                }
                a = ua;
                b = ub;
            }
        }
        let pa = self.up[0][a as usize];
        let pb = self.up[0][b as usize];
        if pa == pb {
            pa
        } else {
            NO_VERTEX
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{binary_tree, chain, random_connected};
    use st_graph::validate::forest_depths;

    fn path_parents(n: usize) -> Vec<VertexId> {
        // 0 <- 1 <- 2 <- ...
        (0..n)
            .map(|v| if v == 0 { NO_VERTEX } else { v as VertexId - 1 })
            .collect()
    }

    #[test]
    fn children_index_structure() {
        // Star rooted at 0 plus an isolated vertex 4.
        let parents = vec![NO_VERTEX, 0, 0, 0, NO_VERTEX];
        let idx = ChildrenIndex::new(&parents);
        assert_eq!(idx.len(), 5);
        let mut kids = idx.children(0).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![1, 2, 3]);
        assert!(idx.children(1).is_empty());
        assert_eq!(idx.roots(), &[0, 4]);
    }

    #[test]
    fn euler_tour_of_path() {
        let parents = path_parents(3);
        let t = EulerTour::new(&parents);
        assert_eq!(t.tour, vec![0, 1, 2, 1, 0]);
        assert_eq!(t.first, vec![0, 1, 2]);
        assert_eq!(t.depth, vec![0, 1, 2]);
    }

    #[test]
    fn euler_tour_length_is_2n_minus_roots() {
        let parents = vec![NO_VERTEX, 0, 0, 1, NO_VERTEX];
        let t = EulerTour::new(&parents);
        // Per tree: 2*size - 1 entries. Tree A size 4 -> 7; tree B size
        // 1 -> 1.
        assert_eq!(t.tour.len(), 8);
    }

    #[test]
    fn lca_on_path() {
        let parents = path_parents(10);
        let l = Lca::new(&parents);
        assert_eq!(l.lca(9, 3), 3);
        assert_eq!(l.lca(3, 9), 3);
        assert_eq!(l.lca(7, 7), 7);
        assert_eq!(l.ancestor(9, 4), 5);
        assert_eq!(l.ancestor(9, 9), 0);
        assert_eq!(l.ancestor(9, 10), NO_VERTEX);
    }

    #[test]
    fn lca_on_binary_tree() {
        // Heap-indexed complete binary tree: parent(v) = (v-1)/2.
        let g = binary_tree(15);
        let parents = crate::seq::bfs_tree(&g, 0).unwrap();
        let l = Lca::new(&parents);
        assert_eq!(l.lca(7, 8), 3); // siblings under 3
        assert_eq!(l.lca(7, 4), 1);
        assert_eq!(l.lca(7, 14), 0);
        assert_eq!(l.lca(0, 9), 0);
    }

    #[test]
    fn lca_cross_tree_is_no_vertex() {
        // Two separate paths.
        let parents = vec![NO_VERTEX, 0, NO_VERTEX, 2];
        let l = Lca::new(&parents);
        assert_eq!(l.lca(1, 3), NO_VERTEX);
        assert_eq!(l.lca(0, 2), NO_VERTEX);
    }

    #[test]
    fn lca_matches_naive_walk_on_random_trees() {
        let g = random_connected(300, 0, 9); // a random tree
        let f = crate::engine::Engine::new(2).job(&g).run().unwrap();
        let parents = f.parents;
        let l = Lca::new(&parents);
        let depths = forest_depths(&parents);
        let naive = |mut a: VertexId, mut b: VertexId| -> VertexId {
            while a != b {
                if depths[a as usize] >= depths[b as usize] {
                    a = parents[a as usize];
                } else {
                    b = parents[b as usize];
                }
            }
            a
        };
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        for _ in 0..500 {
            let a = rng.gen_range(0..300u32);
            let b = rng.gen_range(0..300u32);
            assert_eq!(l.lca(a, b), naive(a, b), "lca({a}, {b})");
        }
    }

    #[test]
    fn depths_agree_with_validate() {
        let parents = path_parents(20);
        let l = Lca::new(&parents);
        let reference = forest_depths(&parents);
        for v in 0..20u32 {
            assert_eq!(l.depth(v), reference[v as usize]);
        }
    }

    #[test]
    fn chain_graph_end_to_end() {
        let g = chain(64);
        let parents = crate::seq::bfs_tree(&g, 0).unwrap();
        let l = Lca::new(&parents);
        assert_eq!(l.lca(63, 1), 1);
    }
}
