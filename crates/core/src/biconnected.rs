//! Biconnected components, bridges, and articulation points.
//!
//! The paper's opening sentence motivates spanning trees as "an
//! important building block for many graph algorithms, for example,
//! biconnected components and ear decomposition". This module closes
//! that loop with the Tarjan–Vishkin reduction: biconnectivity of G
//! reduces to *connectivity of an auxiliary graph over G's spanning-tree
//! edges* — so both halves of the pipeline run on this crate's parallel
//! machinery (the Bader–Cong spanning forest, then SV connectivity).
//!
//! Given a rooted spanning forest with preorder numbers `pre`, subtree
//! sizes `sz`, and per-vertex `low`/`high` (the min/max preorder label
//! reachable from the subtree by a single non-tree edge), the auxiliary
//! graph has one vertex per tree edge (identified by its child vertex)
//! and joins:
//!
//! 1. `(u, p(u)) — (v, p(v))` for every non-tree edge {u, v} whose
//!    endpoints are unrelated (neither an ancestor of the other); and
//! 2. `(v, w) — (w, p(w))` for every tree edge (v, w = p(v)) with
//!    non-root w whose subtree escapes w's interval:
//!    `low(v) < pre(w)` or `high(v) ≥ pre(w) + sz(w)`.
//!
//! Connected components of the auxiliary graph are exactly the
//! biconnected components (Tarjan & Vishkin 1985; JáJá §5). Bridges are
//! the tree edges whose subtree does not escape itself; articulation
//! points are the vertices incident to two or more blocks.

use st_graph::{CsrGraph, VertexId, NO_VERTEX};

use crate::bader_cong::BaderCong;
use crate::connected::connected_components_on;
use crate::engine::{Engine, SpanningAlgorithm};
use crate::result::SpanningForest;

/// Biconnectivity structure of a graph.
#[derive(Clone, Debug)]
pub struct Biconnectivity {
    /// The spanning forest the decomposition was built on.
    pub forest: SpanningForest,
    /// For each non-root vertex v, the block id of the tree edge
    /// (v, parent(v)); `u32::MAX` for roots (no tree edge).
    pub tree_edge_block: Vec<u32>,
    /// Number of biconnected components (blocks).
    pub num_blocks: usize,
    /// Bridge edges (every bridge is a tree edge), as (child, parent).
    pub bridges: Vec<(VertexId, VertexId)>,
    /// Articulation (cut) vertices, ascending.
    pub articulation_points: Vec<VertexId>,
}

impl Biconnectivity {
    /// Block id of the graph edge {u, v}.
    ///
    /// Tree edges carry their stored block; a non-tree edge {u, v} lies
    /// in the same block as the deeper endpoint's tree edge.
    ///
    /// # Panics
    ///
    /// Panics if {u, v} is not an edge handled by the decomposition
    /// (e.g. both endpoints are roots).
    pub fn block_of_edge(&self, u: VertexId, v: VertexId, pre: &Preorder) -> u32 {
        let parents = &self.forest.parents;
        if parents[u as usize] == v {
            return self.tree_edge_block[u as usize];
        }
        if parents[v as usize] == u {
            return self.tree_edge_block[v as usize];
        }
        // Non-tree edge: the deeper endpoint's tree edge is in the
        // cycle the edge closes.
        let deeper = if pre.depth[u as usize] >= pre.depth[v as usize] {
            u
        } else {
            v
        };
        assert!(
            parents[deeper as usize] != NO_VERTEX,
            "({u}, {v}) does not touch any tree edge"
        );
        self.tree_edge_block[deeper as usize]
    }

    /// True when the tree edge above `v` is a bridge.
    pub fn is_bridge_edge(&self, v: VertexId) -> bool {
        self.bridges.iter().any(|&(c, _)| c == v)
    }

    /// True when `v` is an articulation point.
    pub fn is_articulation(&self, v: VertexId) -> bool {
        self.articulation_points.binary_search(&v).is_ok()
    }
}

/// Rooted-forest preorder data (exposed for
/// [`Biconnectivity::block_of_edge`] and reuse by other tree
/// algorithms).
#[derive(Clone, Debug)]
pub struct Preorder {
    /// Preorder number of each vertex (roots first in scan order).
    pub pre: Vec<u32>,
    /// Subtree size of each vertex.
    pub sz: Vec<u32>,
    /// Depth of each vertex (root = 0).
    pub depth: Vec<u32>,
    /// Vertices sorted by preorder number (the traversal order).
    pub order: Vec<VertexId>,
}

/// Computes preorder numbers, subtree sizes, and depths of a rooted
/// forest given as a parent array.
pub fn preorder(parents: &[VertexId]) -> Preorder {
    let n = parents.len();
    // Children lists via counting sort on parents.
    let mut child_count = vec![0u32; n];
    for &p in parents {
        if p != NO_VERTEX {
            child_count[p as usize] += 1;
        }
    }
    let mut child_start = vec![0usize; n + 1];
    for v in 0..n {
        child_start[v + 1] = child_start[v] + child_count[v] as usize;
    }
    let mut children = vec![0 as VertexId; child_start[n]];
    let mut cursor = child_start.clone();
    for (v, &p) in parents.iter().enumerate() {
        if p != NO_VERTEX {
            children[cursor[p as usize]] = v as VertexId;
            cursor[p as usize] += 1;
        }
    }

    let mut pre = vec![0u32; n];
    let mut sz = vec![1u32; n];
    let mut depth = vec![0u32; n];
    let mut order = Vec::with_capacity(n);
    let mut next_pre = 0u32;
    let mut stack: Vec<(VertexId, usize)> = Vec::new();
    for root in 0..n {
        if parents[root] != NO_VERTEX {
            continue;
        }
        pre[root] = next_pre;
        next_pre += 1;
        order.push(root as VertexId);
        stack.push((root as VertexId, child_start[root]));
        while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
            if *ci < child_start[v as usize + 1] {
                let c = children[*ci];
                *ci += 1;
                pre[c as usize] = next_pre;
                next_pre += 1;
                depth[c as usize] = depth[v as usize] + 1;
                order.push(c);
                stack.push((c, child_start[c as usize]));
            } else {
                stack.pop();
                if let Some(&(parent, _)) = stack.last() {
                    sz[parent as usize] += sz[v as usize];
                }
            }
        }
    }
    debug_assert_eq!(next_pre as usize, n);
    Preorder {
        pre,
        sz,
        depth,
        order,
    }
}

/// Computes the biconnectivity structure of `g` with `p` processors,
/// building the spanning forest with the Bader–Cong algorithm and the
/// auxiliary-graph connectivity with SV.
///
/// ```
/// use st_core::biconnected::biconnected_components;
/// use st_graph::gen;
///
/// // A cycle is one block: no bridges, no articulation points.
/// let bc = biconnected_components(&gen::cycle(6), 2);
/// assert_eq!(bc.num_blocks, 1);
/// assert!(bc.bridges.is_empty());
///
/// // A path is all bridges.
/// let bc = biconnected_components(&gen::chain(4), 2);
/// assert_eq!(bc.bridges.len(), 3);
/// assert_eq!(bc.articulation_points, vec![1, 2]);
/// ```
pub fn biconnected_components(g: &CsrGraph, p: usize) -> Biconnectivity {
    let mut engine = Engine::new(p);
    biconnected_components_with(&mut engine, &BaderCong::with_defaults(), g)
}

/// As [`biconnected_components`], but on an existing [`Engine`] and with
/// any spanning-forest producer: both pipeline halves (the forest and
/// the auxiliary-graph connectivity) run on the engine's persistent team
/// and reuse its workspace.
pub fn biconnected_components_with(
    engine: &mut Engine,
    algo: &dyn SpanningAlgorithm,
    g: &CsrGraph,
) -> Biconnectivity {
    let forest = engine.run(algo, g);
    biconnected_from_forest_with(engine, g, forest)
}

/// As [`biconnected_components`], but reusing an existing spanning
/// forest of `g` (one-shot team for the auxiliary connectivity).
pub fn biconnected_from_forest(g: &CsrGraph, forest: SpanningForest, p: usize) -> Biconnectivity {
    let mut engine = Engine::new(p);
    biconnected_from_forest_with(&mut engine, g, forest)
}

/// As [`biconnected_from_forest`], but the auxiliary-graph connectivity
/// runs on `engine`'s team.
pub fn biconnected_from_forest_with(
    engine: &mut Engine,
    g: &CsrGraph,
    forest: SpanningForest,
) -> Biconnectivity {
    let n = g.num_vertices();
    let parents = &forest.parents;
    let po = preorder(parents);
    let (pre, sz) = (&po.pre, &po.sz);

    let is_tree_edge =
        |u: VertexId, v: VertexId| parents[u as usize] == v || parents[v as usize] == u;
    // u is an ancestor of w (inclusive)?
    let is_ancestor = |u: VertexId, w: VertexId| {
        let (pu, pw) = (pre[u as usize], pre[w as usize]);
        pu <= pw && pw < pu + sz[u as usize]
    };

    // low/high in reverse preorder (children before parents).
    let mut low: Vec<u32> = pre.clone();
    let mut high: Vec<u32> = pre.clone();
    for &v in po.order.iter().rev() {
        for &u in g.neighbors(v) {
            if is_tree_edge(v, u) {
                continue;
            }
            low[v as usize] = low[v as usize].min(pre[u as usize]);
            high[v as usize] = high[v as usize].max(pre[u as usize]);
        }
        let pv = parents[v as usize];
        if pv != NO_VERTEX {
            let lo = low[v as usize];
            let hi = high[v as usize];
            low[pv as usize] = low[pv as usize].min(lo);
            high[pv as usize] = high[pv as usize].max(hi);
        }
    }

    // Auxiliary graph over tree edges (vertex v stands for edge
    // (v, parent(v)); roots remain isolated aux vertices).
    let mut aux = st_graph::EdgeList::new(n);
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u >= v || is_tree_edge(u, v) {
                continue;
            }
            // Rule 1: unrelated endpoints.
            if !is_ancestor(u, v) && !is_ancestor(v, u) {
                aux.push(u, v);
            }
        }
    }
    for v in 0..n as VertexId {
        // Rule 2: tree edge (v, w) whose subtree escapes w's interval.
        let w = parents[v as usize];
        if w == NO_VERTEX || parents[w as usize] == NO_VERTEX {
            continue;
        }
        let escapes = low[v as usize] < pre[w as usize]
            || high[v as usize] >= pre[w as usize] + sz[w as usize];
        if escapes {
            aux.push(v, w);
        }
    }
    let aux_graph = CsrGraph::from_edge_list(&aux);
    let (exec, ws) = engine.parts_mut();
    let aux_cc = connected_components_on(&aux_graph, exec, ws);

    // Blocks = aux components restricted to non-root vertices, compacted.
    let mut block_map: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut tree_edge_block = vec![u32::MAX; n];
    for v in 0..n {
        if parents[v] == NO_VERTEX {
            continue;
        }
        let next = block_map.len() as u32;
        let b = *block_map.entry(aux_cc.labels[v]).or_insert(next);
        tree_edge_block[v] = b;
    }
    let num_blocks = block_map.len();

    // Bridges: the subtree of v has no non-tree edge escaping itself.
    let mut bridges = Vec::new();
    for v in 0..n as VertexId {
        let w = parents[v as usize];
        if w == NO_VERTEX {
            continue;
        }
        let closed = low[v as usize] >= pre[v as usize]
            && high[v as usize] < pre[v as usize] + sz[v as usize];
        if closed {
            bridges.push((v, w));
        }
    }

    // Articulation points: incident to >= 2 distinct blocks. The blocks
    // incident to v are those of its own tree edge and of its
    // children's tree edges.
    let mut articulation_points = Vec::new();
    let mut incident: Vec<u32> = Vec::new();
    // Children enumeration via a second pass.
    let mut children_of: Vec<Vec<VertexId>> = vec![Vec::new(); n];
    for (v, &pv) in parents.iter().enumerate() {
        if pv != NO_VERTEX {
            children_of[pv as usize].push(v as VertexId);
        }
    }
    for v in 0..n {
        incident.clear();
        if parents[v] != NO_VERTEX {
            incident.push(tree_edge_block[v]);
        }
        for &c in &children_of[v] {
            incident.push(tree_edge_block[c as usize]);
        }
        incident.sort_unstable();
        incident.dedup();
        if incident.len() >= 2 {
            articulation_points.push(v as VertexId);
        }
    }

    Biconnectivity {
        forest,
        tree_edge_block,
        num_blocks,
        bridges,
        articulation_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, complete, cycle, random_gnm, torus2d};
    use st_graph::validate::count_components;
    use st_graph::EdgeList;

    /// Brute-force bridge oracle: removing the edge increases the
    /// component count.
    fn bridges_brute(g: &CsrGraph) -> Vec<(VertexId, VertexId)> {
        let base = count_components(g);
        let mut out = Vec::new();
        for (u, v) in g.edges() {
            let mut el = EdgeList::new(g.num_vertices());
            for (a, b) in g.edges() {
                if (a, b) != (u, v) {
                    el.push(a, b);
                }
            }
            let h = CsrGraph::from_edge_list(&el);
            if count_components(&h) > base {
                out.push((u, v));
            }
        }
        out
    }

    /// Brute-force articulation oracle: removing the vertex increases
    /// the component count (among the remaining vertices).
    fn articulation_brute(g: &CsrGraph) -> Vec<VertexId> {
        let base = count_components(g);
        let n = g.num_vertices();
        let mut out = Vec::new();
        for v in 0..n as VertexId {
            let mut el = EdgeList::new(n);
            for (a, b) in g.edges() {
                if a != v && b != v {
                    el.push(a, b);
                }
            }
            let h = CsrGraph::from_edge_list(&el);
            // Removing v leaves it isolated in h; discount it.
            let comps_without_v = count_components(&h) - 1;
            let base_without_v = base - usize::from(g.degree(v) == 0);
            if comps_without_v > base_without_v {
                out.push(v);
            }
        }
        out
    }

    fn check_against_brute(g: &CsrGraph, p: usize) -> Biconnectivity {
        let bc = biconnected_components(g, p);
        let mut got_bridges: Vec<(VertexId, VertexId)> = bc
            .bridges
            .iter()
            .map(|&(a, b)| if a < b { (a, b) } else { (b, a) })
            .collect();
        got_bridges.sort_unstable();
        let mut want_bridges = bridges_brute(g);
        want_bridges.sort_unstable();
        assert_eq!(got_bridges, want_bridges, "bridges disagree");

        let want_arts = articulation_brute(g);
        assert_eq!(bc.articulation_points, want_arts, "articulations disagree");
        bc
    }

    #[test]
    fn triangle_is_one_block() {
        let g = cycle(3);
        let bc = check_against_brute(&g, 2);
        assert_eq!(bc.num_blocks, 1);
        assert!(bc.bridges.is_empty());
        assert!(bc.articulation_points.is_empty());
    }

    #[test]
    fn path_is_all_bridges() {
        let g = chain(5);
        let bc = check_against_brute(&g, 2);
        assert_eq!(bc.num_blocks, 4);
        assert_eq!(bc.bridges.len(), 4);
        assert_eq!(bc.articulation_points, vec![1, 2, 3]);
    }

    #[test]
    fn two_triangles_sharing_a_vertex() {
        // Blocks {0,1,2} and {2,3,4}; articulation at 2.
        let mut el = EdgeList::new(5);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(2, 3);
        el.push(3, 4);
        el.push(4, 2);
        let g = CsrGraph::from_edge_list(&el);
        let bc = check_against_brute(&g, 2);
        assert_eq!(bc.num_blocks, 2);
        assert_eq!(bc.articulation_points, vec![2]);
        assert!(bc.bridges.is_empty());
    }

    #[test]
    fn barbell_graph() {
        // Two triangles joined by a bridge 2-3.
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(3, 4);
        el.push(4, 5);
        el.push(5, 3);
        el.push(2, 3);
        let g = CsrGraph::from_edge_list(&el);
        let bc = check_against_brute(&g, 2);
        assert_eq!(bc.num_blocks, 3);
        assert_eq!(bc.bridges.len(), 1);
        assert_eq!(bc.articulation_points, vec![2, 3]);
    }

    #[test]
    fn complete_graph_is_one_block() {
        let g = complete(8);
        let bc = check_against_brute(&g, 3);
        assert_eq!(bc.num_blocks, 1);
    }

    #[test]
    fn torus_is_biconnected() {
        let g = torus2d(5, 5);
        let bc = biconnected_components(&g, 4);
        assert_eq!(bc.num_blocks, 1);
        assert!(bc.bridges.is_empty());
        assert!(bc.articulation_points.is_empty());
    }

    #[test]
    fn disconnected_graph_handled_per_component() {
        // A triangle and a path, plus an isolated vertex.
        let mut el = EdgeList::new(7);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(3, 4);
        el.push(4, 5);
        let g = CsrGraph::from_edge_list(&el);
        let bc = check_against_brute(&g, 2);
        assert_eq!(bc.num_blocks, 3); // triangle + two path edges
    }

    #[test]
    fn random_graphs_match_brute_force() {
        for seed in 0..6 {
            let g = random_gnm(40, 55, seed);
            check_against_brute(&g, 3);
        }
    }

    #[test]
    fn denser_random_graphs_match_brute_force() {
        for seed in 0..4 {
            let g = random_gnm(30, 90, seed + 100);
            check_against_brute(&g, 2);
        }
    }

    #[test]
    fn block_of_edge_queries() {
        let mut el = EdgeList::new(5);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(2, 3);
        el.push(3, 4);
        el.push(4, 2);
        let g = CsrGraph::from_edge_list(&el);
        let bc = biconnected_components(&g, 2);
        let po = preorder(&bc.forest.parents);
        // Edges inside each triangle share a block; across, they differ.
        let b01 = bc.block_of_edge(0, 1, &po);
        let b12 = bc.block_of_edge(1, 2, &po);
        let b34 = bc.block_of_edge(3, 4, &po);
        assert_eq!(b01, b12);
        assert_ne!(b01, b34);
        assert!(bc.is_articulation(2));
        assert!(!bc.is_articulation(0));
    }

    /// Sequential Hopcroft–Tarjan biconnectivity (DFS lowpoints + edge
    /// stack): an independent oracle for the whole block *partition*,
    /// not just bridges/articulations. Returns, for each undirected
    /// edge (canonical (min, max)), a block id.
    fn blocks_hopcroft_tarjan(
        g: &CsrGraph,
    ) -> std::collections::HashMap<(VertexId, VertexId), u32> {
        let n = g.num_vertices();
        let mut disc = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut timer = 0u32;
        let mut edge_stack: Vec<(VertexId, VertexId)> = Vec::new();
        let mut block_of: std::collections::HashMap<(VertexId, VertexId), u32> =
            std::collections::HashMap::new();
        let mut next_block = 0u32;

        fn canon(u: VertexId, v: VertexId) -> (VertexId, VertexId) {
            if u < v {
                (u, v)
            } else {
                (v, u)
            }
        }

        #[allow(clippy::too_many_arguments)]
        fn dfs(
            g: &CsrGraph,
            u: VertexId,
            parent: VertexId,
            disc: &mut [u32],
            low: &mut [u32],
            timer: &mut u32,
            edge_stack: &mut Vec<(VertexId, VertexId)>,
            block_of: &mut std::collections::HashMap<(VertexId, VertexId), u32>,
            next_block: &mut u32,
        ) {
            disc[u as usize] = *timer;
            low[u as usize] = *timer;
            *timer += 1;
            let mut parent_skipped = false;
            for &v in g.neighbors(u) {
                if v == parent && !parent_skipped {
                    parent_skipped = true;
                    continue;
                }
                if disc[v as usize] == u32::MAX {
                    edge_stack.push((u, v));
                    dfs(g, v, u, disc, low, timer, edge_stack, block_of, next_block);
                    low[u as usize] = low[u as usize].min(low[v as usize]);
                    if low[v as usize] >= disc[u as usize] {
                        // u separates: pop the block.
                        let b = *next_block;
                        *next_block += 1;
                        while let Some(&(a, c)) = edge_stack.last() {
                            if disc[a as usize] >= disc[v as usize] {
                                edge_stack.pop();
                                block_of.insert(canon(a, c), b);
                            } else {
                                break;
                            }
                        }
                        // The tree edge (u, v) itself closes the block.
                        if let Some(&(a, c)) = edge_stack.last() {
                            if (a, c) == (u, v) {
                                edge_stack.pop();
                            }
                        }
                        block_of.insert(canon(u, v), b);
                    }
                } else if disc[v as usize] < disc[u as usize] {
                    // Back edge.
                    edge_stack.push((u, v));
                    low[u as usize] = low[u as usize].min(disc[v as usize]);
                }
            }
        }

        for s in 0..n as VertexId {
            if disc[s as usize] == u32::MAX {
                dfs(
                    g,
                    s,
                    NO_VERTEX,
                    &mut disc,
                    &mut low,
                    &mut timer,
                    &mut edge_stack,
                    &mut block_of,
                    &mut next_block,
                );
            }
        }
        block_of
    }

    /// The Tarjan–Vishkin block partition must equal the Hopcroft–
    /// Tarjan one (compared on our tree edges, as a partition).
    fn check_block_partition(g: &CsrGraph, p: usize) {
        let bc = biconnected_components(&g.clone(), p);
        let oracle = blocks_hopcroft_tarjan(g);
        // Map: our block id -> oracle block id must be a bijection on
        // the tree edges.
        let mut fwd: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        let mut bwd: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
        for v in 0..g.num_vertices() {
            let pv = bc.forest.parents[v];
            if pv == NO_VERTEX {
                continue;
            }
            let ours = bc.tree_edge_block[v];
            let key = if (v as VertexId) < pv {
                (v as VertexId, pv)
            } else {
                (pv, v as VertexId)
            };
            let theirs = *oracle
                .get(&key)
                .unwrap_or_else(|| panic!("oracle missing edge {key:?}"));
            assert_eq!(
                *fwd.entry(ours).or_insert(theirs),
                theirs,
                "our block {ours} maps to two oracle blocks"
            );
            assert_eq!(
                *bwd.entry(theirs).or_insert(ours),
                ours,
                "oracle block {theirs} maps to two of our blocks"
            );
        }
    }

    #[test]
    fn block_partition_matches_hopcroft_tarjan() {
        for seed in 0..8 {
            let g = random_gnm(35, 60, seed + 7);
            check_block_partition(&g, 2);
        }
        for seed in 0..4 {
            let g = random_gnm(25, 24, seed); // sparse: many bridges
            check_block_partition(&g, 3);
        }
        check_block_partition(&torus2d(4, 5), 2);
        check_block_partition(&complete(7), 2);
        check_block_partition(&chain(12), 2);
    }

    #[test]
    fn any_algorithm_backs_the_pipeline() {
        // The block structure is a graph invariant: any spanning-forest
        // producer behind the trait must yield the same decomposition.
        let mut engine = Engine::new(3);
        for seed in 0..3 {
            let g = random_gnm(40, 55, seed + 50);
            let via_hcs = biconnected_components_with(&mut engine, &crate::hcs::Hcs, &g);
            let via_default = biconnected_components(&g, 3);
            assert_eq!(via_hcs.num_blocks, via_default.num_blocks);
            assert_eq!(via_hcs.articulation_points, via_default.articulation_points);
            let canon = |mut b: Vec<(VertexId, VertexId)>| {
                for e in &mut b {
                    *e = (e.0.min(e.1), e.0.max(e.1));
                }
                b.sort_unstable();
                b
            };
            assert_eq!(canon(via_hcs.bridges), canon(via_default.bridges));
        }
    }

    #[test]
    fn preorder_structure() {
        // Star rooted at 0.
        let parents = vec![NO_VERTEX, 0, 0, 0];
        let po = preorder(&parents);
        assert_eq!(po.pre[0], 0);
        assert_eq!(po.sz[0], 4);
        assert_eq!(po.depth, vec![0, 1, 1, 1]);
        assert_eq!(po.order.len(), 4);
        // Chain 0 <- 1 <- 2.
        let parents = vec![NO_VERTEX, 0, 1];
        let po = preorder(&parents);
        assert_eq!(po.pre, vec![0, 1, 2]);
        assert_eq!(po.sz, vec![3, 2, 1]);
    }

    #[test]
    fn empty_and_singletons() {
        let bc = biconnected_components(&CsrGraph::empty(3), 2);
        assert_eq!(bc.num_blocks, 0);
        assert!(bc.bridges.is_empty());
        assert!(bc.articulation_points.is_empty());
    }
}
