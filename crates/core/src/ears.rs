//! Ear decomposition — the second application the paper's introduction
//! names for spanning trees ("biconnected components and ear
//! decomposition").
//!
//! An **ear decomposition** of a 2-edge-connected graph partitions its
//! edges into a cycle E₀ and paths ("ears") E₁, E₂, …, each ear's two
//! endpoints lying on earlier ears and its interior vertices being new.
//! The classic parallel construction (Maon–Schieber–Vishkin) runs off a
//! spanning tree: every non-tree edge e = (u, v) closes exactly one
//! cycle — the tree path u⇝v plus e — and is given the label
//! `(depth(lca(u, v)), edge id)`; every tree edge is assigned to the
//! smallest-labeled non-tree edge whose cycle covers it. The edge set of
//! each non-tree edge (the edge itself plus its assigned tree edges)
//! forms one ear, and ordering ears by label makes every ear after the
//! first attach to earlier ones.
//!
//! The label minimization over covering cycles is the same bottom-up
//! sweep as the `low`/`high` computation in
//! [`biconnected`](crate::biconnected); the spanning tree is again the
//! building block.

use st_graph::{CsrGraph, VertexId, NO_VERTEX};

use crate::biconnected::{preorder, Preorder};
use crate::engine::Engine;

/// An ear decomposition of a 2-edge-connected graph.
#[derive(Clone, Debug)]
pub struct EarDecomposition {
    /// Ears in order: `ears[0]` is the initial cycle; each later ear is
    /// a path (or cycle, for a non-open decomposition) attached to
    /// earlier ears. Edges are (u, v) pairs.
    pub ears: Vec<Vec<(VertexId, VertexId)>>,
}

impl EarDecomposition {
    /// Number of ears.
    pub fn len(&self) -> usize {
        self.ears.len()
    }

    /// True when there are no ears (edgeless input).
    pub fn is_empty(&self) -> bool {
        self.ears.is_empty()
    }

    /// Total edges across all ears.
    pub fn num_edges(&self) -> usize {
        self.ears.iter().map(Vec::len).sum()
    }
}

/// Errors from [`ear_decomposition`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EarError {
    /// The graph is not connected.
    NotConnected,
    /// The graph has a bridge (ear decompositions exist only for
    /// 2-edge-connected graphs); the offending tree edge is returned as
    /// (child, parent).
    HasBridge(VertexId, VertexId),
    /// The graph has no edges at all.
    Empty,
}

impl std::fmt::Display for EarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EarError::NotConnected => write!(f, "graph is not connected"),
            EarError::HasBridge(u, v) => {
                write!(f, "graph has a bridge ({u}, {v}); not 2-edge-connected")
            }
            EarError::Empty => write!(f, "graph has no edges"),
        }
    }
}

impl std::error::Error for EarError {}

/// Computes an ear decomposition of a 2-edge-connected graph, using a
/// parallel spanning tree (`p` processors) as the skeleton.
pub fn ear_decomposition(g: &CsrGraph, p: usize) -> Result<EarDecomposition, EarError> {
    if g.num_edges() == 0 {
        return Err(EarError::Empty);
    }
    let forest = Engine::new(p)
        .job(g)
        .run()
        .expect("no cancel token: job cannot be cancelled");
    if forest.roots.len() != 1 {
        return Err(EarError::NotConnected);
    }
    let parents = &forest.parents;
    let po: Preorder = preorder(parents);

    // Non-tree edges with their (lca depth, edge id) labels. Binary-
    // lifting LCA keeps this O((n + m) log n) even on high-depth trees
    // (a cycle's spanning tree is a path).
    let is_tree_edge =
        |u: VertexId, v: VertexId| parents[u as usize] == v || parents[v as usize] == u;
    let lca_index = crate::tree::Lca::new(parents);
    let lca = |a: VertexId, b: VertexId| -> VertexId { lca_index.lca(a, b) };

    let mut non_tree: Vec<(VertexId, VertexId)> = Vec::new();
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u < v && !is_tree_edge(u, v) {
                non_tree.push((u, v));
            }
        }
    }
    // Labels: (lca depth, sequence id). Smaller label = earlier ear;
    // the master cycle E0 comes from the shallowest lca.
    let mut labeled: Vec<(u32, u32, VertexId, VertexId)> = non_tree
        .iter()
        .enumerate()
        .map(|(i, &(u, v))| (po.depth[lca(u, v) as usize], i as u32, u, v))
        .collect();
    labeled.sort_unstable();
    // Rank of each non-tree edge after sorting.
    let mut ear_of_nontree: std::collections::HashMap<(VertexId, VertexId), usize> =
        std::collections::HashMap::new();
    for (rank, &(_, _, u, v)) in labeled.iter().enumerate() {
        ear_of_nontree.insert((u, v), rank);
    }

    // Assign each tree edge (v, parent(v)) to the minimum-ranked
    // non-tree edge covering it, by bottom-up min propagation: cover(v)
    // starts as the min rank of non-tree edges incident to v, and flows
    // upward, but a non-tree edge (u, w) covers exactly the tree edges
    // on the paths u⇝lca and w⇝lca — so its rank must stop flowing at
    // the lca. Standard trick: add the rank at both endpoints and
    // *cancel* it at the lca by only propagating values whose cycle
    // extends above the current vertex. We implement it directly: each
    // vertex v keeps min over {ranks of non-tree edges whose cycle
    // covers the edge (v, p(v))}; a cycle of (u, w) covers (v, p(v))
    // iff v is on u⇝lca or w⇝lca, i.e. v is an ancestor-or-self of u or
    // w and strictly below the lca. Equivalently: min over non-tree
    // edges incident to the subtree of v whose other endpoint is
    // outside the subtree of v... which is exactly a low/high-style
    // sweep over ranks.
    let n = g.num_vertices();
    let mut cover = vec![u32::MAX; n]; // min rank covering (v, p(v))
    for &v in po.order.iter().rev() {
        let mut best = u32::MAX;
        // Non-tree edges incident to v whose other endpoint is outside
        // v's subtree (their cycle passes through (v, p(v))).
        for &u in g.neighbors(v) {
            if is_tree_edge(v, u) {
                continue;
            }
            let key = if v < u { (v, u) } else { (u, v) };
            let rank = ear_of_nontree[&key] as u32;
            let inside = po.pre[u as usize] >= po.pre[v as usize]
                && po.pre[u as usize] < po.pre[v as usize] + po.sz[v as usize];
            if !inside {
                best = best.min(rank);
            }
        }
        // Children's covers extend through v iff their cycles reach
        // above v: child's covering edge has its lca strictly above v,
        // i.e. the cycle also covers (v, p(v)). A child cover extends
        // iff the corresponding non-tree edge's lca is a proper
        // ancestor of v; checking depth(lca) < depth(v) via the stored
        // rank's label would need the label — recompute cheaply:
        for u in children(&po, parents, v) {
            let c = cover[u as usize];
            if c != u32::MAX {
                let (_, _, a, b) = labeled[c as usize];
                let l = lca(a, b);
                if po.depth[l as usize] < po.depth[v as usize] {
                    best = best.min(c);
                }
            }
        }
        cover[v as usize] = best;
        if parents[v as usize] != NO_VERTEX && best == u32::MAX {
            return Err(EarError::HasBridge(v, parents[v as usize]));
        }
    }

    // Group edges into ears.
    let mut ears: Vec<Vec<(VertexId, VertexId)>> = vec![Vec::new(); labeled.len()];
    for (rank, &(_, _, u, v)) in labeled.iter().enumerate() {
        ears[rank].push((u, v));
    }
    for v in 0..n as VertexId {
        let pv = parents[v as usize];
        if pv == NO_VERTEX {
            continue;
        }
        ears[cover[v as usize] as usize].push((v, pv));
    }
    ears.retain(|e| !e.is_empty());
    Ok(EarDecomposition { ears })
}

/// Children of `v` under the parent array (helper; small graphs only —
/// the decomposition rebuilds this lazily per call site).
fn children(po: &Preorder, parents: &[VertexId], v: VertexId) -> Vec<VertexId> {
    // Children appear as a contiguous preorder segment after v; scan the
    // subtree interval and pick direct children.
    let start = po.pre[v as usize] as usize;
    let end = start + po.sz[v as usize] as usize;
    po.order[start..end]
        .iter()
        .copied()
        .filter(|&c| parents[c as usize] == v)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen::{chain, complete, cycle, torus2d};
    use st_graph::EdgeList;

    /// Checks the ear-decomposition invariants:
    /// 1. Edges partition the graph's edge set.
    /// 2. Ear 0 is a cycle.
    /// 3. Every later ear's endpoints touch earlier ears; its interior
    ///    vertices are new.
    fn assert_valid_ears(g: &CsrGraph, ed: &EarDecomposition) {
        // 1. Partition.
        let mut all: Vec<(VertexId, VertexId)> = ed
            .ears
            .iter()
            .flatten()
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        all.sort_unstable();
        let mut expect: Vec<(VertexId, VertexId)> = g.edges().collect();
        expect.sort_unstable();
        assert_eq!(all.len(), expect.len(), "edge counts differ");
        assert_eq!(all, expect, "ears do not partition the edge set");

        // Per-ear structure: compute vertex degrees within the ear.
        let mut seen_vertices: std::collections::HashSet<VertexId> =
            std::collections::HashSet::new();
        for (i, ear) in ed.ears.iter().enumerate() {
            let mut deg: std::collections::HashMap<VertexId, usize> =
                std::collections::HashMap::new();
            for &(u, v) in ear {
                *deg.entry(u).or_insert(0) += 1;
                *deg.entry(v).or_insert(0) += 1;
            }
            if i == 0 {
                // 2. A cycle: every vertex has degree 2 within the ear.
                assert!(
                    deg.values().all(|&d| d == 2),
                    "ear 0 is not a cycle: {ear:?}"
                );
                seen_vertices.extend(deg.keys().copied());
            } else {
                // 3. A path or cycle whose attachment points were seen.
                let endpoints: Vec<VertexId> = deg
                    .iter()
                    .filter(|&(_, &d)| d == 1)
                    .map(|(&v, _)| v)
                    .collect();
                assert!(
                    deg.values().all(|&d| d <= 2),
                    "ear {i} is not a path/cycle: {ear:?}"
                );
                if endpoints.is_empty() {
                    // Closed ear (cycle): at least one vertex must be old.
                    assert!(
                        deg.keys().any(|v| seen_vertices.contains(v)),
                        "closed ear {i} floats free"
                    );
                } else {
                    assert_eq!(endpoints.len(), 2, "ear {i} has {endpoints:?}");
                    for e in &endpoints {
                        assert!(
                            seen_vertices.contains(e),
                            "ear {i} endpoint {e} not on earlier ears"
                        );
                    }
                    // Interior vertices must be new.
                    for (&v, &d) in deg.iter() {
                        if d == 2 {
                            assert!(
                                !seen_vertices.contains(&v),
                                "ear {i} interior vertex {v} already used"
                            );
                        }
                    }
                }
                seen_vertices.extend(deg.keys().copied());
            }
        }
    }

    #[test]
    fn cycle_is_a_single_ear() {
        let g = cycle(8);
        let ed = ear_decomposition(&g, 2).unwrap();
        assert_eq!(ed.len(), 1);
        assert_eq!(ed.num_edges(), 8);
        assert_valid_ears(&g, &ed);
    }

    #[test]
    fn complete_graph_decomposes() {
        let g = complete(6);
        let ed = ear_decomposition(&g, 2).unwrap();
        // K6: m - n + 1 = 15 - 6 + 1 = 10 ears.
        assert_eq!(ed.len(), 10);
        assert_valid_ears(&g, &ed);
    }

    #[test]
    fn torus_decomposes() {
        let g = torus2d(4, 4);
        let ed = ear_decomposition(&g, 4).unwrap();
        assert_eq!(ed.len(), g.num_edges() - g.num_vertices() + 1);
        assert_valid_ears(&g, &ed);
    }

    #[test]
    fn theta_graph() {
        // Two vertices joined by three internally-disjoint paths: the
        // canonical 2-ear example (cycle + one ear).
        let mut el = EdgeList::new(8);
        // Path A: 0-1-2-7
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 7);
        // Path B: 0-3-4-7
        el.push(0, 3);
        el.push(3, 4);
        el.push(4, 7);
        // Path C: 0-5-6-7
        el.push(0, 5);
        el.push(5, 6);
        el.push(6, 7);
        let g = CsrGraph::from_edge_list(&el);
        let ed = ear_decomposition(&g, 2).unwrap();
        assert_eq!(ed.len(), 2);
        assert_valid_ears(&g, &ed);
    }

    #[test]
    fn bridge_is_rejected() {
        // Two triangles joined by a bridge.
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(3, 4);
        el.push(4, 5);
        el.push(5, 3);
        el.push(2, 3);
        let g = CsrGraph::from_edge_list(&el);
        match ear_decomposition(&g, 2) {
            Err(EarError::HasBridge(a, b)) => {
                assert!(
                    (a == 2 && b == 3) || (a == 3 && b == 2),
                    "wrong bridge ({a}, {b})"
                );
            }
            other => panic!("expected bridge error, got {other:?}"),
        }
    }

    #[test]
    fn tree_is_rejected() {
        let g = chain(5);
        assert!(matches!(
            ear_decomposition(&g, 2),
            Err(EarError::HasBridge(_, _))
        ));
    }

    #[test]
    fn disconnected_is_rejected() {
        let mut el = EdgeList::new(6);
        el.push(0, 1);
        el.push(1, 2);
        el.push(2, 0);
        el.push(3, 4);
        el.push(4, 5);
        el.push(5, 3);
        let g = CsrGraph::from_edge_list(&el);
        assert!(matches!(
            ear_decomposition(&g, 2),
            Err(EarError::NotConnected)
        ));
    }

    #[test]
    fn empty_is_rejected() {
        let g = CsrGraph::empty(3);
        assert!(matches!(ear_decomposition(&g, 2), Err(EarError::Empty)));
    }

    #[test]
    fn random_biconnected_graphs_decompose() {
        // Build 2-edge-connected graphs: cycle + random chords.
        use rand::Rng;
        use rand::SeedableRng;
        for seed in 0..5 {
            let n = 40;
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            let mut el = EdgeList::new(n);
            for v in 0..n as VertexId {
                el.push(v, (v + 1) % n as VertexId);
            }
            for _ in 0..30 {
                let a = rng.gen_range(0..n as VertexId);
                let b = rng.gen_range(0..n as VertexId);
                if a != b {
                    el.push(a, b);
                }
            }
            el.dedup_simple();
            let g = CsrGraph::from_edge_list(&el);
            let ed = ear_decomposition(&g, 3).unwrap();
            assert_eq!(ed.len(), g.num_edges() - g.num_vertices() + 1);
            assert_valid_ears(&g, &ed);
        }
    }

    #[test]
    fn error_display() {
        assert!(EarError::NotConnected.to_string().contains("connected"));
        assert!(EarError::HasBridge(1, 2).to_string().contains("bridge"));
        assert!(EarError::Empty.to_string().contains("no edges"));
    }
}
