#![warn(missing_docs)]

//! # st-core — parallel spanning-tree algorithms for SMPs
//!
//! This crate implements the algorithms of Bader & Cong, *A Fast,
//! Parallel Spanning Tree Algorithm for Symmetric Multiprocessors
//! (SMPs)*, IPDPS 2004:
//!
//! * [`seq`] — the "best sequential implementation": breadth-first (and
//!   depth-first) spanning-tree/forest construction, the baseline every
//!   speedup in the paper is measured against.
//! * [`bader_cong`] — **the paper's contribution**: the randomized SMP
//!   algorithm with a stub spanning tree (phase 1) and a work-stealing
//!   graph traversal (phase 2), plus the condition-variable starvation
//!   detector that falls back to Shiloach–Vishkin on pathological
//!   inputs.
//! * [`sv`] — the Shiloach–Vishkin graft-and-shortcut algorithm adapted
//!   for SMPs, in the election variant (the paper's main parallel
//!   baseline) and the lock variant (which the paper reports — and we
//!   confirm — is slow).
//! * [`hcs`] — the Hirschberg–Chandra–Sarwate adaptation, which the paper
//!   implemented and then dropped from discussion because it behaves
//!   like SV; included for completeness.
//! * [`connected`] — connected components derived from the same
//!   machinery (SV is natively a connectivity algorithm).
//! * [`engine`] — the execution engine: every algorithm implements the
//!   [`SpanningAlgorithm`] trait and runs on a persistent
//!   [`Executor`](st_smp::Executor) team with a reusable [`Workspace`]
//!   arena, so a sequence of runs pays no per-call thread spawns or
//!   allocations (the paper's repeated-measurement methodology).
//!
//! All parallel algorithms produce spanning *forests* (one rooted tree
//! per connected component, encoded as a parent array with
//! [`NO_VERTEX`](st_graph::NO_VERTEX) marking roots) and are verified
//! against the oracles in [`st_graph::validate`].
//!
//! ## Quick example
//!
//! ```
//! use st_core::{BaderCong, Engine};
//! use st_graph::gen;
//! use st_graph::validate::is_spanning_forest;
//!
//! // One engine, many runs: threads spawn once, scratch is reused.
//! let mut engine = Engine::new(4);
//! let algo = BaderCong::with_defaults();
//! for seed in 0..3 {
//!     let g = gen::random_gnm(1_000, 2_000, seed);
//!     let forest = engine.run(&algo, &g);
//!     assert!(is_spanning_forest(&g, &forest.parents));
//! }
//! ```

pub mod bader_cong;
pub mod biconnected;
pub mod config;
pub mod connected;
pub mod dyn_forest;
pub mod ears;
pub mod engine;
pub mod hcs;
pub mod mst;
pub mod multiroot;
pub mod orient;
pub mod result;
pub mod seq;
pub mod stub;
pub mod sv;
pub mod traversal;
pub mod tree;

pub use bader_cong::{BaderCong, Config};
pub use config::{ConfigError, RuntimeConfig};
pub use dyn_forest::{DynForest, UpdateStats};
pub use engine::{Cancelled, Engine, EngineJob, SpanningAlgorithm, Workspace};
pub use result::{AlgoStats, SpanningForest};
pub use traversal::{Direction, TraversalConfig};
