//! The work-stealing graph-traversal engine (phase 2 of the new
//! algorithm, Alg. 1 of the paper).
//!
//! Each processor runs the modified BFS of Alg. 1 against shared atomic
//! `color` and `parent` arrays; idle processors steal queue segments from
//! random victims, and the [`TerminationDetector`] turns "everyone is
//! asleep" into completion and "threshold asleep" into a starvation
//! abort.
//!
//! ## The benign race (paper §2, Fig. 1)
//!
//! Two processors may both observe a vertex `w` uncolored and both color
//! it, enqueue it, and write `parent[w]`. The paper argues this is safe:
//! whichever parent write lands last is an edge of the graph, so the
//! tree stays valid; and when `w`'s unvisited children are later claimed
//! by either copy, their parent is `w` regardless. We reproduce exactly
//! this protocol — the losing processor *also* enqueues `w` — and count
//! the collisions (`multi_colored`) to reproduce the paper's "fewer than
//! ten vertices in millions" measurement.
//!
//! ## The two-level frontier (deviation from the paper's protocol)
//!
//! The paper's protocol pushes every newly discovered vertex straight
//! into the owner's shared queue, paying one lock acquisition per vertex
//! even when nobody is stealing. This engine splits the frontier into
//! two levels:
//!
//! * **Level 1 — private buffer.** Each worker owns an unsynchronized
//!   `Vec` that newly discovered vertices land in and that the worker
//!   pops from without any atomic operation.
//! * **Level 2 — shared queue.** The per-worker [`WorkQueue`] of the
//!   paper, from which thieves steal. Surplus moves from level 1 to
//!   level 2 in one batched [`push_all`](WorkQueue::push_all) when the
//!   private buffer reaches [`TraversalConfig::publish_threshold`], or
//!   as soon as the termination detector reports sleeping processors
//!   ([`TraversalConfig::publish_on_sleepers`]).
//!
//! `publish_threshold = 1` publishes every discovery immediately and
//! reproduces the paper's shared-queue protocol exactly. Steal and
//! starvation semantics are unchanged in all configurations: a worker's
//! private buffer is always empty before it registers as idle with the
//! detector, so quiescence ("all asleep") still implies every vertex has
//! been processed, and sleeper-driven publication guarantees thieves see
//! any surplus before the starvation threshold can misfire.
//!
//! ## Direction-optimizing traversal (deviation from the paper)
//!
//! The paper's traversal is pure top-down: work is proportional to the
//! edges leaving the frontier. On low-diameter graphs the frontier
//! briefly spans most of the graph, and in those rounds a Beamer-style
//! *bottom-up* sweep is cheaper: every unvisited vertex scans its own
//! CSR row for *any* visited neighbor and claims itself. Spanning trees
//! make this simpler than level-synchronous BFS — any visited vertex is
//! a valid parent, no level check needed.
//!
//! With [`Direction::Hybrid`], workers maintain a frontier-size
//! estimate (shared `visited`/`drained` tallies flushed on the cancel
//! cadence) and any worker that observes
//! `frontier × alpha > unvisited` *and* `frontier × beta > n` raises a
//! direction switch through the round's abort byte. The team rendezvous
//! at a barrier and runs bottom-up sweeps, partitioned by an atomic
//! chunk cursor; since the cursor hands each vertex to exactly one
//! rank, a claim is a single relaxed store, not a CAS (model-checked in
//! st-smp's `loom_models/bottom_up.rs`). Each sweep is decided by a
//! leader-written control word: rank 0 alone reads the claim tally in
//! the window between barriers and publishes run/done/switch-back/
//! cancel, so followers never race the reset. When a sweep's claims
//! fall below `n / beta` the team switches back, reseeding each rank's
//! private buffer with its own last-sweep claims — which are exactly
//! the live frontier: any vertex still unvisited after a full sweep
//! had no visited neighbor *before* that sweep, so all its visited
//! neighbors are last-sweep claims. The same argument lets the switch
//! *into* bottom-up drop the pre-switch frontier (queues and private
//! buffers) entirely.
//!
//! The entry point with team context, [`Traversal::run_worker_ctx`],
//! is required for the barriers; the legacy [`Traversal::run_worker`]
//! stays pure top-down regardless of the configured direction.
//!
//! ## Engine integration
//!
//! A [`Traversal`] is a *borrowed view*: the color/parent arrays and the
//! per-rank queues live in a reusable [`Workspace`](crate::engine::Workspace)
//! arena, and the [`TerminationDetector`] is owned by the long-lived
//! [`Executor`] team. Construct one with
//! [`Workspace::traversal`](crate::engine::Workspace::traversal), which
//! grows-and-resets the arrays for the target graph without reallocating
//! across runs.
//!
//! The engine is also reused to orient Shiloach–Vishkin's undirected
//! tree-edge output into rooted parent arrays (see [`crate::orient`]),
//! which keeps the SV pipeline parallel end to end.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use st_graph::{CsrGraph, VertexId};
use st_obs::{now_ns, Counter, CounterSet, Phase, TraceSet};
use st_smp::pad::CacheAligned;
use st_smp::steal::{StealPolicy, WorkQueue};
use st_smp::{AtomicU32Array, CancelToken, Executor, IdleOutcome, TeamCtx, TerminationDetector};

use crate::config::RuntimeConfig;

/// Color value meaning "not yet visited".
pub const UNCOLORED: u32 = 0;

/// Which strategy phase 2 uses to expand the frontier (see the
/// direction-optimizing section of the module docs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Direction {
    /// Classic frontier expansion (the paper's Alg. 1). The default.
    #[default]
    TopDown,
    /// Bottom-up sweeps only: every sweep, each unvisited vertex scans
    /// its CSR row for a visited parent. A forced mode for tests and
    /// ablation — it takes O(graph diameter) full-vertex sweeps, so it
    /// is only reasonable on small or low-diameter graphs.
    BottomUp,
    /// Direction-optimizing: start top-down, switch to bottom-up when
    /// the frontier gets dense (`frontier × alpha > unvisited` and
    /// `frontier × beta > n`), and back once a sweep claims fewer than
    /// `n / beta` vertices. Only [`Traversal::run_worker_ctx`] honors
    /// it; the legacy [`Traversal::run_worker`] entry stays top-down.
    Hybrid,
}

/// Tuning knobs of the traversal.
///
/// Not `Copy` since it carries a [`CancelToken`]; clone it where the
/// old code copied (the token clone is an `Arc` bump — or free for the
/// default inert token).
#[derive(Clone, Debug, PartialEq)]
pub struct TraversalConfig {
    /// How much a thief takes from a victim.
    pub steal_policy: StealPolicy,
    /// How long an idle processor sleeps before re-scanning for victims.
    pub idle_timeout: Duration,
    /// Sleeping-processor count that aborts the traversal
    /// ([`None`] disables the starvation detector, matching the paper's
    /// observation that it "will almost never be triggered").
    pub starvation_threshold: Option<usize>,
    /// Seed for the per-processor victim-selection RNGs.
    pub seed: u64,
    /// How many vertices the owner dequeues per queue-lock acquisition
    /// (the `ablate_chunk` knob). 1 reproduces the paper's per-vertex
    /// protocol exactly; larger batches amortize lock traffic at the
    /// cost of making the in-flight batch unstealable.
    pub local_batch: usize,
    /// Private-buffer size at which a worker publishes surplus frontier
    /// vertices to its shared stealable queue (see the module docs).
    /// `1` publishes every discovery immediately — the paper's protocol;
    /// `usize::MAX` publishes only when sleepers demand it (assuming
    /// [`publish_on_sleepers`](Self::publish_on_sleepers) stays on).
    /// Clamped to at least 1.
    pub publish_threshold: usize,
    /// Publish the whole private buffer (and wake the sleepers) whenever
    /// the termination detector reports sleeping processors, regardless
    /// of the threshold. Keeps steal/starvation behavior equivalent to
    /// the paper's protocol; turning it off is only safe because idle
    /// sleepers re-scan on a timeout, but it delays work distribution
    /// and is exposed for ablation only.
    pub publish_on_sleepers: bool,
    /// Cooperative cancellation token. The default
    /// ([`CancelToken::none`]) never fires and costs one non-atomic
    /// check per poll; a live token (from
    /// [`CancelToken::new`]/[`with_deadline`](CancelToken::with_deadline))
    /// is polled at publication boundaries, on the idle path, and at
    /// round barriers, ending the traversal with
    /// [`TraversalOutcome::Cancelled`].
    pub cancel: CancelToken,
    /// Traversal direction strategy. [`Direction::Hybrid`] requires the
    /// team entry point [`Traversal::run_worker_ctx`].
    pub direction: Direction,
    /// Hybrid switch-forward weight (Beamer's α): switch to bottom-up
    /// when the estimated live frontier times `alpha` exceeds the
    /// unvisited count. Larger values switch later. Must be positive.
    pub alpha: f64,
    /// Hybrid switch-back weight (Beamer's β): return to top-down once
    /// a sweep claims fewer than `n / beta` vertices; also guards the
    /// forward switch (`frontier × beta > n`) so the end-game tail
    /// never flips to bottom-up. Must be at least 1.
    pub beta: f64,
    /// Software-prefetch lookahead, in frontier entries. Top-down
    /// prefetches the CSR row of the vertex `distance` below the top of
    /// the private buffer; bottom-up additionally prefetches the color
    /// cell `distance` neighbors ahead in the row being scanned. `0`
    /// disables software prefetch entirely.
    pub prefetch_distance: usize,
}

/// The process-wide [`RuntimeConfig`], parsed and validated once.
/// A malformed `ST_*` value aborts the process with the validation
/// message — a bad environment should stop the run, not silently skew
/// it into looking like a baseline.
pub(crate) fn runtime_env() -> &'static RuntimeConfig {
    static CELL: std::sync::OnceLock<RuntimeConfig> = std::sync::OnceLock::new();
    CELL.get_or_init(|| RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}")))
}

impl Default for TraversalConfig {
    /// The two-level frontier defaults, with any `ST_PUBLISH_THRESHOLD`,
    /// `ST_PUBLISH_ON_SLEEPERS`, or `ST_LOCAL_BATCH` environment
    /// overrides applied (parsed and validated once per process via
    /// [`RuntimeConfig::from_env`]). The CI stress job uses
    /// `ST_PUBLISH_THRESHOLD=1` to pin the whole suite to the paper's
    /// publish-everything protocol.
    fn default() -> Self {
        let mut cfg = Self::base();
        runtime_env().apply_frontier(&mut cfg);
        cfg
    }
}

impl TraversalConfig {
    /// The literal defaults, ignoring the environment.
    fn base() -> Self {
        Self {
            steal_policy: StealPolicy::Half,
            idle_timeout: Duration::from_micros(200),
            starvation_threshold: None,
            seed: 0x5eed,
            local_batch: 1,
            publish_threshold: 64,
            publish_on_sleepers: true,
            cancel: CancelToken::none(),
            direction: Direction::TopDown,
            // Beamer's published constants, adapted to vertex counts
            // (the estimator tracks frontier vertices, not edges).
            alpha: 14.0,
            beta: 24.0,
            prefetch_distance: 1,
        }
    }

    /// The paper's per-vertex shared-queue protocol: every discovered
    /// vertex is published (and stealable) immediately, and the owner
    /// dequeues one vertex per lock acquisition. This is the seed
    /// configuration the `traversal-frontier` benchmark compares
    /// against; it is pinned regardless of `ST_*` overrides.
    pub fn paper_protocol() -> Self {
        Self {
            publish_threshold: 1,
            local_batch: 1,
            ..Self::base()
        }
    }
}

/// Why a traversal round ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraversalOutcome {
    /// Quiescence: every reachable vertex has been processed.
    Completed,
    /// The starvation threshold fired; the caller should fall back.
    Starved,
    /// The [`TraversalConfig::cancel`] token fired; the partial state is
    /// abandoned.
    Cancelled,
}

/// No abort requested (hot-path fast case).
const ABORT_NONE: u8 = 0;
/// The starvation detector fired; fall back to SV.
const ABORT_STARVED: u8 = 1;
/// The cancel token fired; abandon the job.
const ABORT_CANCELLED: u8 = 2;
/// A hybrid worker requested a top-down → bottom-up switch; the team
/// rendezvous at a barrier instead of exiting. Every transition out of
/// [`ABORT_NONE`] is a CAS, so the byte settles exactly once per round
/// and all ranks route to the same destination (the loser of a racing
/// CAS follows the settled value — model-checked in st-smp's
/// `loom_models/bottom_up.rs`).
const ABORT_SWITCH: u8 = 3;

/// Leader-written per-sweep control word (see [`Traversal::bottom_up_phase`]).
const CTL_RUN: u8 = 0;
/// Quiescence: the previous sweep claimed nothing.
const CTL_DONE: u8 = 1;
/// The frontier went sparse; switch back to top-down.
const CTL_SWITCH: u8 = 2;
/// The cancel token fired.
const CTL_CANCEL: u8 = 3;

/// Vertices per bottom-up cursor grab: large enough to amortize the
/// shared `fetch_add`, small enough to balance tail sweeps across the
/// team.
const BU_CHUNK: usize = 4096;

/// Poll the cancel token every this many processed vertices (power of
/// two). Keeps the per-vertex cost at one abort-flag load; the token
/// itself (which may read the clock for deadline tokens) is touched
/// only on this cadence and on the cold idle path.
const CANCEL_POLL_MASK: usize = 0xFF;

/// Shared state of one traversal session, borrowed from a
/// [`Workspace`](crate::engine::Workspace) arena and the team's
/// [`Executor`]. Created once per algorithm run and reused across
/// per-component rounds; dropping it releases the workspace borrow
/// without freeing any array.
pub struct Traversal<'a> {
    g: &'a CsrGraph,
    /// `color[v]`: [`UNCOLORED`] or the 1-based label of a processor that
    /// colored v. May be longer than `g.num_vertices()` (grown arena).
    color: &'a AtomicU32Array,
    /// `parent[v]`: tree parent, or [`st_graph::NO_VERTEX`].
    parent: &'a AtomicU32Array,
    queues: &'a [CacheAligned<WorkQueue<VertexId>>],
    detector: &'a TerminationDetector,
    /// Workspace-owned per-rank counters; workers flush their batched
    /// local tallies here at the end of each round, slow paths (steals,
    /// barriers) write directly.
    counters: &'a CounterSet,
    /// Workspace-owned span rings (no-op unless built with `obs-trace`).
    trace: &'a TraceSet,
    cfg: TraversalConfig,
    /// Round-wide abort flag ([`ABORT_NONE`]/[`ABORT_STARVED`]/
    /// [`ABORT_CANCELLED`]/[`ABORT_SWITCH`]): one byte so the per-vertex
    /// check stays a single Acquire load regardless of how many abort
    /// reasons exist.
    abort: AtomicU8,
    /// Job-cumulative count of colored vertices (discoveries + seeds +
    /// marks), flushed on the poll cadence. `n - visited` estimates the
    /// unvisited count for the direction heuristic.
    visited: AtomicUsize,
    /// Job-cumulative count of vertices no longer on the live frontier
    /// (expanded top-down, marked, discarded at a switch, or claimed in
    /// a non-final bottom-up sweep). `visited - drained` estimates the
    /// live frontier.
    drained: AtomicUsize,
    /// Largest frontier estimate observed this round; rank 0 flushes it
    /// into [`Counter::FrontierPeak`] at the end of
    /// [`run_worker_ctx`](Self::run_worker_ctx).
    frontier_peak: AtomicUsize,
    /// Bottom-up sweep chunk cursor (reset by the sweep leader).
    cursor: AtomicUsize,
    /// Claims made in the current bottom-up sweep; read only by the
    /// sweep leader in the window between barriers.
    sweep_claims: AtomicUsize,
    /// Leader-written sweep decision ([`CTL_RUN`]…), read by followers
    /// only after the sweep-start barrier.
    sweep_ctl: AtomicU8,
}

impl<'a> Traversal<'a> {
    /// Assembles a traversal view from workspace-owned parts. The
    /// arrays must be initialized (`color` prefix [`UNCOLORED`],
    /// `parent` prefix [`st_graph::NO_VERTEX`]) and the queues empty;
    /// [`Workspace::traversal`](crate::engine::Workspace::traversal)
    /// guarantees all of it.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        g: &'a CsrGraph,
        color: &'a AtomicU32Array,
        parent: &'a AtomicU32Array,
        queues: &'a [CacheAligned<WorkQueue<VertexId>>],
        detector: &'a TerminationDetector,
        counters: &'a CounterSet,
        trace: &'a TraceSet,
        cfg: TraversalConfig,
    ) -> Self {
        debug_assert!(!queues.is_empty(), "traversal needs at least one processor");
        debug_assert!(color.len() >= g.num_vertices());
        debug_assert!(parent.len() >= g.num_vertices());
        debug_assert!(counters.len() >= queues.len());
        debug_assert!(trace.len() >= queues.len());
        Self {
            g,
            color,
            parent,
            queues,
            detector,
            counters,
            trace,
            cfg,
            abort: AtomicU8::new(ABORT_NONE),
            visited: AtomicUsize::new(0),
            drained: AtomicUsize::new(0),
            frontier_peak: AtomicUsize::new(0),
            cursor: AtomicUsize::new(0),
            sweep_claims: AtomicUsize::new(0),
            sweep_ctl: AtomicU8::new(CTL_RUN),
        }
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.queues.len()
    }

    /// The shared color array (live prefix `g.num_vertices()`).
    pub fn color(&self) -> &AtomicU32Array {
        self.color
    }

    /// The shared parent array (live prefix `g.num_vertices()`).
    pub fn parent(&self) -> &AtomicU32Array {
        self.parent
    }

    /// True when `v` has been colored.
    pub fn is_colored(&self, v: VertexId) -> bool {
        self.color.load(v as usize, Ordering::Acquire) != UNCOLORED
    }

    /// Colors `v` (with the out-of-band label p+1), sets its parent, and
    /// enqueues it on `rank`'s queue. Used by the driver to seed stub
    /// vertices and roots before a round starts (single-threaded phase).
    pub fn seed(&self, rank: usize, v: VertexId, parent: VertexId) {
        let label = self.queues.len() as u32 + 1;
        self.color.store(v as usize, label, Ordering::Release);
        self.parent.store(v as usize, parent, Ordering::Release);
        self.queues[rank].push(v);
        // A seed lands straight in the shared queue: stealable, hence
        // published.
        self.counters.rank(rank).incr(Counter::ItemsPublished);
        // Seeds are colored and on the frontier: visited, not drained.
        self.visited.fetch_add(1, Ordering::Relaxed);
    }

    /// Colors `v` and sets its parent *without* enqueueing it. Used by
    /// the driver for components the stub walk covered entirely: their
    /// vertices need no traversal round at all.
    pub fn mark(&self, v: VertexId, parent: VertexId) {
        let label = self.queues.len() as u32 + 1;
        self.color.store(v as usize, label, Ordering::Release);
        self.parent.store(v as usize, parent, Ordering::Release);
        // Marked vertices never expand: visited *and* drained, so the
        // frontier estimate is untouched (stub-heavy many-component
        // graphs would otherwise inflate it permanently).
        self.visited.fetch_add(1, Ordering::Relaxed);
        self.drained.fetch_add(1, Ordering::Relaxed);
    }

    /// Resets the detector and round-local flags between per-component
    /// rounds. Must only be called while no worker is inside
    /// [`run_worker`](Self::run_worker) (i.e. between barriers).
    pub fn begin_round(&self) {
        debug_assert!(self
            .queues
            .iter()
            .all(|q| q.is_empty() || self.abort.load(Ordering::Relaxed) != ABORT_NONE));
        self.detector.reset();
        self.abort.store(ABORT_NONE, Ordering::Release);
    }

    /// Maps the abort flag to a segment exit ([`None`] when no abort is
    /// pending). `allow_switch` is set only on the hybrid path, where a
    /// pending [`ABORT_SWITCH`] routes to the rendezvous barrier; the
    /// legacy top-down path can never observe it (nothing raises a
    /// switch without a team context).
    #[inline]
    fn pending_exit(&self, allow_switch: bool) -> Option<SegmentExit> {
        match self.abort.load(Ordering::Acquire) {
            ABORT_NONE => None,
            ABORT_STARVED => Some(SegmentExit::Done(TraversalOutcome::Starved)),
            ABORT_CANCELLED => Some(SegmentExit::Done(TraversalOutcome::Cancelled)),
            _ => {
                debug_assert!(allow_switch, "switch raised without a team context");
                Some(SegmentExit::Switch)
            }
        }
    }

    /// Polls the cancel token; on fire, claims the abort byte (CAS from
    /// clean) and wakes any sleeping ranks so every worker observes the
    /// abort within one idle timeout. Returns `true` when the byte has
    /// settled on cancellation — a pending direction switch is left in
    /// place (the rendezvous leader re-polls the token, so the
    /// cancellation is honored one barrier later instead).
    #[inline]
    fn poll_cancel(&self) -> bool {
        if !self.cfg.cancel.is_cancelled() {
            return false;
        }
        let mut current = self.abort.load(Ordering::Acquire);
        loop {
            match current {
                ABORT_CANCELLED => return true,
                ABORT_SWITCH => return false,
                _ => {
                    // Cancellation claims a clean byte and outranks a
                    // starvation that already settled (a cancelled job
                    // is being torn down, not asking for the fallback).
                    match self.abort.compare_exchange(
                        current,
                        ABORT_CANCELLED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => {
                            self.detector.notify_work();
                            return true;
                        }
                        Err(actual) => current = actual,
                    }
                }
            }
        }
    }

    /// Attempts to raise a top-down → bottom-up switch. Returns `true`
    /// when the byte settled on [`ABORT_SWITCH`] (ours or a racing
    /// rank's) — the caller heads to the rendezvous barrier; `false`
    /// means a starvation or cancellation won the byte and the next
    /// [`pending_exit`](Self::pending_exit) check routes it.
    #[inline]
    fn raise_switch(&self) -> bool {
        match self.abort.compare_exchange(
            ABORT_NONE,
            ABORT_SWITCH,
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                // Wake sleepers so they observe the switch and reach the
                // barrier within one idle timeout. The raiser itself
                // stays awake until the rendezvous, so the detector can
                // never report AllDone while a switch is pending.
                self.detector.notify_work();
                true
            }
            Err(actual) => actual == ABORT_SWITCH,
        }
    }

    /// Runs processor `rank`'s share of the current round. Returns the
    /// number of vertices this processor dequeued and processed, plus the
    /// round outcome. All `p` processors must call this exactly once per
    /// round.
    ///
    /// Observability: the hot loop tallies into plain locals
    /// ([`WorkerTally`]) and this wrapper flushes them to the rank's
    /// [`CounterSlot`](st_obs::CounterSlot) once per round, so the
    /// always-on cost per round is a handful of Relaxed adds. The whole
    /// shift is recorded as one [`Phase::Traverse`] span (no-op without
    /// `obs-trace`).
    pub fn run_worker(&self, rank: usize) -> (usize, TraversalOutcome) {
        let t0 = now_ns();
        let mut tally = WorkerTally::default();
        let mut state = WorkerState::new(rank, &self.cfg);
        let outcome = match self.top_down_segment(rank, &mut state, &mut tally, false) {
            SegmentExit::Done(outcome) => outcome,
            SegmentExit::Switch => unreachable!("switch raised without a team context"),
        };
        self.flush_tally(rank, &state, &tally);
        self.trace.rank(rank).record(Phase::Traverse, t0);
        (state.processed, outcome)
    }

    /// [`run_worker`](Self::run_worker) with a team context: required
    /// for [`Direction::Hybrid`] and [`Direction::BottomUp`], whose
    /// sweeps synchronize through the team barrier. All `p` ranks must
    /// call it exactly once per round (the barrier schedules of the
    /// directions are uniform by construction). With
    /// [`Direction::TopDown`] it is exactly `run_worker`.
    pub fn run_worker_ctx(&self, ctx: &TeamCtx<'_>) -> (usize, TraversalOutcome) {
        let rank = ctx.rank();
        let t0 = now_ns();
        let mut tally = WorkerTally::default();
        let mut state = WorkerState::new(rank, &self.cfg);
        let outcome = match self.cfg.direction {
            Direction::TopDown => {
                match self.top_down_segment(rank, &mut state, &mut tally, false) {
                    SegmentExit::Done(outcome) => outcome,
                    SegmentExit::Switch => unreachable!("switch raised in top-down mode"),
                }
            }
            Direction::BottomUp => match self.bottom_up_phase(ctx, &mut state, &mut tally, true) {
                BottomUpExit::Done(outcome) => outcome,
                BottomUpExit::SwitchBack => unreachable!("forced bottom-up never switches back"),
            },
            Direction::Hybrid => loop {
                match self.top_down_segment(rank, &mut state, &mut tally, true) {
                    SegmentExit::Done(outcome) => break outcome,
                    SegmentExit::Switch => {
                        // Rendezvous: every rank observed ABORT_SWITCH
                        // and arrives here with its frontier state
                        // frozen; the sweep leader takes over from the
                        // far side of this barrier.
                        self.timed_ctx_barrier(ctx);
                        match self.bottom_up_phase(ctx, &mut state, &mut tally, false) {
                            BottomUpExit::Done(outcome) => break outcome,
                            BottomUpExit::SwitchBack => continue,
                        }
                    }
                }
            },
        };
        if rank == 0 {
            // Telemetry flush. A straggler's last fetch_max can land
            // after this swap and carry into the next round's tally —
            // harmless for an estimator counter.
            let peak = self.frontier_peak.swap(0, Ordering::Relaxed);
            if peak > 0 {
                self.counters
                    .rank(0)
                    .add(Counter::FrontierPeak, peak as u64);
            }
        }
        self.flush_tally(rank, &state, &tally);
        self.trace.rank(rank).record(Phase::Traverse, t0);
        (state.processed, outcome)
    }

    /// Flushes a worker's round-local tallies to its counter slot.
    fn flush_tally(&self, rank: usize, state: &WorkerState, tally: &WorkerTally) {
        let slot = self.counters.rank(rank);
        slot.add(Counter::Processed, state.processed as u64);
        slot.add(Counter::Discovered, tally.discovered);
        slot.add(Counter::MultiColored, tally.multi_colored);
        slot.add(Counter::ItemsPublished, tally.published);
        slot.add(Counter::ItemsKeptLocal, tally.kept_local);
    }

    /// Adds the worker's pending frontier-estimate deltas to the shared
    /// tallies (cheap no-op when nothing accumulated).
    #[inline]
    fn flush_frontier_deltas(&self, state: &mut WorkerState) {
        if state.visited_delta != 0 {
            self.visited
                .fetch_add(state.visited_delta, Ordering::Relaxed);
            state.visited_delta = 0;
        }
        if state.drained_delta != 0 {
            self.drained
                .fetch_add(state.drained_delta, Ordering::Relaxed);
            state.drained_delta = 0;
        }
    }

    /// One top-down work-stealing shift (the paper's Alg. 1 hot loop);
    /// counts into `tally` without touching shared counters. With
    /// `hybrid` set it additionally maintains the frontier estimate and
    /// may exit with [`SegmentExit::Switch`]; re-entering after a
    /// switch-back resumes from the `state` the bottom-up phase seeded.
    fn top_down_segment(
        &self,
        rank: usize,
        state: &mut WorkerState,
        tally: &mut WorkerTally,
        hybrid: bool,
    ) -> SegmentExit {
        if rank == 0 {
            self.counters.rank(0).incr(Counter::RoundsTopDown);
        }
        let my_label = rank as u32 + 1;
        let my_q = &*self.queues[rank];
        // Hoisted: an inert token (the default) can never fire, so the
        // hot loop skips the poll cadence entirely and cancellation
        // costs nothing unless a caller actually armed a token.
        let cancellable = self.cfg.cancel.is_live();
        let batch_size = self.cfg.local_batch.max(1);
        let publish_threshold = self.cfg.publish_threshold.max(1);
        // On a threshold publication, keep the newest half of the buffer
        // private: those vertices are cache-hot and about to be popped.
        // Threshold 1 keeps nothing — publish-everything, the paper's
        // protocol.
        let keep_after_publish = publish_threshold / 2;
        // Shared-queue refills pull at least half a threshold's worth so
        // the owner does not re-acquire the lock per vertex to drain its
        // own published surplus. With the paper protocol (threshold 1)
        // this degenerates to `local_batch`, preserving the seed
        // semantics; refilled vertices land in the private buffer and so
        // remain eligible for sleeper-driven re-publication.
        let refill_size = batch_size.max(keep_after_publish);
        let prefetch = self.cfg.prefetch_distance;
        let n = self.g.num_vertices();
        let state = &mut *state;

        loop {
            // Drain the frontier (Alg. 1 lines 2.1-2.7): private buffer
            // first (no lock), then the shared queue.
            loop {
                let v = match state.private.pop() {
                    Some(v) => {
                        if state.private.len() >= state.shared_origin {
                            tally.kept_local += 1;
                        } else {
                            state.shared_origin = state.private.len();
                        }
                        v
                    }
                    None => {
                        if my_q.pop_chunk(&mut state.refill, refill_size) == 0 {
                            break;
                        }
                        state.private.extend(state.refill.drain(..));
                        let v = state.private.pop().expect("pop_chunk reported items");
                        // Everything just refilled came from the shared
                        // queue (the buffer was empty), so the whole
                        // remaining buffer is shared-origin.
                        state.shared_origin = state.private.len();
                        v
                    }
                };
                // We already know which vertex we will expand `prefetch`
                // pops from now; request its CSR row so the neighbor
                // list arrives while we chase the intervening ones.
                if prefetch != 0 {
                    if let Some(&next) = state
                        .private
                        .get(state.private.len().wrapping_sub(prefetch))
                    {
                        self.g.prefetch_neighbors(next);
                    }
                }
                for &w in self.g.neighbors(v) {
                    if self.color.load(w as usize, Ordering::Acquire) == UNCOLORED {
                        if self.color.try_claim(w as usize, UNCOLORED, my_label) {
                            tally.discovered += 1;
                        } else {
                            // Benign race: someone colored w between our
                            // load and CAS. Count it and proceed exactly
                            // as the paper's unconditional-store protocol
                            // does — overwrite the parent and enqueue.
                            tally.multi_colored += 1;
                        }
                        // Relaxed: the color CAS above is the publishing
                        // store for w. Cross-thread reads of `parent`
                        // only happen after the team joins or behind the
                        // round barrier, both of which order all prior
                        // writes.
                        self.parent.store(w as usize, v, Ordering::Relaxed);
                        state.private.push(w);
                        if hybrid {
                            state.visited_delta += 1;
                        }
                    }
                }
                state.processed += 1;
                if hybrid {
                    state.drained_delta += 1;
                }
                // Level 2: publish surplus in one batched push when the
                // private buffer overflows, or donate everything as soon
                // as sleepers are waiting for work.
                let sleepers = self.detector.approx_sleeping() > 0;
                let overflow = state.private.len() >= publish_threshold;
                if overflow || (self.cfg.publish_on_sleepers && sleepers) {
                    let keep = if overflow { keep_after_publish } else { 0 };
                    if state.private.len() > keep {
                        // Publish the oldest entries (the bottom of the
                        // stack); the newest stay private and cache-hot.
                        let surplus = state.private.len() - keep;
                        my_q.push_all(state.private.drain(..surplus));
                        tally.published += surplus as u64;
                        // The drain took from the bottom, shared-origin
                        // entries first.
                        state.shared_origin = state.shared_origin.saturating_sub(surplus);
                    }
                }
                if sleepers && my_q.approx_len() > 1 {
                    self.detector.notify_work();
                }
                if let Some(exit) = self.pending_exit(hybrid) {
                    return exit;
                }
                // Amortized slow-path work, every CANCEL_POLL_MASK+1
                // vertices: the cancel token (which may read the clock)
                // and, on the hybrid path, the direction heuristic.
                if state.processed & CANCEL_POLL_MASK == 0 {
                    if cancellable && self.poll_cancel() {
                        return SegmentExit::Done(TraversalOutcome::Cancelled);
                    }
                    if hybrid {
                        self.flush_frontier_deltas(state);
                        let visited = self.visited.load(Ordering::Relaxed);
                        let frontier = visited.saturating_sub(self.drained.load(Ordering::Relaxed));
                        self.frontier_peak.fetch_max(frontier, Ordering::Relaxed);
                        let unvisited = n.saturating_sub(visited);
                        // Switch forward when the frontier dominates the
                        // unvisited remainder — and is itself a real
                        // fraction of the graph, so the end-game tail
                        // never flips back to bottom-up.
                        if (frontier as f64) * self.cfg.alpha > unvisited as f64
                            && (frontier as f64) * self.cfg.beta > n as f64
                            && self.raise_switch()
                        {
                            return SegmentExit::Switch;
                        }
                    }
                }
            }
            debug_assert!(
                state.private.is_empty(),
                "private frontier must be drained before idling"
            );

            // Cold path: out of local work. Check aborts here too so a
            // rank cycling steal-idle-retry (which never touches the
            // per-vertex check) still observes a cancellation or switch
            // raised by another rank within one idle timeout.
            if hybrid {
                self.flush_frontier_deltas(state);
            }
            if let Some(exit) = self.pending_exit(hybrid) {
                return exit;
            }
            if cancellable && self.poll_cancel() {
                return SegmentExit::Done(TraversalOutcome::Cancelled);
            }

            // Local queues empty: try to steal.
            if self.try_steal(rank, &mut state.rng, &mut state.steal_buf) {
                continue;
            }

            let t_idle = now_ns();
            let outcome = self.detector.idle_wait(self.cfg.idle_timeout);
            self.trace.rank(rank).record(Phase::Idle, t_idle);
            match outcome {
                IdleOutcome::AllDone => return SegmentExit::Done(TraversalOutcome::Completed),
                IdleOutcome::Starved => {
                    // Starvation only claims a clean byte; whatever the
                    // byte settled on — a cancellation or switch that
                    // raced in — routes every rank identically.
                    let _ = self.abort.compare_exchange(
                        ABORT_NONE,
                        ABORT_STARVED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    return self
                        .pending_exit(hybrid)
                        .expect("abort byte settled before routing");
                }
                IdleOutcome::Retry => continue,
            }
        }
    }

    /// The bottom-up phase: full-vertex sweeps until quiescence, a
    /// switch-back (hybrid only), or cancellation. Entered by the whole
    /// team together — after the rendezvous barrier (hybrid) or
    /// directly from [`run_worker_ctx`](Self::run_worker_ctx) (forced).
    ///
    /// Every sweep runs the same two-barrier protocol (model-checked in
    /// st-smp's `loom_models/bottom_up.rs`): rank 0 decides the sweep in
    /// the window between the previous sweep-end barrier and the next
    /// sweep-start barrier — it alone reads `sweep_claims`, polls the
    /// cancel token, resets the cursor, and publishes the decision in
    /// `sweep_ctl` — and followers read only the control word after the
    /// sweep-start barrier, so no read ever races the leader's reset.
    fn bottom_up_phase(
        &self,
        ctx: &TeamCtx<'_>,
        state: &mut WorkerState,
        tally: &mut WorkerTally,
        forced: bool,
    ) -> BottomUpExit {
        let t0 = now_ns();
        let rank = ctx.rank();
        let n = self.g.num_vertices();
        let my_label = rank as u32 + 1;
        let cancellable = self.cfg.cancel.is_live();
        let prefetch = self.cfg.prefetch_distance;
        let my_q = &*self.queues[rank];

        // Entry: drop the pre-switch frontier. Safe because the first
        // sweep visits every unvisited vertex and the pre-sweep colors
        // are barrier-published, so anything the dropped entries would
        // have discovered is claimed by the sweep instead (module docs).
        // Each rank clears its *own* queue — no thief is running.
        let mut discarded = state.private.len();
        state.private.clear();
        state.shared_origin = 0;
        loop {
            let got = my_q.pop_chunk(&mut state.refill, usize::MAX);
            if got == 0 {
                break;
            }
            discarded += got;
            state.refill.clear();
        }
        // Dropped entries were visited but will never expand: drain
        // them so the estimate reflects the (empty) live frontier.
        state.drained_delta += discarded;
        self.flush_frontier_deltas(state);
        state.claims.clear();

        let mut first = true;
        loop {
            if rank == 0 {
                // Leader window: everything here happens between
                // barriers, unobserved by followers until the control
                // word is republished.
                let ctl = if cancellable && self.cfg.cancel.is_cancelled() {
                    CTL_CANCEL
                } else if first {
                    // Always run the first sweep — the dropped frontier
                    // above is only covered by a *completed* sweep.
                    CTL_RUN
                } else {
                    let claimed = self.sweep_claims.load(Ordering::Relaxed);
                    if claimed == 0 {
                        CTL_DONE
                    } else if !forced && (claimed as f64) * self.cfg.beta < n as f64 {
                        CTL_SWITCH
                    } else {
                        CTL_RUN
                    }
                };
                if !forced && first {
                    // Consume the ABORT_SWITCH that brought us here so
                    // the round can abort or switch again later.
                    self.abort.store(ABORT_NONE, Ordering::Release);
                }
                self.cursor.store(0, Ordering::Relaxed);
                self.sweep_claims.store(0, Ordering::Relaxed);
                self.sweep_ctl.store(ctl, Ordering::Relaxed);
                if ctl == CTL_RUN {
                    self.counters.rank(0).incr(Counter::RoundsBottomUp);
                }
            }
            first = false;
            self.timed_ctx_barrier(ctx); // sweep start: ctl published
            match self.sweep_ctl.load(Ordering::Relaxed) {
                CTL_DONE => {
                    self.trace.rank(rank).record(Phase::BottomUp, t0);
                    return BottomUpExit::Done(TraversalOutcome::Completed);
                }
                CTL_CANCEL => {
                    self.trace.rank(rank).record(Phase::BottomUp, t0);
                    return BottomUpExit::Done(TraversalOutcome::Cancelled);
                }
                CTL_SWITCH => {
                    // The last sweep's claims are exactly the live
                    // frontier (module docs); seed them back into the
                    // private buffer for the top-down tail.
                    state.private.append(&mut state.claims);
                    state.shared_origin = 0;
                    self.trace.rank(rank).record(Phase::BottomUp, t0);
                    return BottomUpExit::SwitchBack;
                }
                _ => {}
            }
            // A new sweep is running, so the previous sweep's claims
            // are interior vertices now, not frontier.
            state.drained_delta += state.claims.len();
            state.claims.clear();
            loop {
                let base = self.cursor.fetch_add(BU_CHUNK, Ordering::Relaxed);
                if base >= n {
                    break;
                }
                let hi = (base + BU_CHUNK).min(n);
                for v in base..hi {
                    // Relaxed scan loads: pre-sweep colors are barrier-
                    // published, and seeing (or missing) a same-sweep
                    // claim is benign — any visited vertex is a valid
                    // parent.
                    if self.color.load(v, Ordering::Relaxed) != UNCOLORED {
                        continue;
                    }
                    if prefetch != 0 {
                        self.g.prefetch_neighbors((v + prefetch) as VertexId);
                    }
                    let row = self.g.neighbors(v as VertexId);
                    let mut found = None;
                    for (i, &w) in row.iter().enumerate() {
                        if prefetch != 0 {
                            if let Some(&ahead) = row.get(i + prefetch) {
                                self.color.prefetch(ahead as usize);
                            }
                        }
                        if self.color.load(w as usize, Ordering::Relaxed) != UNCOLORED {
                            found = Some(w);
                            break;
                        }
                    }
                    if let Some(w) = found {
                        // The cursor handed this chunk to this rank
                        // exclusively, so the claim is a plain relaxed
                        // store — no CAS — published by the sweep-end
                        // barrier.
                        self.color.store(v, my_label, Ordering::Relaxed);
                        self.parent.store(v, w, Ordering::Relaxed);
                        state.claims.push(v as VertexId);
                    }
                }
                // Per-chunk cancellation poll: stop claiming and let the
                // leader turn the (monotone) token into CTL_CANCEL at
                // the next decision window.
                if cancellable && self.cfg.cancel.is_cancelled() {
                    break;
                }
            }
            // Bottom-up claims are both discovered and processed: the
            // sweep colored them and no later expansion revisits them.
            tally.discovered += state.claims.len() as u64;
            state.processed += state.claims.len();
            state.visited_delta += state.claims.len();
            self.flush_frontier_deltas(state);
            if !state.claims.is_empty() {
                self.sweep_claims
                    .fetch_add(state.claims.len(), Ordering::Relaxed);
            }
            self.timed_ctx_barrier(ctx); // sweep end: claims published
        }
    }

    /// A team barrier with the same per-rank accounting as
    /// [`run_rounds`](Self::run_rounds)' round barriers (episode count,
    /// wait time, span). Returns `true` on exactly one rank.
    fn timed_ctx_barrier(&self, ctx: &TeamCtx<'_>) -> bool {
        let t_ns = now_ns();
        let t0 = Instant::now();
        let leader = ctx.barrier();
        let waited = t0.elapsed().as_nanos() as u64;
        let slot = self.counters.rank(ctx.rank());
        slot.incr(Counter::Barriers);
        slot.add(Counter::BarrierWaitNs, waited);
        self.trace
            .rank(ctx.rank())
            .record_span(Phase::Barrier, t_ns, waited);
        leader
    }

    /// One steal sweep for `rank`; updates the steal counters. Returns
    /// true when anything was stolen. Counters are written directly —
    /// this is the idle path, a Relaxed add per sweep is noise.
    fn try_steal(&self, rank: usize, rng: &mut SmallRng, buf: &mut VecDeque<VertexId>) -> bool {
        let slot = self.counters.rank(rank);
        slot.incr(Counter::StealAttempts);
        let got = steal_sweep(self.queues, rank, rng, self.cfg.steal_policy, buf);
        if got > 0 {
            slot.incr(Counter::Steals);
            slot.add(Counter::StolenItems, got as u64);
            // steal_sweep re-pushes the loot into our shared queue,
            // where it is again visible to thieves.
            slot.add(Counter::ItemsPublished, got as u64);
            true
        } else {
            slot.incr(Counter::FailedSweeps);
            false
        }
    }

    /// Runs a whole multi-round session on the executor's team.
    ///
    /// Between rounds, rank 0 calls `prepare(self, round_index)` (all
    /// other ranks wait at a barrier) to seed the next round's queues —
    /// e.g. growing a stub tree for the next component. `prepare`
    /// returning `false` ends the session. Dispatching the persistent
    /// team once and cycling rounds with two barriers each is what keeps
    /// many-component graphs (2D60, sparse random) cheap.
    ///
    /// `exec` must be the same team whose detector this traversal was
    /// built against (`Workspace::traversal` ties them together).
    ///
    /// Returns per-rank processed counts, the number of barrier episodes
    /// executed, and the session outcome ([`TraversalOutcome::Starved`]
    /// as soon as any round starves).
    pub fn run_rounds<F>(
        &self,
        exec: &Executor,
        prepare: F,
    ) -> (Vec<usize>, usize, TraversalOutcome)
    where
        F: FnMut(&Self, usize) -> bool + Send,
    {
        use st_smp::SpinLock;
        assert_eq!(
            exec.size(),
            self.processors(),
            "executor team does not match traversal width"
        );
        let prepare = SpinLock::new(prepare);
        let finished = AtomicBool::new(false);
        let any_starved = AtomicBool::new(false);
        let any_cancelled = AtomicBool::new(false);
        let barriers = AtomicUsize::new(0);
        let processed = exec.run(|ctx| {
            let mut total = 0usize;
            let mut round = 0usize;
            // Barrier accounting: one episode + wait-time per rank.
            // Barriers are already heavyweight (a full team rendezvous),
            // so the always-on `Instant` read around each is noise.
            let timed_barrier = |leader_counter: &AtomicUsize| {
                let t_ns = now_ns();
                let t0 = Instant::now();
                if ctx.barrier() {
                    leader_counter.fetch_add(1, Ordering::Relaxed);
                }
                let waited = t0.elapsed().as_nanos() as u64;
                let slot = self.counters.rank(ctx.rank());
                slot.incr(Counter::Barriers);
                slot.add(Counter::BarrierWaitNs, waited);
                self.trace
                    .rank(ctx.rank())
                    .record_span(Phase::Barrier, t_ns, waited);
            };
            loop {
                if ctx.rank() == 0 {
                    // Round boundary cancellation checkpoint: a job
                    // cancelled between components never seeds the next
                    // round.
                    if self.cfg.cancel.is_cancelled() {
                        any_cancelled.store(true, Ordering::Release);
                        finished.store(true, Ordering::Release);
                    } else {
                        self.begin_round();
                        let more = (prepare.lock())(self, round);
                        if !more {
                            finished.store(true, Ordering::Release);
                        }
                    }
                }
                timed_barrier(&barriers);
                if finished.load(Ordering::Acquire) {
                    break;
                }
                let (count, outcome) = self.run_worker_ctx(&ctx);
                total += count;
                match outcome {
                    TraversalOutcome::Completed => {}
                    TraversalOutcome::Starved => any_starved.store(true, Ordering::Release),
                    TraversalOutcome::Cancelled => any_cancelled.store(true, Ordering::Release),
                }
                // The abort flags are published before this barrier and
                // read after it, so every rank takes the same branch —
                // even when outcomes diverged (e.g. one rank saw
                // AllDone while another observed the cancel token).
                timed_barrier(&barriers);
                if any_starved.load(Ordering::Acquire) || any_cancelled.load(Ordering::Acquire) {
                    break;
                }
                round += 1;
            }
            total
        });
        // Cancellation outranks starvation: a cancelled job is being
        // torn down, not asking for the SV fallback.
        let outcome = if any_cancelled.load(Ordering::Acquire) {
            TraversalOutcome::Cancelled
        } else if any_starved.load(Ordering::Acquire) {
            TraversalOutcome::Starved
        } else {
            TraversalOutcome::Completed
        };
        (processed, barriers.load(Ordering::Relaxed), outcome)
    }

    /// Collisions observed so far (see module docs). Merged from the
    /// per-rank counter slots; call between rounds or after the team
    /// joins for exact values.
    pub fn multi_colored(&self) -> usize {
        self.counters.merged().get(Counter::MultiColored) as usize
    }

    /// The per-rank counter set this session writes into (the
    /// workspace's; `Workspace::finish_job` merges it into a
    /// [`st_obs::JobMetrics`]).
    pub fn counters(&self) -> &CounterSet {
        self.counters
    }

    /// The per-rank span rings this session records into.
    pub(crate) fn trace(&self) -> &TraceSet {
        self.trace
    }

    /// Copies out the live prefix of the parent array (call after all
    /// workers joined).
    pub fn parents_vec(&self) -> Vec<VertexId> {
        self.parent.snapshot_prefix(self.g.num_vertices())
    }

    /// Copies out the live prefix of the color array.
    pub fn colors_vec(&self) -> Vec<u32> {
        self.color.snapshot_prefix(self.g.num_vertices())
    }

    /// Extracts the parent array, consuming the view (the backing
    /// workspace array is left intact for reuse).
    pub fn into_parents(self) -> Vec<VertexId> {
        self.parents_vec()
    }
}

/// Per-worker round-local tallies: plain `u64`s bumped in the hot loop
/// and flushed once per [`Traversal::run_worker`] call to the rank's
/// cache-padded [`CounterSlot`](st_obs::CounterSlot), keeping atomic
/// traffic out of the per-vertex path.
#[derive(Default)]
struct WorkerTally {
    discovered: u64,
    multi_colored: u64,
    published: u64,
    kept_local: u64,
}

/// How a top-down segment ended.
enum SegmentExit {
    /// The round is over for this rank.
    Done(TraversalOutcome),
    /// The abort byte settled on [`ABORT_SWITCH`]: head to the
    /// rendezvous barrier and enter the bottom-up phase.
    Switch,
}

/// How a bottom-up phase ended (leader-decided, uniform across ranks).
enum BottomUpExit {
    /// Quiescence or cancellation.
    Done(TraversalOutcome),
    /// The frontier went sparse; resume top-down with the private
    /// buffer seeded from this rank's last-sweep claims.
    SwitchBack,
}

/// A worker's per-round mutable state, hoisted into one struct so the
/// top-down segment can be exited (for a direction switch) and
/// re-entered without losing the frontier buffers, RNG stream, or
/// tallies-in-flight.
struct WorkerState {
    /// Victim-selection RNG.
    rng: SmallRng,
    /// Level 1 of the frontier: the owner-private LIFO buffer. No
    /// synchronization; invisible to thieves until published. Always
    /// fully drained before this worker registers as idle, which is
    /// what keeps quiescence detection sound.
    private: Vec<VertexId>,
    /// Watermark separating shared-origin entries (below: refilled from
    /// the shared queue) from locally discovered ones (above). A pop at
    /// or above it processed a vertex that was never published — the
    /// `items_kept_local` the two-level frontier exists to maximize.
    shared_origin: usize,
    /// Scratch for shared-queue refills.
    refill: VecDeque<VertexId>,
    /// Scratch for steal sweeps.
    steal_buf: VecDeque<VertexId>,
    /// Vertices this rank dequeued and expanded (plus bottom-up claims).
    processed: usize,
    /// This rank's claims in the current bottom-up sweep; becomes the
    /// switch-back seed when the sweep goes sparse.
    claims: Vec<VertexId>,
    /// Pending (unflushed) additions to [`Traversal::visited`].
    visited_delta: usize,
    /// Pending (unflushed) additions to [`Traversal::drained`].
    drained_delta: usize,
}

impl WorkerState {
    fn new(rank: usize, cfg: &TraversalConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(
                cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ),
            private: Vec::with_capacity(cfg.publish_threshold.clamp(1, 1 << 12)),
            shared_origin: 0,
            refill: VecDeque::new(),
            steal_buf: VecDeque::new(),
            processed: 0,
            claims: Vec::new(),
            visited_delta: 0,
            drained_delta: 0,
        }
    }
}

/// One steal sweep over `queues`: a few random probes, then a
/// deterministic scan so a lone victim cannot be missed forever. Stolen
/// items land in `queues[rank]` (so they stay stealable by others).
/// `buf` is caller-owned scratch (always left empty) so a round's many
/// sweeps share one allocation. Returns the number of items stolen.
///
/// Shared between [`Traversal`] and the multiroot variant — one copy of
/// the victim-selection logic.
pub(crate) fn steal_sweep(
    queues: &[CacheAligned<WorkQueue<VertexId>>],
    rank: usize,
    rng: &mut SmallRng,
    policy: StealPolicy,
    buf: &mut VecDeque<VertexId>,
) -> usize {
    let p = queues.len();
    if p == 1 {
        return 0;
    }
    // Random probes (the paper: "randomly checks other processors'
    // queues").
    for _ in 0..p {
        let victim = rng.gen_range(0..p);
        if victim == rank || queues[victim].appears_empty() {
            continue;
        }
        let got = queues[victim].steal_into(buf, policy);
        if got > 0 {
            queues[rank].push_all(buf.drain(..));
            return got;
        }
    }
    // Deterministic sweep: no appears_empty fast path here. The mirror
    // lags the real length (it is published only after the lock is
    // released), so a victim whose push landed between the mirror read
    // and this probe would be skipped — and a sweep that misses the
    // only non-empty queue sends this processor into idle_wait with
    // stealable work still published. steal_into's under-lock length
    // check is the exact test; the mirror stays a heuristic for the
    // random probes above, where a stale answer only costs one probe.
    for offset in 1..p {
        let victim = (rank + offset) % p;
        let got = queues[victim].steal_into(buf, policy);
        if got > 0 {
            queues[rank].push_all(buf.drain(..));
            return got;
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Workspace;
    use st_graph::gen::{chain, complete, random_connected, star, torus2d};
    use st_graph::validate::is_spanning_tree;
    use st_graph::NO_VERTEX;

    /// Runs a single-round traversal seeded with one root on a connected
    /// graph; returns (parents, steals).
    fn traverse(
        g: &CsrGraph,
        p: usize,
        root: VertexId,
        cfg: TraversalConfig,
    ) -> (Vec<VertexId>, usize) {
        let exec = Executor::new(p);
        let mut ws = Workspace::new();
        let t = ws.traversal(g, &exec, cfg);
        t.begin_round();
        t.seed(0, root, NO_VERTEX);
        exec.run(|ctx| {
            let (_, outcome) = t.run_worker(ctx.rank());
            assert_eq!(outcome, TraversalOutcome::Completed);
        });
        let steals = t.counters().merged().get(Counter::Steals) as usize;
        (t.parents_vec(), steals)
    }

    #[test]
    fn single_processor_matches_bfs_reachability() {
        let g = torus2d(10, 10);
        let (parents, _) = traverse(&g, 1, 0, TraversalConfig::default());
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn multi_processor_produces_valid_tree() {
        let g = random_connected(2_000, 3_000, 11);
        for p in [2, 4, 8] {
            let (parents, _) = traverse(&g, p, 0, TraversalConfig::default());
            assert!(is_spanning_tree(&g, &parents, 0), "p = {p}");
        }
    }

    #[test]
    fn star_graph_with_stealing_is_correct() {
        // All work lives in one queue after the hub is processed; other
        // processors make progress only by stealing. (Whether steals
        // actually occur is scheduler-dependent on an oversubscribed
        // host, so only correctness is asserted here; steal mechanics
        // are covered deterministically in st-smp and st-model.)
        let g = star(5_000);
        let (parents, _) = traverse(&g, 4, 0, TraversalConfig::default());
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn steal_policies_all_correct() {
        let g = random_connected(1_000, 1_500, 3);
        for policy in [StealPolicy::Half, StealPolicy::One, StealPolicy::Chunk(16)] {
            let cfg = TraversalConfig {
                steal_policy: policy,
                ..TraversalConfig::default()
            };
            let (parents, _) = traverse(&g, 4, 0, cfg);
            assert!(is_spanning_tree(&g, &parents, 0), "policy {policy:?}");
        }
    }

    /// Regression for the stale-`appears_empty` window: fake the
    /// victim's lock-free length mirror to zero (as a thief observes it
    /// between the victim's push and its mirror publication). The
    /// random probes may legitimately skip the victim, but the final
    /// deterministic sweep must find the work via `steal_into`'s exact
    /// under-lock check — before the fix it trusted the mirror and sent
    /// the rank into `idle_wait` with stealable work still published.
    #[test]
    fn deterministic_sweep_ignores_stale_empty_mirror() {
        let queues: Vec<CacheAligned<WorkQueue<VertexId>>> = (0..4)
            .map(|_| CacheAligned::new(WorkQueue::new()))
            .collect();
        queues[2].push_all([7u32, 8, 9]);
        queues[2].desync_mirror_for_test(0);
        assert!(queues[2].appears_empty(), "mirror must look empty");
        let mut rng = SmallRng::seed_from_u64(42);
        let mut buf = VecDeque::new();
        let got = steal_sweep(&queues, 0, &mut rng, StealPolicy::Half, &mut buf);
        assert!(got > 0, "sweep missed the only non-empty queue");
        assert_eq!(got + queues[2].len(), 3, "items lost in the steal");
        assert_eq!(queues[0].len(), got, "stolen items must land locally");
    }

    #[test]
    fn starvation_triggers_on_chain() {
        // A long chain with a single seed: one processor crawls, the
        // rest starve. With threshold p-1 the round must abort.
        let g = chain(50_000);
        let cfg = TraversalConfig {
            starvation_threshold: Some(3),
            ..TraversalConfig::default()
        };
        let exec = Executor::new(4);
        let mut ws = Workspace::new();
        let t = ws.traversal(&g, &exec, cfg);
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        let outcomes = exec.run(|ctx| t.run_worker(ctx.rank()).1);
        assert!(
            outcomes.iter().all(|&o| o == TraversalOutcome::Starved),
            "expected starvation, got {outcomes:?}"
        );
    }

    #[test]
    fn complete_graph_single_frontier_wave() {
        let g = complete(300);
        let (parents, _) = traverse(&g, 4, 0, TraversalConfig::default());
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn multiple_seeds_partition_work() {
        // Seeding each processor's queue with distinct chain vertices
        // (as the stub tree does) lets all processors work on a chain.
        let n = 10_000;
        let g = chain(n);
        let p = 4;
        let exec = Executor::new(p);
        let mut ws = Workspace::new();
        let t = ws.traversal(&g, &exec, TraversalConfig::default());
        t.begin_round();
        // Seed a contiguous prefix walk 0-1-2-...-(2p-1), round-robin.
        t.seed(0, 0, NO_VERTEX);
        for v in 1..(2 * p as u32) {
            t.seed((v as usize) % p, v, v - 1);
        }
        let processed: Vec<usize> = exec.run(|ctx| {
            let (count, outcome) = t.run_worker(ctx.rank());
            assert_eq!(outcome, TraversalOutcome::Completed);
            count
        });
        // Everyone processed at least its seeds; the far-end processor
        // does the bulk (the chain is pathological by design).
        assert!(processed.iter().sum::<usize>() >= n);
        let parents = t.parents_vec();
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn local_batch_sizes_are_correct() {
        let g = random_connected(3_000, 4_000, 17);
        for batch in [1usize, 4, 32] {
            let cfg = TraversalConfig {
                local_batch: batch,
                ..TraversalConfig::default()
            };
            let (parents, _) = traverse(&g, 4, 0, cfg);
            assert!(is_spanning_tree(&g, &parents, 0), "batch {batch}");
        }
        // Zero batch clamps to 1 instead of hanging.
        let cfg = TraversalConfig {
            local_batch: 0,
            ..TraversalConfig::default()
        };
        let (parents, _) = traverse(&g, 2, 0, cfg);
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn paper_protocol_matches_default_results() {
        // publish_threshold = 1 publishes every discovery immediately:
        // the seed protocol. Both configurations must produce valid
        // trees on the same inputs.
        let g = random_connected(3_000, 4_500, 23);
        for p in [1, 2, 4] {
            let (parents, _) = traverse(&g, p, 0, TraversalConfig::paper_protocol());
            assert!(is_spanning_tree(&g, &parents, 0), "paper p={p}");
            let (parents, _) = traverse(&g, p, 0, TraversalConfig::default());
            assert!(is_spanning_tree(&g, &parents, 0), "default p={p}");
        }
    }

    #[test]
    fn published_but_unstolen_work_is_drained() {
        // With p = 1 nothing is ever stolen, so every vertex the worker
        // publishes past the threshold must be drained back from its own
        // shared queue before the round can complete.
        let g = star(2_000);
        let cfg = TraversalConfig {
            publish_threshold: 4,
            ..TraversalConfig::default()
        };
        let (parents, steals) = traverse(&g, 1, 0, cfg);
        assert_eq!(steals, 0);
        assert!(is_spanning_tree(&g, &parents, 0));
    }

    #[test]
    fn never_publish_threshold_still_terminates() {
        // usize::MAX never overflows the private buffer; publication is
        // purely sleeper-driven, and with sleepers disabled too the
        // worker simply runs the whole component privately.
        let g = random_connected(2_000, 3_000, 29);
        for publish_on_sleepers in [true, false] {
            let cfg = TraversalConfig {
                publish_threshold: usize::MAX,
                publish_on_sleepers,
                ..TraversalConfig::default()
            };
            let (parents, _) = traverse(&g, 4, 0, cfg);
            assert!(
                is_spanning_tree(&g, &parents, 0),
                "publish_on_sleepers={publish_on_sleepers}"
            );
        }
    }

    #[test]
    fn starvation_still_fires_with_two_level_frontier() {
        // The private buffer must not hide the chain's serial frontier
        // from the starvation detector.
        let g = chain(50_000);
        let cfg = TraversalConfig {
            starvation_threshold: Some(3),
            publish_threshold: 256,
            ..TraversalConfig::default()
        };
        let exec = Executor::new(4);
        let mut ws = Workspace::new();
        let t = ws.traversal(&g, &exec, cfg);
        t.begin_round();
        t.seed(0, 0, NO_VERTEX);
        let outcomes = exec.run(|ctx| t.run_worker(ctx.rank()).1);
        assert!(
            outcomes.iter().all(|&o| o == TraversalOutcome::Starved),
            "expected starvation, got {outcomes:?}"
        );
    }

    #[test]
    fn seeded_colors_are_respected() {
        let g = chain(5);
        let exec = Executor::new(2);
        let mut ws = Workspace::new();
        let t = ws.traversal(&g, &exec, TraversalConfig::default());
        t.begin_round();
        t.seed(0, 2, NO_VERTEX);
        assert!(t.is_colored(2));
        assert!(!t.is_colored(1));
    }

    #[test]
    fn workspace_arrays_are_reused_across_graphs() {
        // The same workspace serves graphs of shrinking and growing n;
        // every run starts from a fully reset prefix.
        let exec = Executor::new(2);
        let mut ws = Workspace::new();
        for n in [1000usize, 10, 5000, 100] {
            let g = chain(n);
            let t = ws.traversal(&g, &exec, TraversalConfig::default());
            t.begin_round();
            t.seed(0, 0, NO_VERTEX);
            exec.run(|ctx| {
                t.run_worker(ctx.rank());
            });
            let parents = t.parents_vec();
            assert!(is_spanning_tree(&g, &parents, 0), "n = {n}");
        }
    }
}
