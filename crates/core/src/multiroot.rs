//! Multi-root concurrent traversal — an extension beyond the paper.
//!
//! The paper's driver (and [`crate::bader_cong`]) handles one component
//! per barrier-delimited round, absorbing sub-stub components
//! sequentially. This module explores the other end of the design
//! space: **all components at once**. Idle processors claim fresh roots
//! from a shared cursor and grow trees concurrently; when two trees
//! touch (a worker finds a neighbor colored by a different tree), the
//! crossing edge is recorded as a *conflict*. After quiescence, a
//! union-find pass over the conflict edges picks one merge edge per
//! tree pair and splices the trees by **re-rooting**: the parent chain
//! from the merge point up to its root is reversed and attached across
//! the conflict edge — an O(depth) pointer reversal that is always safe
//! on a valid forest, in any merge order.
//!
//! Why every component still ends up as exactly one tree: whenever
//! vertices v (tree A) and w (tree B ≠ A) are adjacent, whichever worker
//! examines the edge last sees the other side's color and records the
//! conflict, so the conflict graph connects all trees sharing a
//! component, and the union-find pass merges them all.
//!
//! Trade-off vs. the round driver: no barriers at all and full
//! processor utilization across many medium components, in exchange for
//! the sequential O(conflicts × depth) merge pass — best when
//! components are numerous and shallow (2D60-like inputs), worst when a
//! single deep component attracts many speculative root claims.
//!
//! The color/parent arrays and the per-rank queues come from the
//! caller's [`Workspace`](crate::engine::Workspace), and the victim
//! selection shares [`crate::traversal`]'s steal sweep.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use st_graph::dsu::DisjointSets;
use st_graph::{CsrGraph, VertexId, NO_VERTEX};
use st_obs::{now_ns, Counter, Phase};
use st_smp::{Executor, IdleOutcome};

use crate::engine::{SpanningAlgorithm, Workspace};
use crate::result::{AlgoStats, SpanningForest};
use crate::traversal::{steal_sweep, TraversalConfig};

/// Color value meaning "not yet claimed".
const UNCLAIMED: u32 = 0;

/// Computes a spanning forest with the multi-root concurrent strategy on
/// a one-shot team of `p` processors (see [`spanning_forest_multiroot_on`]).
#[deprecated(
    since = "0.6.0",
    note = "spawns a fresh team per call; use `Engine::job(&g).algorithm(&Multiroot::new(cfg)).run()` or the st-service submission API"
)]
pub fn spanning_forest_multiroot(g: &CsrGraph, p: usize, cfg: TraversalConfig) -> SpanningForest {
    let exec = Executor::new(p);
    let mut ws = Workspace::new();
    spanning_forest_multiroot_on(g, &exec, &mut ws, cfg)
}

/// Computes a spanning forest with the multi-root concurrent strategy on
/// an existing team and workspace.
///
/// `cfg.starvation_threshold` is ignored (there is no fallback: idle
/// processors claim new roots instead of starving); the steal policy,
/// idle timeout, and seed apply as in the round driver.
pub fn spanning_forest_multiroot_on(
    g: &CsrGraph,
    exec: &Executor,
    ws: &mut Workspace,
    cfg: TraversalConfig,
) -> SpanningForest {
    let p = exec.size();
    let n = g.num_vertices();
    ws.begin_job(exec);
    if n == 0 {
        return SpanningForest {
            parents: Vec::new(),
            roots: Vec::new(),
            stats: AlgoStats {
                metrics: ws.finish_job(exec),
                ..AlgoStats::default()
            },
        };
    }

    // color[v]: UNCLAIMED, or 1 + the id of the root whose tree claimed
    // v. UNCLAIMED coincides with the traversal's UNCOLORED, so the
    // frontier prep's reset covers it.
    ws.prep_frontier(n, p, exec, None);
    exec.detector().reset();
    let color = &ws.color;
    let parent = &ws.parent;
    let queues = &ws.queues[..p];
    let counters = &ws.counters;
    let trace = &ws.trace;
    let detector = exec.detector();

    let cursor = AtomicUsize::new(0);
    // Roots claimed, in claim order (for stats; merged roots drop out of
    // the final root set).
    let claimed_roots = Mutex::new(Vec::<VertexId>::new());

    // Claims the next unclaimed vertex as a fresh root.
    let claim_root = || -> Option<VertexId> {
        loop {
            let pos = cursor.fetch_add(1, Ordering::Relaxed);
            if pos >= n {
                return None;
            }
            if color.try_claim(pos, UNCLAIMED, pos as u32 + 1) {
                claimed_roots.lock().unwrap().push(pos as VertexId);
                return Some(pos as VertexId);
            }
        }
    };

    type RankOut = (usize, Vec<(VertexId, VertexId)>);
    let per_rank: Vec<RankOut> = exec.run(|ctx| {
        let rank = ctx.rank();
        let my_q = &*queues[rank];
        let slot = counters.rank(rank);
        let ring = trace.rank(rank);
        let t_run = now_ns();
        let mut rng =
            SmallRng::seed_from_u64(cfg.seed ^ (rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut steal_buf: VecDeque<VertexId> = VecDeque::new();
        let mut processed = 0usize;
        // Hot-loop tallies stay plain u64s, flushed to `slot` at exit.
        let mut discovered = 0u64;
        let mut multi_colored = 0u64;
        let mut published = 0u64;
        let mut conflicts: Vec<(VertexId, VertexId)> = Vec::new();

        loop {
            while let Some(v) = my_q.pop() {
                let my_tree = color.load(v as usize, Ordering::Acquire);
                debug_assert_ne!(my_tree, UNCLAIMED);
                for &w in g.neighbors(v) {
                    let c = color.load(w as usize, Ordering::Acquire);
                    if c == UNCLAIMED {
                        if color.try_claim(w as usize, UNCLAIMED, my_tree) {
                            parent.store(w as usize, v, Ordering::Release);
                            my_q.push(w);
                            discovered += 1;
                            // Multiroot has no private buffer: every
                            // discovery goes straight to the shared queue.
                            published += 1;
                        } else {
                            // Lost the claim; whoever won may be another
                            // tree.
                            multi_colored += 1;
                            let c2 = color.load(w as usize, Ordering::Acquire);
                            if c2 != my_tree {
                                conflicts.push((v, w));
                            }
                        }
                    } else if c != my_tree {
                        conflicts.push((v, w));
                    }
                }
                processed += 1;
                if detector.approx_sleeping() > 0 && my_q.approx_len() > 1 {
                    detector.notify_work();
                }
            }
            // Local queue empty: steal, then claim a fresh root, then
            // sleep.
            slot.incr(Counter::StealAttempts);
            let got = steal_sweep(queues, rank, &mut rng, cfg.steal_policy, &mut steal_buf);
            if got > 0 {
                slot.incr(Counter::Steals);
                slot.add(Counter::StolenItems, got as u64);
                slot.add(Counter::ItemsPublished, got as u64);
                continue;
            }
            slot.incr(Counter::FailedSweeps);
            if let Some(r) = claim_root() {
                my_q.push(r);
                published += 1;
                continue;
            }
            let t_idle = now_ns();
            let outcome = detector.idle_wait(cfg.idle_timeout);
            ring.record(Phase::Idle, t_idle);
            match outcome {
                IdleOutcome::AllDone => break,
                IdleOutcome::Starved => unreachable!("threshold disabled"),
                IdleOutcome::Retry => continue,
            }
        }
        slot.add(Counter::Processed, processed as u64);
        slot.add(Counter::Discovered, discovered);
        slot.add(Counter::MultiColored, multi_colored);
        slot.add(Counter::ItemsPublished, published);
        ring.record(Phase::Traverse, t_run);
        (processed, conflicts)
    });

    // --- Sequential merge pass: one merge edge per tree pair.
    let mut parents: Vec<VertexId> = ws.parents_prefix(n);
    let colors = ws.colors_prefix(n);
    let mut dsu = DisjointSets::new(n);
    let mut merges = 0usize;
    let mut processed_total = Vec::with_capacity(p);
    let mut all_conflicts: Vec<(VertexId, VertexId)> = Vec::new();
    for (count, conflicts) in per_rank {
        processed_total.push(count);
        all_conflicts.extend(conflicts);
    }
    for (v, w) in all_conflicts {
        let tv = colors[v as usize] - 1;
        let tw = colors[w as usize] - 1;
        if !dsu.union(tv, tw) {
            continue; // trees already merged via another edge
        }
        // Re-root v's current tree at v and hang it under w.
        let mut prev = w;
        let mut cur = v;
        while cur != NO_VERTEX {
            let next = parents[cur as usize];
            parents[cur as usize] = prev;
            prev = cur;
            cur = next;
        }
        merges += 1;
    }

    let roots: Vec<VertexId> = parents
        .iter()
        .enumerate()
        .filter(|&(_, &pp)| pp == NO_VERTEX)
        .map(|(v, _)| v as VertexId)
        .collect();
    let claimed = claimed_roots.into_inner().unwrap().len();
    let metrics = ws.finish_job(exec);
    let stats = AlgoStats {
        components: roots.len(),
        multi_colored: metrics.get(Counter::MultiColored) as usize,
        steals: metrics.get(Counter::Steals) as usize,
        stolen_items: metrics.get(Counter::StolenItems) as usize,
        per_proc_processed: processed_total,
        // Record speculative claims merged away in the grafts slot: the
        // closest existing notion (merges = claims - components).
        grafts: merges,
        iterations: claimed,
        barriers: 0,
        metrics,
        ..AlgoStats::default()
    };
    SpanningForest {
        parents,
        roots,
        stats,
    }
}

/// The multi-root strategy as a [`SpanningAlgorithm`].
///
/// Not `Copy`: the embedded [`TraversalConfig`] carries a
/// [`CancelToken`](st_smp::CancelToken).
#[derive(Clone, Debug, Default)]
pub struct Multiroot {
    cfg: TraversalConfig,
}

impl Multiroot {
    /// With explicit traversal tuning.
    pub fn new(cfg: TraversalConfig) -> Self {
        Self { cfg }
    }

    /// With default tuning.
    pub fn with_defaults() -> Self {
        Self::default()
    }
}

impl SpanningAlgorithm for Multiroot {
    fn name(&self) -> &'static str {
        "multiroot"
    }

    fn run(&self, g: &CsrGraph, exec: &Executor, ws: &mut Workspace) -> SpanningForest {
        spanning_forest_multiroot_on(g, exec, ws, self.cfg.clone())
    }
}

#[cfg(test)]
// The deprecated one-shot wrappers are exercised on purpose: the shims
// must keep working until they are removed.
#[allow(deprecated)]
mod tests {
    use super::*;
    use st_graph::gen;
    use st_graph::validate::{count_components, is_spanning_forest};

    fn check(g: &CsrGraph, p: usize) -> SpanningForest {
        let f = spanning_forest_multiroot(g, p, TraversalConfig::default());
        assert!(
            is_spanning_forest(g, &f.parents),
            "invalid multiroot forest at p = {p}"
        );
        assert_eq!(f.num_trees(), count_components(g), "p = {p}");
        f
    }

    #[test]
    fn connected_graphs() {
        for p in [1usize, 2, 4, 8] {
            check(&gen::torus2d(20, 20), p);
            check(&gen::random_connected(2_000, 3_000, 7), p);
        }
    }

    #[test]
    fn many_components_without_barriers() {
        let g = gen::mesh2d_p(40, 40, 0.55, 3);
        let f = check(&g, 4);
        assert_eq!(f.stats.barriers, 0, "multiroot mode uses no barriers");
        // Speculative claims beyond the component count were merged away.
        assert_eq!(
            f.stats.iterations - f.stats.grafts,
            f.num_trees(),
            "claims - merges = final trees"
        );
    }

    #[test]
    fn chain_forces_cross_tree_merges() {
        // Idle processors claim roots mid-chain, so trees must merge.
        let g = gen::chain(20_000);
        let f = check(&g, 4);
        assert_eq!(f.num_trees(), 1);
    }

    #[test]
    fn star_with_speculative_leaf_claims() {
        let g = gen::star(5_000);
        let f = check(&g, 8);
        assert_eq!(f.num_trees(), 1);
    }

    #[test]
    fn repeated_runs_stay_valid() {
        let g = gen::ad3(1_500, 9);
        let reference = count_components(&g);
        for seed in 0..10 {
            let cfg = TraversalConfig {
                seed,
                ..TraversalConfig::default()
            };
            let f = spanning_forest_multiroot(&g, 4, cfg);
            assert!(is_spanning_forest(&g, &f.parents), "seed {seed}");
            assert_eq!(f.num_trees(), reference, "seed {seed}");
        }
    }

    #[test]
    fn shared_engine_runs_stay_valid() {
        // The round driver and multiroot share one workspace: state from
        // one strategy must not contaminate the other.
        let exec = Executor::new(4);
        let mut ws = Workspace::new();
        let g = gen::mesh2d_p(30, 30, 0.6, 2);
        let reference = count_components(&g);
        for _ in 0..3 {
            let f = spanning_forest_multiroot_on(&g, &exec, &mut ws, TraversalConfig::default());
            assert!(is_spanning_forest(&g, &f.parents));
            assert_eq!(f.num_trees(), reference);
            let f2 = crate::bader_cong::BaderCong::with_defaults().run_on(&g, &exec, &mut ws);
            assert!(is_spanning_forest(&g, &f2.parents));
        }
    }

    #[test]
    fn scale_free_hubs() {
        let g = gen::rmat(11, 6, gen::RmatParams::standard(), 3);
        check(&g, 4);
    }

    #[test]
    fn empty_and_edgeless() {
        let f = spanning_forest_multiroot(&CsrGraph::empty(0), 2, TraversalConfig::default());
        assert!(f.parents.is_empty());
        let f = check(&CsrGraph::empty(6), 3);
        assert_eq!(f.num_trees(), 6);
    }

    #[test]
    fn agrees_with_round_driver_on_structure() {
        let g = gen::mesh3d_p(12, 12, 12, 0.4, 5);
        let round = crate::bader_cong::BaderCong::with_defaults().spanning_forest(&g, 4);
        let multi = check(&g, 4);
        assert_eq!(round.num_trees(), multi.num_trees());
        assert_eq!(round.num_tree_edges(), multi.num_tree_edges());
    }
}
