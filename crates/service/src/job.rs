//! Job-side types: submission priorities, terminal errors, and the
//! [`JobHandle`] a tenant polls, waits on, or cancels.

use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};

use st_core::SpanningForest;
use st_obs::{JobOutcomeKind, TraceId};
use st_smp::CancelToken;

/// Admission-queue priority class. Within a class, jobs run in
/// submission order; across classes, every queued `High` job is
/// dispatched before any `Normal`, and `Normal` before `Low`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Dispatched first.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Dispatched only when no higher class is waiting.
    Low,
}

impl Priority {
    /// Lane index (0 = highest) into the admission queue.
    pub(crate) fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        }
    }

    /// Number of priority lanes.
    pub(crate) const LANES: usize = 3;
}

/// Why a job did not produce a forest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobError {
    /// `try_submit` found the admission queue full.
    Backpressure,
    /// The job's [`CancelToken`] fired (explicitly) before or during
    /// execution.
    Cancelled,
    /// The job's deadline passed before it finished.
    DeadlineExceeded,
    /// The algorithm panicked; the payload's message is preserved. The
    /// pool isolated the panic — other tenants were unaffected.
    Panicked(String),
    /// The service was shut down before the job ran.
    ShuttingDown,
    /// A catalog-addressed submission named a
    /// [`GraphId`](crate::GraphId) that is not (or no longer)
    /// registered.
    UnknownGraph,
    /// The submitting tenant already holds its full quota of queued
    /// jobs; this submission was rejected at admission.
    QuotaExceeded,
    /// The job's deadline was shorter than the expected queue delay of
    /// its priority lane, so it was rejected at admission rather than
    /// queued to miss.
    DeadlineUnmeetable,
    /// The submission pinned an exact graph version
    /// ([`GraphSel::Pinned`](crate::GraphSel)) that is no longer the
    /// live one and whose result is no longer cached; the payload is
    /// the version the catalog holds now.
    StaleVersion(u32),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Backpressure => f.write_str("admission queue full"),
            JobError::Cancelled => f.write_str("job cancelled"),
            JobError::DeadlineExceeded => f.write_str("job deadline exceeded"),
            JobError::Panicked(msg) => write!(f, "job panicked: {msg}"),
            JobError::ShuttingDown => f.write_str("service shutting down"),
            JobError::UnknownGraph => f.write_str("graph not in catalog"),
            JobError::QuotaExceeded => f.write_str("tenant queued-job quota exceeded"),
            JobError::DeadlineUnmeetable => {
                f.write_str("deadline shorter than the expected queue delay")
            }
            JobError::StaleVersion(current) => {
                write!(f, "pinned graph version is stale (catalog is at v{current})")
            }
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    /// The [`PoolGauges`](st_obs::PoolGauges) lane this terminal error
    /// lands in. `Backpressure` never reaches a gauge through this path
    /// (rejections are counted at admission) and `ShuttingDown` is
    /// folded into the cancelled lane.
    pub(crate) fn outcome_kind(&self) -> JobOutcomeKind {
        match self {
            JobError::Cancelled
            | JobError::ShuttingDown
            | JobError::Backpressure
            | JobError::UnknownGraph
            | JobError::QuotaExceeded
            | JobError::DeadlineUnmeetable
            | JobError::StaleVersion(_) => JobOutcomeKind::Cancelled,
            JobError::DeadlineExceeded => JobOutcomeKind::DeadlineExceeded,
            JobError::Panicked(_) => JobOutcomeKind::Panicked,
        }
    }

    /// Classifies a fired token: an expired deadline wins over an
    /// explicit cancel (the tenant that set both cares about the
    /// deadline diagnosis).
    pub(crate) fn from_token(token: &CancelToken) -> Self {
        if token.deadline_expired() {
            JobError::DeadlineExceeded
        } else {
            JobError::Cancelled
        }
    }
}

/// Service-side hook a [`JobHandle::cancel`] fires so the admission
/// queue can release the job's bounded lane slot *eagerly* instead of
/// letting the dead job occupy it until a dispatcher happens to drain
/// it (which let a submit-then-cancel tenant starve honest tenants
/// into `Backpressure`).
pub(crate) trait CancelObserver: Send + Sync {
    /// A handle cancelled the job with this trace id; if it is still
    /// queued, sweep it out and resolve it now.
    fn on_handle_cancel(&self, trace: TraceId);
}

/// The result slot a job resolves into, guarded by [`JobState::slot`].
enum Slot {
    /// Not finished yet.
    Pending,
    /// Finished; result not yet claimed. Boxed to keep the idle variants
    /// (and every handle's mutex) small.
    Done(Box<Result<SpanningForest, JobError>>),
    /// Result moved out through `wait`/`try_wait`.
    Taken,
}

/// Shared state between a [`JobHandle`] and the dispatcher running (or
/// about to run) the job.
pub(crate) struct JobState {
    slot: Mutex<Slot>,
    done: Condvar,
    /// The job's cancellation token: fired by [`JobHandle::cancel`] or
    /// its deadline, polled by the algorithm at barrier/publication
    /// boundaries and by the dispatcher before leasing a team.
    pub(crate) token: CancelToken,
    /// The job's trace id, minted at submission; joins the handle to
    /// the event journal and the Prometheus plane.
    pub(crate) trace: TraceId,
    /// Set once the job is queued: lets [`JobHandle::cancel`] tell the
    /// service to release the lane slot eagerly. Weak so a handle that
    /// outlives the service does not keep the whole pool alive.
    observer: OnceLock<Weak<dyn CancelObserver>>,
}

impl JobState {
    pub(crate) fn new(token: CancelToken, trace: TraceId) -> Arc<Self> {
        Arc::new(Self {
            slot: Mutex::new(Slot::Pending),
            done: Condvar::new(),
            token,
            trace,
            observer: OnceLock::new(),
        })
    }

    /// Registers the service hook cancel should notify. Called at
    /// enqueue (jobs that resolve at the door never need it).
    pub(crate) fn set_cancel_observer(&self, observer: Weak<dyn CancelObserver>) {
        let _ = self.observer.set(observer);
    }

    /// Resolves the job and wakes every waiter. Called exactly once.
    pub(crate) fn finish(&self, result: Result<SpanningForest, JobError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(
            matches!(*slot, Slot::Pending),
            "a job resolves exactly once"
        );
        *slot = Slot::Done(Box::new(result));
        drop(slot);
        self.done.notify_all();
    }
}

/// A tenant's handle to one submitted job.
///
/// The handle is the only way to observe the job: [`wait`](Self::wait)
/// blocks for the result, [`try_wait`](Self::try_wait) polls for it,
/// and [`cancel`](Self::cancel) asks the service to stop it — queued
/// jobs are dropped without running, running jobs observe the token at
/// their next barrier/publication boundary.
pub struct JobHandle {
    state: Arc<JobState>,
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("finished", &self.is_finished())
            .finish()
    }
}

impl JobHandle {
    pub(crate) fn new(state: Arc<JobState>) -> Self {
        Self { state }
    }

    /// Requests cancellation. Idempotent; safe at any point in the job's
    /// life. The job resolves to [`JobError::Cancelled`] unless it
    /// completed (or its deadline fired) first.
    ///
    /// A job still waiting in the admission queue is swept out
    /// immediately — its bounded lane slot is released to other
    /// tenants right away rather than when a dispatcher eventually
    /// drains the dead entry.
    pub fn cancel(&self) {
        // Trip the token first so a job mid-execution observes the
        // cancel even if the queue sweep finds nothing to do.
        self.state.token.cancel();
        if let Some(obs) = self.state.observer.get().and_then(Weak::upgrade) {
            obs.on_handle_cancel(self.state.trace);
        }
    }

    /// A clone of the job's cancellation token (e.g. to hand a watchdog
    /// that outlives the handle).
    pub fn cancel_token(&self) -> CancelToken {
        self.state.token.clone()
    }

    /// The job's trace id — the key under which the service's event
    /// journal (`/debug/journal`) and slow-job log record this job.
    pub fn trace_id(&self) -> u64 {
        self.state.trace.as_u64()
    }

    /// True once the job resolved (result, error, or cancellation).
    pub fn is_finished(&self) -> bool {
        !matches!(*self.state.slot.lock().unwrap(), Slot::Pending)
    }

    /// Blocks until the job resolves and returns its result.
    ///
    /// # Panics
    ///
    /// Panics if the result was already claimed by
    /// [`try_wait`](Self::try_wait).
    pub fn wait(self) -> Result<SpanningForest, JobError> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            match std::mem::replace(&mut *slot, Slot::Taken) {
                Slot::Done(result) => return *result,
                Slot::Taken => panic!("job result already claimed via try_wait"),
                Slot::Pending => {
                    *slot = Slot::Pending;
                    slot = self.state.done.wait(slot).unwrap();
                }
            }
        }
    }

    /// Claims the result if the job already resolved; `None` while it is
    /// still queued or running. After `Some`, the result is consumed —
    /// a later [`wait`](Self::wait) panics.
    pub fn try_wait(&mut self) -> Option<Result<SpanningForest, JobError>> {
        let mut slot = self.state.slot.lock().unwrap();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Done(result) => Some(*result),
            Slot::Taken => panic!("job result already claimed via try_wait"),
            Slot::Pending => {
                *slot = Slot::Pending;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_lanes_are_ordered() {
        assert!(Priority::High.lane() < Priority::Normal.lane());
        assert!(Priority::Normal.lane() < Priority::Low.lane());
        assert_eq!(Priority::default(), Priority::Normal);
    }

    #[test]
    fn token_classification() {
        let t = CancelToken::new();
        t.cancel();
        assert_eq!(JobError::from_token(&t), JobError::Cancelled);
        let d = CancelToken::with_deadline(
            std::time::Instant::now() - std::time::Duration::from_millis(1),
        );
        assert_eq!(JobError::from_token(&d), JobError::DeadlineExceeded);
    }

    #[test]
    fn handle_lifecycle() {
        let state = JobState::new(CancelToken::new(), TraceId::mint());
        let mut handle = JobHandle::new(Arc::clone(&state));
        assert_eq!(handle.trace_id(), state.trace.as_u64());
        assert_ne!(handle.trace_id(), 0, "minted ids start at 1");
        assert!(!handle.is_finished());
        assert!(handle.try_wait().is_none());
        state.finish(Err(JobError::Cancelled));
        assert!(handle.is_finished());
        assert!(matches!(handle.try_wait(), Some(Err(JobError::Cancelled))));
    }

    #[test]
    #[should_panic(expected = "already claimed")]
    fn double_claim_panics() {
        let state = JobState::new(CancelToken::new(), TraceId::mint());
        let mut handle = JobHandle::new(Arc::clone(&state));
        state.finish(Err(JobError::Cancelled));
        let _ = handle.try_wait();
        let _ = handle.try_wait();
    }

    #[test]
    fn wait_blocks_until_finish() {
        let state = JobState::new(CancelToken::new(), TraceId::mint());
        let handle = JobHandle::new(Arc::clone(&state));
        std::thread::scope(|s| {
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                state.finish(Err(JobError::ShuttingDown));
            });
            assert!(matches!(handle.wait(), Err(JobError::ShuttingDown)));
        });
    }
}
