//! Adaptive team sizing from the §3 analytic cost model.
//!
//! The service's pool shards the machine into teams of different widths.
//! For each job, the dispatcher asks: *which width should this graph
//! get?* Pure argmin over the Helman–JáJá prediction for the new
//! algorithm ([`st_model::analytic::new_algorithm`]) is the wrong
//! objective in a multi-tenant pool: predicted time keeps improving
//! (slightly) with width for all but the tiniest graphs, so argmin
//! would route nearly everything to the widest team and starve it.
//! Wide teams have opportunity cost — the processors a small job
//! occupies are processors another tenant's large job can't use.
//!
//! Instead we walk the available widths narrow → wide and accept each
//! step only while the added processors pay at least half of linear
//! speedup (stepping `a → b` requires predicted speedup
//! `≥ 1 + (b - a) / 2a`, i.e. ≥ 1.5× for a doubling). The absolute
//! seconds are calibrated for the paper's E4500, but the *ratios*
//! across widths — all evaluated on the same profile — are what the
//! knee rule needs. Small graphs stop at a narrow team because their
//! O(p) stub and barrier terms swamp the per-processor win; large
//! graphs amortize them and climb to the widest.

use st_model::analytic::new_algorithm;
use st_model::machine::MachineProfile;

/// Minimum fraction of linear speedup the added processors of a wider
/// team must deliver (per the cost model) before a job is routed to it.
const MIN_MARGINAL_EFFICIENCY: f64 = 0.5;

/// Picks the pool team width an (n, m) job should prefer.
///
/// `widths` are the pool's team sizes (duplicates fine, any order).
/// The walk is greedy over adjacent distinct widths, so a job stops at
/// the first knee even if a much wider team would clear the bar again.
pub fn preferred_width(n: usize, m: usize, widths: &[usize]) -> usize {
    let machine = MachineProfile::default();
    let mut candidates: Vec<usize> = widths.to_vec();
    candidates.sort_unstable();
    candidates.dedup();
    let predict = |w: usize| new_algorithm(n, m, w).predicted_seconds(&machine, w);
    let mut best = candidates.first().copied().unwrap_or(1);
    let mut best_s = predict(best);
    for &w in candidates.iter().skip(1) {
        let s = predict(w);
        let required = 1.0 + MIN_MARGINAL_EFFICIENCY * (w - best) as f64 / best as f64;
        if best_s / s < required {
            break;
        }
        best = w;
        best_s = s;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_graphs_prefer_narrow_teams() {
        // At n = 32 the stub and barrier terms dominate: no doubling
        // pays 50% marginal efficiency. At n = 64 the first one does.
        assert_eq!(preferred_width(32, 48, &[4, 2, 1]), 1);
        assert_eq!(preferred_width(64, 96, &[4, 2, 1]), 2);
    }

    #[test]
    fn large_graphs_prefer_wide_teams() {
        assert_eq!(preferred_width(1 << 22, 3 << 21, &[4, 2, 1]), 4);
    }

    #[test]
    fn degenerate_width_lists() {
        assert_eq!(preferred_width(1 << 22, 1 << 22, &[2, 2, 2]), 2);
        assert_eq!(preferred_width(0, 0, &[3]), 3);
    }

    #[test]
    fn monotone_in_problem_size() {
        // The preferred width never shrinks as the graph grows.
        let widths = [8, 4, 2, 1];
        let mut last = 1;
        for scale in 6..24 {
            let n = 1usize << scale;
            let w = preferred_width(n, 3 * n / 2, &widths);
            assert!(w >= last, "width shrank at scale {scale}: {w} < {last}");
            last = w;
        }
        assert_eq!(last, 8, "largest problem should want the widest team");
    }
}
