//! The graph catalog and its bounded result cache.
//!
//! A server cannot ship a whole graph over the wire per job, and even
//! in-process tenants should not each load their own copy of a shared
//! input. The [`GraphCatalog`] is the fix: graphs are registered (or
//! loaded from the [`st_graph::io`] binary format, mmap-backed where
//! the platform allows) **once**, and every subsequent submission
//! addresses them by a small [`GraphRef`] — jobs then share one
//! immutable `Arc<CsrGraph>` per version across all tenants and
//! connections.
//!
//! Versioning makes republication safe without coordination: publishing
//! new bytes under an existing [`GraphId`] bumps the version, so cached
//! results for the old bytes — keyed by `(id, version, …)` — can never
//! be served for the new ones. Nothing is invalidated eagerly; stale
//! entries simply stop matching and age out of the LRU.
//!
//! The [`ResultCache`] completes the addressed path: spanning-forest
//! jobs are deterministic given `(graph version, algorithm, seed)`
//! apart from scheduling noise in the stats, so a bounded
//! least-recently-used map keyed on [`CacheKey`] lets the service
//! answer repeat submissions without leasing a team at all.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use st_core::SpanningForest;
use st_graph::io::LoadKind;
use st_graph::CsrGraph;

use crate::spec::AlgorithmId;

/// Opaque identifier of a catalog entry, stable across republication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u64);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One concrete published version of a catalog entry: the unit result
/// caches key on. Two refs are equal iff they name bit-identical graph
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphRef {
    /// The catalog entry.
    pub id: GraphId,
    /// Publication counter, starting at 1 and bumped by
    /// [`GraphCatalog::publish`].
    pub version: u32,
}

struct Entry {
    graph: Arc<CsrGraph>,
    version: u32,
}

/// A concurrent registry of immutable, shared graphs.
///
/// Cheap to share (`Arc<GraphCatalog>`); all methods take `&self`.
/// Lookups clone an `Arc`, never graph data.
#[derive(Default)]
pub struct GraphCatalog {
    entries: Mutex<HashMap<GraphId, Entry>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for GraphCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCatalog")
            .field("graphs", &self.len())
            .finish()
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an already-built graph under a fresh id (version 1).
    pub fn register(&self, graph: Arc<CsrGraph>) -> GraphRef {
        self.register_bounded(graph, usize::MAX)
            .expect("an unbounded registration cannot fail")
    }

    /// As [`register`](Self::register), but refuses (returning `None`)
    /// when the catalog already holds `max_entries` graphs. The check
    /// and insertion are atomic, so concurrent registrations cannot
    /// overshoot the bound. Used by the TCP front-end to keep
    /// untrusted `REGISTER` traffic from growing server memory without
    /// limit.
    pub fn register_bounded(&self, graph: Arc<CsrGraph>, max_entries: usize) -> Option<GraphRef> {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= max_entries {
            return None;
        }
        let id = GraphId(self.next_id.fetch_add(1, Relaxed));
        entries.insert(id, Entry { graph, version: 1 });
        Some(GraphRef { id, version: 1 })
    }

    /// Replaces the bytes published under `id`, bumping its version.
    /// Jobs addressing `id` from now on see the new graph; results
    /// cached against the old version can no longer match. `None` when
    /// `id` was never registered (or was removed).
    pub fn publish(&self, id: GraphId, graph: Arc<CsrGraph>) -> Option<GraphRef> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.get_mut(&id)?;
        entry.version += 1;
        entry.graph = graph;
        Some(GraphRef {
            id,
            version: entry.version,
        })
    }

    /// Loads an [`st_graph::io`] binary file and registers it. Returns
    /// the new ref and whether the bytes were memory-mapped in place
    /// ([`LoadKind::Mapped`]) or buffered through a read.
    pub fn load(&self, path: impl AsRef<Path>) -> std::io::Result<(GraphRef, LoadKind)> {
        let (graph, kind) = st_graph::io::load_binary_with_info(path)?;
        Ok((self.register(Arc::new(graph)), kind))
    }

    /// The current graph under `id`, with the exact ref (including
    /// version) it resolves to right now.
    pub fn resolve(&self, id: GraphId) -> Option<(Arc<CsrGraph>, GraphRef)> {
        let entries = self.entries.lock().unwrap();
        let entry = entries.get(&id)?;
        Some((
            Arc::clone(&entry.graph),
            GraphRef {
                id,
                version: entry.version,
            },
        ))
    }

    /// Unregisters `id`. Later submissions addressing it fail with
    /// [`JobError::UnknownGraph`](crate::JobError::UnknownGraph);
    /// in-flight jobs keep their `Arc` and finish normally.
    pub fn remove(&self, id: GraphId) -> bool {
        self.entries.lock().unwrap().remove(&id).is_some()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current refs with their sizes, for listings: `(ref, n, m)`.
    pub fn list(&self) -> Vec<(GraphRef, usize, usize)> {
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<_> = entries
            .iter()
            .map(|(&id, e)| {
                (
                    GraphRef {
                        id,
                        version: e.version,
                    },
                    e.graph.num_vertices(),
                    e.graph.num_edges(),
                )
            })
            .collect();
        out.sort_by_key(|(r, _, _)| r.id);
        out
    }
}

/// Everything that determines a catalog-addressed job's forest.
///
/// `processors` is the *requested* width (0 when the submission left
/// sizing to the oracle): the sizing decision happens at dispatch, so
/// the request is the stable part of the key. Different widths may
/// produce different (equally valid) forests under work stealing, so
/// they cache separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The exact graph version the job ran against.
    pub graph: GraphRef,
    /// The algorithm.
    pub algorithm: AlgorithmId,
    /// The traversal RNG seed.
    pub seed: u64,
    /// Requested team width; 0 = sizing oracle.
    pub processors: usize,
}

struct CacheEntry {
    forest: SpanningForest,
    /// Logical access time for LRU ordering.
    tick: u64,
}

/// A bounded least-recently-used map from [`CacheKey`] to a finished
/// forest.
///
/// Capacity 0 disables caching entirely (`get` always misses, `insert`
/// is a no-op). Eviction is an O(capacity) minimum-tick scan — the
/// capacity is small (tens to hundreds) and insertions only happen on
/// misses that already paid for a full traversal, so simplicity beats
/// an intrusive list here.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    clock: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` forests.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity.min(1024)),
                clock: 0,
            }),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<SpanningForest> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.tick = now;
        Some(entry.forest.clone())
    }

    /// Stores `forest` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&self, key: CacheKey, forest: SpanningForest) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, CacheEntry { forest, tick });
    }

    /// Drops every entry whose key addresses graph `id` (any version).
    /// Used when an id is removed from the catalog; republication does
    /// NOT need this — version bumps make old entries unmatchable.
    pub fn purge_graph(&self, id: GraphId) {
        self.inner
            .lock()
            .unwrap()
            .map
            .retain(|k, _| k.graph.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen;

    fn forest_of(g: &CsrGraph) -> SpanningForest {
        st_core::seq::bfs_forest(g)
    }

    fn key(graph: GraphRef, seed: u64) -> CacheKey {
        CacheKey {
            graph,
            algorithm: AlgorithmId::BaderCong,
            seed,
            processors: 0,
        }
    }

    #[test]
    fn register_resolve_share_one_arc() {
        let cat = GraphCatalog::new();
        let g = Arc::new(gen::torus2d(8, 8));
        let gref = cat.register(Arc::clone(&g));
        assert_eq!(gref.version, 1);
        let (resolved, exact) = cat.resolve(gref.id).expect("registered");
        assert!(Arc::ptr_eq(&resolved, &g), "no copy on resolve");
        assert_eq!(exact, gref);
        assert!(cat.resolve(GraphId(999)).is_none());
    }

    #[test]
    fn publish_bumps_version_and_swaps_bytes() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::torus2d(4, 4)));
        let v2 = cat
            .publish(gref.id, Arc::new(gen::torus2d(8, 8)))
            .expect("id exists");
        assert_eq!(v2.id, gref.id);
        assert_eq!(v2.version, 2);
        let (g, exact) = cat.resolve(gref.id).unwrap();
        assert_eq!(g.num_vertices(), 64, "new bytes are live");
        assert_eq!(exact.version, 2);
        assert_ne!(exact, gref, "old ref no longer matches");
        assert!(cat.publish(GraphId(999), Arc::new(gen::chain(2))).is_none());
    }

    #[test]
    fn remove_unregisters() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(4)));
        assert_eq!(cat.len(), 1);
        assert!(cat.remove(gref.id));
        assert!(!cat.remove(gref.id), "second remove is a no-op");
        assert!(cat.resolve(gref.id).is_none());
        assert!(cat.is_empty());
    }

    #[test]
    fn list_reports_sizes_in_id_order() {
        let cat = GraphCatalog::new();
        let a = cat.register(Arc::new(gen::chain(10)));
        let b = cat.register(Arc::new(gen::torus2d(4, 4)));
        let listing = cat.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0], (a, 10, 9));
        assert_eq!(listing[1], (b, 16, 32));
    }

    #[test]
    fn load_roundtrips_through_binary_format() {
        let g = gen::torus2d(8, 8);
        let dir = std::env::temp_dir().join("st-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("load-{}.stcsr", std::process::id()));
        st_graph::io::save_binary(&g, &path).unwrap();

        let cat = GraphCatalog::new();
        let (gref, _kind) = cat.load(&path).unwrap();
        let (loaded, _) = cat.resolve(gref.id).unwrap();
        assert_eq!(*loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn cache_hits_and_misses() {
        let g = gen::torus2d(4, 4);
        let gref = GraphRef {
            id: GraphId(0),
            version: 1,
        };
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(gref, 1)).is_none());
        cache.insert(key(gref, 1), forest_of(&g));
        let hit = cache.get(&key(gref, 1)).expect("hit");
        assert_eq!(hit.num_trees(), 1);
        // A different seed, width, algorithm, or version misses.
        assert!(cache.get(&key(gref, 2)).is_none());
        let mut wide = key(gref, 1);
        wide.processors = 4;
        assert!(cache.get(&wide).is_none());
        let v2 = GraphRef {
            id: GraphId(0),
            version: 2,
        };
        assert!(cache.get(&key(v2, 1)).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let g = gen::chain(4);
        let gref = GraphRef {
            id: GraphId(7),
            version: 1,
        };
        let cache = ResultCache::new(2);
        cache.insert(key(gref, 1), forest_of(&g));
        cache.insert(key(gref, 2), forest_of(&g));
        // Touch seed 1 so seed 2 is the LRU victim.
        assert!(cache.get(&key(gref, 1)).is_some());
        cache.insert(key(gref, 3), forest_of(&g));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(gref, 1)).is_some(), "recently used survives");
        assert!(cache.get(&key(gref, 2)).is_none(), "LRU evicted");
        assert!(cache.get(&key(gref, 3)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let g = gen::chain(3);
        let gref = GraphRef {
            id: GraphId(1),
            version: 1,
        };
        let cache = ResultCache::new(2);
        cache.insert(key(gref, 1), forest_of(&g));
        cache.insert(key(gref, 2), forest_of(&g));
        cache.insert(key(gref, 1), forest_of(&g));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(gref, 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let g = gen::chain(3);
        let gref = GraphRef {
            id: GraphId(2),
            version: 1,
        };
        let cache = ResultCache::new(0);
        cache.insert(key(gref, 1), forest_of(&g));
        assert!(cache.get(&key(gref, 1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_drops_every_version_of_one_graph() {
        let g = gen::chain(3);
        let a1 = GraphRef {
            id: GraphId(1),
            version: 1,
        };
        let a2 = GraphRef {
            id: GraphId(1),
            version: 2,
        };
        let b = GraphRef {
            id: GraphId(2),
            version: 1,
        };
        let cache = ResultCache::new(8);
        cache.insert(key(a1, 1), forest_of(&g));
        cache.insert(key(a2, 1), forest_of(&g));
        cache.insert(key(b, 1), forest_of(&g));
        cache.purge_graph(GraphId(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(b, 1)).is_some());
    }
}
