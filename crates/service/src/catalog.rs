//! The graph catalog and its bounded result cache.
//!
//! A server cannot ship a whole graph over the wire per job, and even
//! in-process tenants should not each load their own copy of a shared
//! input. The [`GraphCatalog`] is the fix: graphs are registered (or
//! loaded from the [`st_graph::io`] binary format, mmap-backed where
//! the platform allows) **once**, and every subsequent submission
//! addresses them by a small [`GraphRef`] — jobs then share one
//! immutable `Arc<CsrGraph>` per version across all tenants and
//! connections.
//!
//! Versioning makes republication safe without coordination: publishing
//! new bytes under an existing [`GraphId`] bumps the version, so cached
//! results for the old bytes — keyed by `(id, version, …)` — can never
//! be served for the new ones. Nothing is invalidated eagerly; stale
//! entries simply stop matching and age out of the LRU.
//!
//! The [`ResultCache`] completes the addressed path: spanning-forest
//! jobs are deterministic given `(graph version, algorithm, seed)`
//! apart from scheduling noise in the stats, so a bounded
//! least-recently-used map keyed on [`CacheKey`] lets the service
//! answer repeat submissions without leasing a team at all.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use st_core::SpanningForest;
use st_graph::io::LoadKind;
use st_graph::{BatchError, BatchOutcome, CsrGraph, EdgeBatch, GraphView};

use crate::spec::AlgorithmId;

/// Opaque identifier of a catalog entry, stable across republication.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GraphId(pub u64);

impl std::fmt::Display for GraphId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// One concrete published version of a catalog entry: the unit result
/// caches key on. Two refs are equal iff they name bit-identical graph
/// bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct GraphRef {
    /// The catalog entry.
    pub id: GraphId,
    /// Publication counter, starting at 1 and bumped by
    /// [`GraphCatalog::publish`].
    pub version: u32,
}

/// Why a batch apply was rejected by the catalog.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// The id was never registered (or was removed).
    UnknownGraph(GraphId),
    /// The batch itself is malformed for this graph.
    Batch(BatchError),
    /// The entry's version moved between read and install — another
    /// writer (a concurrent `publish` or `apply`) got there first.
    Conflict {
        /// The version the writer read and based its work on.
        expected: u32,
        /// The version actually found at install time.
        found: u32,
    },
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::UnknownGraph(id) => write!(f, "graph {id} is not in the catalog"),
            ApplyError::Batch(e) => write!(f, "invalid batch: {e}"),
            ApplyError::Conflict { expected, found } => write!(
                f,
                "version moved during apply (based on v{expected}, found v{found})"
            ),
        }
    }
}

impl std::error::Error for ApplyError {}

impl From<BatchError> for ApplyError {
    fn from(e: BatchError) -> Self {
        ApplyError::Batch(e)
    }
}

struct Entry {
    view: GraphView,
    /// Memoized flat CSR of `view` at `version` — populated lazily by
    /// [`GraphCatalog::resolve_latest`] so repeated submissions against
    /// a delta version pay for one materialization, not one per job.
    flat: Option<Arc<CsrGraph>>,
    version: u32,
}

/// A concurrent registry of immutable, shared graphs.
///
/// Cheap to share (`Arc<GraphCatalog>`); all methods take `&self`.
/// Lookups clone an `Arc`, never graph data.
#[derive(Default)]
pub struct GraphCatalog {
    entries: Mutex<HashMap<GraphId, Entry>>,
    next_id: AtomicU64,
}

impl std::fmt::Debug for GraphCatalog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GraphCatalog")
            .field("graphs", &self.len())
            .finish()
    }
}

impl GraphCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an already-built graph under a fresh id (version 1).
    pub fn register(&self, graph: Arc<CsrGraph>) -> GraphRef {
        self.register_bounded(graph, usize::MAX)
            .expect("an unbounded registration cannot fail")
    }

    /// As [`register`](Self::register), but refuses (returning `None`)
    /// when the catalog already holds `max_entries` graphs. The check
    /// and insertion are atomic, so concurrent registrations cannot
    /// overshoot the bound. Used by the TCP front-end to keep
    /// untrusted `REGISTER` traffic from growing server memory without
    /// limit.
    pub fn register_bounded(&self, graph: Arc<CsrGraph>, max_entries: usize) -> Option<GraphRef> {
        let mut entries = self.entries.lock().unwrap();
        if entries.len() >= max_entries {
            return None;
        }
        let id = GraphId(self.next_id.fetch_add(1, Relaxed));
        entries.insert(
            id,
            Entry {
                view: GraphView::Flat(Arc::clone(&graph)),
                flat: Some(graph),
                version: 1,
            },
        );
        Some(GraphRef { id, version: 1 })
    }

    /// Replaces the bytes published under `id`, bumping its version.
    /// Jobs addressing `id` from now on see the new graph; results
    /// cached against the old version can no longer match. `None` when
    /// `id` was never registered (or was removed).
    pub fn publish(&self, id: GraphId, graph: Arc<CsrGraph>) -> Option<GraphRef> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.get_mut(&id)?;
        entry.version += 1;
        entry.view = GraphView::Flat(Arc::clone(&graph));
        entry.flat = Some(graph);
        Some(GraphRef {
            id,
            version: entry.version,
        })
    }

    /// The current view of `id` with its exact ref — the read half of
    /// the optimistic apply protocol. The view is a cheap `Arc`-level
    /// clone; holding it never blocks writers.
    pub fn view(&self, id: GraphId) -> Option<(GraphView, GraphRef)> {
        let entries = self.entries.lock().unwrap();
        let entry = entries.get(&id)?;
        Some((
            entry.view.clone(),
            GraphRef {
                id,
                version: entry.version,
            },
        ))
    }

    /// Installs a successor view computed from version `expected` of
    /// `id`, bumping to `expected + 1` — the write half of the
    /// optimistic apply protocol. Fails with [`ApplyError::Conflict`]
    /// when another writer moved the version first, so a stale
    /// computation can never clobber a newer one. `flat` carries an
    /// already-materialized CSR when the writer flattened (rebuild
    /// threshold crossed); otherwise materialization stays lazy.
    pub fn install(
        &self,
        id: GraphId,
        expected: u32,
        view: GraphView,
        flat: Option<Arc<CsrGraph>>,
    ) -> Result<GraphRef, ApplyError> {
        let mut entries = self.entries.lock().unwrap();
        let entry = entries.get_mut(&id).ok_or(ApplyError::UnknownGraph(id))?;
        if entry.version != expected {
            return Err(ApplyError::Conflict {
                expected,
                found: entry.version,
            });
        }
        entry.version += 1;
        entry.view = view;
        entry.flat = flat;
        Ok(GraphRef {
            id,
            version: entry.version,
        })
    }

    /// Applies one edge batch to `id`, producing a new version whose
    /// view shares every untouched row with its predecessor. When the
    /// overlay's patched fraction exceeds `rebuild_fraction` the new
    /// version is flattened to a fresh contiguous CSR instead.
    ///
    /// This is the catalog-only mutation path (no forest maintenance) —
    /// the service's [`Service::apply`](crate::Service::apply) wraps it
    /// together with the incremental maintainer. Concurrent applies to
    /// the same id retry internally, so callers always see either
    /// success or a real error.
    pub fn apply(
        &self,
        id: GraphId,
        batch: &EdgeBatch,
        rebuild_fraction: f64,
    ) -> Result<(GraphRef, BatchOutcome), ApplyError> {
        loop {
            let (view, gref) = self.view(id).ok_or(ApplyError::UnknownGraph(id))?;
            // Compute the successor outside the catalog lock: readers
            // and other graphs stay unblocked during the row edits.
            let (next, outcome) = view.apply(batch)?;
            let (next, flat) = if next.patched_fraction() > rebuild_fraction {
                let flat = next.materialize();
                (GraphView::Flat(Arc::clone(&flat)), Some(flat))
            } else {
                (next, None)
            };
            match self.install(id, gref.version, next, flat) {
                Ok(new_ref) => return Ok((new_ref, outcome)),
                Err(ApplyError::Conflict { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Loads an [`st_graph::io`] binary file and registers it. Returns
    /// the new ref and whether the bytes were memory-mapped in place
    /// ([`LoadKind::Mapped`]) or buffered through a read.
    pub fn load(&self, path: impl AsRef<Path>) -> std::io::Result<(GraphRef, LoadKind)> {
        let (graph, kind) = st_graph::io::load_binary_with_info(path)?;
        Ok((self.register(Arc::new(graph)), kind))
    }

    /// The current graph under `id` as a flat CSR, with the exact ref
    /// (including version) it resolves to right now.
    ///
    /// When the live version is a delta, this materializes it (outside
    /// the catalog lock) and memoizes the result against the version,
    /// so at most one submission per version pays the merge pass.
    pub fn resolve_latest(&self, id: GraphId) -> Option<(Arc<CsrGraph>, GraphRef)> {
        let view = {
            let entries = self.entries.lock().unwrap();
            let entry = entries.get(&id)?;
            if let Some(flat) = &entry.flat {
                return Some((
                    Arc::clone(flat),
                    GraphRef {
                        id,
                        version: entry.version,
                    },
                ));
            }
            (
                entry.view.clone(),
                GraphRef {
                    id,
                    version: entry.version,
                },
            )
        };
        let (view, gref) = view;
        let flat = view.materialize();
        let mut entries = self.entries.lock().unwrap();
        if let Some(entry) = entries.get_mut(&id) {
            // Memoize only if the version we materialized is still the
            // live one — a concurrent apply may have moved on.
            if entry.version == gref.version && entry.flat.is_none() {
                entry.flat = Some(Arc::clone(&flat));
            }
        }
        Some((flat, gref))
    }

    /// Resolves an *exact* pinned ref: the graph only if `gref.version`
    /// is still the live version of `gref.id`. On a version mismatch
    /// returns `Err(current_version)` so callers can distinguish "stale
    /// pin" from "unknown graph" (`Ok(None)`-style is collapsed to the
    /// outer `Option`).
    #[allow(clippy::result_unit_err)]
    pub fn resolve_pinned(&self, gref: GraphRef) -> Option<Result<Arc<CsrGraph>, u32>> {
        let current = {
            let entries = self.entries.lock().unwrap();
            let entry = entries.get(&gref.id)?;
            entry.version
        };
        if current != gref.version {
            return Some(Err(current));
        }
        // Delegate to the memoizing path; re-check the version it
        // actually resolved (an apply may land between the two locks).
        let (graph, resolved) = self.resolve_latest(gref.id)?;
        if resolved.version == gref.version {
            Some(Ok(graph))
        } else {
            Some(Err(resolved.version))
        }
    }

    /// The current graph under `id`, with the exact ref it resolves to.
    #[deprecated(note = "use `resolve_latest`, or `resolve_pinned` for an exact version")]
    pub fn resolve(&self, id: GraphId) -> Option<(Arc<CsrGraph>, GraphRef)> {
        self.resolve_latest(id)
    }

    /// Unregisters `id`. Later submissions addressing it fail with
    /// [`JobError::UnknownGraph`](crate::JobError::UnknownGraph);
    /// in-flight jobs keep their `Arc` and finish normally.
    pub fn remove(&self, id: GraphId) -> bool {
        self.entries.lock().unwrap().remove(&id).is_some()
    }

    /// Number of registered graphs.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current refs with their sizes, for listings: `(ref, n, m)`.
    pub fn list(&self) -> Vec<(GraphRef, usize, usize)> {
        use st_graph::Neighbors as _;
        let entries = self.entries.lock().unwrap();
        let mut out: Vec<_> = entries
            .iter()
            .map(|(&id, e)| {
                (
                    GraphRef {
                        id,
                        version: e.version,
                    },
                    e.view.num_vertices(),
                    e.view.num_edges(),
                )
            })
            .collect();
        out.sort_by_key(|(r, _, _)| r.id);
        out
    }
}

/// Everything that determines a catalog-addressed job's forest.
///
/// `processors` is the *requested* width (0 when the submission left
/// sizing to the oracle): the sizing decision happens at dispatch, so
/// the request is the stable part of the key. Different widths may
/// produce different (equally valid) forests under work stealing, so
/// they cache separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// The exact graph version the job ran against.
    pub graph: GraphRef,
    /// The algorithm.
    pub algorithm: AlgorithmId,
    /// The traversal RNG seed.
    pub seed: u64,
    /// Requested team width; 0 = sizing oracle.
    pub processors: usize,
}

struct CacheEntry {
    forest: SpanningForest,
    /// Logical access time for LRU ordering.
    tick: u64,
}

/// A bounded least-recently-used map from [`CacheKey`] to a finished
/// forest.
///
/// Capacity 0 disables caching entirely (`get` always misses, `insert`
/// is a no-op). Eviction is an O(capacity) minimum-tick scan — the
/// capacity is small (tens to hundreds) and insertions only happen on
/// misses that already paid for a full traversal, so simplicity beats
/// an intrusive list here.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    capacity: usize,
}

struct CacheInner {
    map: HashMap<CacheKey, CacheEntry>,
    clock: u64,
}

impl std::fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultCache")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl ResultCache {
    /// A cache holding at most `capacity` forests.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(CacheInner {
                map: HashMap::with_capacity(capacity.min(1024)),
                clock: 0,
            }),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: &CacheKey) -> Option<SpanningForest> {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let now = inner.clock;
        let entry = inner.map.get_mut(key)?;
        entry.tick = now;
        Some(entry.forest.clone())
    }

    /// Stores `forest` under `key`, evicting the least-recently-used
    /// entry if the cache is full.
    pub fn insert(&self, key: CacheKey, forest: SpanningForest) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let tick = inner.clock;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&key) {
            if let Some(oldest) = inner
                .map
                .iter()
                .min_by_key(|(_, e)| e.tick)
                .map(|(k, _)| *k)
            {
                inner.map.remove(&oldest);
            }
        }
        inner.map.insert(key, CacheEntry { forest, tick });
    }

    /// Drops every entry whose key addresses graph `id` (any version).
    /// Used when an id is removed from the catalog; republication does
    /// NOT need this — version bumps make old entries unmatchable.
    pub fn purge_graph(&self, id: GraphId) {
        self.inner
            .lock()
            .unwrap()
            .map
            .retain(|k, _| k.graph.id != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_graph::gen;

    fn forest_of(g: &CsrGraph) -> SpanningForest {
        st_core::seq::bfs_forest(g)
    }

    fn key(graph: GraphRef, seed: u64) -> CacheKey {
        CacheKey {
            graph,
            algorithm: AlgorithmId::BaderCong,
            seed,
            processors: 0,
        }
    }

    #[test]
    fn register_resolve_share_one_arc() {
        let cat = GraphCatalog::new();
        let g = Arc::new(gen::torus2d(8, 8));
        let gref = cat.register(Arc::clone(&g));
        assert_eq!(gref.version, 1);
        let (resolved, exact) = cat.resolve_latest(gref.id).expect("registered");
        assert!(Arc::ptr_eq(&resolved, &g), "no copy on resolve");
        assert_eq!(exact, gref);
        assert!(cat.resolve_latest(GraphId(999)).is_none());
    }

    #[test]
    fn publish_bumps_version_and_swaps_bytes() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::torus2d(4, 4)));
        let v2 = cat
            .publish(gref.id, Arc::new(gen::torus2d(8, 8)))
            .expect("id exists");
        assert_eq!(v2.id, gref.id);
        assert_eq!(v2.version, 2);
        let (g, exact) = cat.resolve_latest(gref.id).unwrap();
        assert_eq!(g.num_vertices(), 64, "new bytes are live");
        assert_eq!(exact.version, 2);
        assert_ne!(exact, gref, "old ref no longer matches");
        assert!(cat.publish(GraphId(999), Arc::new(gen::chain(2))).is_none());
    }

    #[test]
    fn remove_unregisters() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(4)));
        assert_eq!(cat.len(), 1);
        assert!(cat.remove(gref.id));
        assert!(!cat.remove(gref.id), "second remove is a no-op");
        assert!(cat.resolve_latest(gref.id).is_none());
        assert!(cat.is_empty());
    }

    #[test]
    fn list_reports_sizes_in_id_order() {
        let cat = GraphCatalog::new();
        let a = cat.register(Arc::new(gen::chain(10)));
        let b = cat.register(Arc::new(gen::torus2d(4, 4)));
        let listing = cat.list();
        assert_eq!(listing.len(), 2);
        assert_eq!(listing[0], (a, 10, 9));
        assert_eq!(listing[1], (b, 16, 32));
    }

    #[test]
    fn load_roundtrips_through_binary_format() {
        let g = gen::torus2d(8, 8);
        let dir = std::env::temp_dir().join("st-catalog-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("load-{}.stcsr", std::process::id()));
        st_graph::io::save_binary(&g, &path).unwrap();

        let cat = GraphCatalog::new();
        let (gref, _kind) = cat.load(&path).unwrap();
        let (loaded, _) = cat.resolve_latest(gref.id).unwrap();
        assert_eq!(*loaded, g);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn apply_bumps_version_and_mutates_edges() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(4)));
        let batch = EdgeBatch::new().delete(1, 2).insert(0, 3);
        let (v2, out) = cat.apply(gref.id, &batch, 0.5).expect("applies");
        assert_eq!(v2.version, 2);
        assert_eq!(out, BatchOutcome { edges_added: 1, edges_removed: 1 });
        let (g, exact) = cat.resolve_latest(gref.id).unwrap();
        assert_eq!(exact, v2);
        assert!(g.neighbors(0).contains(&3));
        assert!(!g.neighbors(1).contains(&2));
        // Unknown ids and malformed batches are rejected.
        assert_eq!(
            cat.apply(GraphId(99), &EdgeBatch::new(), 0.5),
            Err(ApplyError::UnknownGraph(GraphId(99)))
        );
        assert!(matches!(
            cat.apply(gref.id, &EdgeBatch::new().insert(0, 0), 0.5),
            Err(ApplyError::Batch(BatchError::SelfLoop(0)))
        ));
    }

    #[test]
    fn apply_flattens_past_the_rebuild_fraction() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(4)));
        // Touch 2 of 4 vertices with threshold 0.25: must flatten.
        let (_, _) = cat
            .apply(gref.id, &EdgeBatch::new().insert(0, 2), 0.25)
            .unwrap();
        let (view, _) = cat.view(gref.id).unwrap();
        assert!(
            matches!(view, GraphView::Flat(_)),
            "delta past the threshold is rebuilt"
        );
        // Threshold 1.0 keeps the overlay.
        let (_, _) = cat
            .apply(gref.id, &EdgeBatch::new().insert(1, 3), 1.0)
            .unwrap();
        let (view, _) = cat.view(gref.id).unwrap();
        assert!(matches!(view, GraphView::Delta(_)));
    }

    #[test]
    fn install_refuses_stale_versions() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(3)));
        let (view, r) = cat.view(gref.id).unwrap();
        // A concurrent publish moves the version under us.
        cat.publish(gref.id, Arc::new(gen::chain(3))).unwrap();
        assert_eq!(
            cat.install(gref.id, r.version, view, None),
            Err(ApplyError::Conflict {
                expected: 1,
                found: 2
            })
        );
    }

    #[test]
    fn resolve_pinned_distinguishes_stale_from_unknown() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(3)));
        assert!(matches!(cat.resolve_pinned(gref), Some(Ok(_))));
        let v2 = cat.publish(gref.id, Arc::new(gen::chain(5))).unwrap();
        assert_eq!(cat.resolve_pinned(gref), Some(Err(2)), "stale pin");
        assert!(matches!(cat.resolve_pinned(v2), Some(Ok(_))));
        cat.remove(gref.id);
        assert!(cat.resolve_pinned(v2).is_none(), "unknown graph");
    }

    #[test]
    fn resolve_latest_memoizes_delta_materialization() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::torus2d(4, 4)));
        cat.apply(gref.id, &EdgeBatch::new().delete(0, 1), 1.0)
            .unwrap();
        let (a, r1) = cat.resolve_latest(gref.id).unwrap();
        let (b, r2) = cat.resolve_latest(gref.id).unwrap();
        assert_eq!(r1, r2);
        assert!(Arc::ptr_eq(&a, &b), "second resolve reuses the memo");
        assert!(!a.neighbors(0).contains(&1));
    }

    #[test]
    fn deprecated_resolve_still_delegates() {
        let cat = GraphCatalog::new();
        let gref = cat.register(Arc::new(gen::chain(3)));
        #[allow(deprecated)]
        let (g, exact) = cat.resolve(gref.id).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(exact, gref);
    }

    #[test]
    fn cache_hits_and_misses() {
        let g = gen::torus2d(4, 4);
        let gref = GraphRef {
            id: GraphId(0),
            version: 1,
        };
        let cache = ResultCache::new(4);
        assert!(cache.get(&key(gref, 1)).is_none());
        cache.insert(key(gref, 1), forest_of(&g));
        let hit = cache.get(&key(gref, 1)).expect("hit");
        assert_eq!(hit.num_trees(), 1);
        // A different seed, width, algorithm, or version misses.
        assert!(cache.get(&key(gref, 2)).is_none());
        let mut wide = key(gref, 1);
        wide.processors = 4;
        assert!(cache.get(&wide).is_none());
        let v2 = GraphRef {
            id: GraphId(0),
            version: 2,
        };
        assert!(cache.get(&key(v2, 1)).is_none());
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        let g = gen::chain(4);
        let gref = GraphRef {
            id: GraphId(7),
            version: 1,
        };
        let cache = ResultCache::new(2);
        cache.insert(key(gref, 1), forest_of(&g));
        cache.insert(key(gref, 2), forest_of(&g));
        // Touch seed 1 so seed 2 is the LRU victim.
        assert!(cache.get(&key(gref, 1)).is_some());
        cache.insert(key(gref, 3), forest_of(&g));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(gref, 1)).is_some(), "recently used survives");
        assert!(cache.get(&key(gref, 2)).is_none(), "LRU evicted");
        assert!(cache.get(&key(gref, 3)).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let g = gen::chain(3);
        let gref = GraphRef {
            id: GraphId(1),
            version: 1,
        };
        let cache = ResultCache::new(2);
        cache.insert(key(gref, 1), forest_of(&g));
        cache.insert(key(gref, 2), forest_of(&g));
        cache.insert(key(gref, 1), forest_of(&g));
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&key(gref, 2)).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let g = gen::chain(3);
        let gref = GraphRef {
            id: GraphId(2),
            version: 1,
        };
        let cache = ResultCache::new(0);
        cache.insert(key(gref, 1), forest_of(&g));
        assert!(cache.get(&key(gref, 1)).is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn purge_drops_every_version_of_one_graph() {
        let g = gen::chain(3);
        let a1 = GraphRef {
            id: GraphId(1),
            version: 1,
        };
        let a2 = GraphRef {
            id: GraphId(1),
            version: 2,
        };
        let b = GraphRef {
            id: GraphId(2),
            version: 1,
        };
        let cache = ResultCache::new(8);
        cache.insert(key(a1, 1), forest_of(&g));
        cache.insert(key(a2, 1), forest_of(&g));
        cache.insert(key(b, 1), forest_of(&g));
        cache.purge_graph(GraphId(1));
        assert_eq!(cache.len(), 1);
        assert!(cache.get(&key(b, 1)).is_some());
    }
}
