//! The TCP server: accept loop, per-connection sessions, clean drain.
//!
//! Thread-per-connection keeps the semantics of the in-process API
//! intact with no async machinery: a session's requests execute
//! strictly in order on its own thread, and a blocking `WAIT` simply
//! parks that thread on the job's handle — admission control, not the
//! network layer, is where concurrency is bounded. The accept loop
//! enforces [`ServerConfig::max_connections`]; connections over the
//! limit receive a single [`Status::Busy`] frame and are closed.
//!
//! Shutdown is cooperative: sessions poll a shared flag between frames
//! (reads use a short timeout so the poll happens even on idle
//! connections), the accept loop is unblocked by a loopback
//! self-connect, and [`Server::shutdown`] joins every thread before
//! returning — no connection is ever torn down mid-response.

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use st_core::ConfigError;
use st_core::RuntimeConfig;
use st_obs::TraceId;

use crate::job::{JobError, JobHandle, Priority};
use crate::net::proto::{ops, write_frame, Cursor, Status, DEFAULT_MAX_FRAME_BYTES};
use crate::service::Service;
use crate::spec::{AlgorithmId, GraphSel, JobSpec};

/// How often an idle session re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(150);

/// Tuning for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address. Port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: SocketAddr,
    /// Concurrent sessions accepted before new connections get
    /// [`Status::Busy`].
    pub max_connections: usize,
    /// Per-frame payload ceiling; larger requests get
    /// [`Status::TooLarge`] and the connection closes.
    pub max_frame_bytes: usize,
    /// Ceiling on catalog entries reachable through remote `REGISTER`:
    /// uploads that would grow the catalog past this answer
    /// [`Status::CatalogFull`]. Without a bound any client could grow
    /// server memory forever — the catalog never evicts on its own;
    /// entries leave only via explicit removal. In-process
    /// registration is not limited by this knob.
    pub max_catalog_entries: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".parse().expect("literal address"),
            max_connections: 64,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            max_catalog_entries: DEFAULT_MAX_CATALOG_ENTRIES,
        }
    }
}

/// Default remote-registration ceiling when [`ServerConfig`] does not
/// set one.
pub const DEFAULT_MAX_CATALOG_ENTRIES: usize = 256;

impl ServerConfig {
    /// Defaults overlaid with the `ST_LISTEN_ADDR` and
    /// `ST_MAX_CONNECTIONS` environment knobs.
    pub fn from_env() -> Result<Self, ConfigError> {
        let env = RuntimeConfig::from_env()?;
        let mut cfg = Self::default();
        if let Some(addr) = env.listen_addr {
            cfg.addr = addr;
        }
        if let Some(max) = env.max_connections {
            cfg.max_connections = max;
        }
        Ok(cfg)
    }
}

/// A running TCP front-end over an [`Arc<Service>`].
///
/// Dropping the server (or calling [`shutdown`](Self::shutdown)) stops
/// accepting, drains every session, and joins all threads. The
/// underlying service is shared, not owned: it keeps running, and
/// in-process tenants are unaffected.
pub struct Server {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
    sessions: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("local_addr", &self.local_addr)
            .finish()
    }
}

impl Server {
    /// Binds `cfg.addr` and starts serving `service`.
    pub fn start(service: Arc<Service>, cfg: ServerConfig) -> io::Result<Self> {
        assert!(cfg.max_connections > 0, "max_connections must be >= 1");
        let listener = TcpListener::bind(cfg.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let sessions = Arc::new(Mutex::new(Vec::new()));
        let active = Arc::new(AtomicUsize::new(0));

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let sessions = Arc::clone(&sessions);
            std::thread::Builder::new()
                .name("st-server-accept".into())
                .spawn(move || {
                    accept_loop(&listener, &service, &cfg, &shutdown, &sessions, &active)
                })
                .expect("spawning the accept thread")
        };
        Ok(Self {
            local_addr,
            shutdown,
            accept: Some(accept),
            sessions,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains every session, joins all threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.shutdown.store(true, SeqCst);
        // The accept loop blocks in accept(); a throwaway self-connect
        // wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let sessions = std::mem::take(&mut *self.sessions.lock().unwrap());
        for s in sessions {
            let _ = s.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    cfg: &ServerConfig,
    shutdown: &Arc<AtomicBool>,
    sessions: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    active: &Arc<AtomicUsize>,
) {
    for stream in listener.incoming() {
        if shutdown.load(SeqCst) {
            return;
        }
        let Ok(mut stream) = stream else { continue };
        if active.load(SeqCst) >= cfg.max_connections {
            // One Busy frame, then close: the client's first read on
            // this connection sees the rejection.
            let _ = write_frame(&mut stream, &[Status::Busy.code()]);
            continue;
        }
        active.fetch_add(1, SeqCst);
        let service = Arc::clone(service);
        let shutdown = Arc::clone(shutdown);
        let slot = SlotGuard(Arc::clone(active));
        let max_frame = cfg.max_frame_bytes;
        let max_catalog = cfg.max_catalog_entries;
        let handle = std::thread::Builder::new()
            .name("st-server-session".into())
            .spawn(move || {
                let _slot = slot;
                session(&service, stream, max_frame, max_catalog, &shutdown);
            })
            .expect("spawning a session thread");
        let mut sessions = sessions.lock().unwrap();
        sessions.retain(|s| !s.is_finished());
        sessions.push(handle);
    }
}

/// Owns one slot of the `active` connection budget, releasing it when
/// the session thread exits — including by panic, which would
/// otherwise leak the slot and eventually wedge the accept loop into
/// answering `Busy` forever.
struct SlotGuard(Arc<AtomicUsize>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, SeqCst);
    }
}

/// What one attempt to read a fixed-size buffer produced.
enum Fill {
    /// Buffer completely filled.
    Full,
    /// Stream ended before the buffer filled (clean close when no
    /// bytes had arrived, truncation otherwise — the session ends
    /// either way).
    Eof,
    /// The shutdown flag fired while waiting.
    Shutdown,
}

/// Fills `buf` from a stream whose read timeout is `POLL_INTERVAL`,
/// re-checking `shutdown` on every timeout. Partial progress (a frame
/// split across TCP segments, or a slow sender) is preserved across
/// timeouts.
fn read_full_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<Fill> {
    let mut got = 0;
    while got < buf.len() {
        if shutdown.load(SeqCst) {
            return Ok(Fill::Shutdown);
        }
        match stream.read(&mut buf[got..]) {
            Ok(0) => return Ok(Fill::Eof),
            Ok(k) => got += k,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(Fill::Full)
}

/// What one append-read into a growable buffer produced.
pub(crate) enum Gulp {
    /// At least one byte arrived.
    Data,
    /// The peer closed the stream.
    Eof,
    /// The shutdown flag fired while waiting.
    Shutdown,
}

/// Appends whatever bytes are available to `buf` (used by the HTTP
/// plane, where message boundaries are textual rather than
/// length-prefixed), re-checking `shutdown` on every read timeout.
pub(crate) fn read_some_interruptible(
    stream: &mut TcpStream,
    buf: &mut Vec<u8>,
    shutdown: &AtomicBool,
) -> io::Result<Gulp> {
    let mut chunk = [0u8; 1024];
    loop {
        if shutdown.load(SeqCst) {
            return Ok(Gulp::Shutdown);
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(Gulp::Eof),
            Ok(k) => {
                buf.extend_from_slice(&chunk[..k]);
                return Ok(Gulp::Data);
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e),
        }
    }
}

/// One connection's lifetime: frame loop, ticket table, ordered
/// request handling.
fn session(
    service: &Arc<Service>,
    mut stream: TcpStream,
    max_frame: usize,
    max_catalog: usize,
    shutdown: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut tickets: HashMap<u32, JobHandle> = HashMap::new();
    let mut next_ticket: u32 = 0;

    let mut first_frame = true;
    loop {
        let mut header = [0u8; 4];
        match read_full_interruptible(&mut stream, &mut header, shutdown) {
            Ok(Fill::Full) => {}
            // Clean close, mid-prefix close, drain, or socket error all
            // end the session; outstanding jobs keep running and their
            // results are simply unclaimed.
            Ok(Fill::Eof | Fill::Shutdown) | Err(_) => return,
        }
        // Protocol sniff: a connection whose first "length prefix" is
        // the bytes `GET ` is an HTTP client; hand it to the
        // observability plane. Only the first frame is sniffed — after
        // that the connection has committed to the binary protocol.
        if first_frame && header == *b"GET " {
            crate::net::http::serve_http(service, stream, header, shutdown);
            return;
        }
        first_frame = false;
        let len = u32::from_le_bytes(header) as usize;
        if len > max_frame {
            let _ = write_frame(&mut stream, &[Status::TooLarge.code()]);
            return; // The unread payload leaves the stream unaligned.
        }
        let mut payload = vec![0u8; len];
        match read_full_interruptible(&mut stream, &mut payload, shutdown) {
            Ok(Fill::Full) => {}
            Ok(Fill::Eof | Fill::Shutdown) | Err(_) => return,
        }
        let (response, close) = handle_request(
            service,
            &payload,
            max_catalog,
            &mut tickets,
            &mut next_ticket,
        );
        if write_frame(&mut stream, &response).is_err() || close {
            return;
        }
    }
}

fn resp(status: Status) -> Vec<u8> {
    vec![status.code()]
}

fn resp_with(status: Status, body: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + body.len());
    out.push(status.code());
    out.extend_from_slice(body);
    out
}

fn job_error_status(err: &JobError) -> Status {
    match err {
        JobError::Backpressure => Status::Backpressure,
        JobError::Cancelled => Status::Cancelled,
        JobError::DeadlineExceeded => Status::DeadlineExceeded,
        JobError::Panicked(_) => Status::Panicked,
        JobError::ShuttingDown => Status::ShuttingDown,
        JobError::UnknownGraph => Status::UnknownGraph,
        JobError::QuotaExceeded => Status::QuotaExceeded,
        JobError::DeadlineUnmeetable => Status::DeadlineUnmeetable,
        JobError::StaleVersion(_) => Status::StaleVersion,
    }
}

/// Parses and executes one request, returning `(response frame payload,
/// close connection after responding)`.
fn handle_request(
    service: &Arc<Service>,
    payload: &[u8],
    max_catalog: usize,
    tickets: &mut HashMap<u32, JobHandle>,
    next_ticket: &mut u32,
) -> (Vec<u8>, bool) {
    let mut c = Cursor::new(payload);
    let Some(op) = c.u8() else {
        return (resp(Status::Malformed), false);
    };
    match op {
        ops::PING => (resp_with(Status::Ok, c.remaining()), false),
        ops::REGISTER => match st_graph::io::read_binary_slice(c.remaining()) {
            Ok(graph) => match service
                .catalog()
                .register_bounded(Arc::new(graph), max_catalog)
            {
                Some(gref) => {
                    let mut body = Vec::with_capacity(12);
                    body.extend_from_slice(&gref.id.0.to_le_bytes());
                    body.extend_from_slice(&gref.version.to_le_bytes());
                    (resp_with(Status::Ok, &body), false)
                }
                None => (resp(Status::CatalogFull), false),
            },
            Err(e) => (resp_with(Status::BadGraph, e.to_string().as_bytes()), false),
        },
        ops::SUBMIT => {
            let parsed = (|| {
                let graph = c.u64()?;
                let algo = AlgorithmId::from_code(c.u8()?)?;
                let priority = match c.u8()? {
                    0 => Priority::High,
                    1 => Priority::Normal,
                    2 => Priority::Low,
                    _ => return None,
                };
                let seed = c.u64()?;
                let deadline_ms = c.u64()?;
                let processors = c.u32()?;
                // Optional trailing fields, oldest clients first: a
                // tenant id, then a version pin (flag byte + version).
                // Absent bytes mean anonymous tenant / latest version.
                let tenant = c.u64();
                let id = crate::catalog::GraphId(graph);
                let sel = match c.u8() {
                    None | Some(0) => GraphSel::Latest(id),
                    Some(1) => GraphSel::Pinned(crate::catalog::GraphRef {
                        id,
                        version: c.u32()?,
                    }),
                    Some(_) => return None,
                };
                let mut spec = JobSpec::new(sel)
                    .algorithm(algo)
                    .seed(seed)
                    .priority(priority);
                if deadline_ms > 0 {
                    spec = spec.deadline(Duration::from_millis(deadline_ms));
                }
                if processors > 0 {
                    spec = spec.processors(processors as usize);
                }
                if let Some(tenant) = tenant {
                    spec = spec.tenant(tenant);
                }
                Some(spec)
            })();
            let Some(mut spec) = parsed else {
                return (resp(Status::Malformed), false);
            };
            // The trace id is minted here — at the wire boundary — so
            // it covers the job's entire server-side life and the reply
            // can return it before the job resolves.
            let trace = TraceId::mint();
            spec = spec.trace(trace.as_u64());
            // Non-blocking admission: remote callers must see
            // backpressure instead of silently tying up the session
            // thread while the queue is full.
            match service.try_submit_spec(spec) {
                Ok(submitted) => {
                    let ticket = *next_ticket;
                    *next_ticket = next_ticket.wrapping_add(1);
                    let cached = submitted.cached;
                    tickets.insert(ticket, submitted.handle);
                    let mut body = Vec::with_capacity(13);
                    body.extend_from_slice(&ticket.to_le_bytes());
                    body.push(cached as u8);
                    body.extend_from_slice(&trace.as_u64().to_le_bytes());
                    (resp_with(Status::Ok, &body), false)
                }
                // A stale pin's reply carries the live version so the
                // client can re-pin (or fall back to latest) in one
                // round trip.
                Err(JobError::StaleVersion(current)) => (
                    resp_with(Status::StaleVersion, &current.to_le_bytes()),
                    false,
                ),
                Err(e) => (resp(job_error_status(&e)), false),
            }
        }
        ops::WAIT => {
            let Some(ticket) = c.u32() else {
                return (resp(Status::Malformed), false);
            };
            let Some(handle) = tickets.remove(&ticket) else {
                return (resp(Status::UnknownTicket), false);
            };
            match handle.wait() {
                Ok(forest) => {
                    let mut body =
                        Vec::with_capacity(16 + 4 * (forest.parents.len() + forest.roots.len()));
                    body.extend_from_slice(&(forest.parents.len() as u64).to_le_bytes());
                    for &p in &forest.parents {
                        body.extend_from_slice(&p.to_le_bytes());
                    }
                    body.extend_from_slice(&(forest.roots.len() as u64).to_le_bytes());
                    for &r in &forest.roots {
                        body.extend_from_slice(&r.to_le_bytes());
                    }
                    (resp_with(Status::Ok, &body), false)
                }
                Err(JobError::Panicked(msg)) => {
                    (resp_with(Status::Panicked, msg.as_bytes()), false)
                }
                Err(e) => (resp(job_error_status(&e)), false),
            }
        }
        ops::CANCEL => {
            let Some(ticket) = c.u32() else {
                return (resp(Status::Malformed), false);
            };
            match tickets.get(&ticket) {
                // The handle stays in the table: a later WAIT claims the
                // Cancelled (or raced-to-completion) result.
                Some(handle) => {
                    handle.cancel();
                    (resp(Status::Ok), false)
                }
                None => (resp(Status::UnknownTicket), false),
            }
        }
        ops::METRICS => (
            resp_with(Status::Ok, service.render_metrics().as_bytes()),
            false,
        ),
        ops::UPDATE => {
            let parsed = (|| {
                let graph = c.u64()?;
                let n_ins = c.u32()? as usize;
                let n_del = c.u32()? as usize;
                let mut batch = st_graph::EdgeBatch::new();
                for _ in 0..n_ins {
                    batch = batch.insert(c.u32()?, c.u32()?);
                }
                for _ in 0..n_del {
                    batch = batch.delete(c.u32()?, c.u32()?);
                }
                Some((crate::catalog::GraphId(graph), batch))
            })();
            let Some((id, batch)) = parsed else {
                return (resp(Status::Malformed), false);
            };
            match service.apply(id, &batch) {
                Ok(report) => {
                    // version u32, incremental u8, components u64,
                    // edges added u64, edges removed u64.
                    let mut body = Vec::with_capacity(29);
                    body.extend_from_slice(&report.graph.version.to_le_bytes());
                    body.push(report.incremental as u8);
                    body.extend_from_slice(&(report.components as u64).to_le_bytes());
                    body.extend_from_slice(&(report.outcome.edges_added as u64).to_le_bytes());
                    body.extend_from_slice(&(report.outcome.edges_removed as u64).to_le_bytes());
                    (resp_with(Status::Ok, &body), false)
                }
                Err(crate::dynamic::UpdateError::UnknownGraph(_)) => {
                    (resp(Status::UnknownGraph), false)
                }
                Err(crate::dynamic::UpdateError::Batch(e)) => {
                    (resp_with(Status::Malformed, e.to_string().as_bytes()), false)
                }
            }
        }
        _ => (resp(Status::Malformed), false),
    }
}
