//! A blocking client for the TCP front-end.
//!
//! One [`Client`] is one connection — one ordered request/response
//! session with its own ticket namespace. The client is deliberately
//! synchronous (the server is thread-per-connection; concurrency comes
//! from opening more connections), and every method maps a non-`Ok`
//! response status to a typed [`WireError`] so remote backpressure,
//! deadlines, and cancellations are as visible as their in-process
//! counterparts.

use std::io::{self, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use st_graph::{CsrGraph, VertexId};

use crate::job::Priority;
use crate::net::proto::{
    ops, read_frame, write_frame, Cursor, ReadFrame, Status, DEFAULT_MAX_FRAME_BYTES,
};
use crate::spec::AlgorithmId;

/// Why a client call failed.
#[derive(Debug)]
pub enum WireError {
    /// The socket failed (or closed mid-frame).
    Io(io::Error),
    /// The server answered with a non-`Ok` status; the string carries
    /// any diagnostic payload (e.g. a panic message or parse error).
    Remote(Status, String),
    /// The response could not be parsed (protocol bug or version skew).
    Protocol(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "socket error: {e}"),
            WireError::Remote(status, msg) if msg.is_empty() => {
                write!(f, "server answered: {status}")
            }
            WireError::Remote(status, msg) => write!(f, "server answered: {status} ({msg})"),
            WireError::Protocol(what) => write!(f, "protocol error: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

impl WireError {
    /// The remote status, when the failure was a server answer.
    pub fn status(&self) -> Option<Status> {
        match self {
            WireError::Remote(status, _) => Some(*status),
            _ => None,
        }
    }
}

/// A graph registered through this connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteGraph {
    /// Catalog id, valid across all connections to this server.
    pub id: u64,
    /// Version assigned at registration.
    pub version: u32,
}

/// A ticket for a submitted job, scoped to the connection that
/// submitted it.
#[derive(Debug)]
pub struct SubmitReply {
    /// Pass to [`Client::wait`] / [`Client::cancel`].
    pub ticket: u32,
    /// True when the result came from the server's cache (the job
    /// never queued or executed; `wait` returns immediately).
    pub cached: bool,
    /// Server-minted trace id: the key into the server's event journal
    /// (`/debug/journal?trace=<hex>`) and slow-job log.
    pub trace: u64,
}

/// A spanning forest received over the wire (parents + roots; the
/// per-run statistics stay on the server).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RemoteForest {
    /// `parents[v]` is v's tree parent, or
    /// [`NO_VERTEX`](st_graph::NO_VERTEX) for roots.
    pub parents: Vec<VertexId>,
    /// Tree roots in discovery order.
    pub roots: Vec<VertexId>,
}

impl RemoteForest {
    /// Number of trees (= components).
    pub fn num_trees(&self) -> usize {
        self.roots.len()
    }

    /// Re-checks the forest against a local copy of the graph.
    pub fn is_valid_for(&self, g: &CsrGraph) -> bool {
        st_graph::validate::is_spanning_forest(g, &self.parents)
    }
}

/// Everything a remote submission can specify; mirrors
/// [`JobSpec`](crate::JobSpec).
#[derive(Clone, Copy, Debug)]
pub struct SubmitRequest {
    /// The catalog graph to span.
    pub graph: RemoteGraph,
    /// Algorithm to run.
    pub algorithm: AlgorithmId,
    /// Traversal seed.
    pub seed: u64,
    /// Admission priority.
    pub priority: Priority,
    /// Deadline from submission (queue + execution).
    pub deadline: Option<Duration>,
    /// Explicit team width (`None` = sizing oracle).
    pub processors: Option<usize>,
    /// Tenant the job's queued-slot quota is charged to (0 =
    /// anonymous).
    pub tenant: u64,
    /// When true, the submission is pinned to `graph.version` exactly:
    /// if the server's catalog has moved past it and no cached result
    /// matches, the reply is [`Status::StaleVersion`] carrying the live
    /// version. When false (the default) the submission follows the
    /// latest version.
    pub pinned: bool,
}

impl SubmitRequest {
    /// Default-algorithm, default-seed request for `graph`.
    pub fn new(graph: RemoteGraph) -> Self {
        Self {
            graph,
            algorithm: AlgorithmId::BaderCong,
            seed: crate::spec::DEFAULT_SEED,
            priority: Priority::Normal,
            deadline: None,
            processors: None,
            tenant: 0,
            pinned: false,
        }
    }

    /// Selects the algorithm.
    pub fn algorithm(mut self, a: AlgorithmId) -> Self {
        self.algorithm = a;
        self
    }

    /// Sets the traversal seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the priority class.
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Attaches a deadline (rounded up to at least 1 ms — 0 encodes
    /// "none" on the wire).
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Requests an explicit team width.
    pub fn processors(mut self, p: usize) -> Self {
        self.processors = Some(p);
        self
    }

    /// Names the tenant whose queued-job quota this submission is
    /// charged against (default 0, the shared anonymous tenant).
    pub fn tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }

    /// Pins the submission to `graph.version` exactly instead of
    /// following the catalog's latest version.
    pub fn pinned(mut self) -> Self {
        self.pinned = true;
        self
    }
}

/// What one [`Client::update`] batch did on the server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RemoteUpdate {
    /// The new version the batch produced.
    pub version: u32,
    /// True when the forest was repaired incrementally rather than
    /// recomputed from scratch.
    pub incremental: bool,
    /// Components in the maintained forest after the batch.
    pub components: u64,
    /// Insertions that were not already present.
    pub edges_added: u64,
    /// Deletions that named a live edge.
    pub edges_removed: u64,
}

/// One blocking connection to a [`Server`](crate::net::Server).
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
    /// Set once the stream is no longer frame-aligned (an oversized
    /// response frame was flagged but its payload never consumed).
    /// Every later call fails instead of parsing garbage.
    poisoned: bool,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("peer", &self.stream.peer_addr().ok())
            .finish()
    }
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_bytes: DEFAULT_MAX_FRAME_BYTES,
            poisoned: false,
        })
    }

    /// Lowers (or raises) the response-frame ceiling; frames above it
    /// poison the connection. Defaults to
    /// [`DEFAULT_MAX_FRAME_BYTES`], matching the server.
    pub fn with_max_frame_bytes(mut self, bytes: usize) -> Self {
        self.max_frame_bytes = bytes;
        self
    }

    /// Fails fast when a previous oversized response left the stream
    /// unaligned.
    fn check_poisoned(&self) -> Result<(), WireError> {
        if self.poisoned {
            Err(WireError::Protocol(
                "connection poisoned by an oversized response frame",
            ))
        } else {
            Ok(())
        }
    }

    /// Reads one response frame and splits it into status + body. An
    /// oversized frame poisons the client and shuts the socket down:
    /// its payload was never consumed, so nothing after it can be
    /// trusted to be frame-aligned.
    fn read_response(&mut self) -> Result<(Status, Vec<u8>), WireError> {
        match read_frame(&mut self.stream, self.max_frame_bytes)? {
            ReadFrame::Frame(frame) => {
                let mut c = Cursor::new(&frame);
                let code = c.u8().ok_or(WireError::Protocol("empty response"))?;
                let status =
                    Status::from_code(code).ok_or(WireError::Protocol("unknown status code"))?;
                Ok((status, c.remaining().to_vec()))
            }
            ReadFrame::Eof => Err(WireError::Io(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "server closed the connection",
            ))),
            ReadFrame::TooLarge(_) => {
                self.poisoned = true;
                let _ = self.stream.shutdown(std::net::Shutdown::Both);
                Err(WireError::Protocol("oversized response frame"))
            }
        }
    }

    /// One request/response round trip.
    fn call(&mut self, request: &[u8]) -> Result<(Status, Vec<u8>), WireError> {
        self.check_poisoned()?;
        write_frame(&mut BufWriter::new(&mut self.stream), request)?;
        self.read_response()
    }

    /// As [`call`](Self::call), but any non-`Ok` status becomes
    /// [`WireError::Remote`] with the payload as its message.
    fn call_ok(&mut self, request: &[u8]) -> Result<Vec<u8>, WireError> {
        let (status, body) = self.call(request)?;
        if status == Status::Ok {
            Ok(body)
        } else {
            Err(WireError::Remote(
                status,
                String::from_utf8_lossy(&body).into_owned(),
            ))
        }
    }

    /// Round-trips `payload` through the server's echo op.
    pub fn ping(&mut self, payload: &[u8]) -> Result<Vec<u8>, WireError> {
        let mut req = Vec::with_capacity(1 + payload.len());
        req.push(ops::PING);
        req.extend_from_slice(payload);
        self.call_ok(&req)
    }

    /// Uploads `graph` into the server's catalog.
    pub fn register(&mut self, graph: &CsrGraph) -> Result<RemoteGraph, WireError> {
        let mut req = Vec::with_capacity(1 + st_graph::io::BINARY_HEADER_BYTES);
        req.push(ops::REGISTER);
        req.extend_from_slice(&st_graph::io::to_binary_vec(graph));
        let body = self.call_ok(&req)?;
        let mut c = Cursor::new(&body);
        let id = c.u64().ok_or(WireError::Protocol("short REGISTER reply"))?;
        let version = c.u32().ok_or(WireError::Protocol("short REGISTER reply"))?;
        Ok(RemoteGraph { id, version })
    }

    /// Submits a job. Non-blocking on the server side: a full admission
    /// queue is `WireError::Remote(Status::Backpressure, _)`; a tenant
    /// over its quota is `Status::QuotaExceeded`, and a deadline the
    /// lane's queue-delay estimate cannot meet is
    /// `Status::DeadlineUnmeetable`.
    pub fn submit(&mut self, r: SubmitRequest) -> Result<SubmitReply, WireError> {
        let mut req = Vec::with_capacity(39);
        req.push(ops::SUBMIT);
        req.extend_from_slice(&r.graph.id.to_le_bytes());
        req.push(r.algorithm.code());
        req.push(match r.priority {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Low => 2,
        });
        req.extend_from_slice(&r.seed.to_le_bytes());
        let deadline_ms = r
            .deadline
            .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        req.extend_from_slice(&deadline_ms.to_le_bytes());
        let processors = r
            .processors
            .map_or(0u32, |p| p.try_into().unwrap_or(u32::MAX));
        req.extend_from_slice(&processors.to_le_bytes());
        req.extend_from_slice(&r.tenant.to_le_bytes());
        if r.pinned {
            req.push(1);
            req.extend_from_slice(&r.graph.version.to_le_bytes());
        } else {
            req.push(0);
        }
        let body = self.call_ok(&req)?;
        let mut c = Cursor::new(&body);
        let ticket = c.u32().ok_or(WireError::Protocol("short SUBMIT reply"))?;
        let cached = c.u8().ok_or(WireError::Protocol("short SUBMIT reply"))? != 0;
        let trace = c.u64().ok_or(WireError::Protocol("short SUBMIT reply"))?;
        Ok(SubmitReply {
            ticket,
            cached,
            trace,
        })
    }

    /// Blocks until the job behind `ticket` resolves and claims its
    /// forest. The ticket is consumed — waiting twice is
    /// [`Status::UnknownTicket`].
    pub fn wait(&mut self, ticket: u32) -> Result<RemoteForest, WireError> {
        let mut req = Vec::with_capacity(5);
        req.push(ops::WAIT);
        req.extend_from_slice(&ticket.to_le_bytes());
        let body = self.call_ok(&req)?;
        let mut c = Cursor::new(&body);
        let err = WireError::Protocol("short WAIT reply");
        let n = c.u64().ok_or(err)? as usize;
        let parents = c.u32s(n).ok_or(WireError::Protocol("short WAIT reply"))?;
        let r = c.u64().ok_or(WireError::Protocol("short WAIT reply"))? as usize;
        let roots = c.u32s(r).ok_or(WireError::Protocol("short WAIT reply"))?;
        Ok(RemoteForest { parents, roots })
    }

    /// Fires the cancellation token of the job behind `ticket`. The
    /// ticket stays valid: a later [`wait`](Self::wait) claims the
    /// cancelled (or raced-to-completion) result.
    pub fn cancel(&mut self, ticket: u32) -> Result<(), WireError> {
        let mut req = Vec::with_capacity(5);
        req.push(ops::CANCEL);
        req.extend_from_slice(&ticket.to_le_bytes());
        self.call_ok(&req).map(drop)
    }

    /// Applies a batch of edge insertions and deletions to catalog
    /// graph `graph_id`, returning the new version and what the batch
    /// changed. The server keeps the graph's spanning forest current —
    /// incrementally for small batches, by full recompute otherwise
    /// ([`RemoteUpdate::incremental`] says which ran).
    pub fn update(
        &mut self,
        graph_id: u64,
        inserts: &[(VertexId, VertexId)],
        deletes: &[(VertexId, VertexId)],
    ) -> Result<RemoteUpdate, WireError> {
        let mut req = Vec::with_capacity(17 + 8 * (inserts.len() + deletes.len()));
        req.push(ops::UPDATE);
        req.extend_from_slice(&graph_id.to_le_bytes());
        let n_ins =
            u32::try_from(inserts.len()).map_err(|_| WireError::Protocol("batch too large"))?;
        let n_del =
            u32::try_from(deletes.len()).map_err(|_| WireError::Protocol("batch too large"))?;
        req.extend_from_slice(&n_ins.to_le_bytes());
        req.extend_from_slice(&n_del.to_le_bytes());
        for &(u, v) in inserts.iter().chain(deletes) {
            req.extend_from_slice(&u.to_le_bytes());
            req.extend_from_slice(&v.to_le_bytes());
        }
        let body = self.call_ok(&req)?;
        let mut c = Cursor::new(&body);
        let short = || WireError::Protocol("short UPDATE reply");
        Ok(RemoteUpdate {
            version: c.u32().ok_or_else(short)?,
            incremental: c.u8().ok_or_else(short)? != 0,
            components: c.u64().ok_or_else(short)?,
            edges_added: c.u64().ok_or_else(short)?,
            edges_removed: c.u64().ok_or_else(short)?,
        })
    }

    /// Fetches the server's Prometheus metrics page.
    pub fn metrics(&mut self) -> Result<String, WireError> {
        let body = self.call_ok(&[ops::METRICS])?;
        String::from_utf8(body).map_err(|_| WireError::Protocol("metrics page not UTF-8"))
    }

    /// Sends a raw frame and reads one response frame — for protocol
    /// tests that need to speak malformed requests.
    #[doc(hidden)]
    pub fn raw_call(&mut self, request: &[u8]) -> Result<(Status, Vec<u8>), WireError> {
        self.call(request)
    }

    /// Writes raw bytes without framing — for tests that corrupt the
    /// framing layer itself.
    #[doc(hidden)]
    pub fn raw_write(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads one raw response frame — pairs with
    /// [`raw_write`](Self::raw_write).
    #[doc(hidden)]
    pub fn raw_read(&mut self) -> Result<(Status, Vec<u8>), WireError> {
        self.check_poisoned()?;
        self.read_response()
    }
}
