//! Framing, opcodes, status codes, and little-endian cursors.
//!
//! The unit of transport is a *frame*: a `u32` little-endian length
//! followed by that many payload bytes. Framing is symmetric — both
//! requests and responses travel as frames — and bounded: each side
//! enforces a maximum payload size so a corrupt or hostile length
//! prefix cannot make it allocate gigabytes.

use std::io::{self, Read, Write};

/// Default per-frame payload ceiling: large enough for a multi-million
/// vertex graph upload or forest download, small enough to bound a
/// connection's memory.
pub const DEFAULT_MAX_FRAME_BYTES: usize = 64 * 1024 * 1024;

/// Request opcodes (first payload byte of every request frame).
pub mod ops {
    /// Echo: liveness and latency probe.
    pub const PING: u8 = 0x01;
    /// Upload an [`st_graph::io`] binary graph into the catalog.
    pub const REGISTER: u8 = 0x02;
    /// Submit a catalog-addressed job; non-blocking admission.
    pub const SUBMIT: u8 = 0x03;
    /// Block until a submitted job resolves; claim its forest.
    pub const WAIT: u8 = 0x04;
    /// Fire a submitted job's cancellation token.
    pub const CANCEL: u8 = 0x05;
    /// Fetch the Prometheus metrics page.
    pub const METRICS: u8 = 0x06;
    /// Apply an edge batch to a catalog graph, producing a new version
    /// with its spanning forest maintained.
    pub const UPDATE: u8 = 0x07;
}

/// Response status (first payload byte of every response frame).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// Request succeeded; payload follows.
    Ok = 0,
    /// The admission queue is full; retry later or shed load.
    Backpressure = 1,
    /// The job was cancelled before it finished.
    Cancelled = 2,
    /// The job's deadline passed before it finished.
    DeadlineExceeded = 3,
    /// The job's algorithm panicked; payload is the message.
    Panicked = 4,
    /// The service is shutting down.
    ShuttingDown = 5,
    /// The submitted graph id is not in the catalog.
    UnknownGraph = 6,
    /// The ticket does not name a job on this connection.
    UnknownTicket = 7,
    /// The request could not be parsed (bad op, short payload, bad
    /// enum code).
    Malformed = 8,
    /// The request frame exceeded the server's size limit; the
    /// connection closes after this response.
    TooLarge = 9,
    /// The server is at its connection limit; the connection closes
    /// after this response.
    Busy = 10,
    /// A `REGISTER` payload was not a valid binary graph; payload is
    /// the parse error.
    BadGraph = 11,
    /// The server's catalog is at its configured entry limit; remove a
    /// graph (or raise the limit) before registering another.
    CatalogFull = 12,
    /// The submitting tenant already holds its full quota of queued
    /// jobs; resubmit after one of them resolves.
    QuotaExceeded = 13,
    /// The job's deadline is shorter than the expected queue delay of
    /// its priority lane; it was rejected at admission rather than
    /// queued to miss.
    DeadlineUnmeetable = 14,
    /// A version-pinned submission named a superseded graph version and
    /// no cached result could serve it; payload is the current version.
    StaleVersion = 15,
}

impl Status {
    /// The wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`code`](Self::code).
    pub fn from_code(code: u8) -> Option<Self> {
        use Status::*;
        [
            Ok,
            Backpressure,
            Cancelled,
            DeadlineExceeded,
            Panicked,
            ShuttingDown,
            UnknownGraph,
            UnknownTicket,
            Malformed,
            TooLarge,
            Busy,
            BadGraph,
            CatalogFull,
            QuotaExceeded,
            DeadlineUnmeetable,
            StaleVersion,
        ]
        .into_iter()
        .find(|s| s.code() == code)
    }
}

impl std::fmt::Display for Status {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Status::Ok => "ok",
            Status::Backpressure => "backpressure",
            Status::Cancelled => "cancelled",
            Status::DeadlineExceeded => "deadline exceeded",
            Status::Panicked => "panicked",
            Status::ShuttingDown => "shutting down",
            Status::UnknownGraph => "unknown graph",
            Status::UnknownTicket => "unknown ticket",
            Status::Malformed => "malformed request",
            Status::TooLarge => "frame too large",
            Status::Busy => "server busy",
            Status::BadGraph => "bad graph payload",
            Status::CatalogFull => "catalog full",
            Status::QuotaExceeded => "tenant quota exceeded",
            Status::DeadlineUnmeetable => "deadline unmeetable",
            Status::StaleVersion => "stale graph version",
        };
        f.write_str(s)
    }
}

/// Writes one frame: length prefix, payload, flush.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame exceeds u32 length"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// What [`read_frame`] found on the stream.
#[derive(Debug, PartialEq, Eq)]
pub enum ReadFrame {
    /// A complete frame.
    Frame(Vec<u8>),
    /// The peer closed the stream cleanly between frames.
    Eof,
    /// The length prefix exceeded `max_payload`. The payload was NOT
    /// consumed — the stream is no longer frame-aligned and should be
    /// closed after an error response.
    TooLarge(u32),
}

/// Reads one frame, tolerating reads split across TCP segments.
///
/// A clean close *between* frames is [`ReadFrame::Eof`]; a close
/// mid-frame is an [`io::ErrorKind::UnexpectedEof`] error. Timeouts
/// (`WouldBlock`/`TimedOut`) propagate to the caller, which may retry —
/// partial progress is lost, so only use read timeouts with
/// [`read_frame_interruptible`]-style outer loops that keep the partial
/// buffer. This plain version is for blocking streams.
pub fn read_frame<R: Read>(r: &mut R, max_payload: usize) -> io::Result<ReadFrame> {
    let mut header = [0u8; 4];
    match read_full(r, &mut header)? {
        0 => return Ok(ReadFrame::Eof),
        4 => {}
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "stream closed mid length prefix",
            ))
        }
    }
    let len = u32::from_le_bytes(header);
    if len as usize > max_payload {
        return Ok(ReadFrame::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(ReadFrame::Frame(payload))
}

/// Reads until `buf` is full or the stream ends; returns bytes read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<usize> {
    let mut got = 0;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => break,
            Ok(k) => got += k,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(got)
}

/// A little-endian reading cursor over a request/response payload.
///
/// Every accessor returns `None` on underrun, so parsers degrade to a
/// `Malformed` response instead of panicking on short payloads.
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> &'a [u8] {
        &self.buf[self.pos..]
    }

    /// True when every byte was consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Next `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Next `u8`.
    pub fn u8(&mut self) -> Option<u8> {
        self.bytes(1).map(|b| b[0])
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.bytes(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.bytes(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    /// Next `count` little-endian `u32`s.
    pub fn u32s(&mut self, count: usize) -> Option<Vec<u32>> {
        let raw = self.bytes(count.checked_mul(4)?)?;
        Some(
            raw.chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap(),
            ReadFrame::Frame(b"hello".to_vec())
        );
        assert_eq!(read_frame(&mut r, 1024).unwrap(), ReadFrame::Frame(vec![]));
        assert_eq!(read_frame(&mut r, 1024).unwrap(), ReadFrame::Eof);
    }

    #[test]
    fn oversized_length_is_flagged_not_allocated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = &wire[..];
        assert_eq!(
            read_frame(&mut r, 1024).unwrap(),
            ReadFrame::TooLarge(u32::MAX)
        );
    }

    #[test]
    fn truncated_prefix_and_payload_error() {
        // Two of four length bytes.
        let mut r = &[0x05u8, 0x00][..];
        let err = read_frame(&mut r, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Complete prefix, half the payload.
        let mut wire = Vec::new();
        wire.extend_from_slice(&4u32.to_le_bytes());
        wire.extend_from_slice(b"ab");
        let mut r = &wire[..];
        let err = read_frame(&mut r, 1024).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    /// A reader that returns one byte per call, exercising the
    /// partial-read paths the loopback tests can't reliably force.
    struct Trickle<'a>(&'a [u8]);

    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() || buf.is_empty() {
                return Ok(0);
            }
            buf[0] = self.0[0];
            self.0 = &self.0[1..];
            Ok(1)
        }
    }

    #[test]
    fn single_byte_reads_reassemble_the_frame() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"segmented").unwrap();
        let mut r = Trickle(&wire);
        assert_eq!(
            read_frame(&mut r, 1024).unwrap(),
            ReadFrame::Frame(b"segmented".to_vec())
        );
    }

    #[test]
    fn status_codes_roundtrip() {
        for code in 0..=15 {
            let status = Status::from_code(code).expect("defined");
            assert_eq!(status.code(), code);
        }
        assert_eq!(Status::from_code(16), None);
        assert_eq!(Status::from_code(255), None);
    }

    #[test]
    fn cursor_reads_and_underruns() {
        let mut buf = Vec::new();
        buf.push(7u8);
        buf.extend_from_slice(&0xdead_beefu32.to_le_bytes());
        buf.extend_from_slice(&0x0123_4567_89ab_cdefu64.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&2u32.to_le_bytes());
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u8(), Some(7));
        assert_eq!(c.u32(), Some(0xdead_beef));
        assert_eq!(c.u64(), Some(0x0123_4567_89ab_cdef));
        assert_eq!(c.u32s(2), Some(vec![1, 2]));
        assert!(c.is_exhausted());
        assert_eq!(c.u8(), None, "underrun is None, not panic");
        let mut short = Cursor::new(&[1, 2]);
        assert_eq!(short.u32(), None);
        assert_eq!(short.remaining(), &[1, 2], "failed read consumes nothing");
    }
}
