//! Minimal HTTP/1.1 observability plane, multiplexed onto the job
//! protocol's listener.
//!
//! The binary protocol frames every request with a `u32` little-endian
//! length prefix; an HTTP request starts with `GET ` (0x47 0x45 0x54
//! 0x20 — as a length that would be a ~542 MB frame, far past any sane
//! [`ServerConfig::max_frame_bytes`](crate::net::ServerConfig)). The
//! session loop sniffs those 4 bytes and hands the connection here, so
//! one port serves both `curl` and the binary client.
//!
//! Endpoints:
//!
//! | path | response |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (gauges + histograms) |
//! | `GET /healthz` | `200 ok` while accepting, `503 draining` during shutdown |
//! | `GET /debug/jobs` | JSON: in-flight jobs + recent slow-job reports |
//! | `GET /debug/journal` | JSONL lifecycle events; `?trace=<hex id>` filters |
//!
//! The parser is deliberately small: request line + headers up to 8 KiB,
//! no bodies, keep-alive honored until the client says `close` (or
//! sends HTTP/1.0). Anything else is a 4xx and the connection closes —
//! this is an operator plane, not a web server.

use std::io::Write;
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use st_obs::TraceId;

use crate::net::server::{read_some_interruptible, Gulp};
use crate::service::Service;
use crate::telemetry::json_escape;

/// Ceiling on one request head (request line + headers). Operator
/// tooling stays tiny; anything larger is hostile or lost.
const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Serves HTTP on a connection whose first 4 bytes (`prefix`) were
/// already consumed by the frame-header sniff. Returns when the client
/// closes, an error occurs, or the server drains.
pub(crate) fn serve_http(
    service: &Arc<Service>,
    mut stream: TcpStream,
    prefix: [u8; 4],
    shutdown: &AtomicBool,
) {
    let mut buf: Vec<u8> = prefix.to_vec();
    loop {
        // Accumulate one request head (everything through "\r\n\r\n").
        let head_end = loop {
            if let Some(end) = find_head_end(&buf) {
                break end;
            }
            if buf.len() > MAX_HEAD_BYTES {
                reject(
                    &mut stream,
                    "431 Request Header Fields Too Large",
                    b"request head too large\n",
                );
                return;
            }
            match read_some_interruptible(&mut stream, &mut buf, shutdown) {
                Ok(Gulp::Data) => {}
                Ok(Gulp::Eof | Gulp::Shutdown) | Err(_) => return,
            }
        };
        let head = match std::str::from_utf8(&buf[..head_end]) {
            Ok(h) => h,
            Err(_) => {
                reject(&mut stream, "400 Bad Request", b"non-UTF-8 request head\n");
                return;
            }
        };
        let Some(req) = parse_head(head) else {
            reject(&mut stream, "400 Bad Request", b"malformed request line\n");
            return;
        };
        // No request bodies on this plane: a Content-Length (or chunked
        // upload) would desynchronize the next head, so refuse it.
        if req.has_body {
            reject(
                &mut stream,
                "400 Bad Request",
                b"request bodies are not accepted\n",
            );
            return;
        }
        let close = req.close;
        let (status, content_type, body) = route(service, req.method, req.target);
        if write_response(&mut stream, status, content_type, body.as_bytes(), close).is_err()
            || close
        {
            return;
        }
        // Drop the consumed head; pipelined bytes (rare but legal)
        // stay for the next iteration.
        buf.drain(..head_end);
    }
}

/// Byte offset one past the `\r\n\r\n` terminating the head, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

struct Request<'a> {
    method: &'a str,
    target: &'a str,
    /// Client asked to close (or spoke HTTP/1.0, where close is the
    /// default).
    close: bool,
    /// Request announces a body (Content-Length > 0 or chunked).
    has_body: bool,
}

/// Parses request line + the two headers this plane cares about.
fn parse_head(head: &str) -> Option<Request<'_>> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next()?;
    let mut parts = request_line.split(' ');
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return None;
    }
    let mut close = version == "HTTP/1.0";
    let mut has_body = false;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("content-length") {
            has_body = value.parse::<u64>().map(|n| n > 0).unwrap_or(true);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            has_body = true;
        }
    }
    Some(Request {
        method,
        target,
        close,
        has_body,
    })
}

/// Resolves one request to `(status line, content type, body)`.
fn route(
    service: &Arc<Service>,
    method: &str,
    target: &str,
) -> (&'static str, &'static str, String) {
    if method != "GET" {
        return (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_owned(),
        );
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    match path {
        "/metrics" => (
            "200 OK",
            // The standard Prometheus exposition content type.
            "text/plain; version=0.0.4; charset=utf-8",
            service.render_metrics(),
        ),
        "/healthz" => {
            if service.is_accepting() {
                ("200 OK", "text/plain; charset=utf-8", "ok\n".to_owned())
            } else {
                (
                    "503 Service Unavailable",
                    "text/plain; charset=utf-8",
                    "draining\n".to_owned(),
                )
            }
        }
        "/debug/jobs" => {
            let t = service.telemetry();
            let body = format!(
                "{{\"inflight\":{},\"slow\":{},\"slow_threshold_ns\":{}}}",
                t.inflight_json(),
                t.slow_jobs_json(),
                t.slow_threshold_ns()
            );
            ("200 OK", "application/json", body)
        }
        "/debug/journal" => {
            let filter = match query.and_then(trace_filter) {
                Some(Err(())) => {
                    return (
                        "400 Bad Request",
                        "text/plain; charset=utf-8",
                        "trace filter must be a hex trace id\n".to_owned(),
                    )
                }
                Some(Ok(id)) => Some(id),
                None => None,
            };
            (
                "200 OK",
                "application/x-ndjson",
                service.telemetry().journal().to_jsonl(filter),
            )
        }
        _ => (
            "404 Not Found",
            "application/json",
            format!(
                "{{\"error\":\"no such endpoint\",\"path\":\"{}\",\"endpoints\":[\"/metrics\",\"/healthz\",\"/debug/jobs\",\"/debug/journal\"]}}",
                json_escape(path)
            ),
        ),
    }
}

/// Extracts a `trace=<hex>` query parameter: `None` when absent,
/// `Some(Err(()))` when present but unparsable.
fn trace_filter(query: &str) -> Option<Result<TraceId, ()>> {
    query
        .split('&')
        .find_map(|kv| kv.strip_prefix("trace="))
        .map(|v| u64::from_str_radix(v, 16).map(TraceId).map_err(drop))
}

/// Writes a closing 4xx response, then lingers: shuts down the write
/// side and drains (bounded) what the client already sent. Closing
/// while unread request bytes sit in the receive buffer makes the
/// kernel answer with RST, which can destroy the response still in
/// flight — the client would see a reset instead of the status line.
fn reject(stream: &mut TcpStream, status: &str, body: &[u8]) {
    if write_response(stream, status, "text/plain; charset=utf-8", body, true).is_err() {
        return;
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = [0u8; 1024];
    let mut drained = 0usize;
    // The session's 150 ms read timeout bounds each read; the byte cap
    // bounds a hostile sender that keeps streaming.
    while drained < 64 * 1024 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => drained += n,
        }
    }
}

/// Writes one HTTP/1.1 response with an explicit Content-Length.
fn write_response(
    stream: &mut TcpStream,
    status: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> std::io::Result<()> {
    let connection = if close { "close" } else { "keep-alive" };
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\n"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
        assert_eq!(find_head_end(b""), None);
    }

    #[test]
    fn parses_request_line_and_connection() {
        let r = parse_head("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/metrics");
        assert!(!r.close);
        assert!(!r.has_body);

        let r = parse_head("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(r.close, "HTTP/1.0 defaults to close");

        let r = parse_head("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(r.close);

        let r = parse_head("POST / HTTP/1.1\r\nContent-Length: 5\r\n\r\n").unwrap();
        assert!(r.has_body);

        assert!(parse_head("GARBAGE\r\n\r\n").is_none());
        assert!(parse_head("GET / HTTP/2\r\n\r\n").is_none());
    }

    #[test]
    fn trace_filter_parses_hex() {
        assert_eq!(trace_filter("trace=2a"), Some(Ok(TraceId(0x2a))));
        assert_eq!(
            trace_filter("a=1&trace=00000000000000ff"),
            Some(Ok(TraceId(0xff)))
        );
        assert_eq!(trace_filter("other=1"), None);
        assert_eq!(trace_filter("trace=zz"), Some(Err(())));
    }
}
