//! TCP front-end: the service as an operable network server.
//!
//! Everything the in-process API offers — admission control,
//! priorities, deadlines, cancellation, panic isolation, the graph
//! catalog and its result cache — exposed over a deliberately small
//! wire protocol so remote tenants get the *same* semantics:
//!
//! * a remote `SUBMIT` goes through
//!   [`Service::try_submit_spec`](crate::Service::try_submit_spec), so
//!   a full admission queue surfaces as [`Status::Backpressure`] on the
//!   client rather than unbounded buffering in the server — and the
//!   admission-path rejections keep their diagnosis on the wire: a
//!   tenant over its queued-job quota sees [`Status::QuotaExceeded`],
//!   a deadline the lane's queue-delay estimate cannot meet sees
//!   [`Status::DeadlineUnmeetable`];
//! * deadlines and `CANCEL` drive the job's
//!   [`CancelToken`](st_smp::CancelToken) exactly as local handles do;
//! * `METRICS` renders the live [`PoolSnapshot`](st_obs::PoolSnapshot)
//!   in Prometheus text format.
//!
//! # Wire format
//!
//! Both directions speak length-prefixed binary frames: a `u32`
//! little-endian payload length, then the payload. Requests start with
//! a one-byte opcode ([`ops`]); responses start with a one-byte status
//! ([`Status`]), then a status-specific payload. All integers are
//! little-endian. One connection is one session: requests are processed
//! strictly in order by a dedicated server thread, and tickets returned
//! by `SUBMIT` are scoped to their connection.
//!
//! | op | request payload | OK response payload |
//! |---|---|---|
//! | `PING` | anything | the same bytes echoed |
//! | `REGISTER` | an [`st_graph::io`] binary graph | graph id `u64`, version `u32` |
//! | `SUBMIT` | id `u64`, algo `u8`, prio `u8`, seed `u64`, deadline-ms `u64` (0 = none), width `u32` (0 = auto), tenant `u64` (optional, 0 = anonymous), pin `u8` (optional, 0 = latest) + pinned version `u32` (only when pin = 1) | ticket `u32`, cached `u8`, trace `u64` |
//! | `WAIT` | ticket `u32` | n `u64`, parents `n×u32`, r `u64`, roots `r×u32` |
//! | `CANCEL` | ticket `u32` | empty |
//! | `METRICS` | empty | UTF-8 Prometheus text page |
//! | `UPDATE` | id `u64`, n-inserts `u32`, n-deletes `u32`, insert pairs `2×u32` each, delete pairs `2×u32` each | new version `u32`, incremental `u8`, components `u64`, edges added `u64`, edges removed `u64` |
//!
//! A `SUBMIT` pinned to a superseded version that no cached result can
//! serve answers [`Status::StaleVersion`] with the live version as a
//! `u32` payload. `UPDATE` applies the batch to the catalog graph,
//! bumps its version, and keeps its spanning forest current on the
//! server — incrementally when the batch touches little of the graph,
//! by full recompute otherwise (the `incremental` reply byte says which
//! ran).
//!
//! `WAIT` blocks the connection's thread until the job resolves — with
//! one request in flight per connection there is nothing else the
//! session could do meanwhile. `CANCEL` before `WAIT` is the supported
//! way to stop a job remotely; a deadline attached at `SUBMIT` needs no
//! further round trips at all.
//!
//! The `trace` returned by `SUBMIT` is the server-minted trace id: it
//! stamps every journal event and metrics report the job produces, and
//! keys the HTTP plane's `/debug/journal?trace=<hex>` filter.
//!
//! # HTTP observability plane
//!
//! The same listener also answers plain HTTP/1.1 `GET`s (the first
//! bytes of a connection distinguish the protocols — see
//! [`http`](self) module docs): `/metrics`, `/healthz`, `/debug/jobs`,
//! and `/debug/journal`, so `curl` and a Prometheus scraper need no
//! extra port.

pub mod client;
mod http;
pub mod proto;
pub mod server;

pub use client::{
    Client, RemoteForest, RemoteGraph, RemoteUpdate, SubmitReply, SubmitRequest, WireError,
};
pub use proto::{ops, Status, DEFAULT_MAX_FRAME_BYTES};
pub use server::{Server, ServerConfig};
