//! Batch-dynamic graphs: the service's versioned mutation path.
//!
//! [`Service::apply`](crate::Service::apply) takes an [`EdgeBatch`] for
//! a catalog graph, produces a new graph *version* (a copy-on-write
//! overlay, flattened past a rebuild threshold), and keeps that graph's
//! spanning forest current — incrementally when the batch touches a
//! small part of the graph, by full recompute when it does not.
//!
//! The maintainer state lives here: one [`GraphUpdater`] per mutated
//! graph, holding a [`DynForest`] synced to a specific catalog version
//! plus a private [`Workspace`] arena. Updates to one graph serialize
//! on the updater's mutex; updates to different graphs proceed
//! concurrently. The catalog install itself is optimistic
//! ([`GraphCatalog::install`] CASes on the version), so a racing direct
//! [`GraphCatalog::apply`] or [`GraphCatalog::publish`] never loses an
//! update — the service path just reseeds its forest and retries.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use st_core::engine::SpanningAlgorithm;
use st_core::{BaderCong, DynForest, SpanningForest, UpdateStats, Workspace};
use st_graph::{BatchError, BatchOutcome, CsrGraph, EdgeBatch, GraphView, Neighbors};
use st_smp::{CancelToken, ExecutorPool};

use crate::catalog::{ApplyError, GraphCatalog, GraphId, GraphRef};
use crate::sizing::preferred_width;

/// Default overlay patched-fraction above which a new version is
/// flattened to a contiguous CSR instead of stacking another delta
/// (overridden by `ST_DELTA_REBUILD_FRACTION` / the builder).
pub const DEFAULT_DELTA_REBUILD_FRACTION: f64 = 0.25;

/// Default touched-component fraction at or above which the maintainer
/// abandons incremental repair and recomputes the forest from scratch
/// (overridden by `ST_DYN_RECOMPUTE_FRACTION` / the builder). `0`
/// forces recompute on every batch; anything above `1` never recomputes.
pub const DEFAULT_DYN_RECOMPUTE_FRACTION: f64 = 0.2;

/// Resolved dynamic-update knobs (builder → env → defaults).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DynConfig {
    /// Flatten a delta view whose patched fraction exceeds this.
    pub rebuild_fraction: f64,
    /// Recompute instead of repairing when the batch's touched-component
    /// estimate reaches this fraction of the vertex set.
    pub recompute_fraction: f64,
}

impl Default for DynConfig {
    fn default() -> Self {
        Self {
            rebuild_fraction: DEFAULT_DELTA_REBUILD_FRACTION,
            recompute_fraction: DEFAULT_DYN_RECOMPUTE_FRACTION,
        }
    }
}

/// Per-graph incremental maintainer: a forest synced to one catalog
/// version, plus the scratch arena its repairs run in.
pub(crate) struct GraphUpdater {
    /// `None` until the first `apply` seeds it (or after a lost install
    /// race invalidates it).
    forest: Option<DynForest>,
    /// The catalog version `forest` describes.
    version: u32,
    /// Private arena for repairs and reseeds; amortizes across batches.
    ws: Workspace,
}

impl GraphUpdater {
    fn new() -> Self {
        Self {
            forest: None,
            version: 0,
            ws: Workspace::new(),
        }
    }
}

/// What one applied batch did.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// The new version the batch produced.
    pub graph: GraphRef,
    /// Edges actually added/removed (duplicates and misses excluded).
    pub outcome: BatchOutcome,
    /// True when the forest was repaired incrementally; false when the
    /// maintainer fell back to a full recompute.
    pub incremental: bool,
    /// Components in the maintained forest after the batch.
    pub components: usize,
    /// Repair counters (all zero on the recompute path).
    pub stats: UpdateStats,
}

/// Why an update could not be applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateError {
    /// The graph id is not (or no longer) in the catalog.
    UnknownGraph(GraphId),
    /// The batch references vertices outside the graph.
    Batch(BatchError),
}

impl std::fmt::Display for UpdateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnknownGraph(id) => write!(f, "unknown graph {id:?}"),
            Self::Batch(e) => write!(f, "invalid batch: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

impl From<BatchError> for UpdateError {
    fn from(e: BatchError) -> Self {
        Self::Batch(e)
    }
}

/// Seeds (or reseeds) a maintainer by running the static algorithm over
/// a flat snapshot on a best-fit leased team.
fn run_static(g: &Arc<CsrGraph>, pool: &ExecutorPool, ws: &mut Workspace) -> SpanningForest {
    let p = preferred_width(g.num_vertices(), g.num_edges(), &pool.team_sizes());
    let lease = pool.lease(p);
    let algo = BaderCong::with_defaults();
    algo.prepare(ws, g);
    algo.run_with_cancel(g, &lease, ws, &CancelToken::new())
        .expect("a fresh token is never cancelled")
}

/// The whole update: resolve the live view, decide incremental vs
/// recompute from the *pre-batch* forest, compute the successor view
/// outside the catalog lock, repair or recompute the forest against it,
/// and install both atomically-by-version. Retries on install conflicts.
pub(crate) fn apply_update(
    catalog: &GraphCatalog,
    pool: &ExecutorPool,
    updaters: &Mutex<HashMap<GraphId, Arc<Mutex<GraphUpdater>>>>,
    cfg: DynConfig,
    id: GraphId,
    batch: &EdgeBatch,
) -> Result<UpdateReport, UpdateError> {
    let slot = {
        let mut map = updaters.lock().unwrap();
        Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(Mutex::new(GraphUpdater::new()))),
        )
    };
    // Service-path updates to one graph serialize here; conflicts below
    // can only come from direct catalog writers (apply/publish).
    let mut up = slot.lock().unwrap();
    loop {
        let (view, gref) = catalog.view(id).ok_or(UpdateError::UnknownGraph(id))?;
        let n = view.num_vertices();
        batch.validate(n)?;

        // Sync the maintainer to the live version. First touch and any
        // out-of-band version bump (publish, direct apply, lost race)
        // land here: a full static run over the current snapshot.
        if up.forest.is_none() || up.version != gref.version {
            let flat = view.materialize();
            let seeded = run_static(&flat, pool, &mut up.ws);
            up.forest = Some(DynForest::from_forest(&seeded));
            up.version = gref.version;
        }

        // Decide the maintenance path *before* mutating: the estimate
        // sums the sizes of components the batch can touch, against the
        // pre-batch forest. Strict `<` gives the knob its documented
        // edge semantics (0 always recomputes, >1 never does).
        let touched = up
            .forest
            .as_ref()
            .expect("seeded above")
            .touched_estimate(batch);
        let incremental = (touched as f64) < cfg.recompute_fraction * n.max(1) as f64;

        // Successor view, computed outside the catalog lock.
        let (next, outcome) = view.apply(batch)?;
        let (next_view, flat) = if next.patched_fraction() > cfg.rebuild_fraction {
            let f = next.materialize();
            (GraphView::Flat(Arc::clone(&f)), Some(f))
        } else {
            (next, None)
        };

        let up = &mut *up;
        let forest = up.forest.as_mut().expect("seeded above");
        let stats = if incremental {
            let p = preferred_width(n, next_view.num_edges(), &pool.team_sizes());
            let lease = pool.lease(p);
            forest.apply_batch(&next_view, batch, &lease, &mut up.ws)
        } else {
            let snapshot = match &flat {
                Some(f) => Arc::clone(f),
                None => next_view.materialize(),
            };
            let recomputed = run_static(&snapshot, pool, &mut up.ws);
            *forest = DynForest::from_forest(&recomputed);
            UpdateStats::default()
        };
        let components = forest.num_components();

        match catalog.install(id, gref.version, next_view, flat) {
            Ok(new_ref) => {
                up.version = new_ref.version;
                return Ok(UpdateReport {
                    graph: new_ref,
                    outcome,
                    incremental,
                    components,
                    stats,
                });
            }
            Err(ApplyError::Conflict { .. }) => {
                // A direct catalog writer moved the version while we
                // computed. The forest now describes a successor that
                // never existed — drop it and redo against the winner.
                up.forest = None;
                continue;
            }
            Err(ApplyError::UnknownGraph(_)) => return Err(UpdateError::UnknownGraph(id)),
            Err(ApplyError::Batch(e)) => return Err(UpdateError::Batch(e)),
        }
    }
}

/// Drops the maintainer for a removed graph (no-op when never mutated).
pub(crate) fn drop_updater(
    updaters: &Mutex<HashMap<GraphId, Arc<Mutex<GraphUpdater>>>>,
    id: GraphId,
) {
    updaters.lock().unwrap().remove(&id);
}
