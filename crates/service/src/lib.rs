//! Multi-tenant spanning-forest job service.
//!
//! [`st_core::Engine`] gives one caller a persistent team; this crate
//! gives *many* callers a shared machine. A [`Service`] owns a sharded
//! pool of persistent [`Executor`](st_smp::Executor) teams (e.g.
//! `[4, 2, 2]` on an 8-core box) behind a bounded, priority-laned
//! admission queue:
//!
//! ```
//! use std::sync::Arc;
//! use std::time::Duration;
//! use st_graph::gen;
//! use st_service::{Priority, Service};
//!
//! let svc = Service::builder().teams([2, 1, 1]).queue_capacity(32).build();
//! let g = Arc::new(gen::torus2d(32, 32));
//!
//! let handle = svc
//!     .job(&g)
//!     .deadline(Duration::from_secs(5))
//!     .priority(Priority::High)
//!     .submit()
//!     .expect("service is open");
//!
//! let forest = handle.wait().expect("well within the deadline");
//! assert_eq!(forest.num_trees(), 1);
//! ```
//!
//! What the service adds over calling an engine directly:
//!
//! - **Admission control.** The queue is bounded: [`JobBuilder::submit`]
//!   blocks when it is full, [`JobBuilder::try_submit`] returns
//!   [`JobError::Backpressure`] so the caller can shed load instead of
//!   piling it up. Per-tenant quotas cap how much of the queue any one
//!   tenant may hold ([`JobError::QuotaExceeded`]), and deadline-aware
//!   admission rejects a job whose deadline the lane's observed queue
//!   delay already cannot meet ([`JobError::DeadlineUnmeetable`]).
//! - **Weighted-fair dispatch.** Priority lanes drain under deficit
//!   round-robin ([`service::DEFAULT_LANE_WEIGHTS`]), so a saturated
//!   high-priority tenant gets proportionally more throughput — never
//!   all of it — and bulk jobs keep a bounded dispatch share.
//! - **Elasticity.** An opt-in controller
//!   ([`ServiceBuilder::elastic`]) widens teams under sustained
//!   backlog and narrows them after sustained idleness, using the
//!   pool's lease machinery so a running job is never disturbed.
//! - **Adaptive sizing.** Each job is routed to the team width the §3
//!   analytic cost model predicts will finish it soonest
//!   ([`sizing::preferred_width`]) — small graphs take a narrow team and
//!   leave the wide one free, large graphs take the wide one.
//! - **Deadlines and cancellation.** [`JobBuilder::deadline`] arms a
//!   [`CancelToken`](st_smp::CancelToken) the traversal and
//!   graft-and-shortcut kernels poll at their barrier and publication
//!   boundaries; [`JobHandle::cancel`] fires the same token. Either way
//!   the team survives and goes back in the pool.
//! - **Panic isolation.** A job that panics resolves its own handle to
//!   [`JobError::Panicked`] and never takes a team — or another
//!   tenant's job — down with it.
//! - **Observability.** [`Service::snapshot`] exposes the
//!   [`PoolSnapshot`](st_obs::PoolSnapshot) gauges: submissions,
//!   rejections, per-outcome counts, and queue/execution time totals.
//!   The [`telemetry`] plane adds per-lane/per-algorithm latency
//!   histograms, a per-job trace-id event journal, an in-flight table,
//!   and a slow-job log — served over HTTP (`/metrics`, `/healthz`,
//!   `/debug/jobs`, `/debug/journal`) by the same listener as the TCP
//!   job protocol.

#![warn(missing_docs)]

pub mod catalog;
pub mod dynamic;
pub mod job;
pub mod net;
pub mod service;
pub mod sizing;
pub mod spec;
pub mod telemetry;

pub use catalog::{ApplyError, CacheKey, GraphCatalog, GraphId, GraphRef, ResultCache};
pub use dynamic::{UpdateError, UpdateReport};
pub use job::{JobError, JobHandle, Priority};
pub use service::{JobBuilder, Service, ServiceBuilder, Submitted};
pub use spec::{AlgorithmId, GraphSel, JobSpec};
pub use telemetry::{InflightJob, SlowJob, Telemetry};

// Batch-update building blocks, re-exported so tenants can build an
// [`EdgeBatch`] without depending on `st_graph` directly.
pub use st_graph::{BatchError, BatchOutcome, EdgeBatch};
