//! The service: builder, admission queue, and dispatcher threads.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use st_core::engine::{SpanningAlgorithm, Workspace};
use st_core::{BaderCong, RuntimeConfig};
use st_graph::{CsrGraph, EdgeBatch};
use st_obs::{JobEventKind, JobOutcomeKind, PoolGauges, PoolSnapshot, TraceId};
use st_smp::{CancelToken, ExecutorPool};

use crate::catalog::{CacheKey, GraphCatalog, GraphId, ResultCache};
use crate::dynamic::{self, UpdateError, UpdateReport};
use crate::job::{CancelObserver, JobError, JobHandle, JobState, Priority};
use crate::sizing::preferred_width;
use crate::spec::{GraphSel, JobSpec};
use crate::telemetry::{Telemetry, DEFAULT_JOURNAL_CAPACITY, DEFAULT_SLOW_JOB_MS};

/// An algorithm a tenant can submit: the engine trait plus the thread
/// bounds the dispatcher needs to carry it across the queue.
type BoxedAlgorithm = Box<dyn SpanningAlgorithm + Send + Sync>;

/// One admitted job, queued until a dispatcher picks it up.
struct QueuedJob {
    graph: Arc<CsrGraph>,
    algo: BoxedAlgorithm,
    state: Arc<JobState>,
    submitted_at: Instant,
    /// Explicit width request; `None` = let the sizing oracle decide.
    preferred_p: Option<usize>,
    /// Admission lane the job waits in (for per-lane gauge accounting).
    lane: usize,
    /// The job's trace id (same id as `state.trace`, duplicated so the
    /// dispatcher never locks the state just to journal an event).
    trace: TraceId,
    /// Bounded algorithm label for the per-algorithm histograms.
    algo_label: &'static str,
    /// When the job came through the catalog-addressed path: the key to
    /// publish its forest under on completion.
    cache_slot: Option<CacheKey>,
    /// Tenant the job's queued-slot quota is charged to (0 = anonymous).
    tenant: u64,
}

/// The bounded, priority-laned admission queue.
///
/// Lanes drain under deficit round-robin rather than strict priority:
/// each lane has a weight, and a full rotation of the cursor grants
/// every lane `weight` job credits. A saturated high lane therefore
/// gets `weight_high / weight_low` times the bulk lane's throughput
/// instead of starving it outright. Jobs are unit cost — the service
/// cannot know a job's runtime at pop time — so the deficit counts
/// jobs, not bytes.
struct Admission {
    lanes: [VecDeque<QueuedJob>; Priority::LANES],
    len: usize,
    shutdown: bool,
    /// Per-lane DRR weights (jobs granted per cursor rotation).
    weights: [u32; Priority::LANES],
    /// Per-lane unspent credits for the current rotation.
    deficit: [u32; Priority::LANES],
    /// The lane the round-robin cursor currently serves.
    cursor: usize,
    /// Queued jobs per tenant, for the admission quota. Entries are
    /// removed at zero so an idle tenant costs nothing.
    tenants: HashMap<u64, usize>,
}

impl Admission {
    fn new(weights: [u32; Priority::LANES]) -> Self {
        Self {
            lanes: Default::default(),
            len: 0,
            shutdown: false,
            weights,
            // Start the cursor *past* the last lane with no credits:
            // the first pop advances onto lane 0 with a fresh quantum,
            // so a cold queue drains highest-priority-first.
            deficit: [0; Priority::LANES],
            cursor: Priority::LANES - 1,
            tenants: HashMap::new(),
        }
    }

    /// Queued jobs currently charged to `tenant`.
    fn tenant_load(&self, tenant: u64) -> usize {
        self.tenants.get(&tenant).copied().unwrap_or(0)
    }

    fn charge_tenant(&mut self, tenant: u64) {
        *self.tenants.entry(tenant).or_insert(0) += 1;
    }

    fn release_tenant(&mut self, tenant: u64) {
        if let Some(count) = self.tenants.get_mut(&tenant) {
            *count -= 1;
            if *count == 0 {
                self.tenants.remove(&tenant);
            }
        }
    }

    /// Pops the next job under deficit round-robin. The loop always
    /// terminates when a job is queued: every full rotation refreshes
    /// every lane's credits, and at least one lane is non-empty.
    fn pop(&mut self) -> Option<QueuedJob> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.deficit[self.cursor] > 0 {
                if let Some(job) = self.lanes[self.cursor].pop_front() {
                    self.deficit[self.cursor] -= 1;
                    self.len -= 1;
                    self.release_tenant(job.tenant);
                    if self.len == 0 {
                        // The queue drained: every flow went inactive,
                        // so the round ends. The next burst starts a
                        // fresh rotation and drains
                        // highest-priority-first instead of resuming on
                        // stale mid-round credits.
                        self.deficit = [0; Priority::LANES];
                        self.cursor = Priority::LANES - 1;
                    }
                    return Some(job);
                }
                // Lane drained mid-round: forfeit its remaining credits
                // (banking them would let a long-idle lane burst past
                // its weight later).
                self.deficit[self.cursor] = 0;
            }
            self.cursor = (self.cursor + 1) % Priority::LANES;
            self.deficit[self.cursor] = self.weights[self.cursor];
        }
    }

    /// Removes a still-queued job by trace id (the eager cancel sweep).
    fn remove_by_trace(&mut self, trace: TraceId) -> Option<QueuedJob> {
        for lane in &mut self.lanes {
            if let Some(i) = lane.iter().position(|j| j.trace == trace) {
                let job = lane.remove(i).expect("position came from this lane");
                self.len -= 1;
                self.release_tenant(job.tenant);
                return Some(job);
            }
        }
        None
    }
}

/// State shared by submitters and dispatchers.
struct Shared {
    queue: Mutex<Admission>,
    /// Signals submitters blocked on a full queue.
    space: Condvar,
    /// Signals dispatchers waiting for work.
    work: Condvar,
    capacity: usize,
    /// Max queued jobs any single tenant may hold; `None` = unlimited.
    tenant_quota: Option<usize>,
    /// Per-lane EWMA of observed queue delay (ns), fed at every
    /// dispatcher dequeue and read by deadline-aware admission. The
    /// first sample seeds the estimate directly; after that
    /// `new = old - old/8 + sample/8` (α = 1/8). Relaxed everywhere —
    /// an estimator tolerates torn freshness by construction.
    queue_delay_est: [AtomicU64; Priority::LANES],
    /// Width changes the elastic controller has decided but not yet
    /// landed (team id → target width). Under saturation every team is
    /// leased almost continuously, so the controller alone would
    /// practically never find one idle; dispatchers apply the posted
    /// change right after returning their lease — the one moment a
    /// saturated pool reliably has an idle team.
    pending_resizes: Mutex<HashMap<usize, usize>>,
    gauges: PoolGauges,
    pool: ExecutorPool,
    catalog: Arc<GraphCatalog>,
    cache: ResultCache,
    telemetry: Telemetry,
    /// Per-graph incremental forest maintainers for the batch-update
    /// path ([`Service::apply`]); the per-slot inner mutex serializes
    /// updates to one graph while leaving other graphs free.
    updaters: Mutex<HashMap<GraphId, Arc<Mutex<dynamic::GraphUpdater>>>>,
    /// Resolved dynamic-update knobs (builder → env → defaults).
    dyn_cfg: dynamic::DynConfig,
}

impl Shared {
    /// Feeds one observed queue delay into the per-lane estimator.
    fn note_queue_delay(&self, lane: usize, sample_ns: u64) {
        let est = &self.queue_delay_est[lane];
        let old = est.load(Relaxed);
        let new = if old == 0 {
            sample_ns
        } else {
            old - old / 8 + sample_ns / 8
        };
        est.store(new, Relaxed);
    }

    /// The current queue-delay estimate for `lane`, in nanoseconds
    /// (zero until the first job dequeues from that lane).
    fn queue_delay_estimate_ns(&self, lane: usize) -> u64 {
        self.queue_delay_est[lane].load(Relaxed)
    }

    /// Lands a posted width change for `team` if the team is idle right
    /// now. Called by the controller on its tick (catches a fully idle
    /// pool) and by each dispatcher just after returning its lease
    /// (catches a saturated one). A still-leased team simply stays
    /// posted for the next attempt.
    fn apply_pending_resize(&self, team: usize) {
        let Some(target) = self.pending_resizes.lock().unwrap().get(&team).copied() else {
            return;
        };
        let old = self.pool.team_sizes()[team];
        if old == target || self.pool.try_resize_team(team, target) {
            self.pending_resizes.lock().unwrap().remove(&team);
            if target > old {
                self.gauges.on_team_grown();
            } else if target < old {
                self.gauges.on_team_shrunk();
            }
        }
    }

    /// Posts a width change and immediately tries to land it.
    fn request_resize(&self, team: usize, target: usize) {
        self.pending_resizes.lock().unwrap().insert(team, target);
        self.apply_pending_resize(team);
    }
}

impl CancelObserver for Shared {
    /// The eager cancel sweep: if the cancelled job is still queued,
    /// remove it now so its bounded lane slot (and tenant quota charge)
    /// frees immediately instead of when a dispatcher eventually drains
    /// the dead entry. Racing the dispatcher is fine — whoever takes
    /// the job out of the queue first resolves it, the other finds
    /// nothing.
    fn on_handle_cancel(&self, trace: TraceId) {
        let Some(job) = self.queue.lock().unwrap().remove_by_trace(trace) else {
            return;
        };
        // Accounting mirrors the dispatcher's dead-job path, done
        // outside the queue lock: dequeue gauges, journal, outcome
        // classification from the token (deadline wins over cancel),
        // then the handle resolves and a blocked submitter gets the
        // freed slot.
        self.gauges.on_dequeue(job.lane);
        self.telemetry.journal().record_now(
            job.trace,
            JobEventKind::Dequeued,
            Some(job.lane as u8),
            None,
            None,
        );
        let queue_ns = elapsed_ns(job.submitted_at);
        let err = JobError::from_token(&job.state.token);
        self.gauges.on_finish(err.outcome_kind(), queue_ns, 0);
        self.telemetry.on_finished(
            job.trace,
            job.lane as u8,
            None,
            outcome_name(err.outcome_kind()),
            queue_ns,
            0,
            false,
            job.algo_label,
            None,
        );
        job.state.finish(Err(err));
        self.space.notify_one();
    }
}

/// Builds a [`Service`]; obtained from [`Service::builder`].
///
/// Unset knobs fall back to the `ST_SERVICE_TEAMS` /
/// `ST_SERVICE_QUEUE_CAP` environment variables (via
/// [`RuntimeConfig::from_env`], so malformed values abort loudly), then
/// to a machine-derived default layout.
#[derive(Debug, Default)]
pub struct ServiceBuilder {
    teams: Option<Vec<usize>>,
    queue_capacity: Option<usize>,
    catalog: Option<Arc<GraphCatalog>>,
    result_cache_capacity: Option<usize>,
    journal_capacity: Option<usize>,
    slow_job_threshold: Option<Duration>,
    lane_weights: Option<[u32; Priority::LANES]>,
    tenant_quota: Option<usize>,
    elastic: Option<bool>,
    elastic_idle_ms: Option<u64>,
    elastic_backlog: Option<usize>,
    elastic_max_width: Option<usize>,
    delta_rebuild_fraction: Option<f64>,
    dyn_recompute_fraction: Option<f64>,
}

impl ServiceBuilder {
    /// Sets the pool's team widths, e.g. `[4, 2, 2]` for one 4-wide and
    /// two 2-wide persistent teams.
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics if the list is empty or contains a
    /// zero.
    pub fn teams(mut self, sizes: impl IntoIterator<Item = usize>) -> Self {
        self.teams = Some(sizes.into_iter().collect());
        self
    }

    /// Sets the admission-queue capacity: how many jobs may wait before
    /// `submit` blocks and `try_submit` reports
    /// [`JobError::Backpressure`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics on zero.
    pub fn queue_capacity(mut self, cap: usize) -> Self {
        self.queue_capacity = Some(cap);
        self
    }

    /// Attaches an existing [`GraphCatalog`] (e.g. one pre-loaded from
    /// disk, or shared with another service). By default the service
    /// creates its own empty catalog.
    pub fn catalog(mut self, catalog: Arc<GraphCatalog>) -> Self {
        self.catalog = Some(catalog);
        self
    }

    /// Sets the result-cache capacity in entries; 0 disables caching.
    /// Falls back to `ST_RESULT_CACHE_CAP`, then to
    /// [`DEFAULT_RESULT_CACHE_CAPACITY`].
    pub fn result_cache_capacity(mut self, cap: usize) -> Self {
        self.result_cache_capacity = Some(cap);
        self
    }

    /// Sets the event-journal capacity (lifecycle events retained for
    /// `/debug/journal`, drop-oldest). Falls back to `ST_JOURNAL_CAP`,
    /// then to [`DEFAULT_JOURNAL_CAPACITY`](crate::telemetry::DEFAULT_JOURNAL_CAPACITY).
    pub fn journal_capacity(mut self, cap: usize) -> Self {
        self.journal_capacity = Some(cap);
        self
    }

    /// Sets the slow-job threshold: a completed job whose wall latency
    /// (queue + exec) meets it has its full [`st_obs::JobMetrics`] kept
    /// in the slow-job log. Falls back to `ST_SLOW_JOB_MS`, then to
    /// [`DEFAULT_SLOW_JOB_MS`](crate::telemetry::DEFAULT_SLOW_JOB_MS).
    pub fn slow_job_threshold(mut self, d: Duration) -> Self {
        self.slow_job_threshold = Some(d);
        self
    }

    /// Sets the deficit-round-robin lane weights `[high, normal, low]`:
    /// jobs granted to each lane per full cursor rotation, so a
    /// saturated high lane gets `high/low` times the low lane's
    /// dispatch rate instead of starving it. Falls back to
    /// `ST_LANE_WEIGHTS`, then to [`DEFAULT_LANE_WEIGHTS`].
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics on a zero weight (a zero-weight
    /// lane would never drain).
    pub fn lane_weights(mut self, weights: [u32; Priority::LANES]) -> Self {
        self.lane_weights = Some(weights);
        self
    }

    /// Caps how many queued jobs one tenant may hold at once; a
    /// submission past the cap is rejected with
    /// [`JobError::QuotaExceeded`] without blocking. Falls back to
    /// `ST_TENANT_QUOTA`; unset means unlimited.
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics on zero.
    pub fn tenant_quota(mut self, quota: usize) -> Self {
        self.tenant_quota = Some(quota);
        self
    }

    /// Enables (or explicitly disables) the elastic controller, which
    /// widens teams under sustained backlog and narrows them again
    /// after a sustained idle window. Falls back to `ST_ELASTIC`;
    /// default off.
    pub fn elastic(mut self, on: bool) -> Self {
        self.elastic = Some(on);
        self
    }

    /// Sets how long the whole pool must sit idle (empty queue, no
    /// leased team) before the controller shrinks one team. Falls back
    /// to `ST_ELASTIC_IDLE_MS`, then [`DEFAULT_ELASTIC_IDLE_MS`].
    pub fn elastic_idle_ms(mut self, ms: u64) -> Self {
        self.elastic_idle_ms = Some(ms);
        self
    }

    /// Sets the queue depth that counts as backlog; sustained backlog
    /// (two consecutive controller ticks) grows one team. Falls back to
    /// `ST_ELASTIC_BACKLOG`, then [`DEFAULT_ELASTIC_BACKLOG`].
    pub fn elastic_backlog(mut self, depth: usize) -> Self {
        self.elastic_backlog = Some(depth);
        self
    }

    /// Caps how wide the controller may grow any team. Falls back to
    /// `ST_ELASTIC_MAX_WIDTH`, then to the machine's available
    /// parallelism.
    pub fn elastic_max_width(mut self, width: usize) -> Self {
        self.elastic_max_width = Some(width);
        self
    }

    /// Sets the overlay patched-fraction above which a batch update
    /// flattens the new graph version to a contiguous CSR instead of
    /// stacking another delta. Falls back to
    /// `ST_DELTA_REBUILD_FRACTION`, then
    /// [`DEFAULT_DELTA_REBUILD_FRACTION`](crate::dynamic::DEFAULT_DELTA_REBUILD_FRACTION).
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics unless the value is finite and in
    /// `0.0..=1.0`.
    pub fn delta_rebuild_fraction(mut self, fraction: f64) -> Self {
        self.delta_rebuild_fraction = Some(fraction);
        self
    }

    /// Sets the touched-component fraction at which
    /// [`Service::apply`] abandons incremental forest repair for a full
    /// recompute: `0` recomputes every batch, anything above `1` never
    /// recomputes. Falls back to `ST_DYN_RECOMPUTE_FRACTION`, then
    /// [`DEFAULT_DYN_RECOMPUTE_FRACTION`](crate::dynamic::DEFAULT_DYN_RECOMPUTE_FRACTION).
    ///
    /// # Panics
    ///
    /// [`build`](Self::build) panics unless the value is finite and
    /// non-negative.
    pub fn dyn_recompute_fraction(mut self, fraction: f64) -> Self {
        self.dyn_recompute_fraction = Some(fraction);
        self
    }

    /// Spawns the teams and dispatcher threads and opens the service.
    pub fn build(self) -> Service {
        let env = RuntimeConfig::from_env().unwrap_or_else(|e| panic!("{e}"));
        let teams = self
            .teams
            .or(env.service_teams)
            .unwrap_or_else(default_teams);
        assert!(
            !teams.is_empty() && teams.iter().all(|&p| p > 0),
            "team widths must be a non-empty list of sizes >= 1, got {teams:?}"
        );
        let capacity = self
            .queue_capacity
            .or(env.service_queue_capacity)
            .unwrap_or(DEFAULT_QUEUE_CAPACITY);
        assert!(capacity > 0, "queue capacity must be >= 1");
        let cache_capacity = self
            .result_cache_capacity
            .or(env.result_cache_capacity)
            .unwrap_or(DEFAULT_RESULT_CACHE_CAPACITY);
        let journal_capacity = self
            .journal_capacity
            .or(env.journal_capacity)
            .unwrap_or(DEFAULT_JOURNAL_CAPACITY);
        let slow_threshold_ns = self
            .slow_job_threshold
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .or(env.slow_job_ms.map(|ms| ms.saturating_mul(1_000_000)))
            .unwrap_or(DEFAULT_SLOW_JOB_MS * 1_000_000);
        let weights = self
            .lane_weights
            .or(env.lane_weights)
            .unwrap_or(DEFAULT_LANE_WEIGHTS);
        assert!(
            weights.iter().all(|&w| w > 0),
            "lane weights must all be >= 1, got {weights:?}"
        );
        let tenant_quota = self.tenant_quota.or(env.tenant_quota);
        assert!(
            tenant_quota != Some(0),
            "a tenant quota of zero would reject every submission"
        );
        let elastic = ElasticConfig {
            enabled: self.elastic.or(env.elastic).unwrap_or(false),
            idle: Duration::from_millis(
                self.elastic_idle_ms
                    .or(env.elastic_idle_ms)
                    .unwrap_or(DEFAULT_ELASTIC_IDLE_MS),
            ),
            backlog: self
                .elastic_backlog
                .or(env.elastic_backlog)
                .unwrap_or(DEFAULT_ELASTIC_BACKLOG)
                .max(1),
            max_width: self
                .elastic_max_width
                .or(env.elastic_max_width)
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |c| c.get()))
                .max(1),
        };
        let dyn_cfg = dynamic::DynConfig {
            rebuild_fraction: self
                .delta_rebuild_fraction
                .or(env.delta_rebuild_fraction)
                .unwrap_or(dynamic::DEFAULT_DELTA_REBUILD_FRACTION),
            recompute_fraction: self
                .dyn_recompute_fraction
                .or(env.dyn_recompute_fraction)
                .unwrap_or(dynamic::DEFAULT_DYN_RECOMPUTE_FRACTION),
        };
        assert!(
            dyn_cfg.rebuild_fraction.is_finite() && (0.0..=1.0).contains(&dyn_cfg.rebuild_fraction),
            "delta rebuild fraction must be finite and in 0..=1, got {}",
            dyn_cfg.rebuild_fraction
        );
        assert!(
            dyn_cfg.recompute_fraction.is_finite() && dyn_cfg.recompute_fraction >= 0.0,
            "dynamic recompute fraction must be finite and >= 0, got {}",
            dyn_cfg.recompute_fraction
        );

        let num_teams = teams.len();
        let shared = Arc::new(Shared {
            queue: Mutex::new(Admission::new(weights)),
            space: Condvar::new(),
            work: Condvar::new(),
            capacity,
            tenant_quota,
            queue_delay_est: Default::default(),
            pending_resizes: Mutex::new(HashMap::new()),
            gauges: PoolGauges::new(),
            pool: ExecutorPool::new(teams),
            catalog: self.catalog.unwrap_or_default(),
            cache: ResultCache::new(cache_capacity),
            telemetry: Telemetry::new(journal_capacity, slow_threshold_ns),
            updaters: Mutex::new(HashMap::new()),
            dyn_cfg,
        });
        // One dispatcher per team: enough to keep every team busy, and a
        // dispatcher's leased width still adapts per job via best-fit.
        let dispatchers = (0..num_teams)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("st-service-dispatch-{i}"))
                    .spawn(move || dispatcher(&shared))
                    .expect("spawning a dispatcher thread")
            })
            .collect();
        let elastic_controller = elastic.enabled.then(|| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("st-service-elastic".to_owned())
                .spawn(move || elastic_controller(&shared, &elastic))
                .expect("spawning the elastic controller thread")
        });
        Service {
            shared,
            dispatchers,
            elastic_controller,
        }
    }
}

/// Default admission-queue capacity when neither the builder nor the
/// environment sets one.
const DEFAULT_QUEUE_CAPACITY: usize = 64;

/// Default result-cache capacity (entries) when neither the builder nor
/// `ST_RESULT_CACHE_CAP` sets one.
pub const DEFAULT_RESULT_CACHE_CAPACITY: usize = 64;

/// Default deficit-round-robin lane weights `[high, normal, low]` when
/// neither the builder nor `ST_LANE_WEIGHTS` sets them: a saturated
/// high lane gets 4× the low lane's dispatch rate, never all of it.
pub const DEFAULT_LANE_WEIGHTS: [u32; Priority::LANES] = [4, 2, 1];

/// Default sustained-idle window before the elastic controller shrinks
/// a team (overridden by `ST_ELASTIC_IDLE_MS` / the builder).
pub const DEFAULT_ELASTIC_IDLE_MS: u64 = 250;

/// Default queue depth the elastic controller treats as backlog
/// (overridden by `ST_ELASTIC_BACKLOG` / the builder).
pub const DEFAULT_ELASTIC_BACKLOG: usize = 4;

/// Resolved elastic-controller settings (builder → env → defaults).
#[derive(Clone, Copy, Debug)]
struct ElasticConfig {
    enabled: bool,
    idle: Duration,
    backlog: usize,
    max_width: usize,
}

/// How often the elastic controller samples queue depth and pool
/// idleness. Short enough that tests with tight idle windows converge,
/// long enough that the controller's lock traffic is negligible.
const ELASTIC_TICK: Duration = Duration::from_millis(10);

/// The elastic controller: widens one team after sustained backlog
/// (two consecutive ticks at or above `backlog`), narrows one after a
/// sustained fully-idle window.
///
/// Resizes ride the pool's lease machinery — [`ExecutorPool::try_resize_team`]
/// only ever claims an *idle* team, so a running job is never
/// disturbed. Decisions are *posted* to the pending-resize board and
/// landed either here (an idle pool) or by a dispatcher the moment it
/// returns its lease (a saturated one). Grow doubles the narrowest team
/// (capped at `max_width`), shrink halves the widest (floored at 1), so
/// width converges geometrically in both directions.
fn elastic_controller(shared: &Shared, cfg: &ElasticConfig) {
    let mut backlog_ticks = 0u32;
    let mut idle_since: Option<Instant> = None;
    loop {
        std::thread::sleep(ELASTIC_TICK);
        let (depth, shutdown) = {
            let q = shared.queue.lock().unwrap();
            (q.len, q.shutdown)
        };
        if shutdown {
            return;
        }
        // Retry earlier postings first — the pool may have gone idle
        // since a busy dispatcher last refused one.
        let posted: Vec<usize> = shared
            .pending_resizes
            .lock()
            .unwrap()
            .keys()
            .copied()
            .collect();
        for team in posted {
            shared.apply_pending_resize(team);
        }

        let all_idle = shared.pool.idle_teams() == shared.pool.num_teams();
        if depth >= cfg.backlog {
            backlog_ticks += 1;
            idle_since = None;
        } else if depth == 0 && all_idle {
            backlog_ticks = 0;
            idle_since.get_or_insert_with(Instant::now);
        } else {
            backlog_ticks = 0;
            idle_since = None;
        }

        if backlog_ticks >= 2 {
            // Sustained backlog: grow the narrowest team with headroom.
            let sizes = shared.pool.team_sizes();
            if let Some((id, w)) = sizes
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, w)| w < cfg.max_width)
                .min_by_key(|&(_, w)| w)
            {
                shared.request_resize(id, (w * 2).min(cfg.max_width));
            }
            // One decision per sustained-backlog observation; the next
            // needs backlog to persist two more ticks.
            backlog_ticks = 0;
        } else if idle_since.is_some_and(|t| t.elapsed() >= cfg.idle) {
            // Sustained idle: narrow the widest team above the floor.
            let sizes = shared.pool.team_sizes();
            if let Some((id, w)) = sizes
                .iter()
                .copied()
                .enumerate()
                .filter(|&(_, w)| w > 1)
                .max_by_key(|&(_, w)| w)
            {
                shared.request_resize(id, (w / 2).max(1));
            }
            // Restart the idle clock either way: one shrink per window.
            idle_since = Some(Instant::now());
        }
    }
}

/// Default pool layout: half the cores in one wide team for big jobs,
/// a quarter in each of two narrower teams for small ones (e.g. 8 cores
/// → `[4, 2, 2]`).
fn default_teams() -> Vec<usize> {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let half = (cores / 2).max(1);
    let quarter = (cores / 4).max(1);
    vec![half, quarter, quarter]
}

/// A multi-tenant spanning-forest job service.
///
/// Owns a sharded pool of persistent [`Executor`](st_smp::Executor)
/// teams and a bounded, priority-laned admission queue. Tenants submit
/// jobs through the [`job`](Self::job) builder and observe them through
/// [`JobHandle`]s; dispatcher threads lease the best-fitting team per
/// job (adaptively sized by the §3 cost model), enforce deadlines and
/// cooperative cancellation, and isolate panics so one tenant can never
/// take the pool down.
///
/// ```
/// use std::sync::Arc;
/// use st_graph::gen;
/// use st_service::Service;
///
/// let svc = Service::builder().teams([2, 1]).queue_capacity(8).build();
/// let g = Arc::new(gen::torus2d(16, 16));
/// let handle = svc.job(&g).submit().expect("service is open");
/// let forest = handle.wait().expect("no deadline, no cancel");
/// assert_eq!(forest.num_trees(), 1);
/// ```
pub struct Service {
    shared: Arc<Shared>,
    dispatchers: Vec<JoinHandle<()>>,
    elastic_controller: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("teams", &self.shared.pool.team_sizes())
            .field("queue_capacity", &self.shared.capacity)
            .finish()
    }
}

impl Service {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// The pool's current team widths (a snapshot — the elastic
    /// controller may retune idle teams between calls).
    pub fn team_sizes(&self) -> Vec<usize> {
        self.shared.pool.team_sizes()
    }

    /// The admission queue's capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.capacity
    }

    /// A point-in-time copy of the pool gauges (submissions, outcomes,
    /// per-lane queue depth, busy teams, cache hit rates, queue/exec
    /// time totals).
    pub fn snapshot(&self) -> PoolSnapshot {
        self.shared.gauges.snapshot()
    }

    /// The full observability page in Prometheus text exposition —
    /// pool gauges, SLO series, and latency histograms. Served by the
    /// TCP front-end's `METRICS` op and the HTTP `/metrics` endpoint.
    pub fn render_metrics(&self) -> String {
        st_obs::render_service_prometheus(
            &self.snapshot(),
            &self.shared.telemetry.histogram_families(),
        )
    }

    /// The service's telemetry plane: event journal, latency
    /// histograms, in-flight table, slow-job log.
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// True while the admission queue accepts submissions (false once
    /// shutdown began). The HTTP `/healthz` endpoint keys off this.
    pub fn is_accepting(&self) -> bool {
        !self.shared.queue.lock().unwrap().shutdown
    }

    /// The service's graph catalog: register/load graphs here, then
    /// address them from [`JobSpec`]s.
    pub fn catalog(&self) -> &Arc<GraphCatalog> {
        &self.shared.catalog
    }

    /// Entries currently held by the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.shared.cache.len()
    }

    /// Removes `id` from the catalog, purges its cached results, and
    /// drops its incremental maintainer. In-flight jobs keep their
    /// graph `Arc` and finish normally.
    pub fn remove_graph(&self, id: GraphId) -> bool {
        let removed = self.shared.catalog.remove(id);
        if removed {
            self.shared.cache.purge_graph(id);
            dynamic::drop_updater(&self.shared.updaters, id);
        }
        removed
    }

    /// Applies one batch of edge insertions and deletions to catalog
    /// graph `id`, producing a new version and keeping its spanning
    /// forest current.
    ///
    /// The forest is repaired *incrementally* when the batch's
    /// touched-component estimate stays under the recompute fraction
    /// (see [`ServiceBuilder::dyn_recompute_fraction`]); otherwise the
    /// static algorithm recomputes it from scratch. Either way the
    /// report says which path ran and what the batch actually changed.
    ///
    /// Jobs already in flight keep the version they were admitted with;
    /// results cached against older versions stay valid for pinned
    /// submissions and simply never match latest-addressed ones again.
    pub fn apply(&self, id: GraphId, batch: &EdgeBatch) -> Result<UpdateReport, UpdateError> {
        let started = Instant::now();
        let out = dynamic::apply_update(
            &self.shared.catalog,
            &self.shared.pool,
            &self.shared.updaters,
            self.shared.dyn_cfg,
            id,
            batch,
        );
        if let Ok(report) = &out {
            self.shared.gauges.on_update(
                report.incremental,
                report.outcome.edges_added as u64,
                report.outcome.edges_removed as u64,
            );
            self.shared
                .telemetry
                .on_update(report.incremental, elapsed_ns(started));
        }
        out
    }

    /// Submits a catalog-addressed job, blocking while the admission
    /// queue is full. A cached result resolves the handle immediately
    /// without queueing ([`Submitted::cached`]).
    pub fn submit_spec(&self, spec: JobSpec) -> Result<Submitted, JobError> {
        self.submit_spec_inner(spec, true)
    }

    /// Submits a catalog-addressed job without blocking: a full queue is
    /// [`JobError::Backpressure`]. Cache hits always succeed — they
    /// never need queue space.
    pub fn try_submit_spec(&self, spec: JobSpec) -> Result<Submitted, JobError> {
        self.submit_spec_inner(spec, false)
    }

    fn submit_spec_inner(&self, spec: JobSpec, block: bool) -> Result<Submitted, JobError> {
        let arrived = Instant::now();
        // Resolve the selector to a pinned snapshot. A pinned selector
        // whose version has been superseded may still be served from the
        // result cache — the cache key is exact-version — so the stale
        // error is deferred until after the cache lookup below.
        let (graph, gref, stale) = match spec.graph {
            GraphSel::Latest(id) => {
                let (graph, gref) = self
                    .shared
                    .catalog
                    .resolve_latest(id)
                    .ok_or(JobError::UnknownGraph)?;
                (Some(graph), gref, None)
            }
            GraphSel::Pinned(gref) => match self.shared.catalog.resolve_pinned(gref) {
                None => return Err(JobError::UnknownGraph),
                Some(Ok(graph)) => (Some(graph), gref, None),
                Some(Err(current)) => (None, gref, Some(current)),
            },
        };
        let key = CacheKey {
            graph: gref,
            algorithm: spec.algorithm,
            seed: spec.seed,
            processors: spec.processors.unwrap_or(0),
        };
        let token = match spec.deadline {
            Some(d) => CancelToken::with_deadline(arrived + d),
            None => CancelToken::new(),
        };
        // Front-ends may pre-mint the id (the TCP server does, so the
        // wire reply and the journal agree); otherwise mint here.
        let trace = spec.trace.map(TraceId).unwrap_or_else(TraceId::mint);
        let lane = spec.priority.lane();
        let state = JobState::new(token, trace);
        let journal = self.shared.telemetry.journal();
        journal.record_now(
            trace,
            JobEventKind::Submitted,
            Some(lane as u8),
            None,
            Some(spec.algorithm.name().to_owned()),
        );
        // A cache hit completes instantly, so any live deadline is met
        // trivially — but a deadline that is already expired at
        // submission (e.g. Duration::ZERO) must still report
        // DeadlineExceeded, exactly as the executed path would.
        if state.token.is_cancelled() {
            let err = JobError::from_token(&state.token);
            self.shared.gauges.on_submit_unqueued();
            self.shared.gauges.on_finish(err.outcome_kind(), 0, 0);
            journal.record_now(
                trace,
                JobEventKind::Finished,
                Some(lane as u8),
                None,
                Some(outcome_name(err.outcome_kind()).to_owned()),
            );
            state.finish(Err(err));
            return Ok(Submitted {
                handle: JobHandle::new(state),
                cached: false,
            });
        }
        if let Some(forest) = self.shared.cache.get(&key) {
            // Short-circuit: the forest is already known for this exact
            // (graph version, algorithm, seed, width). No queue entry,
            // no team lease — the handle resolves before it is returned.
            // `on_cache_hit` counts the completion under the dedicated
            // cached series; the zero-latency hit stays out of the
            // execution histograms.
            self.shared.gauges.on_cache_hit();
            self.shared
                .telemetry
                .on_cached(trace, lane as u8, elapsed_ns(arrived));
            state.finish(Ok(forest));
            return Ok(Submitted {
                handle: JobHandle::new(state),
                cached: true,
            });
        }
        self.shared.gauges.on_cache_miss();
        // A stale pin that the cache could not serve cannot execute:
        // the pinned version's CSR is gone (superseded or evicted).
        let Some(graph) = graph else {
            let current = stale.unwrap_or(gref.version);
            return Err(self.reject(
                trace,
                lane,
                "stale_version",
                JobError::StaleVersion(current),
            ));
        };
        let job = QueuedJob {
            graph,
            algo: spec.algorithm.instantiate(spec.seed),
            state: Arc::clone(&state),
            submitted_at: arrived,
            preferred_p: spec.processors,
            lane,
            trace,
            algo_label: spec.algorithm.name(),
            cache_slot: Some(key),
            tenant: spec.tenant,
        };
        self.enqueue(job, block)?;
        Ok(Submitted {
            handle: JobHandle::new(state),
            cached: false,
        })
    }

    /// Starts a job submission for `g`. The graph is shared by `Arc` so
    /// many tenants can submit the same graph without copying it.
    pub fn job<'s>(&'s self, g: &Arc<CsrGraph>) -> JobBuilder<'s> {
        JobBuilder {
            service: self,
            graph: Arc::clone(g),
            algo: None,
            deadline: None,
            priority: Priority::Normal,
            preferred_p: None,
            tenant: 0,
        }
    }

    /// Closes the queue and joins the dispatchers. Queued jobs that
    /// never ran resolve to [`JobError::ShuttingDown`]; the running job
    /// on each team completes first. Dropping the service does the same.
    pub fn shutdown(mut self) -> PoolSnapshot {
        self.shutdown_inner();
        self.snapshot()
    }

    fn shutdown_inner(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work.notify_all();
        self.shared.space.notify_all();
        for d in self.dispatchers.drain(..) {
            let _ = d.join();
        }
        if let Some(c) = self.elastic_controller.take() {
            let _ = c.join();
        }
    }

    /// Records a rejected submission: the reason-tagged reject gauge
    /// plus the journal's terminal event for the trace.
    fn reject(&self, trace: TraceId, lane: usize, reason: &str, err: JobError) -> JobError {
        match err {
            JobError::QuotaExceeded => self.shared.gauges.on_reject_quota(lane),
            JobError::DeadlineUnmeetable => {
                self.shared.gauges.on_reject_deadline_unmeetable(lane);
            }
            _ => self.shared.gauges.on_reject(lane),
        }
        self.shared.telemetry.journal().record_now(
            trace,
            JobEventKind::Finished,
            Some(lane as u8),
            None,
            Some(reason.to_owned()),
        );
        err
    }

    fn enqueue(&self, job: QueuedJob, block: bool) -> Result<(), JobError> {
        let lane = job.lane;
        let (trace, algo_label) = (job.trace, job.algo_label);
        // Register the eager-cancel hook before the job can be queued,
        // so a cancel racing this submission can never miss the sweep.
        job.state
            .set_cancel_observer(Arc::downgrade(&self.shared) as Weak<dyn CancelObserver>);
        let mut q = self.shared.queue.lock().unwrap();
        loop {
            if q.shutdown {
                drop(q);
                self.shared.telemetry.journal().record_now(
                    trace,
                    JobEventKind::Finished,
                    Some(lane as u8),
                    None,
                    Some("shutting_down".to_owned()),
                );
                return Err(JobError::ShuttingDown);
            }
            // Per-tenant quota: rejected even on the blocking path —
            // the tenant is over *its own* cap, so waiting for global
            // space would not help and would stall the caller forever
            // if its own jobs are the ones gated behind it.
            if let Some(quota) = self.shared.tenant_quota {
                if q.tenant_load(job.tenant) >= quota {
                    drop(q);
                    return Err(self.reject(
                        trace,
                        lane,
                        "quota_exceeded",
                        JobError::QuotaExceeded,
                    ));
                }
            }
            // Deadline-aware admission: when this lane's observed queue
            // delay already exceeds the job's remaining deadline, the
            // job would almost surely expire in the queue — reject now
            // so the tenant can retry elsewhere instead of burning a
            // bounded slot on a doomed job.
            if let Some(deadline) = job.state.token.deadline() {
                let remaining = deadline
                    .saturating_duration_since(Instant::now())
                    .as_nanos()
                    .min(u128::from(u64::MAX)) as u64;
                if self.shared.queue_delay_estimate_ns(lane) > remaining {
                    drop(q);
                    return Err(self.reject(
                        trace,
                        lane,
                        "deadline_unmeetable",
                        JobError::DeadlineUnmeetable,
                    ));
                }
            }
            if q.len < self.shared.capacity {
                break;
            }
            if !block {
                drop(q);
                return Err(self.reject(trace, lane, "backpressure", JobError::Backpressure));
            }
            q = self.shared.space.wait(q).unwrap();
        }
        q.charge_tenant(job.tenant);
        q.lanes[lane].push_back(job);
        q.len += 1;
        self.shared.gauges.on_submit(lane);
        // Journaled while still holding the queue lock: the dispatcher
        // can only pop (and journal `dequeued`) after this lock drops,
        // so a trace's events always read submitted < admitted <
        // dequeued.
        self.shared
            .telemetry
            .on_admitted(trace, lane as u8, algo_label);
        drop(q);
        self.shared.work.notify_one();
        Ok(())
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The outcome of a [`JobSpec`] submission.
#[derive(Debug)]
pub struct Submitted {
    /// The job's handle; already resolved when `cached` is true.
    pub handle: JobHandle,
    /// True when the result came from the cache and no job was queued.
    pub cached: bool,
}

impl Submitted {
    /// Unwraps into the handle when the caller does not care about
    /// provenance.
    pub fn into_handle(self) -> JobHandle {
        self.handle
    }
}

/// A pending submission, built by [`Service::job`].
pub struct JobBuilder<'s> {
    service: &'s Service,
    graph: Arc<CsrGraph>,
    algo: Option<BoxedAlgorithm>,
    deadline: Option<Duration>,
    priority: Priority,
    preferred_p: Option<usize>,
    tenant: u64,
}

impl std::fmt::Debug for JobBuilder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobBuilder")
            .field("n", &self.graph.num_vertices())
            .field("priority", &self.priority)
            .field("deadline", &self.deadline)
            .finish()
    }
}

impl JobBuilder<'_> {
    /// Selects the algorithm (default:
    /// [`BaderCong::with_defaults`](st_core::BaderCong::with_defaults)).
    pub fn algorithm<A: SpanningAlgorithm + Send + Sync + 'static>(mut self, algo: A) -> Self {
        self.algo = Some(Box::new(algo));
        self
    }

    /// Attaches a deadline, measured from submission and covering queue
    /// wait plus execution. A job past its deadline resolves to
    /// [`JobError::DeadlineExceeded`]; a running job stops at its next
    /// cancellation boundary.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets the admission priority class (default
    /// [`Priority::Normal`]).
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    /// Requests a specific team width, bypassing the sizing oracle. The
    /// pool still best-fits: a busy exact-width team means the closest
    /// idle width serves the job.
    pub fn processors(mut self, p: usize) -> Self {
        self.preferred_p = Some(p);
        self
    }

    /// Names the tenant whose queued-job quota this submission is
    /// charged against (default 0, the shared anonymous tenant).
    pub fn tenant(mut self, tenant: u64) -> Self {
        self.tenant = tenant;
        self
    }

    /// Submits, blocking while the admission queue is full. Fails only
    /// when the service is shutting down.
    pub fn submit(self) -> Result<JobHandle, JobError> {
        self.enqueue(true)
    }

    /// Submits without blocking: a full queue is
    /// [`JobError::Backpressure`], leaving the caller to shed load or
    /// retry.
    pub fn try_submit(self) -> Result<JobHandle, JobError> {
        self.enqueue(false)
    }

    fn enqueue(self, block: bool) -> Result<JobHandle, JobError> {
        let token = match self.deadline {
            Some(d) => CancelToken::with_deadline(Instant::now() + d),
            None => CancelToken::new(),
        };
        let trace = TraceId::mint();
        let lane = self.priority.lane();
        let state = JobState::new(token, trace);
        let algo = self
            .algo
            .unwrap_or_else(|| Box::new(BaderCong::with_defaults()));
        // Custom algorithms outside the catalog set share one "other"
        // histogram label — the Prometheus series set stays bounded.
        let algo_label = Telemetry::algo_label(algo.name());
        self.service.shared.telemetry.journal().record_now(
            trace,
            JobEventKind::Submitted,
            Some(lane as u8),
            None,
            Some(algo_label.to_owned()),
        );
        let job = QueuedJob {
            graph: self.graph,
            algo,
            state: Arc::clone(&state),
            submitted_at: Instant::now(),
            preferred_p: self.preferred_p,
            lane,
            trace,
            algo_label,
            // Ad-hoc graphs have no catalog identity, so their results
            // cannot be cached or shared.
            cache_slot: None,
            tenant: self.tenant,
        };
        self.service.enqueue(job, block)?;
        Ok(JobHandle::new(state))
    }
}

/// One dispatcher thread: pops admitted jobs, leases the best-fitting
/// team, runs the job with cancellation support, and resolves its
/// handle. Each dispatcher keeps a private [`Workspace`] so scratch
/// allocations amortize across the jobs it runs.
fn dispatcher(shared: &Shared) {
    let mut ws = Workspace::new();
    loop {
        let (job, draining) = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop() {
                    break (job, q.shutdown);
                }
                if q.shutdown {
                    return;
                }
                q = shared.work.wait(q).unwrap();
            }
        };
        shared.gauges.on_dequeue(job.lane);
        let queue_ns = elapsed_ns(job.submitted_at);
        // Every dequeue feeds the lane's queue-delay estimator — the
        // drained and cancelled paths included, since they waited just
        // as long as a job that goes on to run.
        shared.note_queue_delay(job.lane, queue_ns);
        shared.telemetry.journal().record_now(
            job.trace,
            st_obs::JobEventKind::Dequeued,
            Some(job.lane as u8),
            None,
            None,
        );
        shared.space.notify_one();
        if draining {
            // Classify from the token, exactly as the executed path
            // would: a job whose deadline expired while it sat in the
            // queue reports `DeadlineExceeded`, not a bogus
            // shutdown-cancellation — shutdown is merely when the
            // queue got around to noticing.
            let err = if job.state.token.is_cancelled() {
                JobError::from_token(&job.state.token)
            } else {
                JobError::ShuttingDown
            };
            let outcome = match err {
                JobError::ShuttingDown => "shutting_down",
                ref e => outcome_name(e.outcome_kind()),
            };
            shared.gauges.on_finish(err.outcome_kind(), queue_ns, 0);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                None,
                outcome,
                queue_ns,
                0,
                false,
                job.algo_label,
                None,
            );
            job.state.finish(Err(err));
            continue;
        }
        run_job(shared, job, &mut ws);
    }
}

fn elapsed_ns(since: Instant) -> u64 {
    since.elapsed().as_nanos() as u64
}

/// Runs one job start to finish: deadline/cancel pre-check, team lease,
/// guarded execution, outcome accounting.
fn run_job(shared: &Shared, job: QueuedJob, ws: &mut Workspace) {
    let queue_ns = elapsed_ns(job.submitted_at);
    // A token that fired while the job sat in the queue: resolve without
    // paying for a lease.
    if job.state.token.is_cancelled() {
        let err = JobError::from_token(&job.state.token);
        shared.gauges.on_finish(err.outcome_kind(), queue_ns, 0);
        shared.telemetry.on_finished(
            job.trace,
            job.lane as u8,
            None,
            outcome_name(err.outcome_kind()),
            queue_ns,
            0,
            false,
            job.algo_label,
            None,
        );
        job.state.finish(Err(err));
        return;
    }

    let preferred = job.preferred_p.unwrap_or_else(|| {
        preferred_width(
            job.graph.num_vertices(),
            job.graph.num_edges(),
            &shared.pool.team_sizes(),
        )
    });
    let lease = shared.pool.lease(preferred);
    let team = lease.team_id() as u32;
    shared.gauges.on_team_busy();
    shared.telemetry.on_started(job.trace, job.lane as u8, team);
    ws.note_queue_wait(queue_ns);
    ws.note_trace_id(job.trace.as_u64());
    let started = Instant::now();
    // The guard isolates tenant panics: the lease returns the team on
    // unwind (Executor survives panicked jobs) and the dispatcher
    // replaces its workspace, so the pool keeps serving other tenants.
    let run = catch_unwind(AssertUnwindSafe(|| {
        job.algo.prepare(ws, &job.graph);
        job.algo
            .run_with_cancel(&job.graph, &lease, ws, &job.state.token)
    }));
    drop(lease);
    shared.gauges.on_team_idle();
    // The lease just came back: if the elastic controller posted a
    // width change for this team, this is the guaranteed-idle window
    // to land it, even when the pool as a whole is saturated.
    shared.apply_pending_resize(team as usize);
    let exec_ns = elapsed_ns(started);

    match run {
        Ok(Ok(forest)) => {
            if let Some(key) = job.cache_slot {
                shared.cache.insert(key, forest.clone());
            }
            shared
                .gauges
                .on_finish(JobOutcomeKind::Completed, queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                "completed",
                queue_ns,
                exec_ns,
                true,
                job.algo_label,
                Some(&forest.stats.metrics),
            );
            job.state.finish(Ok(forest));
        }
        Ok(Err(st_core::Cancelled)) => {
            let err = JobError::from_token(&job.state.token);
            shared
                .gauges
                .on_finish(err.outcome_kind(), queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                outcome_name(err.outcome_kind()),
                queue_ns,
                exec_ns,
                false,
                job.algo_label,
                None,
            );
            job.state.finish(Err(err));
        }
        Err(payload) => {
            // Mid-run unwind can leave the workspace's scratch in an
            // arbitrary state; a fresh arena is the safe restart.
            *ws = Workspace::new();
            shared
                .gauges
                .on_finish(JobOutcomeKind::Panicked, queue_ns, exec_ns);
            shared.telemetry.on_finished(
                job.trace,
                job.lane as u8,
                Some(team),
                "panicked",
                queue_ns,
                exec_ns,
                false,
                job.algo_label,
                None,
            );
            job.state
                .finish(Err(JobError::Panicked(panic_message(&*payload))));
        }
    }
}

/// Stable lowercase outcome names used in journal `finished` events
/// (matching the `outcome` label values of
/// `st_service_jobs_finished_total`).
fn outcome_name(kind: JobOutcomeKind) -> &'static str {
    match kind {
        JobOutcomeKind::Completed => "completed",
        JobOutcomeKind::Cancelled => "cancelled",
        JobOutcomeKind::DeadlineExceeded => "deadline_exceeded",
        JobOutcomeKind::Panicked => "panicked",
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}
